#!/usr/bin/env bash
# Regenerates every figure and table of the paper (E1-E11, see DESIGN.md).
# Raw series are written to results/*.csv; each binary prints REPRODUCED /
# NOT REPRODUCED verdicts for its shape-level claims.
#
# Usage: scripts/run_experiments.sh [LOF_SCALE]
#   LOF_SCALE scales the fig10/fig11 dataset sizes (default 1).

set -euo pipefail
cd "$(dirname "$0")/.."

export LOF_SCALE="${1:-1}"

BINS=(
  fig01_ds1
  fig04_bound_spread
  fig05_relative_span
  fig07_gaussian_minpts
  fig08_cluster_sizes
  fig09_surface
  fig10_materialization
  fig11_lof_step
  table_hockey
  table3_soccer
  exp_highdim64
  exp_incremental
  exp_detector_quality
)

cargo build --release -p lof-bench --bins

mkdir -p results
summary=()
for bin in "${BINS[@]}"; do
  echo
  log="results/${bin}.log"
  cargo run --quiet --release -p lof-bench --bin "$bin" | tee "$log"
  n_bad=$(grep -c "NOT REPRODUCED" "$log" || true)
  summary+=("$bin: $([ "$n_bad" -eq 0 ] && echo OK || echo "$n_bad claims NOT reproduced")")
done

echo
echo "== verdict summary =="
printf '%s\n' "${summary[@]}"
