#!/usr/bin/env bash
# CI gate: tier-1 build+test, formatting, and lints.
#
#   scripts/ci.sh          # run everything
#
# Tier-1 (the hard gate) is the root package's release build and test
# suite; the workspace tests, rustfmt, and clippy guard the rest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root package tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== simd dispatch: full suite under forced-scalar =="
# The workspace run above used the best native target (AVX2+FMA here);
# this rerun pins every kernel to the portable scalar backend. Both runs
# must pass the same bit-identity suites — together with the in-process
# cross-target tests in crates/core/tests/simd_identity.rs this checks
# the dispatch override end to end.
LOF_FORCE_SCALAR=1 cargo test --workspace -q

echo "== streaming subsystem: build + tests + serve integration =="
cargo build -p lof-stream
cargo test -p lof-stream -q
cargo test -p lof-stream --test serve -q

echo "== streaming: shard differential + deferred equivalence =="
# sharded(N) == sharded(1) == flat eager == batch oracle, bit for bit,
# after every event — through duplicates, tie shells, and eviction
# storms — plus the sharded snapshot round-trip; rerun forced-scalar
# since the sharded gather path skips the SIMD surrogate prefilter.
cargo test -p lof-stream --test shards -q
LOF_FORCE_SCALAR=1 cargo test -p lof-stream --test shards -q

echo "== observability: instrumented crates with obs compiled OFF =="
# The whole stack must stay green when instrumentation compiles to
# no-ops (`--no-default-features`): counters read zero, spans vanish,
# and the differential suites' gated assertions sit out.
cargo test -q -p lof-obs -p lof-core -p lof-index -p lof-stream --no-default-features

echo "== observability: serve metrics smoke =="
# End to end through the real release binary: start `lof serve`, pump a
# few events, and check the in-band GET /metrics answer carries the
# serve counters in Prometheus text form.
cargo build --release -q -p lof-cli
./target/release/lof serve --listen 127.0.0.1:0 --minpts 2 --capacity 16 --metrics \
  2>/tmp/lof_ci_serve.err &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT
for _ in $(seq 1 50); do
  ADDR=$(sed -n 's/^listening on \([0-9.:]*\) .*/\1/p' /tmp/lof_ci_serve.err)
  [ -n "$ADDR" ] && break
  sleep 0.1
done
[ -n "$ADDR" ] || { echo "serve did not come up"; exit 1; }
timeout 15 bash -c '
  exec 3<>"/dev/tcp/${1%:*}/${1##*:}"
  printf "1,2\n2,3\n3,4\nGET /metrics\n" >&3
  while IFS= read -r line <&3; do
    echo "$line"
    [ "$line" = "# EOF" ] && break
  done
' _ "$ADDR" > /tmp/lof_ci_serve.out
kill $SERVE_PID 2>/dev/null || true
trap - EXIT
grep -q 'lof_serve_events_in 3' /tmp/lof_ci_serve.out
grep -q '# EOF' /tmp/lof_ci_serve.out
echo "serve metrics smoke OK"

echo "== release smoke: sharded deferred stream == flat eager stream =="
# End to end through the real release binary: the same event file must
# produce identical scores and alerts under `--shards 4 --deferred` and
# under the flat eager default — only timing and cascade accounting may
# differ, so the comparison projects each record onto seq/lof/alert.
awk 'BEGIN{srand(7);for(i=0;i<400;i++)printf "%.3f,%.3f\n",(i%19)*0.5+rand(),(i%23)*0.4+rand()}' \
  > /tmp/lof_ci_stream_events.csv
./target/release/lof stream --minpts 5 --capacity 64 --threshold 1.5 \
  /tmp/lof_ci_stream_events.csv \
  | grep -o '"seq":[0-9]*,"lof":[^,]*,"alert":[a-z]*' > /tmp/lof_ci_stream_flat.txt
./target/release/lof stream --minpts 5 --capacity 64 --threshold 1.5 --shards 4 --deferred \
  /tmp/lof_ci_stream_events.csv \
  | grep -o '"seq":[0-9]*,"lof":[^,]*,"alert":[a-z]*' > /tmp/lof_ci_stream_sharded.txt
[ -s /tmp/lof_ci_stream_flat.txt ]
cmp /tmp/lof_ci_stream_flat.txt /tmp/lof_ci_stream_sharded.txt
echo "sharded stream differential OK"

echo "== release smoke: serve saturation (event loop, 64 clients) =="
# bench_serve aborts on any dropped or rejected event, on an unclean
# drain, and if the kill -> restore-from-snapshot path diverges from an
# uninterrupted in-process window. 64 pipelined clients here; the full
# matrix (256/1024 conns vs the thread-per-connection baseline) runs in
# the benchmark proper.
BENCH_SERVE_CONNS=64 \
  BENCH_SERVE_OUT=/tmp/lof_ci_bench_serve.json \
  cargo run --release -q -p lof-bench --bin bench_serve

echo "== topn: fixed-seed differential + forced-scalar rerun =="
# The bound-driven engine must stay bit-identical to the sorted full
# sweep on every index, cover, metric, and thread count — and again with
# the SIMD kernels pinned to scalar, since refinement rides the batch
# k-NN path. The CLI suite covers the `lof topn` surface on top.
cargo test -q --test topn_differential
cargo test -q --test theorem2_leaf_straddle
cargo test -q -p lof-cli topn
LOF_FORCE_SCALAR=1 cargo test -q --test topn_differential

echo "== release smoke: topn pruning vs full sweep at n=20000 =="
# bench_topn aborts unless the pruned top-100 ranking is bit-identical
# to the full sweep's, serial and parallel — a release-optimized
# end-to-end gate over partition envelopes, θ-pruning, and refinement.
LOF_TOPN_POINTS=20000 \
  BENCH_TOPN_OUT=/tmp/lof_ci_bench_topn.json \
  cargo run --release -q -p lof-bench --bin bench_topn

echo "== release smoke: batch join + sweep bit-identity at n=2000 =="
# bench_materialize aborts on any bit divergence between the brute scan,
# the per-query tree searches, the leaf-blocked batch joins, and the
# single-pass MinPts sweep — a cheap end-to-end gate over the real
# release-optimized binaries.
LOF_MATERIALIZE_N=2000 \
  BENCH_MATERIALIZE_OUT=/tmp/lof_ci_bench_materialize.json \
  LOF_RESULTS=/tmp \
  LOF_OOC_N=20000 \
  cargo run --release -q -p lof-bench --bin bench_materialize
# LOF_OOC_N adds a small out-of-core tier on top: .lofd write -> mmap ->
# kd self-join -> disk-spilled table under a tiny budget; the binary
# aborts unless the budget forces real spilling AND the spilled scores
# are bit-identical to the in-RAM pipeline.

echo "== out-of-core: ingest round-trip smoke =="
# CSV -> `lof ingest` -> .lofd -> batch scores must equal the CSV path's
# scores byte for byte (the f64 Display round-trip makes the score CSVs
# a bit-exact comparison).
awk 'BEGIN{srand(3);print "x,y,noise";for(i=0;i<300;i++)printf "%.4f,%.4f,%d\n",(i%17)*0.7+rand(),(i%13)*0.9+rand(),i%5}' \
  > /tmp/lof_ci_ooc_input.csv
rm -f /tmp/lof_ci_ooc.lofd
./target/release/lof ingest --columns x,y /tmp/lof_ci_ooc_input.csv /tmp/lof_ci_ooc.lofd
./target/release/lof --minpts 5..10 --columns 0,1 --output /tmp/lof_ci_ooc_csv_scores.csv \
  /tmp/lof_ci_ooc_input.csv > /dev/null
./target/release/lof --minpts 5..10 --output /tmp/lof_ci_ooc_lofd_scores.csv \
  /tmp/lof_ci_ooc.lofd > /dev/null
cmp /tmp/lof_ci_ooc_csv_scores.csv /tmp/lof_ci_ooc_lofd_scores.csv
echo "ingest round-trip OK"

echo "== out-of-core: spill-forced batch run =="
# A 16 KiB resident budget over the same input forces the neighborhood
# table onto disk; the run must still score bit-identically and the
# core.ooc.* counters must show real segment spills.
./target/release/lof --minpts 5..10 --memory-budget 16k --metrics \
  --output /tmp/lof_ci_ooc_spill_scores.csv /tmp/lof_ci_ooc.lofd \
  > /dev/null 2> /tmp/lof_ci_ooc_spill.err
cmp /tmp/lof_ci_ooc_csv_scores.csv /tmp/lof_ci_ooc_spill_scores.csv
SPILLS=$(sed -n 's/^lof_core_ooc_segment_spills \([0-9][0-9]*\)$/\1/p' /tmp/lof_ci_ooc_spill.err)
[ -n "$SPILLS" ] && [ "$SPILLS" -gt 1 ] \
  || { echo "expected >1 segment spills, got '${SPILLS:-none}'"; exit 1; }
echo "spill-forced run OK ($SPILLS segment spills)"

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
