#!/usr/bin/env bash
# CI gate: tier-1 build+test, formatting, and lints.
#
#   scripts/ci.sh          # run everything
#
# Tier-1 (the hard gate) is the root package's release build and test
# suite; the workspace tests, rustfmt, and clippy guard the rest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root package tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== streaming subsystem: build + tests + serve integration =="
cargo build -p lof-stream
cargo test -p lof-stream -q
cargo test -p lof-stream --test serve -q

echo "== release smoke: batch join + sweep bit-identity at n=2000 =="
# bench_materialize aborts on any bit divergence between the brute scan,
# the per-query tree searches, the leaf-blocked batch joins, and the
# single-pass MinPts sweep — a cheap end-to-end gate over the real
# release-optimized binaries.
LOF_MATERIALIZE_N=2000 \
  BENCH_MATERIALIZE_OUT=/tmp/lof_ci_bench_materialize.json \
  LOF_RESULTS=/tmp \
  cargo run --release -q -p lof-bench --bin bench_materialize

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
