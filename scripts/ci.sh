#!/usr/bin/env bash
# CI gate: tier-1 build+test, formatting, and lints.
#
#   scripts/ci.sh          # run everything
#
# Tier-1 (the hard gate) is the root package's release build and test
# suite; the workspace tests, rustfmt, and clippy guard the rest.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: root package tests =="
cargo test -q

echo "== workspace tests =="
cargo test --workspace -q

echo "== streaming subsystem: build + tests + serve integration =="
cargo build -p lof-stream
cargo test -p lof-stream -q
cargo test -p lof-stream --test serve -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
