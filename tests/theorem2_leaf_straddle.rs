//! Theorem 2 on *tree-induced* partitions: the top-n engine partitions a
//! dataset by kd-tree leaves, but an object's `MinPts`-neighborhood does
//! not respect leaf boundaries — near a split plane the neighbors
//! straddle two or more leaves, so the Theorem 2 parts are fragments of
//! different leaves. The theorem must hold for *any* partition of the
//! neighborhood, so the bounds computed from these straddling covers
//! must still contain the exact LOF — that containment is precisely what
//! lets the engine trust leaf-level envelopes.

use lof::core::bounds::theorem2_bounds;
use lof::core::lof::lof_values;
use lof::{Dataset, Euclidean, KdTree, NeighborhoodTable, PartitionSource};

/// Clustered data sized so neighborhoods routinely cross leaf
/// boundaries: three tight 5x5 grids (25 points each, leaf capacity is
/// 16, so every cluster spans at least two leaves) plus two isolated
/// outliers whose neighborhoods reach across clusters.
fn straddling_dataset() -> Dataset {
    let mut rows: Vec<[f64; 2]> = Vec::new();
    for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 8.0)] {
        for i in 0..5 {
            for j in 0..5 {
                rows.push([cx + f64::from(i) * 0.3, cy + f64::from(j) * 0.3]);
            }
        }
    }
    rows.push([5.0, 3.5]);
    rows.push([-20.0, -20.0]);
    Dataset::from_rows(&rows).unwrap()
}

/// Groups the ids of `p`'s neighborhood by containing kd-tree leaf,
/// returning Theorem 2 parts plus how many distinct leaves contribute.
fn leaf_grouped_parts(
    leaf_of: &[usize],
    neighborhood: &[lof::Neighbor],
) -> (Vec<Vec<usize>>, usize) {
    let mut parts: Vec<(usize, Vec<usize>)> = Vec::new();
    for n in neighborhood {
        let leaf = leaf_of[n.id];
        match parts.iter_mut().find(|(l, _)| *l == leaf) {
            Some((_, members)) => members.push(n.id),
            None => parts.push((leaf, vec![n.id])),
        }
    }
    let leaves = parts.len();
    (parts.into_iter().map(|(_, members)| members).collect(), leaves)
}

#[test]
fn theorem2_holds_on_partitions_straddling_leaf_boundaries() {
    let data = straddling_dataset();
    let tree = KdTree::new(&data, Euclidean);

    // Recover each id's leaf from the same partition cover the top-n
    // engine uses (one partition per leaf).
    let partitions = tree.partitions();
    let mut leaf_of = vec![usize::MAX; data.len()];
    for (pi, part) in partitions.iter().enumerate() {
        for &id in &part.members {
            leaf_of[id] = pi;
        }
    }
    assert!(leaf_of.iter().all(|&l| l != usize::MAX), "partitions cover every id");
    assert!(partitions.len() >= 4, "clusters must split across leaves");

    for min_pts in [3usize, 7, 12] {
        let table = NeighborhoodTable::build(&tree, min_pts).unwrap();
        let exact = lof_values(&table, min_pts).unwrap();

        let mut straddlers = 0usize;
        for (id, &score) in exact.iter().enumerate() {
            let neighborhood = table.neighborhood(id, min_pts).unwrap();
            let (parts, leaves) = leaf_grouped_parts(&leaf_of, neighborhood);
            if leaves > 1 {
                straddlers += 1;
            }
            let bounds = theorem2_bounds(&table, min_pts, id, &parts).unwrap();
            assert!(
                bounds.contains(score),
                "min_pts={min_pts} id={id}: LOF {score} outside [{}, {}] \
                 (neighborhood spans {leaves} leaves)",
                bounds.lower,
                bounds.upper
            );
        }
        // The fixture exists to exercise straddling covers — if nothing
        // straddles, the test silently degenerates to single-part
        // Theorem 1 and proves nothing new.
        assert!(
            straddlers > data.len() / 4,
            "min_pts={min_pts}: only {straddlers} neighborhoods straddle a leaf boundary"
        );
    }
}

/// The same containment when the parts come from *another* tree than the
/// one that answered the k-NN queries: Theorem 2 makes no assumption
/// about where the partition comes from, and the engine relies on that
/// when an index's leaf structure differs from the query provider's.
#[test]
fn theorem2_holds_for_foreign_tree_partitions() {
    let data = straddling_dataset();
    let scan = lof::LinearScan::new(&data, Euclidean);
    let min_pts = 5;
    let table = NeighborhoodTable::build(&scan, min_pts).unwrap();
    let exact = lof_values(&table, min_pts).unwrap();

    let tree = KdTree::new(&data, Euclidean);
    let partitions = tree.partitions();
    let mut leaf_of = vec![usize::MAX; data.len()];
    for (pi, part) in partitions.iter().enumerate() {
        for &id in &part.members {
            leaf_of[id] = pi;
        }
    }

    for (id, &score) in exact.iter().enumerate() {
        let neighborhood = table.neighborhood(id, min_pts).unwrap();
        let (parts, _) = leaf_grouped_parts(&leaf_of, neighborhood);
        let bounds = theorem2_bounds(&table, min_pts, id, &parts).unwrap();
        assert!(
            bounds.contains(score),
            "id={id}: LOF {score} outside [{}, {}]",
            bounds.lower,
            bounds.upper
        );
    }
}
