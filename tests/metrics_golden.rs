//! Golden-file lockdown of the metrics exposition formats (PR 4, obs
//! builds only — counter and gauge values are compiled out otherwise).
//!
//! Both renderings must be byte-stable: metric ordering is the sorted
//! registry order, special floats follow the shared rules (`inf` /
//! `-inf` / `nan` strings in NDJSON, matching `wire.rs`; `+Inf` / `-Inf`
//! / `NaN` in Prometheus text), and the Prometheus block terminates with
//! `# EOF` and no trailing newline. Regenerate with
//! `BLESS=1 cargo test -p lof --test metrics_golden` after an
//! *intentional* format change — and say why in the commit.
#![cfg(feature = "obs")]

use lof::obs::MetricsRegistry;
use std::path::Path;

/// A registry with every metric kind and every special-float case, with
/// names chosen to interleave kinds when sorted.
fn golden_registry() -> MetricsRegistry {
    let registry = MetricsRegistry::new();
    registry.counter("serve.events_in").add(41);
    registry.counter("alerts.fired").add(3);
    registry.counter("core.incremental.cascade_depth").add(27);
    registry.counter("stream.shard.border_repairs").add(9);
    let g = registry.gauge("window.occupancy");
    g.set(512.0);
    registry.gauge("edge.pos_inf").set(f64::INFINITY);
    registry.gauge("edge.neg_inf").set(f64::NEG_INFINITY);
    registry.gauge("edge.nan").set(f64::NAN);
    registry.gauge("edge.fraction").set(-0.25);
    let h = registry.histogram("stream.latency_ns");
    for ns in [100, 200, 300, 400, 500, 600, 700, 100_000] {
        h.record(ns);
    }
    registry
}

fn check(rendered: &str, golden_path: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join(golden_path);
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, rendered).expect("bless golden file");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {} ({e}); run with BLESS=1", golden_path));
    assert_eq!(
        rendered, want,
        "{golden_path} diverged; if the format change is intentional, \
         re-bless with BLESS=1 and document it"
    );
}

#[test]
fn prometheus_text_matches_the_golden_file() {
    let text = golden_registry().render_prometheus();
    assert!(text.ends_with("# EOF"), "exposition must end with the EOF marker, no newline");
    check(&text, "tests/golden/metrics.txt");
}

#[test]
fn ndjson_snapshot_matches_the_golden_file() {
    let json = golden_registry().render_ndjson();
    assert_eq!(json.lines().count(), 1, "NDJSON snapshot is a single line");
    check(&json, "tests/golden/metrics.ndjson");
}

#[test]
fn special_floats_follow_the_shared_wire_rules() {
    let registry = golden_registry();
    let json = registry.render_ndjson();
    assert!(json.contains("\"edge.pos_inf\":\"inf\""), "{json}");
    assert!(json.contains("\"edge.neg_inf\":\"-inf\""), "{json}");
    assert!(json.contains("\"edge.nan\":\"nan\""), "{json}");
    assert!(json.contains("\"edge.fraction\":-0.25"), "{json}");
    let text = registry.render_prometheus();
    assert!(text.contains("lof_edge_pos_inf +Inf"), "{text}");
    assert!(text.contains("lof_edge_neg_inf -Inf"), "{text}");
    assert!(text.contains("lof_edge_nan NaN"), "{text}");
}
