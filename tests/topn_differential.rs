//! Differential property suite for the bound-driven top-n engine: on
//! random data — duplicate-heavy, tie-heavy, every supported metric —
//! the engine's ranking must be **bit-identical** (ids, score bits, tie
//! order) to sorting a full materialize-and-score sweep, regardless of
//! which partition cover it prunes with or how many refinement workers
//! it runs. Pruning is an optimization; any observable difference is a
//! soundness bug in the envelope bounds.

use lof::{
    topn_reference, BallTree, Dataset, Euclidean, KdTree, LinearScan, Manhattan, Metric, Partition,
    PartitionSource, TopNEngine,
};
use proptest::prelude::*;

/// Random dataset biased toward exact duplicates and ties: coordinates
/// come from a small set of fixed magnitudes plus a continuous range, so
/// duplicate piles form (zero rank profiles, vacuous envelopes) and tie
/// groups straddle the n-th rank.
fn dataset_strategy(max_n: usize, max_dims: usize) -> impl Strategy<Value = Dataset> {
    (1usize..=max_dims, 8usize..=max_n).prop_flat_map(|(dims, n)| {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(0.0), Just(1.0), Just(-2.5), -20.0..20.0f64],
                dims,
            ),
            n,
        )
        .prop_map(move |rows| Dataset::from_rows(&rows).expect("finite rows"))
    })
}

/// A hand-rolled cover ignoring all spatial structure: consecutive id
/// chunks. Envelopes over such sprawling boxes are weak (often vacuous),
/// which stresses the "prune nothing, still exact" path.
fn chunked_cover<M: Metric>(data: &Dataset, metric: &M, chunk: usize) -> Vec<Partition> {
    let ids: Vec<usize> = (0..data.len()).collect();
    ids.chunks(chunk)
        .map(|members| Partition::from_member_points(metric, members.to_vec(), |id| data.point(id)))
        .collect()
}

/// Asserts two rankings agree exactly: same ids in the same order, same
/// score *bits* (stricter than `==`, which would accept `-0.0 == 0.0`).
fn assert_ranking_identical(label: &str, got: &[(usize, f64)], want: &[(usize, f64)]) {
    assert_eq!(got.len(), want.len(), "{label}: ranking lengths diverge");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.0, w.0, "{label}: ids diverge at rank {i}");
        assert_eq!(
            g.1.to_bits(),
            w.1.to_bits(),
            "{label}: score bits diverge at rank {i} ({} vs {})",
            g.1,
            w.1
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The core differential: tree-leaf covers on both tree indexes,
    /// plus chunked covers of several granularities on a linear scan,
    /// at 1 and 3 refinement threads, versus the full-sweep reference.
    fn engine_matches_full_sweep_on_random_data(
        data in dataset_strategy(48, 3),
        min_pts in 1usize..6,
        n in 0usize..12,
    ) {
        let min_pts = min_pts.min(data.len() - 1).max(1);
        let reference = topn_reference(
            &LinearScan::new(&data, Euclidean), min_pts, n,
        ).expect("reference sweep");

        for threads in [1usize, 3] {
            let engine = TopNEngine::new(min_pts, n).with_threads(threads);

            let kd = KdTree::new(&data, Euclidean);
            let result = engine.run(&kd, &kd.partitions()).expect("kd run");
            assert_ranking_identical(
                &format!("kdtree x {threads} threads"), &result.ranking, &reference,
            );

            let ball = BallTree::new(&data, Euclidean);
            let result = engine.run(&ball, &ball.partitions()).expect("ball run");
            assert_ranking_identical(
                &format!("balltree x {threads} threads"), &result.ranking, &reference,
            );

            let scan = LinearScan::new(&data, Euclidean);
            for chunk in [1usize, 5, data.len()] {
                let cover = chunked_cover(&data, &Euclidean, chunk);
                let result = engine
                    .run_with_metric(&scan, &Euclidean, &cover)
                    .expect("chunked run");
                assert_ranking_identical(
                    &format!("chunk={chunk} x {threads} threads"),
                    &result.ranking,
                    &reference,
                );
            }
        }
    }

    /// Same differential under a non-Euclidean rectangle metric: the
    /// envelope geometry (box distances, rank profiles) must stay sound
    /// for any metric with rectangle bounds, not just L2.
    fn engine_matches_full_sweep_under_manhattan(
        data in dataset_strategy(32, 3),
        min_pts in 1usize..5,
        n in 1usize..8,
    ) {
        let min_pts = min_pts.min(data.len() - 1).max(1);
        let reference = topn_reference(
            &LinearScan::new(&data, Manhattan), min_pts, n,
        ).expect("reference sweep");
        let kd = KdTree::new(&data, Manhattan);
        let result = TopNEngine::new(min_pts, n)
            .with_threads(2)
            .run(&kd, &kd.partitions())
            .expect("kd run");
        assert_ranking_identical("manhattan kdtree", &result.ranking, &reference);
    }
}

/// Duplicate piles drive k-distances (and so reachability envelopes) to
/// zero; the engine must fall back to refinement there, never to a wrong
/// finite bound. With `n` near and beyond the dataset size the threshold
/// never tightens and the "prune nothing" path must still be exact.
#[test]
fn duplicates_and_oversized_n_stay_exact() {
    let mut rows: Vec<[f64; 2]> = Vec::new();
    for _ in 0..10 {
        rows.push([0.0, 0.0]); // a duplicate pile
    }
    for i in 0..10 {
        rows.push([f64::from(i), 3.0]);
    }
    rows.push([90.0, -40.0]);
    let data = Dataset::from_rows(&rows).unwrap();

    for min_pts in [1usize, 3, 11] {
        for n in [1usize, 5, rows.len(), rows.len() + 7] {
            let reference = topn_reference(&LinearScan::new(&data, Euclidean), min_pts, n).unwrap();
            let kd = KdTree::new(&data, Euclidean);
            let result =
                TopNEngine::new(min_pts, n).with_threads(4).run(&kd, &kd.partitions()).unwrap();
            assert_ranking_identical(
                &format!("min_pts={min_pts} n={n}"),
                &result.ranking,
                &reference,
            );
        }
    }
}
