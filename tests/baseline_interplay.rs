//! Cross-algorithm consistency: the baselines agree with each other (and
//! with LOF) exactly where theory says they must.

use lof::baselines::{
    dbscan, kth_distance_scores, mean_knn_distance_scores, optics, top_n_outliers,
};
use lof::data::metrics::roc_auc;
use lof::data::paper::fig8;
use lof::data::{mixture, seeded, Component};
use lof::{Dataset, Euclidean, KdTree, KnnProvider, LinearScan, LofDetector};

fn scene() -> Dataset {
    let mut rng = seeded(77);
    mixture(
        &mut rng,
        &[
            Component::Gaussian(80, vec![0.0, 0.0], 1.0),
            Component::Gaussian(60, vec![30.0, 0.0], 2.0),
        ],
        &[vec![15.0, 15.0], vec![-10.0, -10.0]],
    )
    .data
}

/// OPTICS with an eps' extraction is DBSCAN-equivalent: same noise set and
/// the same partition of core points into clusters (up to label renaming).
/// Border points may attach to either adjacent cluster in both algorithms,
/// so the comparison is restricted to core points.
#[test]
fn optics_extraction_matches_dbscan() {
    let data = scene();
    let scan = LinearScan::new(&data, Euclidean);
    for (eps, min_pts) in [(1.5, 5), (2.5, 4), (0.8, 3)] {
        let db = dbscan(&scan, eps, min_pts).unwrap();
        let ordering = optics(&scan, f64::INFINITY, min_pts).unwrap();
        let extracted = ordering.extract_clusters(eps);

        // Core points: at least min_pts objects (incl. self) within eps.
        let core: Vec<usize> = (0..data.len())
            .filter(|&id| scan.within(id, eps).unwrap().len() + 1 >= min_pts)
            .collect();

        // Noise agreement on every object that is core-or-noise in both.
        for &id in &core {
            assert!(!db.assignments[id].is_noise(), "core point {id} cannot be DBSCAN noise");
            assert!(
                extracted[id].is_some(),
                "core point {id} cannot be OPTICS-extraction noise (eps={eps})"
            );
        }

        // Core points in the same DBSCAN cluster share an OPTICS cluster
        // and vice versa (label renaming allowed): check the partitions
        // refine each other.
        for &a in &core {
            for &b in &core {
                let same_db = db.assignments[a] == db.assignments[b];
                let same_opt = extracted[a] == extracted[b];
                assert_eq!(
                    same_db, same_opt,
                    "core pair ({a},{b}) split differently at eps={eps}: \
                     dbscan {same_db} vs optics {same_opt}"
                );
            }
        }
    }
}

/// Both kNN-distance variants must agree with LOF on *global* outliers —
/// the regime where all reasonable detectors coincide.
#[test]
fn all_detectors_agree_on_global_outliers() {
    let data = scene();
    let index = KdTree::new(&data, Euclidean);
    let truth = vec![140usize, 141]; // the two planted detached points

    let lof_scores = LofDetector::with_range(10, 20).unwrap().detect_with(&index).unwrap().scores();
    let kth = kth_distance_scores(&index, 10).unwrap();
    let mean = mean_knn_distance_scores(&index, 10).unwrap();

    for (name, scores) in [("lof", &lof_scores), ("kth", &kth), ("mean", &mean)] {
        let auc = roc_auc(scores, &truth);
        assert!(auc > 0.99, "{name} must nail global outliers (AUC {auc})");
    }
    let top2 = top_n_outliers(&index, 10, 2).unwrap();
    let ids: Vec<usize> = top2.iter().map(|&(id, _)| id).collect();
    assert!(ids.contains(&140) && ids.contains(&141));
}

/// On figure 8's size-10 micro-cluster, LOF (MinPts = 15) sees outliers
/// while DBSCAN at the matching density threshold must make a *binary*
/// call: either the whole micro-cluster is noise or none of it is — the
/// granularity gap the paper's section 2 describes.
#[test]
fn dbscan_binary_verdict_vs_lof_degrees() {
    let labeled = fig8(8);
    let data = &labeled.data;
    let scan = LinearScan::new(data, Euclidean);
    let s1 = labeled.ids_with_label(0);

    let lof_scores = LofDetector::with_min_pts(15).unwrap().detect_with(&scan).unwrap().scores();
    let s1_min = s1.iter().map(|&i| lof_scores[i]).fold(f64::INFINITY, f64::min);
    let s1_max = s1.iter().map(|&i| lof_scores[i]).fold(f64::NEG_INFINITY, f64::max);
    assert!(s1_min > 1.5, "LOF grades every S1 member as outlying ({s1_min})");
    assert!(s1_max > s1_min, "and with *degrees*, not one value");

    // DBSCAN: under any eps, S1 is either one cluster (not noise) or all
    // noise — never graded.
    for eps in [0.5, 2.0, 10.0] {
        let db = dbscan(&scan, eps, 5).unwrap();
        let verdicts: Vec<bool> = s1.iter().map(|&i| db.assignments[i].is_noise()).collect();
        let all_same = verdicts.iter().all(|&v| v == verdicts[0]);
        assert!(all_same, "eps={eps}: DBSCAN must treat the tight micro-cluster uniformly");
    }
}

/// The kNN-distance ranking and LOF disagree exactly where densities vary:
/// the sparser cluster's ordinary members outscore the dense cluster's
/// planted local outlier under kNN-distance, never under LOF.
#[test]
fn distance_ranking_diverges_from_lof_across_densities() {
    let mut rng = seeded(3);
    let labeled = mixture(
        &mut rng,
        &[
            Component::Gaussian(100, vec![0.0, 0.0], 0.3),  // dense
            Component::Gaussian(100, vec![50.0, 0.0], 6.0), // sparse
        ],
        &[vec![3.0, 0.0]], // local outlier by the dense cluster (id 200)
    );
    let data = &labeled.data;
    let index = KdTree::new(data, Euclidean);

    let lof_scores = LofDetector::with_range(10, 20).unwrap().detect_with(&index).unwrap().scores();
    let kth = kth_distance_scores(&index, 10).unwrap();

    let sparse_max_kth = labeled.ids_with_label(1).iter().map(|&i| kth[i]).fold(f64::MIN, f64::max);
    assert!(
        kth[200] < sparse_max_kth,
        "kNN-distance buries the local outlier below sparse members"
    );
    let sparse_max_lof =
        labeled.ids_with_label(1).iter().map(|&i| lof_scores[i]).fold(f64::MIN, f64::max);
    assert!(
        lof_scores[200] > sparse_max_lof,
        "LOF ranks it above every sparse-cluster member ({} vs {sparse_max_lof})",
        lof_scores[200]
    );
}
