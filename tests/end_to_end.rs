//! Cross-crate integration tests: the full pipeline over the paper's
//! datasets, every index substrate, and the baseline comparisons.

use lof::baselines::{db_outliers, DbOutlierParams};
use lof::data::paper::{ds1, fig8, fig9, histograms64, DS1_O1, DS1_O2};
use lof::data::LabeledDataset;
use lof::{
    Aggregate, BallTree, Dataset, Euclidean, GridIndex, KdTree, LinearScan, LofDetector, VaFile,
    XTree,
};

#[test]
fn ds1_reproduces_the_section_3_story() {
    let labeled = ds1(42);
    let result = LofDetector::with_range(10, 30).unwrap().detect(&labeled.data).unwrap();
    let ranking = result.ranking();
    let top2: Vec<usize> = ranking.iter().take(2).map(|&(id, _)| id).collect();
    assert!(top2.contains(&DS1_O1), "o1 must top the ranking");
    assert!(top2.contains(&DS1_O2), "o2 must top the ranking");
    // Cluster members stay well below the outliers.
    let worst_member = ranking
        .iter()
        .filter(|(id, _)| *id != DS1_O1 && *id != DS1_O2)
        .map(|&(_, s)| s)
        .fold(f64::MIN, f64::max);
    assert!(result.score(DS1_O2).unwrap() > worst_member);

    // And DB(pct, dmin) cannot isolate o2: any parameterization flagging it
    // co-flags a big chunk of C1.
    for dmin in [1.0, 2.0, 4.0, 8.0] {
        let flags =
            db_outliers(&labeled.data, &Euclidean, DbOutlierParams::new(99.0, dmin).unwrap())
                .unwrap();
        if flags[DS1_O2] {
            let c1_flagged = labeled.ids_with_label(0).iter().filter(|&&i| flags[i]).count();
            assert!(
                c1_flagged > 40,
                "dmin={dmin}: o2 flagged but only {c1_flagged} C1 members co-flagged"
            );
        }
    }
}

#[test]
fn every_index_yields_identical_lof_results() {
    let labeled = fig8(3);
    let data = &labeled.data;
    let detector = LofDetector::with_range(10, 20).unwrap();

    let reference = detector.detect_with(&LinearScan::new(data, Euclidean)).unwrap().scores();
    let via_grid = detector.detect_with(&GridIndex::new(data, Euclidean)).unwrap().scores();
    let via_kd = detector.detect_with(&KdTree::new(data, Euclidean)).unwrap().scores();
    let via_x = detector.detect_with(&XTree::new(data, Euclidean)).unwrap().scores();
    let via_va = detector.detect_with(&VaFile::new(data, Euclidean)).unwrap().scores();
    let via_ball = detector.detect_with(&BallTree::new(data, Euclidean)).unwrap().scores();
    for id in 0..data.len() {
        for (name, scores) in [
            ("grid", &via_grid),
            ("kdtree", &via_kd),
            ("xtree", &via_x),
            ("vafile", &via_va),
            ("balltree", &via_ball),
        ] {
            assert!(
                (scores[id] - reference[id]).abs() < 1e-9,
                "{name} diverges at {id}: {} vs {}",
                scores[id],
                reference[id]
            );
        }
    }
}

#[test]
fn fig9_outliers_rise_above_both_uniform_clusters() {
    let labeled = fig9(9);
    let index = KdTree::new(&labeled.data, Euclidean);
    let result = LofDetector::with_min_pts(40).unwrap().threads(4).detect_with(&index).unwrap();
    let scores = result.scores();
    for label in [2usize, 3] {
        let ids = labeled.ids_with_label(label);
        let mean: f64 = ids.iter().map(|&i| scores[i]).sum::<f64>() / ids.len() as f64;
        assert!((mean - 1.0).abs() < 0.1, "uniform cluster {label} mean {mean}");
    }
    for &id in &labeled.outlier_ids() {
        assert!(scores[id] > 1.5, "planted outlier {id} scored {}", scores[id]);
    }
}

#[test]
fn highdim_histograms_work_through_the_vafile() {
    let labeled = histograms64(64, 4, 40, 6);
    let index = VaFile::new(&labeled.data, Euclidean);
    let result = LofDetector::with_range(10, 20).unwrap().detect_with(&index).unwrap();
    let ranking = result.ranking();
    let top6: Vec<usize> = ranking.iter().take(6).map(|&(id, _)| id).collect();
    let hits = labeled.outlier_ids().iter().filter(|id| top6.contains(id)).count();
    assert!(hits >= 5, "only {hits} of 6 planted 64-d outliers in the top 6");
}

#[test]
fn duplicates_flow_through_the_whole_pipeline() {
    // A duplicate-heavy dataset must neither crash nor mark duplicate
    // cluster members outlying.
    let mut rows: Vec<[f64; 2]> = Vec::new();
    for _ in 0..20 {
        rows.push([1.0, 1.0]);
        rows.push([2.0, 2.0]);
    }
    rows.push([50.0, 50.0]);
    let data = Dataset::from_rows(&rows).unwrap();
    let result = LofDetector::with_range(3, 10).unwrap().detect(&data).unwrap();
    let scores = result.scores();
    assert!(scores[40] > 1.0 || scores[40].is_infinite());
    assert_eq!(result.ranking()[0].0, 40);
    for (id, &score) in scores.iter().enumerate().take(40) {
        assert!(score <= 1.0 + 1e-9, "duplicate member {id} scored {score}");
    }
}

#[test]
fn aggregates_and_thresholds_compose() {
    let labeled = ds1(7);
    let detector = LofDetector::with_range(10, 25).unwrap();
    let max_res = detector.clone().aggregate(Aggregate::Max).detect(&labeled.data).unwrap();
    let min_res = detector.clone().aggregate(Aggregate::Min).detect(&labeled.data).unwrap();
    let mean_res = detector.aggregate(Aggregate::Mean).detect(&labeled.data).unwrap();
    for id in 0..labeled.len() {
        let (lo, mid, hi) =
            (min_res.score(id).unwrap(), mean_res.score(id).unwrap(), max_res.score(id).unwrap());
        assert!(lo <= mid + 1e-12 && mid <= hi + 1e-12, "id {id}: {lo} {mid} {hi}");
    }
    // The paper's argument for Max: it never under-reports an outlier.
    assert!(max_res.outliers_above(1.5).len() >= min_res.outliers_above(1.5).len());
}

#[test]
fn labeled_dataset_helpers_are_consistent() {
    let labeled = fig9(1);
    let mut total = labeled.outlier_ids().len();
    for label in 0..4 {
        total += labeled.ids_with_label(label).len();
    }
    assert_eq!(total, labeled.len());
    let rep = labeled.representative(1).unwrap();
    assert_eq!(labeled.labels[rep], 1);
    assert_eq!(labeled.labels[labeled.outlier_ids()[0]], LabeledDataset::OUTLIER);
}

#[test]
fn table_reuse_across_detectors() {
    // Materialize once with the widest range, reuse for narrower ranges —
    // the workflow the paper's two-step split enables.
    let labeled = fig8(5);
    let index = KdTree::new(&labeled.data, Euclidean);
    let table = lof::NeighborhoodTable::build(&index, 50).unwrap();
    for (lb, ub) in [(10, 50), (10, 20), (30, 45), (50, 50)] {
        let via_table = LofDetector::with_range(lb, ub).unwrap().detect_from_table(&table).unwrap();
        let direct = LofDetector::with_range(lb, ub).unwrap().detect_with(&index).unwrap();
        assert_eq!(via_table.scores(), direct.scores(), "range {lb}..={ub}");
    }
}

#[test]
fn point_queries_support_scoring_workflows() {
    // k_nearest_point lets applications examine neighborhoods of points
    // that are not part of the dataset (e.g. incoming transactions).
    let labeled = ds1(11);
    let index = KdTree::new(&labeled.data, Euclidean);
    let probe = [305.0, 90.0]; // inside dense C2
    let nn = index.k_nearest_point(&probe, 10).unwrap();
    assert!(nn.len() >= 10);
    assert!(nn[0].dist < 2.0, "C2 is dense around the probe");
    let far_probe = [500.0, 500.0];
    let nn = index.k_nearest_point(&far_probe, 3).unwrap();
    assert!(nn[0].dist > 100.0);
}
