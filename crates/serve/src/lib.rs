//! # lof-serve — the async multi-tenant serving tier
//!
//! `lof-stream`'s original TCP loop is thread-per-connection: fine for a
//! handful of clients, hopeless for thousands. This crate replaces it as
//! the deployable serving layer:
//!
//! * [`sys`] — raw `epoll` (Linux) / `kqueue` (macOS, BSD) readiness
//!   polling via direct syscall declarations — the workspace's offline
//!   dependency policy means no `libc`/`mio`/`tokio`;
//! * [`server`] — one I/O thread multiplexing every connection, a small
//!   worker pool owning the tenant windows, per-connection reply
//!   sequencing, and bounded queues for per-connection backpressure;
//! * [`tenant`] — named windows (**tenants**) created, attached, listed
//!   and dropped over the wire (`TENANT CREATE alpha minpts=5 ...`),
//!   each with its own [`SlidingWindowLof`], configuration, and
//!   [`Quotas`];
//! * [`quota`] — token-bucket event admission, window occupancy caps,
//!   and connection caps, enforced before work is queued;
//! * snapshot/restore — `SNAPSHOT`/`DRAIN` persist every tenant through
//!   `lof_stream::snapshot`'s CRC-framed `LOFW` format; a server
//!   restarted with the same snapshot directory resumes scoring
//!   **bit-identically** (the window restore invariant is
//!   property-tested in `lof-stream`).
//!
//! The wire protocol is a superset of the old loop's: NDJSON events in,
//! typed NDJSON records out, in-band `GET /metrics` and `GET /topn N`,
//! plus the `TENANT`/`SNAPSHOT`/`DRAIN` control commands. Connections
//! start attached to the `default` tenant, so a client of the old
//! single-window server works unchanged.
//!
//! ## Quick start
//!
//! ```no_run
//! use lof_core::Euclidean;
//! use lof_serve::{spawn, ServeConfig, TenantSpec, Quotas};
//! use lof_stream::StreamConfig;
//!
//! let spec = TenantSpec { config: StreamConfig::new(5, 256), quotas: Quotas::default() };
//! let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
//! let handle = spawn(listener, Euclidean, ServeConfig::new(spec, "euclidean")).unwrap();
//! println!("listening on {}", handle.addr());
//! let report = handle.drain().unwrap();
//! println!("{} events served", report.events());
//! ```
//!
//! [`SlidingWindowLof`]: lof_stream::SlidingWindowLof
//! [`Quotas`]: quota::Quotas

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod quota;
pub mod server;
pub mod sys;
pub mod tenant;

pub use quota::{Quotas, TokenBucket};
pub use server::{
    spawn, ServeConfig, ServeError, ServeHandle, ServeReport, DEFAULT_MAX_TENANTS, DEFAULT_QUEUE,
    DEFAULT_TENANT,
};
pub use sys::{Interest, PollEvent, Poller, Waker};
pub use tenant::{TenantShared, TenantSpec};
