//! Readiness polling over raw OS syscalls.
//!
//! The workspace has no `libc`/`mio`/`tokio` (offline dependency policy),
//! so this module declares the handful of syscalls the event loop needs as
//! `extern "C"` items against the platform libc that every Rust binary
//! already links: `epoll` + `eventfd` on Linux, `kqueue` + a self-pipe on
//! macOS / the BSDs. Everything is wrapped behind [`Poller`] / [`Waker`]
//! so the server itself is platform-free.
//!
//! The poller is **level-triggered**: a socket that still has unread bytes
//! (or writable buffer space) keeps showing up, which composes naturally
//! with short per-wakeup read/write budgets — no starvation bookkeeping.

use std::io;
use std::os::fd::AsRawFd;

/// One readiness event, translated to platform-free flags.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the file descriptor was registered with.
    pub token: u64,
    /// Reading would not block (includes a peer close: read returns 0).
    pub readable: bool,
    /// Writing would not block.
    pub writable: bool,
    /// Error or hangup; the owner should read until EOF and close.
    pub hangup: bool,
}

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when readable.
    pub readable: bool,
    /// Wake when writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest { readable: true, writable: false };
    /// Write-only interest.
    pub const WRITE: Interest = Interest { readable: false, writable: true };
    /// Read and write interest.
    pub const BOTH: Interest = Interest { readable: true, writable: true };
    /// Registered but dormant (kept in the set, no wakeups).
    pub const NONE: Interest = Interest { readable: false, writable: false };
}

/// The token the poller's own wake channel is registered under; user
/// registrations must stay below it.
pub const WAKE_TOKEN: u64 = u64::MAX;

#[cfg(target_os = "linux")]
mod imp {
    use super::{Interest, PollEvent, WAKE_TOKEN};
    use std::ffi::{c_int, c_uint, c_void};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0x80000;
    const EFD_CLOEXEC: c_int = 0x80000;
    const EFD_NONBLOCK: c_int = 0x800;

    /// The kernel's `struct epoll_event`. Packed on x86, naturally
    /// aligned elsewhere — this matches the kernel ABI, which packs the
    /// struct only on x86 (`__EPOLL_PACKED`).
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    fn check(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = EPOLLRDHUP;
        if interest.readable {
            bits |= EPOLLIN;
        }
        if interest.writable {
            bits |= EPOLLOUT;
        }
        bits
    }

    /// epoll-backed poller with an `eventfd` wake channel.
    #[derive(Debug)]
    pub struct Poller {
        epfd: OwnedFd,
        wake: Arc<OwnedFd>,
    }

    use std::sync::Arc;

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscalls; ownership of the returned fds is
            // taken immediately (CLOEXEC set atomically at creation).
            let epfd = unsafe {
                let fd = check(epoll_create1(EPOLL_CLOEXEC))?;
                OwnedFd::from_raw_fd(fd)
            };
            let wake = unsafe {
                let fd = check(eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK))?;
                Arc::new(OwnedFd::from_raw_fd(fd))
            };
            let poller = Poller { epfd, wake };
            poller.ctl(EPOLL_CTL_ADD, poller.wake.as_raw_fd(), EPOLLIN, WAKE_TOKEN)?;
            Ok(poller)
        }

        fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent { events, data: token };
            // SAFETY: `ev` outlives the call; DEL ignores the pointer.
            check(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, interest_bits(interest), token)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, interest_bits(interest), token)
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut events = [EpollEvent { events: 0, data: 0 }; 64];
            // SAFETY: the buffer is valid for `len` entries for the call.
            let n = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    timeout_ms as c_int,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in events.iter().take(n as usize) {
                let bits = ev.events;
                let token = ev.data;
                if token == WAKE_TOKEN {
                    self.drain_wake();
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }

        /// Consumes the eventfd counter so level-triggered polling stops
        /// reporting the wake channel.
        fn drain_wake(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: valid 8-byte buffer; the fd is nonblocking, so a
            // spurious call returns EAGAIN and is ignored.
            unsafe {
                let _ = read(self.wake.as_raw_fd(), buf.as_mut_ptr().cast::<c_void>(), 8);
            }
        }

        pub fn waker(&self) -> Waker {
            Waker { wake: Arc::clone(&self.wake) }
        }
    }

    /// Wakes a sleeping [`Poller::wait`] from any thread.
    #[derive(Debug, Clone)]
    pub struct Waker {
        wake: Arc<OwnedFd>,
    }

    impl Waker {
        pub fn wake(&self) {
            let one = 1u64.to_ne_bytes();
            // SAFETY: valid 8-byte buffer. An EAGAIN (counter saturated)
            // still leaves the fd readable, which is all a wake needs.
            unsafe {
                let _ = write(self.wake.as_raw_fd(), one.as_ptr().cast::<c_void>(), 8);
            }
        }
    }
}

#[cfg(any(
    target_os = "macos",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd"
))]
mod imp {
    use super::{Interest, PollEvent, WAKE_TOKEN};
    use std::ffi::{c_int, c_void};
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::ptr;
    use std::sync::Arc;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    /// The platform's `struct kevent` (identical layout on macOS and the
    /// BSDs for the fields we use).
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: isize,
        tv_nsec: isize,
    }

    extern "C" {
        fn kqueue() -> c_int;
        fn kevent(
            kq: c_int,
            changelist: *const KEvent,
            nchanges: c_int,
            eventlist: *mut KEvent,
            nevents: c_int,
            timeout: *const Timespec,
        ) -> c_int;
        fn pipe(fds: *mut c_int) -> c_int;
        fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    const F_SETFL: c_int = 4;
    const O_NONBLOCK: c_int = 0x0004;

    /// kqueue-backed poller; the wake channel is a nonblocking pipe.
    #[derive(Debug)]
    pub struct Poller {
        kq: OwnedFd,
        wake_rx: OwnedFd,
        wake_tx: Arc<OwnedFd>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscalls; fds are owned immediately.
            let kq = unsafe {
                let fd = kqueue();
                if fd < 0 {
                    return Err(io::Error::last_os_error());
                }
                OwnedFd::from_raw_fd(fd)
            };
            let (wake_rx, wake_tx) = unsafe {
                let mut fds = [0 as c_int; 2];
                if pipe(fds.as_mut_ptr()) < 0 {
                    return Err(io::Error::last_os_error());
                }
                let _ = fcntl(fds[0], F_SETFL, O_NONBLOCK);
                let _ = fcntl(fds[1], F_SETFL, O_NONBLOCK);
                (OwnedFd::from_raw_fd(fds[0]), Arc::new(OwnedFd::from_raw_fd(fds[1])))
            };
            let poller = Poller { kq, wake_rx, wake_tx };
            poller.change(poller.wake_rx.as_raw_fd(), EVFILT_READ, EV_ADD, WAKE_TOKEN)?;
            Ok(poller)
        }

        fn change(&self, fd: RawFd, filter: i16, flags: u16, token: u64) -> io::Result<()> {
            let change = KEvent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as *mut c_void,
            };
            // SAFETY: the change list is valid for the call.
            let rc =
                unsafe { kevent(self.kq.as_raw_fd(), &change, 1, ptr::null_mut(), 0, ptr::null()) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn apply(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            // kqueue keys registrations by (fd, filter): add or delete
            // each filter to match the requested interest. Deleting an
            // absent filter returns ENOENT, which is fine.
            if interest.readable {
                self.change(fd, EVFILT_READ, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_READ, EV_DELETE, token);
            }
            if interest.writable {
                self.change(fd, EVFILT_WRITE, EV_ADD, token)?;
            } else {
                let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, token);
            }
            Ok(())
        }

        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.apply(fd, token, interest)
        }

        pub fn remove(&self, fd: RawFd) -> io::Result<()> {
            let _ = self.change(fd, EVFILT_READ, EV_DELETE, 0);
            let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, 0);
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
            out.clear();
            let mut events = [KEvent {
                ident: 0,
                filter: 0,
                flags: 0,
                fflags: 0,
                data: 0,
                udata: ptr::null_mut(),
            }; 64];
            let ts;
            let ts_ptr = if timeout_ms < 0 {
                ptr::null()
            } else {
                ts = Timespec {
                    tv_sec: (timeout_ms / 1000) as isize,
                    tv_nsec: (timeout_ms % 1000) as isize * 1_000_000,
                };
                &ts as *const Timespec
            };
            // SAFETY: the event buffer is valid for `len` entries.
            let n = unsafe {
                kevent(
                    self.kq.as_raw_fd(),
                    ptr::null(),
                    0,
                    events.as_mut_ptr(),
                    events.len() as c_int,
                    ts_ptr,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in events.iter().take(n as usize) {
                let token = ev.udata as u64;
                if token == WAKE_TOKEN {
                    let mut buf = [0u8; 64];
                    // SAFETY: valid buffer, nonblocking fd.
                    unsafe {
                        let _ =
                            read(self.wake_rx.as_raw_fd(), buf.as_mut_ptr().cast::<c_void>(), 64);
                    }
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: ev.filter == EVFILT_READ,
                    writable: ev.filter == EVFILT_WRITE,
                    hangup: ev.flags & (EV_EOF | EV_ERROR) != 0,
                });
            }
            Ok(())
        }

        pub fn waker(&self) -> Waker {
            Waker { wake: Arc::clone(&self.wake_tx) }
        }
    }

    /// Wakes a sleeping [`Poller::wait`] from any thread.
    #[derive(Debug, Clone)]
    pub struct Waker {
        wake: Arc<OwnedFd>,
    }

    impl Waker {
        pub fn wake(&self) {
            // SAFETY: valid 1-byte buffer; a full pipe still wakes.
            unsafe {
                let _ = write(self.wake.as_raw_fd(), [1u8].as_ptr().cast::<c_void>(), 1);
            }
        }
    }
}

#[cfg(not(any(
    target_os = "linux",
    target_os = "macos",
    target_os = "freebsd",
    target_os = "netbsd",
    target_os = "openbsd"
)))]
compile_error!("lof-serve needs epoll (Linux) or kqueue (macOS/BSD)");

/// Readiness poller over the platform's native facility (`epoll` on
/// Linux, `kqueue` on macOS/BSD). Register file descriptors under a
/// `u64` token (below [`WAKE_TOKEN`]), then [`wait`](Poller::wait) for
/// [`PollEvent`]s.
#[derive(Debug)]
pub struct Poller {
    inner: imp::Poller,
}

impl Poller {
    /// Creates a poller with its internal wake channel registered.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures (fd exhaustion, ...).
    pub fn new() -> io::Result<Poller> {
        Ok(Poller { inner: imp::Poller::new()? })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures (e.g. the fd is already registered).
    pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.add(fd.as_raw_fd(), token, interest)
    }

    /// Re-arms an existing registration with a new interest set.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures (e.g. the fd was never registered).
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.inner.modify(fd.as_raw_fd(), token, interest)
    }

    /// Removes a registration. Safe to call right before closing the fd.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures.
    pub fn remove(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.inner.remove(fd.as_raw_fd())
    }

    /// Blocks until readiness, a wake, or the timeout (`-1` = forever;
    /// milliseconds otherwise), filling `out` with ready registrations.
    /// Wake-channel events are consumed internally and never surface.
    ///
    /// # Errors
    ///
    /// Propagates syscall failures; `EINTR` is swallowed (returns with
    /// `out` empty).
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        self.inner.wait(out, timeout_ms)
    }

    /// A clonable, thread-safe handle that interrupts [`wait`](Poller::wait).
    pub fn waker(&self) -> Waker {
        Waker { inner: self.inner.waker() }
    }
}

/// Wakes the poller from any thread (worker → I/O thread notifications).
#[derive(Debug, Clone)]
pub struct Waker {
    inner: imp::Waker,
}

impl Waker {
    /// Interrupts a sleeping [`Poller::wait`]; a no-op if none is sleeping
    /// (the next `wait` returns immediately instead).
    pub fn wake(&self) {
        self.inner.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_readability_and_wake() {
        let poller = Poller::new().expect("poller");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        poller.add(&listener, 7, Interest::READ).expect("add listener");

        let mut events = Vec::new();
        // Nothing pending: a zero timeout returns empty.
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty());

        // A connection makes the listener readable.
        let mut client = TcpStream::connect(addr).expect("connect");
        poller.wait(&mut events, 2_000).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let (mut server_side, _) = listener.accept().expect("accept");
        poller.add(&server_side, 8, Interest::READ).expect("add conn");
        client.write_all(b"ping\n").expect("write");
        poller.wait(&mut events, 2_000).expect("wait");
        assert!(events.iter().any(|e| e.token == 8 && e.readable));
        let mut buf = [0u8; 16];
        let n = server_side.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping\n");

        // Interest can be narrowed to dormant and re-armed.
        poller.modify(&server_side, 8, Interest::NONE).expect("disarm");
        client.write_all(b"x\n").expect("write");
        poller.wait(&mut events, 50).expect("wait");
        assert!(!events.iter().any(|e| e.token == 8));
        poller.modify(&server_side, 8, Interest::READ).expect("rearm");
        poller.wait(&mut events, 2_000).expect("wait");
        assert!(events.iter().any(|e| e.token == 8 && e.readable));
    }

    #[test]
    fn waker_interrupts_a_sleeping_wait() {
        let poller = Poller::new().expect("poller");
        let waker = poller.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        // Without the wake this would sleep the full 10 seconds.
        poller.wait(&mut events, 10_000).expect("wait");
        assert!(start.elapsed() < std::time::Duration::from_secs(5));
        assert!(events.is_empty(), "wake events are internal");
        handle.join().expect("join");
    }
}
