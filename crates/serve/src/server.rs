//! The multi-tenant event-loop server.
//!
//! One I/O thread owns a [`Poller`], the listener, and every connection;
//! `N` worker threads own the tenant windows (each tenant lives on
//! exactly one worker, assigned round-robin at creation). The I/O thread
//! frames lines, answers control commands from its tenant directory, and
//! routes scoring work to the owning worker over a bounded queue; workers
//! push replies into a shared outbox and wake the poller.
//!
//! **Reply ordering.** Every reply-producing line gets a per-connection
//! sequence number (`rseq`) at classification time. Replies — whether
//! produced inline on the I/O thread (control commands) or by a worker
//! (scores, metrics, top-n) — are buffered per connection and written
//! strictly in `rseq` order, so a client always reads answers in the
//! order it asked, even though control and scoring answers are produced
//! on different threads.
//!
//! **Backpressure.** Worker queues are bounded. When a queue is full the
//! event is *parked* (at most one per connection), the connection's read
//! interest is dropped, and TCP backpressure propagates to that client
//! alone; other tenants' connections keep flowing. Nothing is silently
//! dropped — only the rate-limit quota sheds events, and those get an
//! in-band error record.
//!
//! **Drain.** `DRAIN` (wire) or [`ServeHandle::drain`] stops accepting,
//! stops reading, cancels parked work with in-band errors, lets every
//! queued job finish, snapshots every tenant (when a snapshot directory
//! is configured), acknowledges the drainer, flushes every connection,
//! and exits. A server restarted with the same `--snapshot-dir` restores
//! every tenant and resumes scoring bit-identically.

use crate::quota::{Quotas, TokenBucket};
use crate::sys::{Interest, PollEvent, Poller, Waker};
use crate::tenant::{TenantShared, TenantSpec};
use lof_core::Metric;
use lof_obs::{labeled, Counter, Gauge, Histogram, MetricsRegistry};
use lof_stream::wire::{
    error_record, metrics_record, ok_record, parse_control, parse_event, parse_metrics_request,
    parse_topn_request, snapshot_record, stream_record, tenants_record, topn_record,
    ControlCommand, MetricsFormat, ParsedLine, TenantInfo,
};
use lof_stream::{EvictionPolicy, Line, LineBuffer, SlidingWindowLof, StreamStats, WindowSnapshot};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound of each worker's job queue.
pub const DEFAULT_QUEUE: usize = 1024;

/// Default cap on live tenants.
pub const DEFAULT_MAX_TENANTS: usize = 64;

/// A connection whose unsent reply bytes exceed this is a slow consumer
/// and is disconnected rather than allowed to balloon server memory.
const MAX_OUTBUF: usize = 8 << 20;

/// The poller token of the listening socket; connections count up from 1.
const LISTENER_TOKEN: u64 = 0;

/// Pseudo connection for replies with no destination (programmatic drain).
const NO_CONN: u64 = u64::MAX;

/// The name of the tenant connections are attached to at accept.
pub const DEFAULT_TENANT: &str = "default";

/// Configuration of [`spawn`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads (tenants are sharded across them); at least 1.
    pub workers: usize,
    /// Per-worker job queue bound (backpressure depth).
    pub queue: usize,
    /// Maximum accepted line length in bytes (0 = the
    /// [`LineBuffer`] default).
    pub max_line: usize,
    /// Cap on concurrently live tenants.
    pub max_tenants: usize,
    /// Where snapshots are written (and restored from at startup).
    /// `None` disables `SNAPSHOT`/drain persistence.
    pub snapshot_dir: Option<PathBuf>,
    /// Window configuration and quotas of the auto-created `default`
    /// tenant, and the base every `TENANT CREATE` starts from.
    pub default_spec: TenantSpec,
    /// Metric identity tag stamped into snapshots (e.g. `"euclidean"`).
    pub metric_tag: String,
}

impl ServeConfig {
    /// A config with library defaults: workers scaled to the machine
    /// (capped at 4), queue [`DEFAULT_QUEUE`], no snapshot directory.
    pub fn new(default_spec: TenantSpec, metric_tag: impl Into<String>) -> Self {
        let workers =
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(4);
        ServeConfig {
            workers,
            queue: DEFAULT_QUEUE,
            max_line: 0,
            max_tenants: DEFAULT_MAX_TENANTS,
            snapshot_dir: None,
            default_spec,
            metric_tag: metric_tag.into(),
        }
    }
}

/// Why the server stopped abnormally.
#[derive(Debug)]
pub enum ServeError {
    /// The I/O thread failed with a system error.
    Io(io::Error),
    /// The I/O thread panicked (a bug; the payload is preserved).
    IoPanicked(String),
    /// A worker thread panicked (a bug; the payload is preserved).
    WorkerPanicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O failed: {e}"),
            ServeError::IoPanicked(m) => write!(f, "serve I/O thread panicked: {m}"),
            ServeError::WorkerPanicked(m) => write!(f, "serve worker panicked: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Per-tenant lifetime stats returned by [`ServeHandle::wait`] /
/// [`ServeHandle::drain`], sorted by tenant name. Dropped tenants are
/// included with the stats they retired with.
#[derive(Debug, Default)]
pub struct ServeReport {
    /// `(tenant, stats)` pairs, sorted by name.
    pub tenants: Vec<(String, StreamStats)>,
}

impl ServeReport {
    /// Total events across all tenants.
    pub fn events(&self) -> u64 {
        self.tenants.iter().map(|(_, s)| s.events).sum()
    }

    /// Total scored events across all tenants.
    pub fn scored(&self) -> u64 {
        self.tenants.iter().map(|(_, s)| s.scored).sum()
    }

    /// Total alerts across all tenants.
    pub fn alerts(&self) -> u64 {
        self.tenants.iter().map(|(_, s)| s.alerts).sum()
    }

    /// Total evictions across all tenants.
    pub fn evictions(&self) -> u64 {
        self.tenants.iter().map(|(_, s)| s.evictions).sum()
    }
}

/// Handle to a running server. Dropping it does **not** stop the server;
/// call [`drain`](Self::drain) (or send `DRAIN` over the wire and
/// [`wait`](Self::wait)).
#[derive(Debug)]
pub struct ServeHandle {
    addr: std::net::SocketAddr,
    registry: Arc<MetricsRegistry>,
    io: Option<JoinHandle<io::Result<()>>>,
    workers: Vec<JoinHandle<Vec<(String, StreamStats)>>>,
    drain_flag: Arc<AtomicBool>,
    waker: Waker,
}

impl ServeHandle {
    /// The bound address (resolves `:0` for tests).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The server's metrics registry (shared across all tenants).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Blocks until the server drains (via a wire `DRAIN` command) and
    /// returns the per-tenant report.
    ///
    /// # Errors
    ///
    /// [`ServeError`] if the I/O thread failed or any thread panicked.
    pub fn wait(mut self) -> Result<ServeReport, ServeError> {
        self.join()
    }

    /// Requests a graceful drain (stop accepting, finish queued jobs,
    /// snapshot, flush, exit) and blocks until it completes.
    ///
    /// # Errors
    ///
    /// [`ServeError`] if the I/O thread failed or any thread panicked.
    pub fn drain(mut self) -> Result<ServeReport, ServeError> {
        self.drain_flag.store(true, Ordering::Relaxed);
        self.waker.wake();
        self.join()
    }

    fn join(&mut self) -> Result<ServeReport, ServeError> {
        let io = self.io.take().expect("ServeHandle joined twice");
        let io_result = io.join().map_err(|p| ServeError::IoPanicked(panic_message(p)))?;
        let mut tenants = Vec::new();
        for worker in self.workers.drain(..) {
            let stats = worker.join().map_err(|p| ServeError::WorkerPanicked(panic_message(p)))?;
            tenants.extend(stats);
        }
        io_result.map_err(ServeError::Io)?;
        tenants.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(ServeReport { tenants })
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_owned()
    }
}

/// The server-level counters (the `stream.*` family stays per-window and
/// private; these are the serving tier's own, shared registry).
#[derive(Debug)]
struct ServeMetrics {
    events_in: Arc<Counter>,
    score_records: Arc<Counter>,
    parse_errors: Arc<Counter>,
    push_errors: Arc<Counter>,
    error_records: Arc<Counter>,
    quota_drops: Arc<Counter>,
    oversized_lines: Arc<Counter>,
    connections: Arc<Counter>,
    open_connections: Arc<Gauge>,
    metrics_requests: Arc<Counter>,
    topn_requests: Arc<Counter>,
    control_commands: Arc<Counter>,
    snapshots: Arc<Counter>,
    tenants: Arc<Gauge>,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            events_in: registry.counter("serve.events_in"),
            score_records: registry.counter("serve.score_records"),
            parse_errors: registry.counter("serve.parse_errors"),
            push_errors: registry.counter("serve.push_errors"),
            error_records: registry.counter("serve.error_records"),
            quota_drops: registry.counter("serve.quota_drops"),
            oversized_lines: registry.counter("serve.oversized_lines"),
            connections: registry.counter("serve.connections"),
            open_connections: registry.gauge("serve.open_connections"),
            metrics_requests: registry.counter("serve.metrics_requests"),
            topn_requests: registry.counter("serve.topn_requests"),
            control_commands: registry.counter("serve.control_commands"),
            snapshots: registry.counter("serve.snapshots"),
            tenants: registry.gauge("serve.tenants"),
        }
    }
}

/// Work shipped from the I/O thread to a worker. Tenant windows travel
/// boxed: the enum is queue currency and should stay small.
enum Job<M: Metric> {
    AddTenant {
        name: String,
        window: Box<SlidingWindowLof<M>>,
        shared: Arc<TenantShared>,
        quotas: Quotas,
    },
    RemoveTenant {
        name: String,
    },
    Event {
        tenant: String,
        point: Vec<f64>,
        conn: u64,
        rseq: u64,
    },
    Metrics {
        format: MetricsFormat,
        conn: u64,
        rseq: u64,
    },
    TopN {
        tenant: String,
        n: usize,
        conn: u64,
        rseq: u64,
    },
    SnapshotOne {
        tenant: String,
        conn: u64,
        rseq: u64,
    },
    SnapshotMany {
        tenants: Vec<String>,
        agg: Arc<SnapshotAgg>,
    },
    Drain,
}

impl<M: Metric> Job<M> {
    /// The `(conn, rseq)` a cancelled job owes a reply to, if any.
    fn reply_target(&self) -> Option<(u64, u64)> {
        match self {
            Job::Event { conn, rseq, .. }
            | Job::Metrics { conn, rseq, .. }
            | Job::TopN { conn, rseq, .. }
            | Job::SnapshotOne { conn, rseq, .. } => Some((*conn, *rseq)),
            _ => None,
        }
    }
}

/// Aggregation cell for a fanned-out `SNAPSHOT` (all tenants): the last
/// worker to finish composes the single reply.
struct SnapshotAgg {
    remaining: AtomicUsize,
    names: Mutex<Vec<String>>,
    errors: Mutex<Vec<String>>,
    conn: u64,
    rseq: u64,
}

/// Worker → I/O thread notifications.
enum Note {
    Reply { conn: u64, rseq: u64, text: String },
    WorkerDone,
}

/// The shared outbox: workers push, the I/O thread drains on wake.
struct Outbox {
    notes: Mutex<VecDeque<Note>>,
    waker: Waker,
}

impl Outbox {
    fn reply(&self, conn: u64, rseq: u64, text: String) {
        if conn == NO_CONN {
            return;
        }
        self.notes.lock().unwrap().push_back(Note::Reply { conn, rseq, text });
        self.waker.wake();
    }

    fn worker_done(&self) {
        self.notes.lock().unwrap().push_back(Note::WorkerDone);
        self.waker.wake();
    }
}

/// One connection's I/O-thread state.
struct Conn<M: Metric> {
    stream: TcpStream,
    lines: LineBuffer,
    /// The attached tenant (None after an attach failure at accept).
    tenant: Option<String>,
    /// Next reply sequence number to assign.
    next_rseq: u64,
    /// Next reply sequence number to write out.
    next_flush: u64,
    /// Out-of-order replies waiting for their turn.
    pending: BTreeMap<u64, String>,
    outbuf: Vec<u8>,
    outpos: usize,
    /// An admitted event whose worker queue was full; read interest is
    /// dropped until it submits (per-connection backpressure).
    parked: Option<(usize, Job<M>)>,
    interest: Interest,
    peer_closed: bool,
    kill: bool,
}

impl<M: Metric> Conn<M> {
    fn new(stream: TcpStream, tenant: Option<String>, max_line: usize) -> Self {
        Conn {
            stream,
            lines: LineBuffer::new(max_line),
            tenant,
            next_rseq: 0,
            next_flush: 0,
            pending: BTreeMap::new(),
            outbuf: Vec::new(),
            outpos: 0,
            parked: None,
            interest: Interest::NONE,
            peer_closed: false,
            kill: false,
        }
    }

    fn take_rseq(&mut self) -> u64 {
        let rseq = self.next_rseq;
        self.next_rseq += 1;
        rseq
    }

    /// All assigned replies flushed, nothing parked, nothing buffered.
    fn quiescent(&self) -> bool {
        self.next_flush == self.next_rseq
            && self.outpos >= self.outbuf.len()
            && self.parked.is_none()
    }
}

/// Queues a reply and promotes every in-order reply into the write
/// buffer. A free function (not a method on the server) so call sites
/// that hold the connection outside the map can also use it.
fn queue_reply<M: Metric>(conn: &mut Conn<M>, rseq: u64, text: String) {
    conn.pending.insert(rseq, text);
    while let Some(ready) = conn.pending.remove(&conn.next_flush) {
        conn.outbuf.extend_from_slice(ready.as_bytes());
        conn.outbuf.push(b'\n');
        conn.next_flush += 1;
    }
}

/// Writes as much of the buffer as the socket takes without blocking.
fn flush_conn<M: Metric>(conn: &mut Conn<M>) {
    while conn.outpos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.outpos..]) {
            Ok(0) => {
                conn.kill = true;
                return;
            }
            Ok(n) => conn.outpos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.kill = true;
                return;
            }
        }
    }
    conn.outbuf.clear();
    conn.outpos = 0;
}

/// One tenant's directory entry (I/O thread private — no locks).
struct Tenant {
    worker: usize,
    shared: Arc<TenantShared>,
    quotas: Quotas,
    bucket: Option<TokenBucket>,
    connections: usize,
    events_in: Arc<Counter>,
    quota_drops: Arc<Counter>,
}

/// The I/O thread's whole world.
struct Io<M: Metric + Clone> {
    poller: Poller,
    listener: TcpListener,
    conns: HashMap<u64, Conn<M>>,
    dir: HashMap<String, Tenant>,
    workers: Vec<SyncSender<Job<M>>>,
    next_worker: usize,
    next_token: u64,
    metrics: Arc<ServeMetrics>,
    registry: Arc<MetricsRegistry>,
    metric: M,
    config: ServeConfig,
    draining: bool,
    drain_reply: Option<(u64, u64)>,
    workers_done: usize,
    outbox: Arc<Outbox>,
    drain_flag: Arc<AtomicBool>,
}

impl<M: Metric + Clone> Io<M> {
    fn run(mut self) -> io::Result<()> {
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            let timeout = if self.conns.values().any(|c| c.parked.is_some()) { 2 } else { -1 };
            self.poller.wait(&mut events, timeout)?;
            if self.drain_flag.load(Ordering::Relaxed) && !self.draining {
                self.start_drain(NO_CONN, 0);
            }
            self.drain_outbox();
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    if !self.draining {
                        self.accept_ready();
                    }
                    continue;
                }
                if ev.readable {
                    self.handle_readable(ev.token);
                }
                if ev.hangup {
                    if let Some(conn) = self.conns.get_mut(&ev.token) {
                        conn.peer_closed = true;
                    }
                }
            }
            self.retry_parked();
            self.sweep();
            if self.draining && self.workers_done == self.workers.len() {
                return self.finish_drain();
            }
        }
    }

    // ---- tenant lifecycle -------------------------------------------

    /// Restores tenants from the snapshot directory and guarantees the
    /// `default` tenant exists. Runs before the I/O thread starts;
    /// workers are already consuming, so blocking sends are safe.
    fn bootstrap_tenants(&mut self) -> io::Result<()> {
        let mut restored: Vec<(String, WindowSnapshot)> = Vec::new();
        if let Some(dir) = self.config.snapshot_dir.clone() {
            if dir.is_dir() {
                restored = read_snapshot_dir(&dir)?;
            } else {
                std::fs::create_dir_all(&dir)?;
            }
        }
        for (name, snap) in restored {
            let window =
                SlidingWindowLof::restore(&snap, self.metric.clone(), &self.config.metric_tag)
                    .map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("cannot restore tenant '{name}': {e}"),
                        )
                    })?;
            let quotas = TenantSpec::quotas_from_snapshot(&snap);
            self.add_tenant(name, window, quotas);
        }
        if !self.dir.contains_key(DEFAULT_TENANT) {
            let spec = self.config.default_spec.clone();
            let window = SlidingWindowLof::new(spec.config, self.metric.clone()).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("invalid default window configuration: {e}"),
                )
            })?;
            self.add_tenant(DEFAULT_TENANT.to_owned(), window, spec.quotas);
        }
        Ok(())
    }

    /// Registers a tenant in the directory and ships its window to the
    /// next worker (round-robin).
    fn add_tenant(&mut self, name: String, window: SlidingWindowLof<M>, quotas: Quotas) {
        let worker = self.next_worker % self.workers.len();
        self.next_worker += 1;
        let shared = Arc::new(TenantShared::default());
        shared.publish(window.len(), window.stats().events, window.is_warming_up());
        let entry = Tenant {
            worker,
            shared: Arc::clone(&shared),
            quotas,
            bucket: quotas.max_events_per_sec.map(TokenBucket::new),
            connections: 0,
            events_in: self.registry.counter(&labeled("serve.events_in", "tenant", &name)),
            quota_drops: self.registry.counter(&labeled("serve.quota_drops", "tenant", &name)),
        };
        self.dir.insert(name.clone(), entry);
        self.metrics.tenants.set(self.dir.len() as f64);
        let _ = self.workers[worker].send(Job::AddTenant {
            name,
            window: Box::new(window),
            shared,
            quotas,
        });
    }

    // ---- connection lifecycle ---------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => self.admit_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.next_token;
        self.next_token += 1;
        // Auto-attach to the default tenant (old single-window protocol:
        // clients that only ever send events just work).
        let tenant = match self.dir.get_mut(DEFAULT_TENANT) {
            Some(t) if t.quotas.max_conns.is_none_or(|m| t.connections < m) => {
                t.connections += 1;
                Some(DEFAULT_TENANT.to_owned())
            }
            _ => None,
        };
        let mut conn = Conn::new(stream, tenant.clone(), self.config.max_line);
        if tenant.is_none() {
            let rseq = conn.take_rseq();
            self.metrics.error_records.inc();
            queue_reply(
                &mut conn,
                rseq,
                error_record(
                    "tenant 'default' connection limit reached; TENANT ATTACH another tenant",
                ),
            );
        }
        if self.poller.add(&conn.stream, token, Interest::READ).is_err() {
            self.detach(&conn);
            return;
        }
        conn.interest = Interest::READ;
        self.metrics.connections.inc();
        self.conns.insert(token, conn);
        self.metrics.open_connections.set(self.conns.len() as f64);
    }

    /// Releases a connection's tenant attachment count.
    fn detach(&mut self, conn: &Conn<M>) {
        if let Some(name) = &conn.tenant {
            if let Some(t) = self.dir.get_mut(name) {
                t.connections = t.connections.saturating_sub(1);
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.remove(&conn.stream);
            self.detach(&conn);
        }
        self.metrics.open_connections.set(self.conns.len() as f64);
    }

    // ---- the read path ----------------------------------------------

    fn handle_readable(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else { return };
        if !self.draining {
            let mut chunk = [0u8; 8192];
            // Bound the work per wakeup so one firehose connection cannot
            // starve the rest; level-triggered polling re-reports the rest.
            let mut budget = 32;
            while budget > 0 && conn.parked.is_none() && !conn.kill && !conn.peer_closed {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => conn.peer_closed = true,
                    Ok(n) => {
                        conn.lines.push(&chunk[..n]);
                        self.process_lines(token, &mut conn);
                        budget -= 1;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => conn.kill = true,
                }
            }
        }
        self.conns.insert(token, conn);
    }

    fn process_lines(&mut self, token: u64, conn: &mut Conn<M>) {
        while conn.parked.is_none() && !conn.kill {
            match conn.lines.next_line() {
                None => break,
                Some(Line::Oversized { limit }) => {
                    self.metrics.oversized_lines.inc();
                    self.metrics.parse_errors.inc();
                    self.metrics.error_records.inc();
                    let rseq = conn.take_rseq();
                    queue_reply(
                        conn,
                        rseq,
                        error_record(&format!("line exceeds the {limit}-byte limit")),
                    );
                }
                Some(Line::Complete(line)) => self.handle_line(token, conn, &line),
            }
        }
    }

    fn handle_line(&mut self, token: u64, conn: &mut Conn<M>, line: &str) {
        if let Some(format) = parse_metrics_request(line) {
            let rseq = conn.take_rseq();
            self.route_metrics(token, conn, rseq, format);
            return;
        }
        if let Some(count) = parse_topn_request(line) {
            let rseq = conn.take_rseq();
            match count {
                Some(n) => self.route_topn(token, conn, rseq, n),
                None => {
                    self.metrics.parse_errors.inc();
                    self.metrics.error_records.inc();
                    queue_reply(conn, rseq, error_record("topn request needs a count: /topn N"));
                }
            }
            return;
        }
        if let Some(result) = parse_control(line) {
            self.metrics.control_commands.inc();
            let rseq = conn.take_rseq();
            match result {
                Ok(command) => self.execute_control(token, conn, rseq, command),
                Err(message) => {
                    self.metrics.parse_errors.inc();
                    self.metrics.error_records.inc();
                    queue_reply(conn, rseq, error_record(&message));
                }
            }
            return;
        }
        match parse_event(line) {
            Ok(ParsedLine::Empty) => {}
            Ok(ParsedLine::Point(point)) => self.admit_event(token, conn, point),
            Err(message) => {
                self.metrics.parse_errors.inc();
                self.metrics.error_records.inc();
                let rseq = conn.take_rseq();
                queue_reply(conn, rseq, error_record(&message));
            }
        }
    }

    /// Admission control for one event: tenant attached → rate quota →
    /// queue to the owning worker (or park on a full queue).
    fn admit_event(&mut self, token: u64, conn: &mut Conn<M>, point: Vec<f64>) {
        let rseq = conn.take_rseq();
        if self.draining {
            self.metrics.error_records.inc();
            queue_reply(conn, rseq, error_record("server is draining"));
            return;
        }
        let Some(name) = conn.tenant.clone() else {
            self.metrics.error_records.inc();
            queue_reply(conn, rseq, error_record("no tenant attached (use TENANT ATTACH <name>)"));
            return;
        };
        let Some(tenant) = self.dir.get_mut(&name) else {
            self.metrics.error_records.inc();
            queue_reply(conn, rseq, error_record(&format!("tenant '{name}' no longer exists")));
            return;
        };
        if let Some(bucket) = &mut tenant.bucket {
            if !bucket.admit() {
                self.metrics.quota_drops.inc();
                self.metrics.error_records.inc();
                tenant.quota_drops.inc();
                queue_reply(
                    conn,
                    rseq,
                    error_record(&format!(
                        "tenant '{name}' rate limit exceeded ({} events/sec)",
                        bucket.rate()
                    )),
                );
                return;
            }
        }
        self.metrics.events_in.inc();
        tenant.events_in.inc();
        let worker = tenant.worker;
        let job = Job::Event { tenant: name, point, conn: token, rseq };
        self.submit(conn, worker, job);
    }

    /// Queues a job to a worker; a full queue parks it on the connection.
    fn submit(&mut self, conn: &mut Conn<M>, worker: usize, job: Job<M>) {
        match self.workers[worker].try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => conn.parked = Some((worker, job)),
            Err(TrySendError::Disconnected(job)) => {
                // A dead worker without a drain is a bug upstream; fail
                // the request loudly instead of hanging the client.
                if let Some((_, rseq)) = job.reply_target() {
                    self.metrics.error_records.inc();
                    queue_reply(conn, rseq, error_record("worker unavailable"));
                }
            }
        }
    }

    fn retry_parked(&mut self) {
        let parked: Vec<u64> =
            self.conns.iter().filter(|(_, c)| c.parked.is_some()).map(|(&t, _)| t).collect();
        for token in parked {
            let Some(mut conn) = self.conns.remove(&token) else { continue };
            if let Some((worker, job)) = conn.parked.take() {
                match self.workers[worker].try_send(job) {
                    Ok(()) => self.process_lines(token, &mut conn),
                    Err(TrySendError::Full(job)) => conn.parked = Some((worker, job)),
                    Err(TrySendError::Disconnected(job)) => {
                        if let Some((_, rseq)) = job.reply_target() {
                            self.metrics.error_records.inc();
                            queue_reply(&mut conn, rseq, error_record("worker unavailable"));
                        }
                    }
                }
            }
            self.conns.insert(token, conn);
        }
    }

    // ---- in-band requests -------------------------------------------

    fn route_metrics(&mut self, token: u64, conn: &mut Conn<M>, rseq: u64, format: MetricsFormat) {
        // Route through the tenant's worker for per-connection causality
        // (a metrics request after N events sees all N applied). During a
        // drain (or with no tenant) answer inline from the registry.
        match conn.tenant.as_ref().and_then(|n| self.dir.get(n)) {
            Some(tenant) if !self.draining => {
                let worker = tenant.worker;
                self.submit(conn, worker, Job::Metrics { format, conn: token, rseq });
            }
            _ => {
                self.metrics.metrics_requests.inc();
                queue_reply(conn, rseq, render_metrics(&self.registry, format));
            }
        }
    }

    fn route_topn(&mut self, token: u64, conn: &mut Conn<M>, rseq: u64, n: usize) {
        if self.draining {
            self.metrics.error_records.inc();
            queue_reply(conn, rseq, error_record("server is draining"));
            return;
        }
        let Some(name) = conn.tenant.clone() else {
            self.metrics.error_records.inc();
            queue_reply(conn, rseq, error_record("no tenant attached (use TENANT ATTACH <name>)"));
            return;
        };
        let Some(tenant) = self.dir.get(&name) else {
            self.metrics.error_records.inc();
            queue_reply(conn, rseq, error_record(&format!("tenant '{name}' no longer exists")));
            return;
        };
        let worker = tenant.worker;
        self.submit(conn, worker, Job::TopN { tenant: name, n, conn: token, rseq });
    }

    // ---- control commands -------------------------------------------

    fn execute_control(&mut self, token: u64, conn: &mut Conn<M>, rseq: u64, cmd: ControlCommand) {
        if self.draining && !matches!(cmd, ControlCommand::TenantList) {
            self.metrics.error_records.inc();
            queue_reply(conn, rseq, error_record("server is draining"));
            return;
        }
        match cmd {
            ControlCommand::TenantCreate { name, params } => {
                self.tenant_create(conn, rseq, name, &params);
            }
            ControlCommand::TenantAttach { name } => self.tenant_attach(conn, rseq, name),
            ControlCommand::TenantList => self.tenant_list(conn, rseq),
            ControlCommand::TenantDrop { name } => self.tenant_drop(conn, rseq, &name),
            ControlCommand::Snapshot { name } => self.snapshot(token, conn, rseq, name),
            ControlCommand::Drain => self.start_drain(token, rseq),
        }
    }

    fn reply_error(&self, conn: &mut Conn<M>, rseq: u64, message: &str) {
        self.metrics.error_records.inc();
        queue_reply(conn, rseq, error_record(message));
    }

    fn tenant_create(
        &mut self,
        conn: &mut Conn<M>,
        rseq: u64,
        name: String,
        params: &[(String, String)],
    ) {
        if self.dir.contains_key(&name) {
            return self.reply_error(conn, rseq, &format!("tenant '{name}' already exists"));
        }
        if self.dir.len() >= self.config.max_tenants {
            return self.reply_error(
                conn,
                rseq,
                &format!("tenant limit reached ({} live tenants)", self.dir.len()),
            );
        }
        let spec = match TenantSpec::from_params(
            &self.config.default_spec.config,
            self.config.default_spec.quotas,
            params,
        ) {
            Ok(spec) => spec,
            Err(message) => return self.reply_error(conn, rseq, &message),
        };
        let window = match SlidingWindowLof::new(spec.config, self.metric.clone()) {
            Ok(window) => window,
            Err(e) => return self.reply_error(conn, rseq, &e.to_string()),
        };
        self.add_tenant(name.clone(), window, spec.quotas);
        queue_reply(conn, rseq, ok_record("tenant.create", Some(&name)));
    }

    fn tenant_attach(&mut self, conn: &mut Conn<M>, rseq: u64, name: String) {
        let Some(tenant) = self.dir.get_mut(&name) else {
            return self.reply_error(conn, rseq, &format!("unknown tenant '{name}'"));
        };
        if conn.tenant.as_deref() != Some(name.as_str()) {
            if tenant.quotas.max_conns.is_some_and(|m| tenant.connections >= m) {
                let max = tenant.quotas.max_conns.unwrap_or(0);
                return self.reply_error(
                    conn,
                    rseq,
                    &format!("tenant '{name}' connection limit ({max}) reached"),
                );
            }
            tenant.connections += 1;
            if let Some(old) = conn.tenant.replace(name.clone()) {
                if let Some(t) = self.dir.get_mut(&old) {
                    t.connections = t.connections.saturating_sub(1);
                }
            }
        }
        queue_reply(conn, rseq, ok_record("tenant.attach", Some(&name)));
    }

    fn tenant_list(&mut self, conn: &mut Conn<M>, rseq: u64) {
        let mut rows: Vec<TenantInfo> = self
            .dir
            .iter()
            .map(|(name, t)| TenantInfo {
                name: name.clone(),
                window_len: t.shared.window_len.load(Ordering::Relaxed) as usize,
                connections: t.connections,
                events: t.shared.events.load(Ordering::Relaxed),
                warming: t.shared.warming.load(Ordering::Relaxed),
            })
            .collect();
        rows.sort_by(|a, b| a.name.cmp(&b.name));
        queue_reply(conn, rseq, tenants_record(&rows));
    }

    fn tenant_drop(&mut self, conn: &mut Conn<M>, rseq: u64, name: &str) {
        if name == DEFAULT_TENANT {
            return self.reply_error(conn, rseq, "the default tenant cannot be dropped");
        }
        let Some(tenant) = self.dir.get(name) else {
            return self.reply_error(conn, rseq, &format!("unknown tenant '{name}'"));
        };
        if tenant.connections > 0 {
            let n = tenant.connections;
            return self.reply_error(
                conn,
                rseq,
                &format!("tenant '{name}' has {n} attached connection(s)"),
            );
        }
        let worker = tenant.worker;
        self.dir.remove(name);
        self.metrics.tenants.set(self.dir.len() as f64);
        let _ = self.workers[worker].send(Job::RemoveTenant { name: name.to_owned() });
        queue_reply(conn, rseq, ok_record("tenant.drop", Some(name)));
    }

    fn snapshot(&mut self, token: u64, conn: &mut Conn<M>, rseq: u64, name: Option<String>) {
        if self.config.snapshot_dir.is_none() {
            return self.reply_error(
                conn,
                rseq,
                "no snapshot directory configured (--snapshot-dir)",
            );
        }
        match name {
            Some(name) => {
                let Some(tenant) = self.dir.get(&name) else {
                    return self.reply_error(conn, rseq, &format!("unknown tenant '{name}'"));
                };
                let worker = tenant.worker;
                self.submit(conn, worker, Job::SnapshotOne { tenant: name, conn: token, rseq });
            }
            None => {
                let mut by_worker: HashMap<usize, Vec<String>> = HashMap::new();
                for (name, t) in &self.dir {
                    by_worker.entry(t.worker).or_default().push(name.clone());
                }
                if by_worker.is_empty() {
                    queue_reply(conn, rseq, snapshot_record(&[]));
                    return;
                }
                let agg = Arc::new(SnapshotAgg {
                    remaining: AtomicUsize::new(by_worker.len()),
                    names: Mutex::new(Vec::new()),
                    errors: Mutex::new(Vec::new()),
                    conn: token,
                    rseq,
                });
                for (worker, tenants) in by_worker {
                    let _ = self.workers[worker]
                        .send(Job::SnapshotMany { tenants, agg: Arc::clone(&agg) });
                }
            }
        }
    }

    // ---- drain ------------------------------------------------------

    /// Begins a drain. The ack (`{"type":"ok","op":"drain"}`) is emitted
    /// to `(conn, rseq)` only after every worker has flushed its queue,
    /// snapshotted, and exited — it is the client's "safe to restart"
    /// signal. `NO_CONN` (programmatic drain) suppresses the ack.
    fn start_drain(&mut self, conn: u64, rseq: u64) {
        if self.draining {
            return;
        }
        self.drain_reply = Some((conn, rseq)).filter(|(c, _)| *c != NO_CONN);
        self.begin_drain();
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self.poller.remove(&self.listener);
        // Cancel parked (never-admitted) work with in-band errors so no
        // connection is left waiting on a reply that cannot come.
        for conn in self.conns.values_mut() {
            if let Some((_, job)) = conn.parked.take() {
                if let Some((_, rseq)) = job.reply_target() {
                    self.metrics.error_records.inc();
                    queue_reply(conn, rseq, error_record("server is draining"));
                }
            }
        }
        // Everything already queued ahead of Drain is processed first
        // (FIFO per worker): queued jobs flush, then snapshot, then ack.
        for tx in &self.workers {
            let _ = tx.send(Job::Drain);
        }
    }

    fn finish_drain(&mut self) -> io::Result<()> {
        if let Some((token, rseq)) = self.drain_reply.take() {
            if let Some(conn) = self.conns.get_mut(&token) {
                queue_reply(conn, rseq, ok_record("drain", None));
            }
        }
        // Bounded graceful flush of every connection's remaining bytes.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut events = Vec::new();
        loop {
            self.sweep();
            let unflushed = self.conns.values().any(|c| c.outpos < c.outbuf.len() && !c.kill);
            if !unflushed || Instant::now() >= deadline {
                return Ok(());
            }
            self.poller.wait(&mut events, 50)?;
        }
    }

    // ---- outbox and write-side sweep --------------------------------

    fn drain_outbox(&mut self) {
        loop {
            let note = self.outbox.notes.lock().unwrap().pop_front();
            let Some(note) = note else { return };
            match note {
                Note::Reply { conn, rseq, text } => {
                    if let Some(c) = self.conns.get_mut(&conn) {
                        queue_reply(c, rseq, text);
                    }
                }
                Note::WorkerDone => self.workers_done += 1,
            }
        }
    }

    /// Flushes write buffers, updates poll interest, closes finished or
    /// killed connections. Runs once per loop iteration.
    fn sweep(&mut self) {
        let mut dead: Vec<u64> = Vec::new();
        for (&token, conn) in &mut self.conns {
            flush_conn(conn);
            if conn.outbuf.len() - conn.outpos > MAX_OUTBUF {
                conn.kill = true; // slow consumer
            }
            if conn.kill || (conn.peer_closed && conn.quiescent()) {
                dead.push(token);
                continue;
            }
            let desired = Interest {
                readable: !self.draining && conn.parked.is_none() && !conn.peer_closed,
                writable: conn.outpos < conn.outbuf.len(),
            };
            if desired != conn.interest {
                if self.poller.modify(&conn.stream, token, desired).is_ok() {
                    conn.interest = desired;
                } else {
                    dead.push(token);
                }
            }
        }
        for token in dead {
            self.close_conn(token);
        }
    }
}

fn render_metrics(registry: &MetricsRegistry, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Text => registry.render_prometheus(),
        MetricsFormat::Json => metrics_record(registry),
    }
}

/// Reads every `*.lofw` file in `dir`, returning `(tenant name, snapshot)`
/// pairs. The tenant name comes from the snapshot's `tenant` extra (file
/// stem as fallback).
fn read_snapshot_dir(dir: &Path) -> io::Result<Vec<(String, WindowSnapshot)>> {
    let mut found = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("lofw") {
            continue;
        }
        let snap = WindowSnapshot::read_from_file(&path)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))?;
        let name = snap
            .extra("tenant")
            .map(str::to_owned)
            .or_else(|| path.file_stem().and_then(|s| s.to_str()).map(str::to_owned))
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: snapshot has no tenant name", path.display()),
                )
            })?;
        found.push((name, snap));
    }
    // Deterministic startup order (and deterministic worker assignment).
    found.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(found)
}

// ---- workers --------------------------------------------------------

/// One tenant's worker-side state: the window itself plus resolved
/// per-tenant metric handles (labels rendered once at creation).
struct WorkerTenant<M: Metric> {
    window: SlidingWindowLof<M>,
    shared: Arc<TenantShared>,
    quotas: Quotas,
    score_records: Arc<Counter>,
    occupancy: Arc<Gauge>,
    latency: Arc<Histogram>,
}

struct WorkerCtx {
    outbox: Arc<Outbox>,
    registry: Arc<MetricsRegistry>,
    metrics: Arc<ServeMetrics>,
    snapshot_dir: Option<PathBuf>,
    metric_tag: String,
}

fn worker_loop<M: Metric>(rx: &Receiver<Job<M>>, ctx: &WorkerCtx) -> Vec<(String, StreamStats)> {
    let mut tenants: HashMap<String, WorkerTenant<M>> = HashMap::new();
    let mut retired: Vec<(String, StreamStats)> = Vec::new();
    for job in rx.iter() {
        match job {
            Job::AddTenant { name, window, shared, quotas } => {
                let tenant = WorkerTenant {
                    window: *window,
                    shared,
                    quotas,
                    score_records: ctx.registry.counter(&labeled(
                        "serve.score_records",
                        "tenant",
                        &name,
                    )),
                    occupancy: ctx.registry.gauge(&labeled(
                        "serve.window_occupancy",
                        "tenant",
                        &name,
                    )),
                    latency: ctx.registry.histogram(&labeled("serve.latency_ns", "tenant", &name)),
                };
                tenant.occupancy.set(tenant.window.len() as f64);
                tenants.insert(name, tenant);
            }
            Job::RemoveTenant { name } => {
                if let Some(t) = tenants.remove(&name) {
                    retired.push((name, t.window.stats().clone()));
                }
            }
            Job::Event { tenant, point, conn, rseq } => {
                let text = score_event(&mut tenants, &tenant, &point, ctx);
                ctx.outbox.reply(conn, rseq, text);
            }
            Job::Metrics { format, conn, rseq } => {
                ctx.metrics.metrics_requests.inc();
                ctx.outbox.reply(conn, rseq, render_metrics(&ctx.registry, format));
            }
            Job::TopN { tenant, n, conn, rseq } => {
                ctx.metrics.topn_requests.inc();
                let text = match tenants.get_mut(&tenant) {
                    // `top_n` is `&mut` since the deferred engine flushes
                    // its score caches before ranking.
                    Some(t) => {
                        let ranked = t.window.top_n(n);
                        topn_record(n, &ranked, t.window.is_warming_up())
                    }
                    None => {
                        ctx.metrics.error_records.inc();
                        error_record(&format!("tenant '{tenant}' no longer exists"))
                    }
                };
                ctx.outbox.reply(conn, rseq, text);
            }
            Job::SnapshotOne { tenant, conn, rseq } => {
                let text = match tenants.get(&tenant) {
                    Some(t) => match snapshot_tenant(&tenant, t, ctx) {
                        Ok(()) => {
                            ctx.metrics.snapshots.inc();
                            snapshot_record(std::slice::from_ref(&tenant))
                        }
                        Err(e) => {
                            ctx.metrics.error_records.inc();
                            error_record(&format!("snapshot of '{tenant}' failed: {e}"))
                        }
                    },
                    None => {
                        ctx.metrics.error_records.inc();
                        error_record(&format!("tenant '{tenant}' no longer exists"))
                    }
                };
                ctx.outbox.reply(conn, rseq, text);
            }
            Job::SnapshotMany { tenants: names, agg } => {
                for name in names {
                    if let Some(t) = tenants.get(&name) {
                        match snapshot_tenant(&name, t, ctx) {
                            Ok(()) => {
                                ctx.metrics.snapshots.inc();
                                agg.names.lock().unwrap().push(name);
                            }
                            Err(e) => agg
                                .errors
                                .lock()
                                .unwrap()
                                .push(format!("snapshot of '{name}' failed: {e}")),
                        }
                    }
                }
                if agg.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let errors = agg.errors.lock().unwrap();
                    let text = if errors.is_empty() {
                        let mut names = agg.names.lock().unwrap();
                        names.sort();
                        snapshot_record(&names)
                    } else {
                        ctx.metrics.error_records.inc();
                        error_record(&errors.join("; "))
                    };
                    ctx.outbox.reply(agg.conn, agg.rseq, text);
                }
            }
            Job::Drain => {
                for (name, t) in &tenants {
                    if let Err(e) = snapshot_tenant(name, t, ctx) {
                        if ctx.snapshot_dir.is_some() {
                            eprintln!("drain: snapshot of '{name}' failed: {e}");
                        }
                    } else {
                        ctx.metrics.snapshots.inc();
                    }
                }
                ctx.outbox.worker_done();
                break;
            }
        }
    }
    for (name, t) in tenants {
        retired.push((name, t.window.stats().clone()));
    }
    retired
}

/// Scores one event against its tenant's window, enforcing the
/// `max_points` quota for landmark tenants (sliding tenants enforce it
/// structurally: capacity ≤ max_points is validated at creation).
fn score_event<M: Metric>(
    tenants: &mut HashMap<String, WorkerTenant<M>>,
    name: &str,
    point: &[f64],
    ctx: &WorkerCtx,
) -> String {
    let Some(t) = tenants.get_mut(name) else {
        ctx.metrics.error_records.inc();
        return error_record(&format!("tenant '{name}' no longer exists"));
    };
    if t.window.config().policy == EvictionPolicy::Landmark {
        if let Some(max_points) = t.quotas.max_points {
            if t.window.len() >= max_points {
                ctx.metrics.push_errors.inc();
                ctx.metrics.error_records.inc();
                return error_record(&format!(
                    "tenant '{name}' max_points quota ({max_points}) reached"
                ));
            }
        }
    }
    let text = match t.window.push(point) {
        Ok(event) => {
            ctx.metrics.score_records.inc();
            t.score_records.inc();
            t.latency.record(event.latency_ns);
            t.occupancy.set(event.window_len as f64);
            stream_record(&event)
        }
        Err(e) => {
            ctx.metrics.push_errors.inc();
            ctx.metrics.error_records.inc();
            error_record(&e.to_string())
        }
    };
    let stats = t.window.stats();
    t.shared.publish(t.window.len(), stats.events, t.window.is_warming_up());
    text
}

fn snapshot_tenant<M: Metric>(
    name: &str,
    tenant: &WorkerTenant<M>,
    ctx: &WorkerCtx,
) -> io::Result<()> {
    let Some(dir) = &ctx.snapshot_dir else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no snapshot directory configured",
        ));
    };
    let mut snap = tenant.window.snapshot(&ctx.metric_tag);
    snap.extras =
        TenantSpec { config: tenant.window.config().clone(), quotas: tenant.quotas }.extras(name);
    snap.write_to_file(&dir.join(format!("{name}.lofw")))
}

// ---- entry point ----------------------------------------------------

/// Starts the multi-tenant event-loop server on `listener`.
///
/// Restores every tenant found in `config.snapshot_dir` (if set), then
/// guarantees a `default` tenant built from `config.default_spec`, so
/// single-window clients that only send events keep working unchanged.
///
/// # Errors
///
/// Fails on poller/listener setup errors, an unreadable or
/// metric-incompatible snapshot, or an invalid default window
/// configuration.
pub fn spawn<M: Metric + Clone + 'static>(
    listener: TcpListener,
    metric: M,
    config: ServeConfig,
) -> io::Result<ServeHandle> {
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let poller = Poller::new()?;
    poller.add(&listener, LISTENER_TOKEN, Interest::READ)?;
    let registry = Arc::new(MetricsRegistry::new());
    let metrics = Arc::new(ServeMetrics::new(&registry));
    let outbox = Arc::new(Outbox { notes: Mutex::new(VecDeque::new()), waker: poller.waker() });

    let worker_count = config.workers.max(1);
    let queue = config.queue.max(1);
    let mut senders = Vec::with_capacity(worker_count);
    let mut worker_handles = Vec::with_capacity(worker_count);
    for i in 0..worker_count {
        let (tx, rx) = sync_channel::<Job<M>>(queue);
        senders.push(tx);
        let ctx = WorkerCtx {
            outbox: Arc::clone(&outbox),
            registry: Arc::clone(&registry),
            metrics: Arc::clone(&metrics),
            snapshot_dir: config.snapshot_dir.clone(),
            metric_tag: config.metric_tag.clone(),
        };
        let handle = std::thread::Builder::new()
            .name(format!("lof-serve-worker-{i}"))
            .spawn(move || worker_loop(&rx, &ctx))?;
        worker_handles.push(handle);
    }

    let drain_flag = Arc::new(AtomicBool::new(false));
    let waker = poller.waker();
    let mut io = Io {
        poller,
        listener,
        conns: HashMap::new(),
        dir: HashMap::new(),
        workers: senders,
        next_worker: 0,
        next_token: 1,
        metrics,
        registry: Arc::clone(&registry),
        metric,
        config,
        draining: false,
        drain_reply: None,
        workers_done: 0,
        outbox,
        drain_flag: Arc::clone(&drain_flag),
    };
    io.bootstrap_tenants()?;
    let io_handle =
        std::thread::Builder::new().name("lof-serve-io".to_owned()).spawn(move || io.run())?;

    Ok(ServeHandle {
        addr,
        registry,
        io: Some(io_handle),
        workers: worker_handles,
        drain_flag,
        waker,
    })
}
