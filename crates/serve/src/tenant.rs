//! Tenant specifications and tenant-level shared state.
//!
//! A tenant is a named [`SlidingWindowLof`] with its own configuration
//! and [`Quotas`]. The wire form is `TENANT CREATE <name> [key=value...]`;
//! this module turns those raw pairs into a validated
//! [`TenantSpec`], and round-trips the serving-layer attributes (name,
//! quotas) through snapshot `extras` so a restored server resumes with
//! identical admission behavior.
//!
//! [`SlidingWindowLof`]: lof_stream::SlidingWindowLof

use crate::quota::Quotas;
use lof_stream::{EvictionPolicy, StreamConfig, WindowSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A validated tenant definition: window configuration plus quotas.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// The window configuration.
    pub config: StreamConfig,
    /// The admission quotas.
    pub quotas: Quotas,
}

impl TenantSpec {
    /// Builds a spec from `TENANT CREATE` parameters, starting from the
    /// server's defaults. Recognized keys: `minpts`, `capacity`,
    /// `warmup`, `policy` (`slide` | `landmark`), `threshold`, `topk`,
    /// `shards`, `deferred` (`on` | `off`), `max_points`, `max_eps`,
    /// `max_conns`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown keys, unparsable
    /// values, or a configuration that fails [`StreamConfig::validate`].
    pub fn from_params(
        defaults: &StreamConfig,
        default_quotas: Quotas,
        params: &[(String, String)],
    ) -> Result<TenantSpec, String> {
        let mut config = defaults.clone();
        let mut quotas = default_quotas;
        // `warmup` tracks `minpts` unless explicitly pinned, matching the
        // StreamConfig::new default of `min_pts + 1`.
        let mut warmup_pinned = false;
        for (key, value) in params {
            match key.as_str() {
                "minpts" => config.min_pts = parse_num(key, value)?,
                "capacity" => config.capacity = parse_num(key, value)?,
                "warmup" => {
                    config.warmup = parse_num(key, value)?;
                    warmup_pinned = true;
                }
                "policy" => {
                    config.policy = match value.as_str() {
                        "slide" => EvictionPolicy::SlideOldest,
                        "landmark" => EvictionPolicy::Landmark,
                        other => {
                            return Err(format!(
                                "bad policy '{other}' (expected 'slide' or 'landmark')"
                            ))
                        }
                    }
                }
                "threshold" => {
                    let t: f64 = parse_num(key, value)?;
                    if !t.is_finite() || t <= 0.0 {
                        return Err(format!("threshold must be a positive finite number, got {t}"));
                    }
                    config.threshold = Some(t);
                }
                "topk" => config.top_k = Some(parse_num(key, value)?),
                "shards" => config.shards = parse_num(key, value)?,
                "deferred" => {
                    config.deferred = match value.as_str() {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        other => {
                            return Err(format!("bad deferred '{other}' (expected 'on' or 'off')"))
                        }
                    }
                }
                "max_points" => quotas.max_points = Some(parse_num(key, value)?),
                "max_eps" => quotas.max_events_per_sec = Some(parse_num(key, value)?),
                "max_conns" => quotas.max_conns = Some(parse_num(key, value)?),
                other => {
                    return Err(format!(
                        "unknown parameter '{other}' (expected minpts, capacity, warmup, \
                         policy, threshold, topk, shards, deferred, max_points, max_eps, \
                         max_conns)"
                    ))
                }
            }
        }
        if !warmup_pinned {
            config.warmup = config.min_pts + 1;
        }
        config.validate().map_err(|e| format!("invalid window configuration: {e}"))?;
        if let Some(max_points) = quotas.max_points {
            if config.policy == EvictionPolicy::SlideOldest && config.capacity > max_points {
                return Err(format!(
                    "capacity {} exceeds max_points quota {max_points}",
                    config.capacity
                ));
            }
        }
        Ok(TenantSpec { config, quotas })
    }

    /// The snapshot `extras` carrying this tenant's serving-layer
    /// attributes (the window state itself lives in the snapshot body).
    pub fn extras(&self, name: &str) -> Vec<(String, String)> {
        let mut extras = vec![("tenant".to_owned(), name.to_owned())];
        if let Some(v) = self.quotas.max_events_per_sec {
            extras.push(("quota.max_events_per_sec".to_owned(), v.to_string()));
        }
        if let Some(v) = self.quotas.max_points {
            extras.push(("quota.max_points".to_owned(), v.to_string()));
        }
        if let Some(v) = self.quotas.max_conns {
            extras.push(("quota.max_conns".to_owned(), v.to_string()));
        }
        extras
    }

    /// Recovers the quotas a snapshot was taken under (absent or
    /// unparsable extras mean unlimited — snapshots from older writers
    /// stay loadable).
    pub fn quotas_from_snapshot(snap: &WindowSnapshot) -> Quotas {
        Quotas {
            max_events_per_sec: snap.extra("quota.max_events_per_sec").and_then(|v| v.parse().ok()),
            max_points: snap.extra("quota.max_points").and_then(|v| v.parse().ok()),
            max_conns: snap.extra("quota.max_conns").and_then(|v| v.parse().ok()),
        }
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("bad value for '{key}': {e}"))
}

/// Live per-tenant statistics, written by the owning worker after every
/// event and read lock-free by the I/O thread to answer `TENANT LIST`.
#[derive(Debug, Default)]
pub struct TenantShared {
    /// Events currently held in the window.
    pub window_len: AtomicU64,
    /// Lifetime events pushed into the window.
    pub events: AtomicU64,
    /// True while the window is warming up.
    pub warming: AtomicBool,
}

impl TenantShared {
    /// Publishes the post-event view (worker side).
    pub fn publish(&self, window_len: usize, events: u64, warming: bool) {
        self.window_len.store(window_len as u64, Ordering::Relaxed);
        self.events.store(events, Ordering::Relaxed);
        self.warming.store(warming, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn defaults() -> StreamConfig {
        StreamConfig::new(3, 64)
    }

    #[test]
    fn create_params_override_defaults_and_validate() {
        let spec = TenantSpec::from_params(
            &defaults(),
            Quotas::default(),
            &[
                ("minpts".to_owned(), "5".to_owned()),
                ("capacity".to_owned(), "128".to_owned()),
                ("threshold".to_owned(), "2.5".to_owned()),
                ("max_eps".to_owned(), "100".to_owned()),
            ],
        )
        .expect("valid spec");
        assert_eq!(spec.config.min_pts, 5);
        assert_eq!(spec.config.capacity, 128);
        assert_eq!(spec.config.warmup, 6, "warmup tracks the overridden minpts");
        assert_eq!(spec.config.threshold, Some(2.5));
        assert_eq!(spec.quotas.max_events_per_sec, Some(100));
        assert_eq!(spec.quotas.max_points, None);

        // Landmark policy and pinned warmup.
        let spec = TenantSpec::from_params(
            &defaults(),
            Quotas::default(),
            &[("policy".to_owned(), "landmark".to_owned()), ("warmup".to_owned(), "10".to_owned())],
        )
        .expect("valid spec");
        assert_eq!(spec.config.policy, EvictionPolicy::Landmark);
        assert_eq!(spec.config.warmup, 10);
    }

    #[test]
    fn shards_and_deferred_params_configure_the_engine() {
        let spec = TenantSpec::from_params(
            &defaults(),
            Quotas::default(),
            &[("shards".to_owned(), "4".to_owned()), ("deferred".to_owned(), "on".to_owned())],
        )
        .expect("valid spec");
        assert_eq!(spec.config.shards, 4);
        assert!(spec.config.deferred);
        let spec = TenantSpec::from_params(
            &defaults(),
            Quotas::default(),
            &[("deferred".to_owned(), "off".to_owned())],
        )
        .expect("valid spec");
        assert!(!spec.config.deferred);
        assert_eq!(spec.config.shards, 1, "defaults stay flat");
    }

    #[test]
    fn bad_params_are_rejected_with_messages() {
        let cases: &[(&str, &str)] = &[
            ("minpts", "abc"),
            ("policy", "ring"),
            ("threshold", "-1"),
            ("threshold", "inf"),
            ("frobnicate", "1"),
            ("shards", "0"),
            ("shards", "x"),
            ("deferred", "maybe"),
        ];
        for (key, value) in cases {
            let err = TenantSpec::from_params(
                &defaults(),
                Quotas::default(),
                &[((*key).to_owned(), (*value).to_owned())],
            )
            .expect_err("must reject");
            assert!(!err.is_empty());
        }
        // Capacity above max_points is inconsistent for a sliding window.
        assert!(TenantSpec::from_params(
            &defaults(),
            Quotas::default(),
            &[
                ("capacity".to_owned(), "100".to_owned()),
                ("max_points".to_owned(), "50".to_owned()),
            ],
        )
        .is_err());
        // An invalid window config is caught by validate().
        assert!(TenantSpec::from_params(
            &defaults(),
            Quotas::default(),
            &[("capacity".to_owned(), "2".to_owned())],
        )
        .is_err());
    }

    #[test]
    fn quotas_round_trip_through_snapshot_extras() {
        let spec = TenantSpec {
            config: defaults(),
            quotas: Quotas {
                max_events_per_sec: Some(500),
                max_points: Some(10_000),
                max_conns: None,
            },
        };
        let extras = spec.extras("alpha");
        assert!(extras.contains(&("tenant".to_owned(), "alpha".to_owned())));

        // Build a minimal snapshot carrying the extras and recover.
        let snap = WindowSnapshot {
            metric_tag: "euclidean".to_owned(),
            config: spec.config.clone(),
            dims: 0,
            warming: true,
            points: Vec::new(),
            arrivals: Vec::new(),
            next_seq: 0,
            next_arrival: 0,
            stats: Default::default(),
            extras,
        };
        assert_eq!(snap.extra("tenant"), Some("alpha"));
        assert_eq!(TenantSpec::quotas_from_snapshot(&snap), spec.quotas);
    }
}
