//! Per-tenant admission quotas.
//!
//! Three independent limits, all optional:
//!
//! * `max_events_per_sec` — a token bucket checked at admission on the
//!   I/O thread (before the event is queued), so an abusive tenant is
//!   shed **before** it consumes scoring capacity;
//! * `max_points` — a ceiling on window occupancy, which bounds the
//!   memory and per-event cascade cost of landmark tenants;
//! * `max_conns` — a ceiling on concurrently attached connections,
//!   checked at `TENANT ATTACH`.

use std::time::Instant;

/// The optional per-tenant limits (absent = unlimited).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quotas {
    /// Sustained event admission rate; bursts up to one second's worth.
    pub max_events_per_sec: Option<u64>,
    /// Maximum events the tenant's window may hold.
    pub max_points: Option<usize>,
    /// Maximum concurrently attached connections.
    pub max_conns: Option<usize>,
}

/// A token bucket: capacity `rate` tokens (one second of burst, at least
/// one), refilled continuously at `rate` tokens/second. Fractional refill
/// is tracked in nanoseconds so slow trickles (1 event/sec) admit
/// precisely.
#[derive(Debug)]
pub struct TokenBucket {
    rate: u64,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A bucket admitting `rate` events/second sustained (`rate` is
    /// clamped to at least 1 — a zero-rate tenant would be unreachable).
    pub fn new(rate: u64) -> Self {
        let rate = rate.max(1);
        TokenBucket { rate, tokens: rate as f64, last_refill: Instant::now() }
    }

    /// Takes one token if available. Returns `false` (denied) when the
    /// bucket is empty — the caller sheds the event in-band.
    pub fn admit(&mut self) -> bool {
        self.refill(Instant::now());
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    fn refill(&mut self, now: Instant) {
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * self.rate as f64).min(self.rate as f64);
    }

    /// The configured sustained rate (for error messages).
    pub fn rate(&self) -> u64 {
        self.rate
    }

    #[cfg(test)]
    fn admit_at(&mut self, now: Instant) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bucket_admits_burst_then_refills_at_rate() {
        let mut bucket = TokenBucket::new(10);
        let start = Instant::now();
        // Full burst: 10 tokens available immediately.
        for _ in 0..10 {
            assert!(bucket.admit_at(start));
        }
        assert!(!bucket.admit_at(start), "bucket exhausted");
        // 100 ms later exactly one token has refilled.
        let later = start + Duration::from_millis(100);
        assert!(bucket.admit_at(later));
        assert!(!bucket.admit_at(later));
        // A long idle period refills to capacity, not beyond.
        let much_later = start + Duration::from_secs(60);
        for _ in 0..10 {
            assert!(bucket.admit_at(much_later));
        }
        assert!(!bucket.admit_at(much_later));
    }

    #[test]
    fn zero_rate_is_clamped_to_one() {
        let mut bucket = TokenBucket::new(0);
        assert_eq!(bucket.rate(), 1);
        assert!(bucket.admit());
    }
}
