//! End-to-end tests of the multi-tenant event-loop server over real TCP:
//! tenant lifecycle, quotas, reply ordering, metrics labels, and the
//! drain → restore-from-snapshot bit-identity guarantee.

use lof_core::Euclidean;
use lof_serve::{spawn, Quotas, ServeConfig, ServeHandle, TenantSpec};
use lof_stream::{SlidingWindowLof, StreamConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A line-oriented test client with a read timeout so a missing reply
/// fails the test instead of hanging it.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_read_timeout(Some(Duration::from_secs(20))).expect("timeout");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.stream, "{line}").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("recv");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_owned()
    }

    /// Reads a multi-line Prometheus block up to its `# EOF` terminator.
    fn recv_metrics_block(&mut self) -> String {
        let mut block = String::new();
        loop {
            let line = self.recv();
            let done = line == "# EOF";
            block.push_str(&line);
            block.push('\n');
            if done {
                return block;
            }
        }
    }
}

fn base_spec() -> TenantSpec {
    TenantSpec { config: StreamConfig::new(3, 32).warmup(4), quotas: Quotas::default() }
}

fn start(config: ServeConfig) -> ServeHandle {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    spawn(listener, Euclidean, config).expect("spawn")
}

/// A deterministic little point generator (no external RNG).
fn point(i: u64) -> String {
    let x = (i.wrapping_mul(2_654_435_761) % 1000) as f64 / 100.0;
    let y = (i.wrapping_mul(40_503) % 1000) as f64 / 100.0;
    format!("{x},{y}")
}

/// Drops the timing-dependent tail of a score record so runs compare
/// bit-identically on everything the model computed.
fn strip_latency(record: &str) -> &str {
    record.rfind(",\"latency_us\"").map_or(record, |cut| &record[..cut])
}

#[test]
fn default_tenant_serves_old_protocol_and_labeled_metrics() {
    let mut config = ServeConfig::new(base_spec(), "euclidean");
    config.workers = 2;
    let handle = start(config);
    let mut client = Client::connect(handle.addr());

    for i in 0..3 {
        client.send(&point(i));
    }
    for i in 0..3 {
        let reply = client.recv();
        assert!(reply.starts_with(&format!("{{\"type\":\"score\",\"seq\":{i}")), "got {reply}");
        assert!(reply.contains("\"warmup\":true"), "got {reply}");
    }

    client.send("GET /metrics");
    let block = client.recv_metrics_block();
    assert!(block.contains("lof_serve_events_in 3"), "block:\n{block}");
    assert!(block.contains("lof_serve_events_in{tenant=\"default\"} 3"), "block:\n{block}");
    assert!(block.contains("lof_serve_score_records{tenant=\"default\"} 3"), "block:\n{block}");
    assert!(block.ends_with("# EOF\n"));

    // Unparsable lines and bad topn requests answer in-band, in order.
    client.send("not,a,number");
    client.send("GET /topn");
    client.send(&point(3));
    let err = client.recv();
    assert!(err.contains("\"type\":\"error\""), "got {err}");
    let err = client.recv();
    assert!(err.contains("topn request needs a count"), "got {err}");
    let score = client.recv();
    assert!(score.contains("\"seq\":3"), "got {score}");

    drop(client);
    let report = handle.drain().expect("drain");
    assert_eq!(report.tenants.len(), 1);
    assert_eq!(report.tenants[0].0, "default");
    assert_eq!(report.events(), 4);
}

#[test]
fn tenants_are_isolated_and_managed_over_the_wire() {
    let mut config = ServeConfig::new(base_spec(), "euclidean");
    config.workers = 2;
    let handle = start(config);
    let mut a = Client::connect(handle.addr());
    let mut b = Client::connect(handle.addr());

    a.send("TENANT CREATE alpha minpts=2 capacity=16 warmup=3");
    assert_eq!(a.recv(), "{\"type\":\"ok\",\"op\":\"tenant.create\",\"tenant\":\"alpha\"}");
    a.send("TENANT ATTACH alpha");
    assert_eq!(a.recv(), "{\"type\":\"ok\",\"op\":\"tenant.attach\",\"tenant\":\"alpha\"}");

    // Same sequence numbers on both tenants: isolated windows.
    for i in 0..5 {
        a.send(&point(i));
        b.send(&point(1000 + i));
    }
    for i in 0..5 {
        let ra = a.recv();
        let rb = b.recv();
        assert!(ra.contains(&format!("\"seq\":{i}")), "got {ra}");
        assert!(rb.contains(&format!("\"seq\":{i}")), "got {rb}");
    }

    // LIST sees both tenants with live occupancy and attachment counts.
    a.send("TENANT LIST");
    let list = a.recv();
    assert!(
        list.contains("{\"name\":\"alpha\",\"window\":5,\"connections\":1,\"events\":5"),
        "got {list}"
    );
    assert!(
        list.contains("{\"name\":\"default\",\"window\":5,\"connections\":1,\"events\":5"),
        "got {list}"
    );

    // Control-plane guard rails, all answered in-band.
    a.send("TENANT CREATE alpha");
    assert!(a.recv().contains("already exists"));
    a.send("TENANT DROP alpha");
    assert!(a.recv().contains("attached connection"), "cannot drop while attached");
    a.send("TENANT DROP default");
    assert!(a.recv().contains("cannot be dropped"));
    a.send("TENANT ATTACH nonesuch");
    assert!(a.recv().contains("unknown tenant"));
    a.send("TENANT CREATE bad minpts=zero");
    assert!(a.recv().contains("bad value"));

    // Detach (re-attach to default) and then the drop goes through; its
    // events are gone with it.
    a.send("TENANT ATTACH default");
    assert!(a.recv().contains("\"op\":\"tenant.attach\""));
    a.send("TENANT DROP alpha");
    assert_eq!(a.recv(), "{\"type\":\"ok\",\"op\":\"tenant.drop\",\"tenant\":\"alpha\"}");
    a.send("TENANT LIST");
    let list = a.recv();
    assert!(!list.contains("alpha"), "got {list}");

    drop(a);
    drop(b);
    let report = handle.drain().expect("drain");
    // Both tenants appear in the final report, the dropped one included.
    let names: Vec<&str> = report.tenants.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["alpha", "default"]);
    assert_eq!(report.events(), 10);
}

#[test]
fn rate_and_connection_quotas_shed_load_in_band() {
    let mut config = ServeConfig::new(base_spec(), "euclidean");
    config.workers = 1;
    let handle = start(config);
    let mut a = Client::connect(handle.addr());

    // A tenant admitting 1 event/sec with a burst of 1: a 10-line batch
    // lands well inside one refill interval, so at most 2 events can be
    // admitted (burst + one refill even on a glacial machine).
    a.send("TENANT CREATE slow max_eps=1 max_conns=1");
    assert!(a.recv().contains("\"op\":\"tenant.create\""));
    a.send("TENANT ATTACH slow");
    assert!(a.recv().contains("\"op\":\"tenant.attach\""));
    let batch: String = (0..10).map(|i| format!("{}\n", point(i))).collect::<Vec<_>>().concat();
    a.stream.write_all(batch.as_bytes()).expect("batch");
    let mut scores = 0;
    let mut dropped = 0;
    for _ in 0..10 {
        let reply = a.recv();
        if reply.contains("\"type\":\"score\"") {
            scores += 1;
        } else {
            assert!(reply.contains("rate limit exceeded"), "got {reply}");
            dropped += 1;
        }
    }
    assert!((1..=2).contains(&scores), "admitted {scores}");
    assert_eq!(scores + dropped, 10);

    // The second attachment to a max_conns=1 tenant is refused.
    let mut b = Client::connect(handle.addr());
    b.send("TENANT ATTACH slow");
    assert!(b.recv().contains("connection limit (1) reached"));

    // Quota drops are visible per tenant on /metrics.
    b.send("GET /metrics");
    let block = b.recv_metrics_block();
    assert!(block.contains("lof_serve_quota_drops{tenant=\"slow\"}"), "block:\n{block}");

    drop(a);
    drop(b);
    handle.drain().expect("drain");
}

#[test]
fn replies_come_back_in_request_order_across_planes() {
    // Control replies are produced on the I/O thread, scores on a
    // worker; the per-connection sequencer must still deliver them in
    // the order the lines were sent.
    let handle = start(ServeConfig::new(base_spec(), "euclidean"));
    let mut client = Client::connect(handle.addr());
    let mut batch = String::new();
    for i in 0..8 {
        batch.push_str("TENANT LIST\n");
        batch.push_str(&point(i));
        batch.push('\n');
    }
    client.stream.write_all(batch.as_bytes()).expect("batch");
    for i in 0..8 {
        let list = client.recv();
        assert!(list.starts_with("{\"type\":\"tenants\""), "reply {i}: got {list}");
        let score = client.recv();
        assert!(score.contains(&format!("\"seq\":{i}")), "reply {i}: got {score}");
    }
    drop(client);
    handle.drain().expect("drain");
}

#[test]
fn drain_snapshots_and_restore_resumes_bit_identically() {
    let dir = std::env::temp_dir().join(format!("lof-serve-restore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let total = 60u64;
    let cut = 23u64;

    let mut config = ServeConfig::new(base_spec(), "euclidean");
    config.workers = 2;
    config.snapshot_dir = Some(dir.clone());

    // First life: score the prefix on two tenants, then DRAIN over the
    // wire (which snapshots every tenant and acks).
    let mut first: Vec<String> = Vec::new();
    {
        let handle = start(config.clone());
        let mut client = Client::connect(handle.addr());
        client.send("TENANT CREATE other minpts=2 capacity=8 warmup=3");
        client.recv();
        for i in 0..cut {
            client.send(&point(i));
            first.push(client.recv());
        }
        client.send("DRAIN");
        assert_eq!(client.recv(), "{\"type\":\"ok\",\"op\":\"drain\"}");
        let report = handle.wait().expect("drained");
        assert_eq!(report.events(), cut);
    }
    assert!(dir.join("default.lofw").exists());
    assert!(dir.join("other.lofw").exists());

    // Second life: same snapshot dir; the default tenant resumes where
    // it left off (sequence numbers, eviction order, scores).
    let mut second: Vec<String> = Vec::new();
    {
        let handle = start(config.clone());
        let mut client = Client::connect(handle.addr());
        client.send("TENANT LIST");
        let list = client.recv();
        assert!(list.contains("\"name\":\"other\""), "restored tenants listed: {list}");
        for i in cut..total {
            client.send(&point(i));
            second.push(client.recv());
        }
        let report = handle.drain().expect("drain");
        assert_eq!(report.tenants.iter().find(|(n, _)| n == "default").unwrap().1.events, total);
    }

    // Oracle: one uninterrupted in-process window over the same stream.
    let mut oracle = SlidingWindowLof::new(base_spec().config, Euclidean).expect("oracle");
    let mut expected: Vec<String> = Vec::new();
    for i in 0..total {
        let coords: Vec<f64> = point(i).split(',').map(|f| f.parse().expect("field")).collect();
        let ev = oracle.push(&coords).expect("push");
        expected.push(lof_stream::wire::stream_record(&ev));
    }
    let served: Vec<&String> = first.iter().chain(second.iter()).collect();
    assert_eq!(served.len(), expected.len());
    for (i, (got, want)) in served.iter().zip(expected.iter()).enumerate() {
        assert_eq!(strip_latency(got), strip_latency(want), "record {i} diverged after restore");
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_command_persists_on_demand() {
    let dir = std::env::temp_dir().join(format!("lof-serve-snap-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServeConfig::new(base_spec(), "euclidean");
    config.snapshot_dir = Some(dir.clone());
    let handle = start(config);
    let mut client = Client::connect(handle.addr());

    client.send("TENANT CREATE extra");
    client.recv();
    for i in 0..6 {
        client.send(&point(i));
        client.recv();
    }
    // Snapshot one tenant, then all; both ack with the persisted set.
    client.send("SNAPSHOT default");
    assert_eq!(client.recv(), "{\"type\":\"snapshot\",\"tenants\":[\"default\"]}");
    client.send("SNAPSHOT");
    assert_eq!(client.recv(), "{\"type\":\"snapshot\",\"tenants\":[\"default\",\"extra\"]}");
    client.send("SNAPSHOT nonesuch");
    assert!(client.recv().contains("unknown tenant"));
    assert!(dir.join("default.lofw").exists());
    assert!(dir.join("extra.lofw").exists());

    drop(client);
    handle.drain().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_without_a_directory_is_a_clean_error() {
    let handle = start(ServeConfig::new(base_spec(), "euclidean"));
    let mut client = Client::connect(handle.addr());
    client.send("SNAPSHOT");
    assert!(client.recv().contains("no snapshot directory configured"));
    drop(client);
    handle.drain().expect("drain");
}
