//! Log-linear latency histogram, promoted out of
//! `crates/stream/src/histogram.rs` and made shareable: recording goes
//! through `&self` (atomics), so the serve loop's scorer thread can
//! record while exposition snapshots from another thread.
//!
//! Each power-of-two octave `[2^b, 2^(b+1))` is split into **four
//! linearly spaced sub-buckets** (values below 4 get one exact slot
//! each), so quantile estimates carry a guaranteed relative error of
//! ≤ 25% instead of the ≤ 2x a pure power-of-two layout gives. That
//! matters at streaming latencies: a window scoring events in 150–500µs
//! used to collapse p50/p95/p99 onto the same two bucket edges
//! (262.14µs / 524.29µs in `BENCH_stream.json`), which is octave
//! granularity, not measurement. Recording stays a handful of
//! instructions — a `leading_zeros`, a shift-and-mask for the
//! sub-bucket, and an increment.
//!
//! ## The overflow bucket
//!
//! The original stream histogram hard-coded 64 octaves, which covers all
//! of `u64` — but a registry full of histograms that size is wasteful
//! when real event latencies fit comfortably below 2^40 ns
//! (~18 minutes). The histogram defaults to [`DEFAULT_BUCKETS`] = 40
//! octaves and routes anything at or above `2^buckets` into one explicit
//! *overflow* bucket instead of silently dropping it: `count()` still
//! includes the sample, `max_ns()` still reports it, and quantiles that
//! land in the overflow bucket saturate to the observed maximum.
//! `overflow_count()` exposes how many samples overflowed so dashboards
//! can tell "p99 is 900ms" from "the histogram range is too small".
//!
//! Unlike [`Counter`](crate::Counter) and [`Gauge`](crate::Gauge), the
//! histogram stays **functional with the `obs` feature off**: it predates
//! the registry, and its owners (the sliding window's `StreamStats`) read
//! it back as data, not telemetry.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of octaves: covers up to `2^40` ns (~18 minutes)
/// before the overflow bucket takes over.
pub const DEFAULT_BUCKETS: usize = 40;

/// Upper limit on configurable octaves — 64 covers all of `u64`, at
/// which point the overflow bucket is unreachable.
pub const MAX_BUCKETS: usize = 64;

/// Number of linear sub-buckets per octave.
const SUBS: usize = 4;

/// Slots needed to cover octaves `0..buckets` with [`SUBS`] sub-buckets
/// each: values `0..4` get one exact slot apiece, every later octave
/// `[2^b, 2^(b+1))` gets [`SUBS`] slots. Tiny ranges (`buckets <= 2`)
/// stay fully linear.
fn slot_count(buckets: usize) -> usize {
    if buckets <= 2 {
        1 << buckets
    } else {
        SUBS * buckets - SUBS
    }
}

/// A lock-free log-linear histogram of `u64` samples (nanoseconds by
/// convention), with a saturating overflow bucket past the top edge.
#[derive(Debug)]
pub struct Histogram {
    /// `slot_count(buckets) + 1` slots; the final slot is the overflow
    /// bucket.
    counts: Box<[AtomicU64]>,
    /// Octaves covered before overflow (`2^buckets` is the first
    /// overflowing value).
    buckets: usize,
    total: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// A plain-data copy of a histogram's aggregates at one instant, for
/// embedding in reports without holding the live histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    /// Total samples recorded (overflowed samples included).
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum_ns: u64,
    /// Largest sample seen.
    pub max_ns: u64,
    /// Samples routed to the overflow bucket.
    pub overflow: u64,
    /// Median estimate.
    pub p50_ns: u64,
    /// 95th percentile estimate.
    pub p95_ns: u64,
    /// 99th percentile estimate.
    pub p99_ns: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for Histogram {
    fn clone(&self) -> Self {
        let out = Self::with_buckets(self.buckets);
        for (dst, src) in out.counts.iter().zip(self.counts.iter()) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out.total.store(self.total.load(Ordering::Relaxed), Ordering::Relaxed);
        out.sum_ns.store(self.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        out.max_ns.store(self.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        out
    }
}

impl Histogram {
    /// Creates a histogram covering [`DEFAULT_BUCKETS`] octaves plus the
    /// overflow bucket.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Creates a histogram covering `buckets` octaves (clamped to
    /// `1..=`[`MAX_BUCKETS`]) plus one overflow bucket; samples at or
    /// above `2^buckets` overflow.
    pub fn with_buckets(buckets: usize) -> Self {
        let buckets = buckets.clamp(1, MAX_BUCKETS);
        let counts = (0..=slot_count(buckets)).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        Self {
            counts: counts.into_boxed_slice(),
            buckets,
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Number of octaves covered (excluding the overflow bucket).
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The slot a sample lands in: exact slots below 4 (or below
    /// `2^buckets` when the whole range is linear), then [`SUBS`] linear
    /// sub-buckets per octave; `slot_count(buckets)` is the overflow
    /// slot.
    fn slot_of(&self, ns: u64) -> usize {
        if self.buckets < MAX_BUCKETS && ns >= 1u64 << self.buckets {
            return slot_count(self.buckets);
        }
        if ns < 4 || self.buckets <= 2 {
            return ns as usize;
        }
        let b = (63 - ns.leading_zeros()) as usize;
        let sub = ((ns >> (b - 2)) & 3) as usize;
        SUBS * (b - 1) + sub
    }

    /// Inclusive upper edge of an in-range slot.
    fn slot_edge(&self, slot: usize) -> u64 {
        if slot < 4 || self.buckets <= 2 {
            return slot as u64;
        }
        let b = slot / SUBS + 1;
        let sub = (slot % SUBS) as u64;
        // `(2^b - 1) + (sub + 1) * 2^(b-2)` stays in `u64` even for the
        // top octave (`b = 63`, `sub = 3` lands exactly on `u64::MAX`).
        ((1u64 << b) - 1) + (sub + 1) * (1u64 << (b - 2))
    }

    /// Records one sample. Samples at or above `2^buckets` land in the
    /// overflow bucket — counted, summed, and reflected in `max_ns`, never
    /// dropped.
    pub fn record(&self, ns: u64) {
        let bucket = self.slot_of(ns);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        // Saturating sum: a wrapped total would silently corrupt the mean.
        let mut cur = self.sum_ns.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(ns);
            match self.sum_ns.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of samples recorded, including overflowed ones.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Alias for [`count`](Self::count), matching exposition naming.
    pub fn total_count(&self) -> u64 {
        self.count()
    }

    /// Samples that landed in the overflow bucket (at or above
    /// `2^buckets`).
    pub fn overflow_count(&self) -> u64 {
        self.counts[slot_count(self.buckets)].load(Ordering::Relaxed)
    }

    /// Saturating sum of all recorded samples.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 when empty.
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns().checked_div(self.count()).unwrap_or(0)
    }

    /// Largest sample seen, or 0 when empty.
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Upper-edge quantile estimate: the returned value is ≥ the true
    /// q-quantile and within 25% of it (sub-bucket upper edge, clamped
    /// to the observed maximum). Returns 0 when empty; `q` is clamped to
    /// `[0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let slots = slot_count(self.buckets);
        let mut seen = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                let edge = if b >= slots {
                    // Overflow bucket: the only honest upper bound is
                    // the observed maximum.
                    u64::MAX
                } else {
                    self.slot_edge(b)
                };
                return edge.min(self.max_ns());
            }
        }
        self.max_ns()
    }

    /// `(p50, p95, p99)` in nanoseconds.
    pub fn percentiles_ns(&self) -> (u64, u64, u64) {
        (self.quantile_ns(0.50), self.quantile_ns(0.95), self.quantile_ns(0.99))
    }

    /// Captures the aggregates at one instant.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let (p50_ns, p95_ns, p99_ns) = self.percentiles_ns();
        HistogramSnapshot {
            count: self.count(),
            sum_ns: self.sum_ns(),
            max_ns: self.max_ns(),
            overflow: self.overflow_count(),
            p50_ns,
            p95_ns,
            p99_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.overflow_count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.percentiles_ns(), (0, 0, 0));
    }

    #[test]
    fn quantiles_bracket_the_data_within_a_bucket() {
        let h = Histogram::new();
        for ns in [100, 200, 300, 400, 500, 600, 700, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 8);
        // p50 -> 4th sample (400) -> sub-bucket [384, 448) -> edge 447.
        let p50 = h.quantile_ns(0.5);
        assert!((400..=511).contains(&p50), "p50 = {p50}");
        assert_eq!(p50, 447, "four sub-buckets per octave pin the edge");
        // p99 -> 8th sample -> clamped to the observed max.
        assert_eq!(h.quantile_ns(0.99), 100_000);
    }

    #[test]
    fn sub_buckets_bound_quantile_error_to_a_quarter_octave() {
        // Two samples an octave apart: the p50 edge must sit within 25%
        // of the smaller sample, where power-of-two buckets put it at
        // the octave edge (75% off for a sample near the lower edge).
        let h = Histogram::new();
        h.record(150_000);
        h.record(400_000);
        let p50 = h.quantile_ns(0.5);
        assert_eq!(p50, 163_839, "150000 lands in sub-bucket [131072, 163840)");
        assert!(
            (p50 as f64) < 150_000.0 * 1.25,
            "sub-bucket edge must stay within 25% of the sample"
        );
    }

    #[test]
    fn zero_and_huge_latencies_are_representable() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        assert!(h.quantile_ns(1.0) >= 1);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::new();
        for i in 0..1000u64 {
            h.record(i * 37 % 5000);
        }
        let mut last = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile_ns(q);
            assert!(v >= last, "quantile regressed at q={q}: {v} < {last}");
            last = v;
        }
    }

    #[test]
    fn out_of_range_samples_saturate_into_the_overflow_bucket() {
        // Regression for the silent-drop bug: a 4-bucket histogram tops
        // out at 2^4 = 16; samples at or beyond must still be counted.
        let h = Histogram::with_buckets(4);
        h.record(3); // exact linear slot
        h.record(16); // exactly the top edge -> overflow
        h.record(1_000_000); // far past -> overflow
        assert_eq!(h.count(), 3, "overflowed samples must not vanish from the count");
        assert_eq!(h.overflow_count(), 2);
        assert_eq!(h.max_ns(), 1_000_000);
        assert_eq!(h.sum_ns(), 1_000_019);
        // A quantile landing in the overflow bucket saturates to max.
        assert_eq!(h.quantile_ns(1.0), 1_000_000);
        // In-range quantiles are unaffected by the overflow tail.
        assert!(h.quantile_ns(0.1) <= 3);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum_ns(), u64::MAX);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn bucket_count_is_clamped_and_reported() {
        assert_eq!(Histogram::with_buckets(0).buckets(), 1);
        assert_eq!(Histogram::with_buckets(400).buckets(), MAX_BUCKETS);
        assert_eq!(Histogram::new().buckets(), DEFAULT_BUCKETS);
    }

    #[test]
    fn clone_snapshots_the_counts() {
        let h = Histogram::new();
        h.record(100);
        let c = h.clone();
        h.record(200);
        assert_eq!(c.count(), 1);
        assert_eq!(h.count(), 2);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max_ns, 200);
    }

    #[test]
    fn histogram_works_with_obs_off_too() {
        // Unlike Counter/Gauge, the histogram is a value type and must
        // function identically in both feature modes.
        let h = Histogram::new();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean_ns(), 7);
    }
}
