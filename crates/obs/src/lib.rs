//! # lof-obs — zero-dependency observability for the LOF workspace
//!
//! Streaming outlier detectors live or die on runtime visibility: the
//! paper's two-step pipeline and its serving layer process millions of
//! distance computations per second, and without counters there is no way
//! to tell *where* that time goes — or whether the fast paths (blocked
//! kernel tiles, gated tie-shell recoveries, incremental cascades) are
//! actually taken. This crate is the telemetry plane the rest of the
//! workspace threads through:
//!
//! * [`Counter`] — a monotonic counter sharded across cache lines, so
//!   concurrent increments from reader/scorer/worker threads never
//!   contend on one hot cache line and totals are still exact;
//! * [`Gauge`] — a last-write-wins `f64` level (window occupancy, last
//!   emitted LOF — which is legitimately `∞` on duplicate-heavy windows);
//! * [`Histogram`] — the power-of-two latency histogram promoted out of
//!   `lof-stream`, now recordable through `&self` from any thread and
//!   carrying an explicit saturating overflow bucket;
//! * [`SpanGuard`] / [`span!`] — RAII wall-clock timers feeding a
//!   registry histogram;
//! * [`MetricsRegistry`] — a name → metric map with stable (sorted)
//!   iteration order and two exposition formats: Prometheus text and a
//!   single-line NDJSON object sharing `lof_stream::wire`'s `inf` / `nan`
//!   encoding rules.
//!
//! ## The `obs` feature
//!
//! Instrumentation must not tax the kernels it observes. With the crate's
//! default `obs` feature **disabled** (`--no-default-features`), counters
//! and gauges are zero-sized, their methods compile to nothing, and
//! [`span!`] neither reads the clock nor touches the registry — the
//! instrumented hot paths are byte-for-byte the uninstrumented ones.
//! [`Histogram`] is the deliberate exception (see its docs): it is a
//! value type whose owners read it back, so it stays functional in both
//! modes. [`enabled`] reports the compiled mode at runtime.
//!
//! ## Quick start
//!
//! ```
//! use lof_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let events = registry.counter("stream.events");
//! events.add(3);
//! registry.gauge("stream.window_occupancy").set(512.0);
//! {
//!     let _span = lof_obs::span!(registry, "demo.tick");
//! } // dropping the guard records the elapsed nanoseconds
//! let text = registry.render_prometheus();
//! assert!(text.ends_with("# EOF"));
//! if lof_obs::enabled() {
//!     assert_eq!(events.value(), 3);
//!     assert!(text.contains("lof_stream_events 3"));
//! }
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod expose;
pub mod histogram;
pub mod metrics;
pub mod registry;
pub mod span;

pub use expose::labeled;
pub use histogram::{Histogram, HistogramSnapshot, DEFAULT_BUCKETS, MAX_BUCKETS};
pub use metrics::{Counter, Gauge};
pub use registry::{Metric, MetricsRegistry};
pub use span::SpanGuard;

use std::sync::OnceLock;

/// True when the crate was compiled with the `obs` feature (the default):
/// counters, gauges, and spans are live. False under
/// `--no-default-features`, where they compile to no-ops.
pub const fn enabled() -> bool {
    cfg!(feature = "obs")
}

/// The process-wide registry: instrumentation that has no natural owner
/// (the core kernels, the sweep) publishes here. Subsystems with an owner
/// (a [`SlidingWindowLof`]-style component) should carry their own
/// [`MetricsRegistry`] instead, so tests and servers see isolated counts.
///
/// [`SlidingWindowLof`]: https://docs.rs/lof-stream
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Starts an RAII span timer recording into a registry histogram when
/// dropped. One-argument form uses the [`global`] registry; two-argument
/// form takes an explicit registry expression first.
///
/// With `obs` off this expands to a guard that does nothing — the
/// registry lookup closure is never called and the clock is never read.
///
/// ```
/// let _span = lof_obs::span!("knn.batch");
/// // ... timed work ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::start(|| $crate::global().histogram($name))
    };
    ($registry:expr, $name:expr) => {
        $crate::SpanGuard::start(|| $registry.histogram($name))
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_reflects_the_feature() {
        assert_eq!(super::enabled(), cfg!(feature = "obs"));
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = super::global().counter("lib.test.global");
        a.inc();
        let b = super::global().counter("lib.test.global");
        if super::enabled() {
            assert_eq!(b.value(), 1);
        } else {
            assert_eq!(b.value(), 0);
        }
    }
}
