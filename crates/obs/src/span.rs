//! RAII span timers.
//!
//! A [`SpanGuard`] reads the monotonic clock when started and records the
//! elapsed nanoseconds into a registry histogram when dropped. The
//! [`span!`](crate::span) macro is the usual entry point:
//!
//! ```
//! fn build_table(registry: &lof_obs::MetricsRegistry) {
//!     let _span = lof_obs::span!(registry, "core.materialize.build");
//!     // ... timed work; recording happens when `_span` drops ...
//! }
//! ```
//!
//! With the `obs` feature off, the guard is zero-sized: the
//! histogram-resolving closure is never called (no registry lookup) and
//! `Instant::now` is never read, so spans cost literally nothing on the
//! benchmark builds.

use crate::Histogram;
use std::sync::Arc;
#[cfg(feature = "obs")]
use std::time::Instant;

/// Times the region from construction to drop and records it into a
/// histogram. Construct via [`SpanGuard::start`] or the
/// [`span!`](crate::span) macro.
#[derive(Debug)]
pub struct SpanGuard {
    #[cfg(feature = "obs")]
    hist: Arc<Histogram>,
    #[cfg(feature = "obs")]
    start: Instant,
}

impl SpanGuard {
    /// Starts a span recording into the histogram produced by `resolve`.
    /// The closure runs once, eagerly, so the typical
    /// `|| registry.histogram("name")` lookup happens outside the timed
    /// region; with `obs` off it does not run at all.
    #[inline]
    pub fn start<F: FnOnce() -> Arc<Histogram>>(resolve: F) -> Self {
        #[cfg(feature = "obs")]
        {
            Self { hist: resolve(), start: Instant::now() }
        }
        #[cfg(not(feature = "obs"))]
        {
            let _ = resolve;
            Self {}
        }
    }

    /// Nanoseconds elapsed so far (0 with `obs` off). The drop still
    /// records the full span; this is for callers that also want the
    /// value inline.
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "obs")]
        self.hist.record(self.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn span_records_one_sample_on_drop() {
        let r = MetricsRegistry::new();
        {
            let _span = crate::span!(r, "test.span");
            std::hint::black_box(42);
        }
        let h = r.histogram("test.span");
        if crate::enabled() {
            assert_eq!(h.count(), 1);
        } else {
            // The closure never ran, so nothing was registered by the
            // span itself; the lookup above freshly registered an empty
            // histogram.
            assert_eq!(h.count(), 0);
        }
    }

    #[test]
    fn nested_spans_each_record() {
        let r = MetricsRegistry::new();
        {
            let _outer = crate::span!(r, "test.outer");
            let _inner = crate::span!(r, "test.inner");
        }
        if crate::enabled() {
            assert_eq!(r.histogram("test.outer").count(), 1);
            assert_eq!(r.histogram("test.inner").count(), 1);
        }
    }
}
