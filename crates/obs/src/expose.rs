//! Exposition: rendering a [`MetricsRegistry`] as Prometheus text or as
//! one NDJSON line.
//!
//! Both formats iterate the registry's sorted snapshot, so output order
//! is deterministic — the golden-file test under `tests/golden/` pins it.
//! Non-finite gauge values follow each format's own convention:
//! Prometheus text uses `+Inf` / `-Inf` / `NaN`; NDJSON uses the JSON
//! strings `"inf"` / `"-inf"` / `"nan"`, byte-identical to
//! `lof_stream::wire::json_f64` (the serve loop emits both from the same
//! connection, so the encodings must agree).

use crate::registry::{Metric, MetricsRegistry};
use std::fmt::Write as _;

/// Encodes an `f64` as a JSON value. Identical rules to
/// `lof_stream::wire::json_f64` (a cross-crate test pins the match):
/// finite values print shortest-roundtrip with a forced `.0` on integral
/// floats; non-finite values become the strings `"inf"` / `"-inf"` /
/// `"nan"`.
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else if v.is_nan() {
        "\"nan\"".to_owned()
    } else if v > 0.0 {
        "\"inf\"".to_owned()
    } else {
        "\"-inf\"".to_owned()
    }
}

/// Encodes an `f64` as a Prometheus text-format sample value
/// (`+Inf` / `-Inf` / `NaN` for the non-finite classes).
pub fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Rewrites a dotted metric name (`stream.events`) as a Prometheus
/// metric name (`lof_stream_events`): dots become underscores and every
/// name gets the `lof_` namespace prefix.
pub fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("lof_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Builds a labeled registry key: `labeled("serve.events_in", "tenant",
/// "alpha")` → `serve.events_in{tenant="alpha"}`. Labeled keys sort
/// immediately after their unlabeled base (`{` > every ASCII
/// alphanumeric), so the sorted snapshot keeps a base and all its label
/// variants adjacent and [`MetricsRegistry::render_prometheus`] can emit
/// one `# TYPE` line per family. The label value is escaped per the
/// Prometheus text rules (`\\`, `\"`, `\n`).
pub fn labeled(base: &str, key: &str, value: &str) -> String {
    let mut out = String::with_capacity(base.len() + key.len() + value.len() + 6);
    out.push_str(base);
    out.push('{');
    out.push_str(key);
    out.push_str("=\"");
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push_str("\"}");
    out
}

/// Splits a registry key into its base name and an optional `{...}`
/// label block produced by [`labeled`]. The base is sanitized through
/// [`prom_name`]; the label block is already Prometheus syntax and
/// passes through verbatim.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// A quantile sample name: merges `quantile="q"` into an existing label
/// block (`lof_x{tenant="a",quantile="0.5"}`) or opens a fresh one.
fn quantile_sample(pbase: &str, labels: &str, q: &str) -> String {
    if labels.is_empty() {
        format!("{pbase}{{quantile=\"{q}\"}}")
    } else {
        let inner = &labels[1..labels.len() - 1];
        format!("{pbase}{{{inner},quantile=\"{q}\"}}")
    }
}

/// Escapes a registry key for use as a JSON object key. Labeled names
/// carry `"` characters; emitting them raw would produce invalid JSON.
/// Same rules as `lof_stream::wire::json_escape`.
fn json_escape_key(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 2);
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl MetricsRegistry {
    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Counters and gauges render as one `# TYPE` line plus one sample;
    /// histograms render as a `summary` (quantile samples at 0.5 / 0.95 /
    /// 0.99, then `_sum`, `_count`, `_max`, and `_overflow`). The final
    /// line is the `# EOF` terminator with no trailing newline, so a
    /// client reading line-by-line over a shared NDJSON connection knows
    /// exactly where the block ends.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family: Option<String> = None;
        for (name, metric) in self.snapshot() {
            let (base, labels) = split_labels(&name);
            let pbase = prom_name(base);
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "summary",
            };
            // Labeled keys sort adjacent to their unlabeled base, so a
            // family's `# TYPE` line is emitted exactly once even when
            // many tenants publish under the same base name.
            if last_family.as_deref() != Some(pbase.as_str()) {
                let _ = writeln!(out, "# TYPE {pbase} {kind}");
                last_family = Some(pbase.clone());
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{pbase}{labels} {}", c.value());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{pbase}{labels} {}", prom_f64(g.value()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ =
                        writeln!(out, "{} {}", quantile_sample(&pbase, labels, "0.5"), snap.p50_ns);
                    let _ = writeln!(
                        out,
                        "{} {}",
                        quantile_sample(&pbase, labels, "0.95"),
                        snap.p95_ns
                    );
                    let _ = writeln!(
                        out,
                        "{} {}",
                        quantile_sample(&pbase, labels, "0.99"),
                        snap.p99_ns
                    );
                    let _ = writeln!(out, "{pbase}_sum{labels} {}", snap.sum_ns);
                    let _ = writeln!(out, "{pbase}_count{labels} {}", snap.count);
                    let _ = writeln!(out, "{pbase}_max{labels} {}", snap.max_ns);
                    let _ = writeln!(out, "{pbase}_overflow{labels} {}", snap.overflow);
                }
            }
        }
        out.push_str("# EOF");
        out
    }

    /// Renders the registry as one JSON object on a single line, keys in
    /// sorted metric-name order. Counters are bare integers, gauges are
    /// `json_f64`-encoded numbers, histograms are nested objects:
    ///
    /// ```json
    /// {"stream.events":120,"stream.last_lof":1.5,
    ///  "stream.latency_ns":{"count":8,"sum_ns":108000,"max_ns":100000,
    ///                       "overflow":0,"p50_ns":511,"p95_ns":100000,
    ///                       "p99_ns":100000}}
    /// ```
    pub fn render_ndjson(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, metric)) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", json_escape_key(name));
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.value());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{}", json_f64(g.value()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"overflow\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                        snap.count,
                        snap.sum_ns,
                        snap.max_ns,
                        snap.overflow,
                        snap.p50_ns,
                        snap.p95_ns,
                        snap.p99_ns
                    );
                }
            }
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_matches_the_wire_rules() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(-0.25), "-0.25");
        assert_eq!(json_f64(f64::INFINITY), "\"inf\"");
        assert_eq!(json_f64(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(json_f64(f64::NAN), "\"nan\"");
        assert_eq!(json_f64(1e300).trim_end_matches(".0").parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn prom_f64_uses_prometheus_spellings() {
        assert_eq!(prom_f64(1.5), "1.5");
        assert_eq!(prom_f64(2.0), "2");
        assert_eq!(prom_f64(f64::INFINITY), "+Inf");
        assert_eq!(prom_f64(f64::NEG_INFINITY), "-Inf");
        assert_eq!(prom_f64(f64::NAN), "NaN");
    }

    #[test]
    fn prom_name_sanitizes_and_prefixes() {
        assert_eq!(prom_name("stream.events"), "lof_stream_events");
        assert_eq!(prom_name("core.kernel.tiles"), "lof_core_kernel_tiles");
        assert_eq!(prom_name("weird-name"), "lof_weird_name");
    }

    #[test]
    fn prometheus_render_is_sorted_and_terminated() {
        let r = MetricsRegistry::new();
        r.counter("b.count").add(2);
        r.gauge("a.level").set(f64::INFINITY);
        let text = r.render_prometheus();
        assert!(text.ends_with("# EOF"));
        assert!(!text.ends_with('\n'));
        let a = text.find("lof_a_level").unwrap();
        let b = text.find("lof_b_count").unwrap();
        assert!(a < b, "names must render in sorted order");
        if crate::enabled() {
            assert!(text.contains("lof_a_level +Inf"));
            assert!(text.contains("lof_b_count 2"));
        } else {
            assert!(text.contains("lof_b_count 0"));
        }
    }

    #[test]
    fn labeled_builds_and_escapes_prometheus_label_syntax() {
        assert_eq!(
            labeled("serve.events_in", "tenant", "alpha"),
            "serve.events_in{tenant=\"alpha\"}"
        );
        assert_eq!(labeled("x", "t", "a\"b\\c\nd"), "x{t=\"a\\\"b\\\\c\\nd\"}");
        // Labeled keys sort after their unlabeled base.
        assert!("serve.events_in" < labeled("serve.events_in", "tenant", "a").as_str());
    }

    #[test]
    fn prometheus_render_groups_label_families_under_one_type_line() {
        let r = MetricsRegistry::new();
        r.counter("serve.events_in").add(1);
        r.counter(&labeled("serve.events_in", "tenant", "alpha")).add(2);
        r.counter(&labeled("serve.events_in", "tenant", "beta")).add(3);
        r.histogram(&labeled("serve.latency_ns", "tenant", "alpha")).record(64);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE lof_serve_events_in counter").count(), 1);
        assert_eq!(text.matches("# TYPE lof_serve_latency_ns summary").count(), 1);
        assert!(text.contains("lof_serve_latency_ns{tenant=\"alpha\",quantile=\"0.5\"} "));
        assert!(text.contains("lof_serve_latency_ns_count{tenant=\"alpha\"} "));
        if crate::enabled() {
            assert!(text.contains("lof_serve_events_in 1\n"));
            assert!(text.contains("lof_serve_events_in{tenant=\"alpha\"} 2\n"));
            assert!(text.contains("lof_serve_events_in{tenant=\"beta\"} 3\n"));
        }
        // The unlabeled sample must precede its labeled variants.
        let bare =
            text.find("lof_serve_events_in 0").or_else(|| text.find("lof_serve_events_in 1"));
        let alpha = text.find("lof_serve_events_in{tenant=\"alpha\"}").unwrap();
        assert!(bare.unwrap() < alpha);
    }

    #[test]
    fn ndjson_escapes_labeled_keys() {
        let r = MetricsRegistry::new();
        r.counter(&labeled("serve.events_in", "tenant", "alpha")).add(5);
        let line = r.render_ndjson();
        assert!(line.contains("\"serve.events_in{tenant=\\\"alpha\\\"}\":"));
        // Balanced quoting: the line must still be a single JSON object.
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert_eq!(line.matches('{').count(), line.matches('}').count());
    }

    #[test]
    fn ndjson_render_is_one_sorted_object() {
        let r = MetricsRegistry::new();
        r.counter("b.count").add(7);
        r.gauge("a.level").set(-0.5);
        let h = r.histogram("c.lat");
        h.record(100);
        let line = r.render_ndjson();
        assert!(!line.contains('\n'));
        assert!(line.starts_with('{') && line.ends_with('}'));
        let a = line.find("\"a.level\"").unwrap();
        let b = line.find("\"b.count\"").unwrap();
        let c = line.find("\"c.lat\"").unwrap();
        assert!(a < b && b < c);
        assert!(line.contains("\"count\":1"));
        if crate::enabled() {
            assert!(line.contains("\"a.level\":-0.5"));
            assert!(line.contains("\"b.count\":7"));
        }
    }
}
