//! The name → metric map behind exposition.
//!
//! Registration is the slow path (a mutex around a `BTreeMap`, hit once
//! per metric name per subsystem — instrumented code caches the returned
//! `Arc`s); incrementing is the fast path and never touches the registry.
//! The `BTreeMap` gives exposition its stable sorted order for free,
//! which the golden-file test relies on.

use crate::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One registered metric. Values are `Arc`s: the registry and the
/// instrumented code share the same live instance.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonic [`Counter`].
    Counter(Arc<Counter>),
    /// An `f64` [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A power-of-two [`Histogram`].
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named counters, gauges, and histograms with sorted,
/// deterministic iteration order.
///
/// Names are dotted paths (`"stream.events"`, `"core.kernel.tiles"`);
/// exposition rewrites them per format (dots become underscores in
/// Prometheus text). Looking up a name that exists with a different
/// metric kind panics — that is always an instrumentation bug, never a
/// runtime condition.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, registering a fresh
    /// one on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().unwrap();
        let entry =
            map.entry(name.to_owned()).or_insert_with(|| Metric::Counter(Arc::new(Counter::new())));
        match entry {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Returns the gauge registered under `name`, registering a fresh one
    /// on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().unwrap();
        let entry =
            map.entry(name.to_owned()).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())));
        match entry {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Returns the histogram registered under `name`, registering a fresh
    /// default-sized one on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().unwrap();
        let entry = map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())));
        match entry {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Registers an existing histogram under `name`, replacing any prior
    /// registration. Used to expose a histogram that another component
    /// already owns (the sliding window's latency histogram) without
    /// double-recording.
    pub fn insert_histogram(&self, name: &str, hist: Arc<Histogram>) {
        self.metrics.lock().unwrap().insert(name.to_owned(), Metric::Histogram(hist));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.lock().unwrap().is_empty()
    }

    /// All metrics in sorted name order, cloned out of the lock. The
    /// `Arc`s still point at the live instances.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.metrics.lock().unwrap().iter().map(|(k, v)| (k.clone(), v.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_instance() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        if crate::enabled() {
            assert_eq!(a.value(), 3);
        }
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.counter("zeta");
        r.gauge("alpha");
        r.histogram("mid");
        let names: Vec<_> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn insert_histogram_shares_the_instance() {
        let r = MetricsRegistry::new();
        let owned = Arc::new(Histogram::new());
        owned.record(5);
        r.insert_histogram("lat", Arc::clone(&owned));
        let seen = r.histogram("lat");
        assert!(Arc::ptr_eq(&owned, &seen));
        assert_eq!(seen.count(), 1);
    }
}
