//! Monotonic counters and `f64` gauges.
//!
//! Counters are sharded across cache lines: the serve loop increments
//! from one reader thread per connection plus the scorer thread, and the
//! parallel materializer from every worker. A single `AtomicU64` would
//! make each of those increments a cross-core cache-line bounce; instead
//! each thread hashes to one of [`SHARDS`] padded slots and
//! [`Counter::value`] sums them. Increments are never lost — relaxed
//! `fetch_add` is atomic per shard and the sum over shards is exact.
//!
//! With the `obs` feature off, both types are zero-sized and every method
//! compiles to nothing.

#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of padded slots a [`Counter`] spreads increments over.
pub const SHARDS: usize = 8;

/// One cache line worth of counter so neighboring shards never falsely
/// share. 64 bytes covers x86-64 and most aarch64 parts.
#[cfg(feature = "obs")]
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedU64(AtomicU64);

#[cfg(feature = "obs")]
fn shard_index() -> usize {
    // A process-wide round-robin assignment at first use per thread: the
    // workspace's thread counts are small (workers + per-connection
    // readers), so round-robin spreads them evenly without hashing.
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonic counter. Cheap to increment from many threads at once;
/// [`value`](Counter::value) is exact (no sampling, no loss).
#[derive(Debug, Default)]
pub struct Counter {
    #[cfg(feature = "obs")]
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(feature = "obs")]
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = n;
    }

    /// Current total across all shards. Always 0 with `obs` off.
    pub fn value(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }
}

/// A last-write-wins `f64` level. LOF scores are legitimately `+∞` on
/// duplicate-heavy windows, so the gauge carries the full `f64` range
/// including infinities and NaN; exposition encodes them per `wire.rs`.
#[derive(Debug)]
pub struct Gauge {
    #[cfg(feature = "obs")]
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// Creates a gauge at 0.0.
    pub fn new() -> Self {
        Self {
            #[cfg(feature = "obs")]
            bits: AtomicU64::new(0.0f64.to_bits()),
        }
    }

    /// Stores `v`.
    #[inline]
    pub fn set(&self, v: f64) {
        #[cfg(feature = "obs")]
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        #[cfg(not(feature = "obs"))]
        let _ = v;
    }

    /// Last stored value. Always 0.0 with `obs` off.
    pub fn value(&self) -> f64 {
        #[cfg(feature = "obs")]
        {
            f64::from_bits(self.bits.load(Ordering::Relaxed))
        }
        #[cfg(not(feature = "obs"))]
        {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        if crate::enabled() {
            assert_eq!(c.value(), 42);
        } else {
            assert_eq!(c.value(), 0);
        }
    }

    #[test]
    fn concurrent_increments_are_exact() {
        // The sharded design must never lose an increment: 8 threads x
        // 100_000 increments each land on exactly 800_000.
        let c = Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..100_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        if crate::enabled() {
            assert_eq!(c.value(), 800_000);
        } else {
            assert_eq!(c.value(), 0);
        }
    }

    #[test]
    fn gauge_holds_the_full_f64_range() {
        let g = Gauge::new();
        assert_eq!(g.value(), 0.0);
        for v in [1.5, -3.25, f64::INFINITY, f64::NEG_INFINITY] {
            g.set(v);
            if crate::enabled() {
                assert_eq!(g.value(), v);
            } else {
                assert_eq!(g.value(), 0.0);
            }
        }
        g.set(f64::NAN);
        if crate::enabled() {
            assert!(g.value().is_nan());
        }
    }
}
