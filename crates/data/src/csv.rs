//! Minimal CSV persistence for datasets and score tables.
//!
//! The harness writes every experiment's raw series to `results/*.csv`;
//! this module is the shared writer/reader (hand-rolled: the workspace's
//! dependency policy has no `csv` crate, and we only need numeric tables).

use lof_core::{Dataset, LofError};
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// Serializes a dataset to CSV with a generated `x0,x1,…` header.
pub fn dataset_to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<String> = (0..data.dims()).map(|d| format!("x{d}")).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (_, p) in data.iter() {
        let mut first = true;
        for v in p {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{v}");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses a CSV of numeric columns (optional non-numeric header row is
/// skipped automatically).
///
/// # Errors
///
/// Returns [`LofError::DimensionMismatch`] for ragged rows and
/// [`LofError::NonFiniteCoordinate`] for unparsable or non-finite fields.
pub fn dataset_from_csv(text: &str) -> Result<Dataset, LofError> {
    let mut rows: Vec<Vec<f64>> = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let parsed: Option<Vec<f64>> = fields.iter().map(|f| f.parse::<f64>().ok()).collect();
        match parsed {
            Some(values) => rows.push(values),
            None if line_no == 0 && rows.is_empty() => continue, // header
            None => {
                return Err(LofError::NonFiniteCoordinate { point: rows.len(), dim: 0 });
            }
        }
    }
    let dims = rows.first().map_or(0, Vec::len);
    for row in &rows {
        if row.len() != dims {
            return Err(LofError::DimensionMismatch { expected: dims, found: row.len() });
        }
    }
    if dims == 0 {
        return Ok(Dataset::new(0));
    }
    let mut ds = Dataset::with_capacity(dims, rows.len());
    for row in &rows {
        ds.push(row)?;
    }
    Ok(ds)
}

/// Writes a generic named-column table (the shape every experiment result
/// takes) to a CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_table(path: impl AsRef<Path>, columns: &[&str], rows: &[Vec<f64>]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    out.push_str(&columns.join(","));
    out.push('\n');
    for row in rows {
        let mut first = true;
        for v in row {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{v}");
            first = false;
        }
        out.push('\n');
    }
    fs::write(path, out)
}

/// Saves a dataset to a CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_dataset(path: impl AsRef<Path>, data: &Dataset) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, dataset_to_csv(data))
}

/// Loads a dataset from a CSV file.
///
/// # Errors
///
/// Propagates I/O errors; parse failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn load_dataset(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let text = fs::read_to_string(path)?;
    dataset_from_csv(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_string() {
        let ds = Dataset::from_rows(&[[1.0, 2.5], [-3.0, 0.125]]).unwrap();
        let text = dataset_to_csv(&ds);
        let back = dataset_from_csv(&text).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn header_is_optional() {
        let with = "x0,x1\n1,2\n3,4\n";
        let without = "1,2\n3,4\n";
        assert_eq!(dataset_from_csv(with).unwrap(), dataset_from_csv(without).unwrap());
    }

    #[test]
    fn ragged_rows_are_rejected() {
        assert!(dataset_from_csv("1,2\n3\n").is_err());
    }

    #[test]
    fn garbage_fields_are_rejected() {
        assert!(dataset_from_csv("1,2\nfoo,4\n").is_err());
    }

    #[test]
    fn empty_input_gives_empty_dataset() {
        assert!(dataset_from_csv("").unwrap().is_empty());
        assert!(dataset_from_csv("a,b\n").unwrap().is_empty());
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("lof_csv_test");
        let path = dir.join("ds.csv");
        let ds = Dataset::from_rows(&[[9.0], [8.0], [7.5]]).unwrap();
        save_dataset(&path, &ds).unwrap();
        assert_eq!(load_dataset(&path).unwrap(), ds);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn write_table_produces_header_and_rows() {
        let dir = std::env::temp_dir().join("lof_table_test");
        let path = dir.join("t.csv");
        write_table(&path, &["k", "lof"], &[vec![1.0, 2.0], vec![2.0, 1.5]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("k,lof\n"));
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_dir_all(dir);
    }
}
