//! Minimal CSV persistence for datasets and score tables.
//!
//! The harness writes every experiment's raw series to `results/*.csv`;
//! this module is the shared writer/reader (hand-rolled: the workspace's
//! dependency policy has no `csv` crate, and we only need numeric tables).

use lof_core::{Dataset, LofError};
use std::fmt::Write as _;
use std::fs;
use std::io::{self, BufRead};
use std::path::Path;

/// Serializes a dataset to CSV with a generated `x0,x1,…` header.
pub fn dataset_to_csv(data: &Dataset) -> String {
    let mut out = String::new();
    let header: Vec<String> = (0..data.dims()).map(|d| format!("x{d}")).collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for (_, p) in data.iter() {
        let mut first = true;
        for v in p {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{v}");
            first = false;
        }
        out.push('\n');
    }
    out
}

enum CsvError {
    Io(io::Error),
    Lof(LofError),
}

/// The streaming parser behind both entry points: one line in flight at a
/// time, rows pushed straight into the growing dataset, so memory is
/// O(row), not O(file).
fn parse_lines<R: BufRead>(reader: R) -> Result<Dataset, CsvError> {
    let mut ds: Option<Dataset> = None;
    let mut rows = 0usize;
    let mut row_buf: Vec<f64> = Vec::new();
    for (line_no, line) in reader.lines().enumerate() {
        let line = line.map_err(CsvError::Io)?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        row_buf.clear();
        let parsed = trimmed.split(',').all(|f| match f.trim().parse::<f64>() {
            Ok(v) => {
                row_buf.push(v);
                true
            }
            Err(_) => false,
        });
        if !parsed {
            if line_no == 0 && rows == 0 {
                continue; // header
            }
            return Err(CsvError::Lof(LofError::NonFiniteCoordinate { point: rows, dim: 0 }));
        }
        let ds = ds.get_or_insert_with(|| Dataset::new(row_buf.len()));
        if row_buf.len() != ds.dims() {
            return Err(CsvError::Lof(LofError::DimensionMismatch {
                expected: ds.dims(),
                found: row_buf.len(),
            }));
        }
        ds.push(&row_buf).map_err(CsvError::Lof)?;
        rows += 1;
    }
    Ok(ds.unwrap_or_else(|| Dataset::new(0)))
}

/// Parses a CSV of numeric columns (optional non-numeric header row is
/// skipped automatically).
///
/// # Errors
///
/// Returns [`LofError::DimensionMismatch`] for ragged rows and
/// [`LofError::NonFiniteCoordinate`] for unparsable or non-finite fields.
pub fn dataset_from_csv(text: &str) -> Result<Dataset, LofError> {
    match parse_lines(text.as_bytes()) {
        Ok(ds) => Ok(ds),
        Err(CsvError::Lof(e)) => Err(e),
        // Unreachable from a &str source, but don't panic on principle.
        Err(CsvError::Io(e)) => Err(LofError::InvalidPartition(format!("csv read: {e}"))),
    }
}

/// Parses a CSV of numeric columns line-by-line from any [`BufRead`]
/// source — the streaming form of [`dataset_from_csv`], with O(row)
/// parser memory (the dataset itself still accumulates).
///
/// # Errors
///
/// Propagates reader errors; parse failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn dataset_from_reader<R: BufRead>(reader: R) -> io::Result<Dataset> {
    parse_lines(reader).map_err(|e| match e {
        CsvError::Io(e) => e,
        CsvError::Lof(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
    })
}

/// Writes a generic named-column table (the shape every experiment result
/// takes) to a CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_table(path: impl AsRef<Path>, columns: &[&str], rows: &[Vec<f64>]) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    out.push_str(&columns.join(","));
    out.push('\n');
    for row in rows {
        let mut first = true;
        for v in row {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{v}");
            first = false;
        }
        out.push('\n');
    }
    fs::write(path, out)
}

/// Saves a dataset to a CSV file, creating parent directories as needed.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_dataset(path: impl AsRef<Path>, data: &Dataset) -> io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, dataset_to_csv(data))
}

/// Loads a dataset from a CSV file, streaming it line-by-line (the file
/// is never held in memory whole).
///
/// # Errors
///
/// Propagates I/O errors; parse failures surface as
/// [`io::ErrorKind::InvalidData`].
pub fn load_dataset(path: impl AsRef<Path>) -> io::Result<Dataset> {
    let file = fs::File::open(path)?;
    dataset_from_reader(io::BufReader::with_capacity(1 << 20, file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_string() {
        let ds = Dataset::from_rows(&[[1.0, 2.5], [-3.0, 0.125]]).unwrap();
        let text = dataset_to_csv(&ds);
        let back = dataset_from_csv(&text).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn header_is_optional() {
        let with = "x0,x1\n1,2\n3,4\n";
        let without = "1,2\n3,4\n";
        assert_eq!(dataset_from_csv(with).unwrap(), dataset_from_csv(without).unwrap());
    }

    #[test]
    fn ragged_rows_are_rejected() {
        assert!(dataset_from_csv("1,2\n3\n").is_err());
    }

    #[test]
    fn garbage_fields_are_rejected() {
        assert!(dataset_from_csv("1,2\nfoo,4\n").is_err());
    }

    #[test]
    fn empty_input_gives_empty_dataset() {
        assert!(dataset_from_csv("").unwrap().is_empty());
        assert!(dataset_from_csv("a,b\n").unwrap().is_empty());
    }

    #[test]
    fn reader_streams_line_by_line() {
        // A reader that hands out one byte at a time: any whole-file read
        // would misparse, so passing proves the parser is incremental.
        struct OneByte<'a>(&'a [u8]);
        impl std::io::Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                match self.0.split_first() {
                    Some((&b, rest)) => {
                        buf[0] = b;
                        self.0 = rest;
                        Ok(1)
                    }
                    None => Ok(0),
                }
            }
        }
        let text = "x0,x1\n1,2\n3,4\n5,6\n";
        let ds =
            dataset_from_reader(io::BufReader::with_capacity(1, OneByte(text.as_bytes()))).unwrap();
        assert_eq!(ds, dataset_from_csv(text).unwrap());
        assert!(dataset_from_reader(io::BufReader::new(&b"1,2\n3\n"[..])).is_err());
    }

    #[test]
    fn roundtrip_via_file() {
        let dir = std::env::temp_dir().join("lof_csv_test");
        let path = dir.join("ds.csv");
        let ds = Dataset::from_rows(&[[9.0], [8.0], [7.5]]).unwrap();
        save_dataset(&path, &ds).unwrap();
        assert_eq!(load_dataset(&path).unwrap(), ds);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn write_table_produces_header_and_rows() {
        let dir = std::env::temp_dir().join("lof_table_test");
        let path = dir.join("t.csv");
        write_table(&path, &["k", "lof"], &[vec![1.0, 2.0], vec![2.0, 1.5]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("k,lof\n"));
        assert_eq!(text.lines().count(), 3);
        let _ = std::fs::remove_dir_all(dir);
    }
}
