//! A synthetic stand-in for the NHL96 player-statistics dataset of the
//! paper's section 7.2.
//!
//! **Substitution** (see DESIGN.md): the original experiment ran on
//! historical NHL player data we do not have. What the experiment actually
//! demonstrates is *rank agreement*: the objects Knorr–Ng's `DB(pct, dmin)`
//! definition flags in two 3-d subspaces are also the top max-LOF objects,
//! and LOF additionally surfaces a "short-season" player (Steve Poapst: 3
//! games, 1 goal, 50% shooting) that `DB` misses. We therefore synthesize a
//! league with the same statistical skeleton — a large mass of correlated
//! regular players plus planted analogs of the paper's named outliers — and
//! the harness asserts the same rank structure.

use crate::rng::{normal, seeded};
use lof_core::Dataset;
use rand::RngExt;

/// One season line of a synthetic skater (or goalie).
#[derive(Debug, Clone, PartialEq)]
pub struct Player {
    /// Display name; planted analogs carry the paper's player's name with
    /// an `(analog)` suffix.
    pub name: String,
    /// Games played (0–82).
    pub games_played: u32,
    /// Goals scored.
    pub goals: u32,
    /// Assists.
    pub assists: u32,
    /// Plus/minus rating.
    pub plus_minus: i32,
    /// Penalty minutes.
    pub penalty_minutes: u32,
    /// Shots on goal.
    pub shots: u32,
}

impl Player {
    /// Points = goals + assists.
    pub fn points(&self) -> u32 {
        self.goals + self.assists
    }

    /// Shooting percentage (goals per 100 shots); 0 for shotless players.
    pub fn shooting_pct(&self) -> f64 {
        if self.shots == 0 {
            0.0
        } else {
            100.0 * self.goals as f64 / self.shots as f64
        }
    }
}

/// The synthetic league, with the indices of the planted analogs.
#[derive(Debug, Clone)]
pub struct HockeyLeague {
    /// All players; planted analogs are at the recorded indices.
    pub players: Vec<Player>,
    /// Vladimir Konstantinov analog: modest scorer with an extreme
    /// plus/minus and high penalty minutes — the paper's only
    /// `DB(0.998, 26.3044)` outlier and its top LOF (2.4) in the
    /// (points, +/-, PIM) subspace.
    pub konstantinov: usize,
    /// Matthew Barnaby analog: league-leading penalty minutes — the paper's
    /// second-strongest LOF outlier (2.0) in the same subspace.
    pub barnaby: usize,
    /// Chris Osgood analog: a goalie who scored — top LOF (6.0) in the
    /// (games, goals, shooting%) subspace.
    pub osgood: usize,
    /// Mario Lemieux analog: extreme scorer — LOF 2.8 in the same subspace.
    pub lemieux: usize,
    /// Steve Poapst analog: 3 games, 1 goal, 50% shooting — rank three by
    /// LOF (2.5) but invisible to `DB(pct, dmin)`.
    pub poapst: usize,
}

/// Generates the synthetic league (`n_regulars` background players plus the
/// five planted analogs; the paper's NHL96 season has on the order of 850
/// players, so `nhl96_analog(seed, 850)` is the faithful call).
pub fn nhl96_analog(seed: u64, n_regulars: usize) -> HockeyLeague {
    let mut rng = seeded(seed);
    let mut players = Vec::with_capacity(n_regulars + 5);

    for i in 0..n_regulars {
        // Three tiers: fringe call-ups, regulars, stars.
        let tier = match i % 10 {
            0..=1 => 0, // 20% fringe
            2..=8 => 1, // 70% regulars
            _ => 2,     // 10% stars
        };
        // Fringe call-ups take so few shots that their shooting percentage
        // is a noisy small-sample quantity (0%, 25%, 33%, 50%, …) — exactly
        // the crowd that keeps a Poapst-like season from being a
        // DB(pct, dmin) outlier in the (GP, goals, S%) subspace while LOF
        // still ranks him by *degree*.
        let (gp, shots, goals, pim_rate) = match tier {
            0 => {
                // Call-ups: a compact band of 1–10 game seasons whose tiny
                // shot samples quantize shooting% to 0, 25, 33, 50, … —
                // the loose crowd that keeps any single short-season oddity
                // from being a DB(pct, dmin) outlier.
                let gp: u32 = rng.random_range(1..=10);
                let shots: u32 = rng.random_range(0..=(2 * gp).min(12));
                let raw_goals = (0..shots).filter(|_| rng.random::<f64>() < 0.12).count() as u32;
                let goals = raw_goals.min(shots.saturating_sub(1));
                (gp, shots, goals, rng.random_range(0.0..1.0))
            }
            1 => {
                let gp: u32 = rng.random_range(30..=82);
                let shots = ((gp as f64) * rng.random_range(0.8..2.5)).round() as u32;
                let goals = ((shots as f64) * rng.random_range(5.0..13.0) / 100.0).round() as u32;
                // Every league has its enforcers: a PIM tail reaching ~310
                // keeps high-PIM seasons *mutually* within DB range while a
                // 335-PIM league leader is still locally sparse.
                let pim_rate = if rng.random::<f64>() < 0.10 {
                    rng.random_range(2.0..3.8)
                } else {
                    rng.random_range(0.2..1.8)
                };
                (gp, shots, goals, pim_rate)
            }
            _ => {
                let gp: u32 = rng.random_range(60..=82);
                let shots = ((gp as f64) * rng.random_range(2.5..4.0)).round() as u32;
                let goals = ((shots as f64) * rng.random_range(9.0..17.0) / 100.0).round() as u32;
                (gp, shots, goals, rng.random_range(0.2..1.2))
            }
        };
        let assists = (goals as f64 * rng.random_range(0.8..2.2)).round() as u32;
        let plus_minus = normal(&mut rng, 0.0, 8.0).round() as i32;
        let penalty_minutes = ((gp as f64) * pim_rate).round() as u32;
        players.push(Player {
            name: format!("Skater {i:03}"),
            games_played: gp,
            goals,
            assists,
            plus_minus: plus_minus.clamp(-33, 33),
            penalty_minutes,
            shots,
        });
    }

    let konstantinov = players.len();
    players.push(Player {
        name: "V. Konstantinov (analog)".to_owned(),
        games_played: 81,
        goals: 14,
        assists: 20,
        plus_minus: 60, // far beyond the clamped ±40 background
        penalty_minutes: 139,
        shots: 140,
    });
    let barnaby = players.len();
    players.push(Player {
        name: "M. Barnaby (analog)".to_owned(),
        games_played: 75,
        goals: 19,
        assists: 24,
        plus_minus: -7,
        penalty_minutes: 335, // roughly double any background player
        shots: 130,
    });
    let osgood = players.len();
    players.push(Player {
        name: "C. Osgood (analog)".to_owned(),
        games_played: 50,
        goals: 1, // the goalie who scored
        assists: 1,
        plus_minus: 0,
        penalty_minutes: 4,
        shots: 2, // shooting% = 50
    });
    let lemieux = players.len();
    players.push(Player {
        name: "M. Lemieux (analog)".to_owned(),
        games_played: 70,
        goals: 69,
        assists: 92,
        plus_minus: 33,
        penalty_minutes: 54,
        shots: 338, // shooting% ≈ 20.4 with an extreme goal total
    });
    let poapst = players.len();
    players.push(Player {
        name: "S. Poapst (analog)".to_owned(),
        games_played: 3,
        goals: 1,
        assists: 0,
        plus_minus: -1,
        penalty_minutes: 2,
        shots: 2, // shooting% = 50 on a three-game season
    });

    HockeyLeague { players, konstantinov, barnaby, osgood, lemieux, poapst }
}

/// The paper's first test subspace: (points scored, plus/minus, penalty
/// minutes).
pub fn subspace_points_plusminus_pim(league: &HockeyLeague) -> Dataset {
    let rows: Vec<[f64; 3]> = league
        .players
        .iter()
        .map(|p| [p.points() as f64, p.plus_minus as f64, p.penalty_minutes as f64])
        .collect();
    Dataset::from_rows(&rows).expect("player stats are finite")
}

/// The paper's second test subspace: (games played, goals scored, shooting
/// percentage).
pub fn subspace_gp_goals_shooting(league: &HockeyLeague) -> Dataset {
    let rows: Vec<[f64; 3]> = league
        .players
        .iter()
        .map(|p| [p.games_played as f64, p.goals as f64, p.shooting_pct()])
        .collect();
    Dataset::from_rows(&rows).expect("player stats are finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn league_has_expected_size_and_analogs() {
        let league = nhl96_analog(1, 850);
        assert_eq!(league.players.len(), 855);
        assert_eq!(league.players[league.konstantinov].plus_minus, 60);
        assert_eq!(league.players[league.barnaby].penalty_minutes, 335);
        assert_eq!(league.players[league.osgood].shooting_pct(), 50.0);
        assert_eq!(league.players[league.poapst].games_played, 3);
        assert_eq!(league.players[league.lemieux].goals, 69);
    }

    #[test]
    fn planted_extremes_dominate_background() {
        let league = nhl96_analog(2, 850);
        let background = &league.players[..850];
        let max_pm = background.iter().map(|p| p.plus_minus).max().unwrap();
        let max_pim = background.iter().map(|p| p.penalty_minutes).max().unwrap();
        let max_goals = background.iter().map(|p| p.goals).max().unwrap();
        // Konstantinov leads +/- by a wide margin; Barnaby leads PIM but
        // with an enforcer tail close behind (that tail is what keeps him
        // from being a DB outlier while leaving him locally sparse).
        assert!(league.players[league.konstantinov].plus_minus > max_pm + 15);
        assert!(league.players[league.barnaby].penalty_minutes > max_pim);
        assert!(max_pim > 200, "enforcer PIM tail exists (got {max_pim})");
        assert!(league.players[league.lemieux].goals > max_goals + 10);
    }

    #[test]
    fn subspaces_have_right_shape() {
        let league = nhl96_analog(3, 100);
        let a = subspace_points_plusminus_pim(&league);
        let b = subspace_gp_goals_shooting(&league);
        assert_eq!(a.len(), 105);
        assert_eq!(a.dims(), 3);
        assert_eq!(b.len(), 105);
        assert_eq!(b.dims(), 3);
        // Row order matches player order.
        let k = league.konstantinov;
        assert_eq!(a.point(k)[1], 60.0);
    }

    #[test]
    fn points_is_goals_plus_assists() {
        let p = Player {
            name: "x".into(),
            games_played: 10,
            goals: 3,
            assists: 7,
            plus_minus: 0,
            penalty_minutes: 0,
            shots: 30,
        };
        assert_eq!(p.points(), 10);
        assert!((p.shooting_pct() - 10.0).abs() < 1e-12);
        let shotless = Player { shots: 0, ..p };
        assert_eq!(shotless.shooting_pct(), 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(nhl96_analog(7, 200).players, nhl96_analog(7, 200).players);
    }
}
