//! Column-wise feature scaling.
//!
//! LOF is scale-invariant only under *uniform* scaling; datasets mixing
//! units (games played 0–34 next to goals-per-game 0–0.7) let one column
//! dominate Euclidean distances. The paper's experiments implicitly work in
//! attribute units; we expose explicit z-score and min-max scalers so the
//! harness (and users) can make the choice deliberately.

use lof_core::Dataset;

/// Per-column mean/standard deviation, reusable to transform new points
/// consistently with a fitted dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ZScore {
    means: Vec<f64>,
    std_devs: Vec<f64>,
}

impl ZScore {
    /// Fits column statistics. Constant columns get `std_dev = 1` so they
    /// map to 0 instead of dividing by zero.
    pub fn fit(data: &Dataset) -> Self {
        let dims = data.dims();
        let n = data.len().max(1) as f64;
        let mut means = vec![0.0; dims];
        for (_, p) in data.iter() {
            for d in 0..dims {
                means[d] += p[d];
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dims];
        for (_, p) in data.iter() {
            for d in 0..dims {
                let delta = p[d] - means[d];
                vars[d] += delta * delta;
            }
        }
        let std_devs = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        ZScore { means, std_devs }
    }

    /// Transforms a dataset with the fitted statistics.
    pub fn transform(&self, data: &Dataset) -> Dataset {
        let dims = data.dims();
        let mut out = Dataset::with_capacity(dims, data.len());
        let mut row = vec![0.0; dims];
        for (_, p) in data.iter() {
            for d in 0..dims {
                row[d] = (p[d] - self.means[d]) / self.std_devs[d];
            }
            out.push(&row).expect("finite after scaling");
        }
        out
    }

    /// Transforms a single point.
    pub fn transform_point(&self, p: &[f64]) -> Vec<f64> {
        p.iter().enumerate().map(|(d, &v)| (v - self.means[d]) / self.std_devs[d]).collect()
    }

    /// Per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations.
    pub fn std_devs(&self) -> &[f64] {
        &self.std_devs
    }
}

/// Fit + transform in one call.
pub fn standardize(data: &Dataset) -> Dataset {
    ZScore::fit(data).transform(data)
}

/// Rescales every column to `[0, 1]` (constant columns map to 0).
pub fn min_max_scale(data: &Dataset) -> Dataset {
    let dims = data.dims();
    let Some((lo, hi)) = data.bounding_box() else {
        return Dataset::new(dims);
    };
    let mut out = Dataset::with_capacity(dims, data.len());
    let mut row = vec![0.0; dims];
    for (_, p) in data.iter() {
        for d in 0..dims {
            let extent = hi[d] - lo[d];
            row[d] = if extent > 0.0 { (p[d] - lo[d]) / extent } else { 0.0 };
        }
        out.push(&row).expect("finite after scaling");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(&[[1.0, 100.0], [2.0, 200.0], [3.0, 300.0], [4.0, 400.0]]).unwrap()
    }

    #[test]
    fn zscore_produces_zero_mean_unit_variance() {
        let z = standardize(&sample());
        for d in 0..2 {
            let mean: f64 = z.iter().map(|(_, p)| p[d]).sum::<f64>() / z.len() as f64;
            let var: f64 = z.iter().map(|(_, p)| p[d] * p[d]).sum::<f64>() / z.len() as f64;
            assert!(mean.abs() < 1e-12, "dim {d} mean {mean}");
            assert!((var - 1.0).abs() < 1e-12, "dim {d} var {var}");
        }
    }

    #[test]
    fn zscore_constant_column_is_safe() {
        let ds = Dataset::from_rows(&[[5.0, 1.0], [5.0, 2.0], [5.0, 3.0]]).unwrap();
        let z = standardize(&ds);
        for (_, p) in z.iter() {
            assert_eq!(p[0], 0.0);
        }
    }

    #[test]
    fn transform_point_matches_bulk_transform() {
        let ds = sample();
        let scaler = ZScore::fit(&ds);
        let bulk = scaler.transform(&ds);
        for (id, p) in ds.iter() {
            assert_eq!(scaler.transform_point(p), bulk.point(id));
        }
    }

    #[test]
    fn min_max_hits_unit_interval() {
        let m = min_max_scale(&sample());
        let (lo, hi) = m.bounding_box().unwrap();
        assert_eq!(lo, vec![0.0, 0.0]);
        assert_eq!(hi, vec![1.0, 1.0]);
    }

    #[test]
    fn min_max_constant_column_maps_to_zero() {
        let ds = Dataset::from_rows(&[[7.0], [7.0]]).unwrap();
        let m = min_max_scale(&ds);
        for (_, p) in m.iter() {
            assert_eq!(p[0], 0.0);
        }
    }
}
