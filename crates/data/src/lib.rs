//! # lof-data — workloads for the LOF reproduction
//!
//! Seeded, deterministic dataset generators:
//!
//! * [`generators`] — Gaussian/uniform primitives and a labeled mixture
//!   builder;
//! * [`paper`] — the paper's synthetic datasets (figure 1's DS1, the
//!   figure 7 Gaussian, figure 8's S1/S2/S3, figure 9's four-cluster scene,
//!   the figure 10/11 performance mixtures, and 64-d histogram-like data);
//! * [`hockey`] / [`soccer`] — planted-structure stand-ins for the NHL96
//!   and Bundesliga 1998/99 datasets used in sections 7.2–7.3 (the
//!   substitutions are documented in DESIGN.md);
//! * [`normalize`] — z-score / min-max column scaling;
//! * [`metrics`] — detection-quality metrics (precision@k, ROC-AUC) for
//!   labeled workloads;
//! * [`csv`] — plain-text persistence for datasets and result tables;
//! * [`ingest`] — schema-mapped streaming CSV → `.lofd` ingestion for the
//!   out-of-core pipeline.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod csv;
pub mod generators;
pub mod hockey;
pub mod ingest;
pub mod metrics;
pub mod normalize;
pub mod paper;
pub mod rng;
pub mod soccer;

pub use ingest::{ingest_csv, IngestError, IngestReport};

pub use generators::{
    gaussian_cluster, mixture, ring, uniform_box, uniform_disk, Component, LabeledDataset,
};
pub use normalize::{min_max_scale, standardize, ZScore};
pub use rng::{seeded, WorkloadRng};
