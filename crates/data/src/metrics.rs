//! Detection-quality metrics for labeled workloads: given per-object
//! outlier scores and the ground-truth planted-outlier ids, quantify how
//! well a detector separates them. Used by the harness to report
//! precision@k and ROC-AUC next to the paper's qualitative claims.

/// Precision at `k`: the fraction of the `k` top-scored objects that are
/// true outliers. Ties broken by object id for determinism; `k` is clamped
/// to the number of objects.
pub fn precision_at_k(scores: &[f64], truth: &[usize], k: usize) -> f64 {
    let k = k.min(scores.len());
    if k == 0 {
        return 0.0;
    }
    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let hits = ranked[..k].iter().filter(|(id, _)| truth.contains(id)).count();
    hits as f64 / k as f64
}

/// Recall at `k`: the fraction of true outliers captured in the top `k`.
pub fn recall_at_k(scores: &[f64], truth: &[usize], k: usize) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let k = k.min(scores.len());
    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let hits = ranked[..k].iter().filter(|(id, _)| truth.contains(id)).count();
    hits as f64 / truth.len() as f64
}

/// Area under the ROC curve: the probability that a uniformly random true
/// outlier outscores a uniformly random inlier (ties count half). 1.0 is a
/// perfect ranking, 0.5 is chance.
///
/// Computed exactly via the rank-sum (Mann–Whitney) formulation in
/// `O(n log n)`.
pub fn roc_auc(scores: &[f64], truth: &[usize]) -> f64 {
    let n = scores.len();
    let positives = truth.len();
    let negatives = n - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    let is_positive = {
        let mut mask = vec![false; n];
        for &id in truth {
            mask[id] = true;
        }
        mask
    };
    // Ranks with ties averaged.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut rank_sum_positive = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        // Average rank of the tie group [i..=j] (1-based ranks).
        let avg_rank = (i + j + 2) as f64 / 2.0;
        for &id in &order[i..=j] {
            if is_positive[id] {
                rank_sum_positive += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_positive - (positives * (positives + 1)) as f64 / 2.0;
    u / (positives as f64 * negatives as f64)
}

/// Average precision: the mean of precision@k over the ranks `k` at which
/// true outliers appear — the area under the precision–recall curve.
pub fn average_precision(scores: &[f64], truth: &[usize]) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let mut ranked: Vec<(usize, f64)> = scores.iter().copied().enumerate().collect();
    ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (rank, (id, _)) in ranked.iter().enumerate() {
        if truth.contains(id) {
            hits += 1;
            sum += hits as f64 / (rank + 1) as f64;
        }
    }
    sum / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        // Outliers 3, 4 hold the two highest scores.
        let scores = [0.1, 0.2, 0.3, 0.9, 0.8];
        let truth = [3, 4];
        assert_eq!(precision_at_k(&scores, &truth, 2), 1.0);
        assert_eq!(recall_at_k(&scores, &truth, 2), 1.0);
        assert_eq!(roc_auc(&scores, &truth), 1.0);
        assert_eq!(average_precision(&scores, &truth), 1.0);
    }

    #[test]
    fn inverted_ranking_scores_zero() {
        let scores = [0.9, 0.8, 0.7, 0.1, 0.2];
        let truth = [3, 4];
        assert_eq!(precision_at_k(&scores, &truth, 2), 0.0);
        assert_eq!(roc_auc(&scores, &truth), 0.0);
    }

    #[test]
    fn chance_level_is_half() {
        // All scores tied: AUC must be exactly 0.5.
        let scores = [1.0; 10];
        let truth = [0, 1, 2];
        assert!((roc_auc(&scores, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn partial_ranking() {
        // One outlier on top, one buried at the bottom.
        let scores = [0.9, 0.5, 0.4, 0.3, 0.1];
        let truth = [0, 4];
        assert_eq!(precision_at_k(&scores, &truth, 2), 0.5);
        assert_eq!(recall_at_k(&scores, &truth, 2), 0.5);
        // AUC: pairs (0 vs {1,2,3}) all won, (4 vs {1,2,3}) all lost -> 0.5.
        assert!((roc_auc(&scores, &truth) - 0.5).abs() < 1e-12);
        // AP: hit at rank 1 (precision 1) and rank 5 (precision 2/5).
        assert!((average_precision(&scores, &truth) - (1.0 + 0.4) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(precision_at_k(&[], &[], 3), 0.0);
        assert_eq!(recall_at_k(&[1.0], &[], 1), 0.0);
        assert_eq!(roc_auc(&[1.0, 2.0], &[]), 0.5);
        assert_eq!(roc_auc(&[1.0, 2.0], &[0, 1]), 0.5);
        assert_eq!(average_precision(&[1.0], &[]), 0.0);
    }

    #[test]
    fn k_is_clamped() {
        let scores = [0.9, 0.1];
        let truth = [0];
        assert_eq!(precision_at_k(&scores, &truth, 100), 0.5);
        assert_eq!(recall_at_k(&scores, &truth, 100), 1.0);
    }

    #[test]
    fn auc_handles_infinite_scores() {
        let scores = [f64::INFINITY, 1.0, 0.5, f64::NEG_INFINITY];
        let truth = [0];
        assert_eq!(roc_auc(&scores, &truth), 1.0);
    }
}
