//! A synthetic stand-in for the "Fußball 1. Bundesliga" 1998/99 dataset of
//! the paper's section 7.3 (table 3).
//!
//! **Substitution** (see DESIGN.md): the original database holds 375 real
//! players with (name, games played, goals scored, position). Outlier
//! detection ran on the 3-d subspace (games, average goals per game,
//! position-as-integer), whose structure is four position clusters plus five
//! domain-meaningful outliers (table 3). We synthesize a league with the
//! same marginal statistics (table 3's summary rows: games median 21 / mean
//! 18.0 / σ 11.0 / max 34; goals median 1 / mean 1.9 / σ 3.0 / max 23) and
//! plant the five named outliers with their exact table-3 attribute values.

use crate::rng::seeded;
use lof_core::Dataset;
use rand::RngExt;

/// Player position, coded as an integer exactly as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Position {
    /// Goalkeeper (code 1).
    Goalie = 1,
    /// Defender (code 2).
    Defense = 2,
    /// Midfielder/center (code 3).
    Center = 3,
    /// Forward (code 4).
    Offense = 4,
}

impl Position {
    /// The integer code used as the third dataset dimension.
    pub fn code(self) -> f64 {
        self as u8 as f64
    }
}

/// One season line of a synthetic Bundesliga player.
#[derive(Debug, Clone, PartialEq)]
pub struct SoccerPlayer {
    /// Display name; planted analogs carry the paper's player's name with
    /// an `(analog)` suffix.
    pub name: String,
    /// Games played (0–34; the Bundesliga season has 34 rounds).
    pub games: u32,
    /// Goals scored.
    pub goals: u32,
    /// Playing position.
    pub position: Position,
}

impl SoccerPlayer {
    /// Average goals per game (0 for players without appearances).
    pub fn goals_per_game(&self) -> f64 {
        if self.games == 0 {
            0.0
        } else {
            self.goals as f64 / self.games as f64
        }
    }
}

/// The synthetic league, with the indices of the five table-3 outliers.
#[derive(Debug, Clone)]
pub struct SoccerLeague {
    /// All 375 players.
    pub players: Vec<SoccerPlayer>,
    /// Michael Preetz analog — table 3 rank 1, LOF 1.87: maximum games (34)
    /// *and* maximum goals (23), the league's top scorer.
    pub preetz: usize,
    /// Michael Schjönberg analog — rank 2, LOF 1.70: a defender with an
    /// exceptional goals-per-game (he took the penalty kicks).
    pub schjoenberg: usize,
    /// Hans-Jörg Butt analog — rank 3, LOF 1.67: the only goalie to score
    /// any goal (7 of them; penalty kicks again).
    pub butt: usize,
    /// Ulf Kirsten analog — rank 4, LOF 1.63: very high scoring average.
    pub kirsten: usize,
    /// Giovane Elber analog — rank 5, LOF 1.55: very high scoring average.
    pub elber: usize,
}

/// Samples a small-mean Poisson (Knuth's product method).
fn poisson(rng: &mut crate::rng::WorkloadRng, lambda: f64) -> u32 {
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.random::<f64>();
        if p <= limit {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // defensive: unreachable for the lambdas we use
        }
    }
}

/// Generates the 375-player synthetic Bundesliga season.
pub fn bundesliga_analog(seed: u64) -> SoccerLeague {
    let mut rng = seeded(seed);
    let mut players = Vec::with_capacity(375);

    // 370 background players: 18 teams' worth of goalies, defenders,
    // midfielders and forwards. Games played: a broad 0..=34 spread with a
    // bulge of regulars, matching table 3's median 21 / mean 18 / σ 11.
    let quotas: [(Position, usize); 4] = [
        (Position::Goalie, 40),
        (Position::Defense, 120),
        (Position::Center, 120),
        (Position::Offense, 90),
    ];
    for (position, quota) in quotas {
        for i in 0..quota {
            // A mix of regulars (uniform high) and squad players (uniform
            // low) reproduces the wide spread of games played.
            let games: u32 = if rng.random::<f64>() < 0.6 {
                rng.random_range(15..=34)
            } else {
                rng.random_range(0..=20)
            };
            // Expected goals per appearance by position. Background players
            // are capped both in total goals and in goals-per-game so none
            // rivals the planted outliers on either axis (the real league's
            // named outliers were unique on exactly these margins; a 1-game
            // 1-goal squad player would otherwise fake a 1.0 goals/game).
            let (rate, cap, max_gpg) = match position {
                Position::Goalie => (0.0, 0, 0.0),
                Position::Defense => (0.05, 4, 0.22),
                Position::Center => (0.10, 7, 0.30),
                Position::Offense => (0.28, 12, 0.45),
            };
            let gpg_cap = (games as f64 * max_gpg).floor() as u32;
            let goals = poisson(&mut rng, rate * games as f64).min(cap).min(gpg_cap);
            players.push(SoccerPlayer {
                name: format!("{position:?} {i:03}"),
                games,
                goals,
                position,
            });
        }
    }

    // The five planted outliers with their exact table-3 values.
    let preetz = players.len();
    players.push(SoccerPlayer {
        name: "Michael Preetz (analog)".to_owned(),
        games: 34,
        goals: 23,
        position: Position::Offense,
    });
    let schjoenberg = players.len();
    players.push(SoccerPlayer {
        name: "Michael Schjönberg (analog)".to_owned(),
        games: 15,
        goals: 6,
        position: Position::Defense,
    });
    let butt = players.len();
    players.push(SoccerPlayer {
        name: "Hans-Jörg Butt (analog)".to_owned(),
        games: 34,
        goals: 7,
        position: Position::Goalie,
    });
    let kirsten = players.len();
    players.push(SoccerPlayer {
        name: "Ulf Kirsten (analog)".to_owned(),
        games: 31,
        goals: 19,
        position: Position::Offense,
    });
    let elber = players.len();
    players.push(SoccerPlayer {
        name: "Giovane Elber (analog)".to_owned(),
        games: 21,
        goals: 13,
        position: Position::Offense,
    });

    SoccerLeague { players, preetz, schjoenberg, butt, kirsten, elber }
}

/// The paper's 3-d detection subspace: (games played, average goals per
/// game, position code).
pub fn soccer_dataset(league: &SoccerLeague) -> Dataset {
    let rows: Vec<[f64; 3]> = league
        .players
        .iter()
        .map(|p| [p.games as f64, p.goals_per_game(), p.position.code()])
        .collect();
    Dataset::from_rows(&rows).expect("player stats are finite")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn league_shape_matches_table3() {
        let league = bundesliga_analog(1);
        assert_eq!(league.players.len(), 375);
        let games: Vec<u32> = league.players.iter().map(|p| p.games).collect();
        let goals: Vec<u32> = league.players.iter().map(|p| p.goals).collect();
        assert_eq!(*games.iter().max().unwrap(), 34);
        assert_eq!(*goals.iter().max().unwrap(), 23, "Preetz is top scorer");
        let mean_games = games.iter().sum::<u32>() as f64 / 375.0;
        let mean_goals = goals.iter().sum::<u32>() as f64 / 375.0;
        // Table 3's summary rows: mean 18.0 games, 1.9 goals.
        assert!((mean_games - 18.0).abs() < 3.0, "mean games {mean_games}");
        assert!((mean_goals - 1.9).abs() < 1.0, "mean goals {mean_goals}");
    }

    #[test]
    fn butt_is_the_only_scoring_goalie() {
        let league = bundesliga_analog(2);
        for (i, p) in league.players.iter().enumerate() {
            if p.position == Position::Goalie && i != league.butt {
                assert_eq!(p.goals, 0, "background goalie {i} must not score");
            }
        }
        assert_eq!(league.players[league.butt].goals, 7);
    }

    #[test]
    fn planted_forwards_out_score_background() {
        let league = bundesliga_analog(3);
        let planted = [league.preetz, league.kirsten, league.elber];
        let max_bg_goals = league
            .players
            .iter()
            .enumerate()
            .filter(|(i, _)| !planted.contains(i) && *i != league.butt && *i != league.schjoenberg)
            .map(|(_, p)| p.goals)
            .max()
            .unwrap();
        assert!(max_bg_goals <= 12);
        assert!(league.players[league.preetz].goals > max_bg_goals + 5);
    }

    #[test]
    fn dataset_matches_paper_subspace() {
        let league = bundesliga_analog(4);
        let ds = soccer_dataset(&league);
        assert_eq!(ds.len(), 375);
        assert_eq!(ds.dims(), 3);
        let preetz = ds.point(league.preetz);
        assert_eq!(preetz[0], 34.0);
        assert!((preetz[1] - 23.0 / 34.0).abs() < 1e-12);
        assert_eq!(preetz[2], 4.0);
    }

    #[test]
    fn goals_per_game_handles_zero_games() {
        let p =
            SoccerPlayer { name: "bench".into(), games: 0, goals: 0, position: Position::Center };
        assert_eq!(p.goals_per_game(), 0.0);
    }

    #[test]
    fn position_codes_match_paper() {
        assert_eq!(Position::Goalie.code(), 1.0);
        assert_eq!(Position::Defense.code(), 2.0);
        assert_eq!(Position::Center.code(), 3.0);
        assert_eq!(Position::Offense.code(), 4.0);
    }
}
