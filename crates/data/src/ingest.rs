//! Schema-mapped CSV → `.lofd` ingestion.
//!
//! [`ingest_csv`] streams a named-column CSV into the out-of-core `.lofd`
//! format in O(row) memory: the header row is the schema, the caller picks
//! columns **by name** (subsetting and reordering — the same workflow as
//! [`Dataset::project`](lof_core::Dataset::project), but applied before
//! anything is resident), and every field of a selected column is
//! type-validated with a typed, located error. Loads are **resumable**:
//! an interrupted ingest leaves a checkpointed partial `.lofd` plus its
//! `.resume` sidecar, and re-running with `resume = true` skips the
//! already-durable rows instead of starting over.

use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use lof_core::lofd::LofdError;
use lof_core::LofdWriter;

/// The error taxonomy of a schema-mapped ingest. Every variant carries
/// enough location to fix the input (1-based data row numbers, column
/// names).
#[derive(Debug)]
pub enum IngestError {
    /// Reading the input or writing the output failed.
    Io(io::Error),
    /// The input has no header row (empty file).
    MissingHeader,
    /// The input's first row looks numeric — there are no column names to
    /// map a schema onto.
    NumericHeader,
    /// A requested column is not in the header.
    UnknownColumn {
        /// The name that failed to resolve.
        name: String,
        /// The header's names, for the error message.
        available: Vec<String>,
    },
    /// The same column was requested twice.
    DuplicateColumn(String),
    /// No columns were selected.
    NoColumns,
    /// A data row has the wrong number of fields.
    Ragged {
        /// 1-based data row (header not counted).
        row: u64,
        /// Fields the header promises.
        expected: usize,
        /// Fields found.
        found: usize,
    },
    /// A selected field does not parse as a finite number — the type
    /// validation of the schema mapping.
    BadField {
        /// 1-based data row.
        row: u64,
        /// Column name the field belongs to.
        column: String,
        /// The offending text (truncated for display).
        value: String,
    },
    /// The `.lofd` writer rejected the output (header/corruption errors on
    /// resume, disk failures, ...).
    Format(LofdError),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "ingest i/o error: {e}"),
            IngestError::MissingHeader => write!(f, "input has no header row"),
            IngestError::NumericHeader => {
                write!(f, "input's first row is numeric — schema-mapped ingest needs named columns")
            }
            IngestError::UnknownColumn { name, available } => {
                write!(f, "unknown column {name:?}; header has: {}", available.join(", "))
            }
            IngestError::DuplicateColumn(name) => {
                write!(f, "column {name:?} requested more than once")
            }
            IngestError::NoColumns => write!(f, "no columns selected"),
            IngestError::Ragged { row, expected, found } => {
                write!(f, "row {row} has {found} fields, header has {expected}")
            }
            IngestError::BadField { row, column, value } => {
                write!(f, "row {row}, column {column:?}: {value:?} is not a finite number")
            }
            IngestError::Format(e) => write!(f, "output format error: {e}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> Self {
        IngestError::Io(e)
    }
}

impl From<LofdError> for IngestError {
    fn from(e: LofdError) -> Self {
        IngestError::Format(e)
    }
}

/// What an ingest did: the shape of the resulting `.lofd` plus how much
/// work a resume skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Rows in the finished file.
    pub rows: u64,
    /// Rows recovered from a previous run's checkpoint (0 for a fresh
    /// ingest).
    pub resumed_rows: u64,
    /// The selected column names, in output order.
    pub columns: Vec<String>,
}

/// Streams `input` (a named-column CSV) into a finished `.lofd` at
/// `output`.
///
/// `columns` selects and orders the output schema by header name; `None`
/// takes every column in header order. With `resume = true` an
/// interrupted previous run's partial output is continued from its last
/// checkpoint (the selection must match — the caller re-passes it).
///
/// # Errors
///
/// See [`IngestError`]; the partial output of a failed run stays on disk
/// with its sidecar so a corrected re-run can resume.
pub fn ingest_csv(
    input: &Path,
    output: &Path,
    columns: Option<&[String]>,
    resume: bool,
) -> Result<IngestReport, IngestError> {
    let reader = BufReader::with_capacity(1 << 20, File::open(input)?);
    let mut lines = reader.lines();

    let header_line = loop {
        match lines.next() {
            None => return Err(IngestError::MissingHeader),
            Some(line) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
        }
    };
    let header: Vec<String> = header_line.split(',').map(|f| f.trim().to_string()).collect();
    if header.iter().all(|name| name.parse::<f64>().is_ok()) {
        return Err(IngestError::NumericHeader);
    }

    let selected: Vec<(usize, String)> = match columns {
        None => header.iter().cloned().enumerate().collect(),
        Some(names) => {
            let mut picked = Vec::with_capacity(names.len());
            for name in names {
                if picked.iter().any(|(_, n): &(usize, String)| n == name) {
                    return Err(IngestError::DuplicateColumn(name.clone()));
                }
                let idx = header.iter().position(|h| h == name).ok_or_else(|| {
                    IngestError::UnknownColumn { name: name.clone(), available: header.clone() }
                })?;
                picked.push((idx, name.clone()));
            }
            picked
        }
    };
    if selected.is_empty() {
        return Err(IngestError::NoColumns);
    }

    let (mut writer, resumed_rows) = if resume {
        let w = LofdWriter::resume(output)?;
        let skip = w.rows();
        (w, skip)
    } else {
        (LofdWriter::create(output, selected.len())?, 0)
    };

    let mut row_no = 0u64;
    let mut out_row = vec![0.0f64; selected.len()];
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        row_no += 1;
        if row_no <= resumed_rows {
            continue; // already durable in the partial output
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        if fields.len() != header.len() {
            return Err(IngestError::Ragged {
                row: row_no,
                expected: header.len(),
                found: fields.len(),
            });
        }
        for (slot, (idx, name)) in out_row.iter_mut().zip(&selected) {
            let raw = fields[*idx];
            match raw.parse::<f64>() {
                Ok(v) if v.is_finite() => *slot = v,
                _ => {
                    return Err(IngestError::BadField {
                        row: row_no,
                        column: name.clone(),
                        value: raw.chars().take(32).collect(),
                    });
                }
            }
        }
        writer.push_row(&out_row)?;
    }
    let rows = writer.rows();
    writer.finish()?;
    Ok(IngestReport {
        rows,
        resumed_rows,
        columns: selected.into_iter().map(|(_, name)| name).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::Lofd;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lof-ingest-{}-{name}", std::process::id()))
    }

    fn write_input(name: &str, text: &str) -> PathBuf {
        let path = tmp(name);
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn maps_named_columns_in_requested_order() {
        let input = write_input("map.csv", "a,b,c\n1,2,3\n4,5,6\n");
        let output = tmp("map.lofd");
        let cols = vec!["c".to_string(), "a".to_string()];
        let report = ingest_csv(&input, &output, Some(&cols), false).unwrap();
        assert_eq!(report, IngestReport { rows: 2, resumed_rows: 0, columns: cols });
        let lofd = Lofd::open(&output).unwrap();
        assert_eq!(lofd.dataset().as_flat(), &[3.0, 1.0, 6.0, 4.0]);
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_file(&output).unwrap();
    }

    #[test]
    fn default_selection_takes_the_whole_header() {
        let input = write_input("all.csv", "x,y\n1,2\n\n3,4\n");
        let output = tmp("all.lofd");
        let report = ingest_csv(&input, &output, None, false).unwrap();
        assert_eq!(report.columns, vec!["x", "y"]);
        assert_eq!(report.rows, 2);
        assert_eq!(Lofd::open(&output).unwrap().dataset().as_flat(), &[1.0, 2.0, 3.0, 4.0]);
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_file(&output).unwrap();
    }

    #[test]
    fn schema_errors_are_typed() {
        let empty = write_input("empty.csv", "\n\n");
        let numeric = write_input("numeric.csv", "1,2\n3,4\n");
        let named = write_input("named.csv", "a,b\n1,2\n");
        let out = tmp("schema.lofd");
        assert!(matches!(ingest_csv(&empty, &out, None, false), Err(IngestError::MissingHeader)));
        assert!(matches!(ingest_csv(&numeric, &out, None, false), Err(IngestError::NumericHeader)));
        let bad = vec!["z".to_string()];
        assert!(matches!(
            ingest_csv(&named, &out, Some(&bad), false),
            Err(IngestError::UnknownColumn { name, .. }) if name == "z"
        ));
        let dup = vec!["a".to_string(), "a".to_string()];
        assert!(matches!(
            ingest_csv(&named, &out, Some(&dup), false),
            Err(IngestError::DuplicateColumn(name)) if name == "a"
        ));
        let none: Vec<String> = Vec::new();
        assert!(matches!(
            ingest_csv(&named, &out, Some(&none), false),
            Err(IngestError::NoColumns)
        ));
        for p in [empty, numeric, named] {
            std::fs::remove_file(p).unwrap();
        }
        let _ = std::fs::remove_file(out);
    }

    #[test]
    fn data_errors_carry_row_and_column() {
        let ragged = write_input("ragged.csv", "a,b\n1,2\n3\n");
        let bad = write_input("badfield.csv", "a,b\n1,2\n3,oops\n");
        let inf = write_input("inf.csv", "a,b\n1,inf\n");
        let out = tmp("data-errors.lofd");
        assert!(matches!(
            ingest_csv(&ragged, &out, None, false),
            Err(IngestError::Ragged { row: 2, expected: 2, found: 1 })
        ));
        assert!(matches!(
            ingest_csv(&bad, &out, None, false),
            Err(IngestError::BadField { row: 2, column, value }) if column == "b" && value == "oops"
        ));
        // `inf` parses as a float but is not finite — same taxonomy slot.
        assert!(matches!(
            ingest_csv(&inf, &out, None, false),
            Err(IngestError::BadField { row: 1, column, .. }) if column == "b"
        ));
        for p in [ragged, bad, inf] {
            std::fs::remove_file(p).unwrap();
        }
        let _ = std::fs::remove_file(&out);
        let _ = std::fs::remove_file(format!("{}.resume", out.display()));
    }

    #[test]
    fn interrupted_ingest_resumes_from_the_checkpoint() {
        let input = write_input("resume.csv", "a\n1\n2\n3\n4\n5\n");
        let output = tmp("resume.lofd");
        // A first pass that dies after two rows, checkpointed.
        {
            let mut w = LofdWriter::create(&output, 1).unwrap();
            w.push_row(&[1.0]).unwrap();
            w.push_row(&[2.0]).unwrap();
            w.checkpoint().unwrap();
            // dropped unfinished
        }
        let report = ingest_csv(&input, &output, None, true).unwrap();
        assert_eq!(report.rows, 5);
        assert_eq!(report.resumed_rows, 2);
        assert_eq!(Lofd::open(&output).unwrap().dataset().as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_file(&output).unwrap();
    }

    #[test]
    fn ingested_file_round_trips_through_the_dataset_loader() {
        let input = write_input("roundtrip.csv", "x,y\n0.5,-1.25\n7,8\n");
        let output = tmp("roundtrip.lofd");
        ingest_csv(&input, &output, None, false).unwrap();
        let via_csv = crate::csv::load_dataset(&input).unwrap();
        let via_lofd = Lofd::open(&output).unwrap().dataset();
        assert_eq!(via_csv, via_lofd);
        std::fs::remove_file(&input).unwrap();
        std::fs::remove_file(&output).unwrap();
    }
}
