//! Primitive point-cloud generators and a labeled mixture builder.

use crate::rng::{standard_normal, WorkloadRng};
use lof_core::Dataset;
use rand::RngExt;

/// A dataset together with a ground-truth label per point.
///
/// Labels identify the generating component: `0..k` for mixture clusters,
/// [`LabeledDataset::OUTLIER`] for planted outliers. LOF never sees the
/// labels — the harness uses them to check who *should* score high.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// The points.
    pub data: Dataset,
    /// One label per point.
    pub labels: Vec<usize>,
}

impl LabeledDataset {
    /// Label marking a planted outlier.
    pub const OUTLIER: usize = usize::MAX;

    /// Ids of all points carrying a given label.
    pub fn ids_with_label(&self, label: usize) -> Vec<usize> {
        self.labels.iter().enumerate().filter(|(_, &l)| l == label).map(|(i, _)| i).collect()
    }

    /// Ids of all planted outliers.
    pub fn outlier_ids(&self) -> Vec<usize> {
        self.ids_with_label(Self::OUTLIER)
    }

    /// The member of a labeled component closest to the component's
    /// centroid — the "representative object" figure 8's per-cluster LOF
    /// traces are plotted for. `None` when no point carries the label.
    pub fn representative(&self, label: usize) -> Option<usize> {
        let ids = self.ids_with_label(label);
        let first = *ids.first()?;
        let dims = self.data.dims();
        let mut centroid = vec![0.0; dims];
        for &id in &ids {
            let p = self.data.point(id);
            for d in 0..dims {
                centroid[d] += p[d];
            }
        }
        for c in &mut centroid {
            *c /= ids.len() as f64;
        }
        let mut best = first;
        let mut best_dist = f64::INFINITY;
        for &id in &ids {
            let p = self.data.point(id);
            let dist: f64 = p.iter().zip(&centroid).map(|(a, b)| (a - b) * (a - b)).sum();
            if dist < best_dist {
                best_dist = dist;
                best = id;
            }
        }
        Some(best)
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// `n` points from an isotropic Gaussian around `center`.
pub fn gaussian_cluster(rng: &mut WorkloadRng, n: usize, center: &[f64], std_dev: f64) -> Dataset {
    let dims = center.len();
    let mut ds = Dataset::with_capacity(dims, n);
    let mut row = vec![0.0; dims];
    for _ in 0..n {
        for (d, v) in row.iter_mut().enumerate() {
            *v = center[d] + std_dev * standard_normal(rng);
        }
        ds.push(&row).expect("generated coordinates are finite");
    }
    ds
}

/// `n` points uniform over the axis-aligned box `[lo, hi]`.
pub fn uniform_box(rng: &mut WorkloadRng, n: usize, lo: &[f64], hi: &[f64]) -> Dataset {
    assert_eq!(lo.len(), hi.len());
    let dims = lo.len();
    let mut ds = Dataset::with_capacity(dims, n);
    let mut row = vec![0.0; dims];
    for _ in 0..n {
        for (d, v) in row.iter_mut().enumerate() {
            *v = if hi[d] > lo[d] { rng.random_range(lo[d]..hi[d]) } else { lo[d] };
        }
        ds.push(&row).expect("generated coordinates are finite");
    }
    ds
}

/// `n` points uniform over a 2-d disk.
pub fn uniform_disk(rng: &mut WorkloadRng, n: usize, center: [f64; 2], radius: f64) -> Dataset {
    let mut ds = Dataset::with_capacity(2, n);
    for _ in 0..n {
        let r = radius * rng.random::<f64>().sqrt();
        let theta = rng.random_range(0.0..std::f64::consts::TAU);
        ds.push(&[center[0] + r * theta.cos(), center[1] + r * theta.sin()])
            .expect("generated coordinates are finite");
    }
    ds
}

/// `n` points uniform over a 2-d annulus (useful for "cluster with a hole"
/// shapes that defeat global outlier definitions).
pub fn ring(
    rng: &mut WorkloadRng,
    n: usize,
    center: [f64; 2],
    r_inner: f64,
    r_outer: f64,
) -> Dataset {
    assert!(r_inner <= r_outer);
    let mut ds = Dataset::with_capacity(2, n);
    for _ in 0..n {
        // Area-uniform radius on the annulus.
        let u = rng.random::<f64>();
        let r = (r_inner * r_inner + u * (r_outer * r_outer - r_inner * r_inner)).sqrt();
        let theta = rng.random_range(0.0..std::f64::consts::TAU);
        ds.push(&[center[0] + r * theta.cos(), center[1] + r * theta.sin()])
            .expect("generated coordinates are finite");
    }
    ds
}

/// One component of a [`mixture`].
#[derive(Debug, Clone)]
pub enum Component {
    /// Isotropic Gaussian: `(n, center, std_dev)`.
    Gaussian(usize, Vec<f64>, f64),
    /// Uniform box: `(n, lo, hi)`.
    UniformBox(usize, Vec<f64>, Vec<f64>),
    /// Uniform 2-d disk: `(n, center, radius)`.
    UniformDisk(usize, [f64; 2], f64),
}

impl Component {
    fn generate(&self, rng: &mut WorkloadRng) -> Dataset {
        match self {
            Component::Gaussian(n, center, std) => gaussian_cluster(rng, *n, center, *std),
            Component::UniformBox(n, lo, hi) => uniform_box(rng, *n, lo, hi),
            Component::UniformDisk(n, center, radius) => uniform_disk(rng, *n, *center, *radius),
        }
    }
}

/// Builds a labeled mixture of components plus explicit planted outliers.
pub fn mixture(
    rng: &mut WorkloadRng,
    components: &[Component],
    planted_outliers: &[Vec<f64>],
) -> LabeledDataset {
    let dims = match components.first() {
        Some(Component::Gaussian(_, c, _)) => c.len(),
        Some(Component::UniformBox(_, lo, _)) => lo.len(),
        Some(Component::UniformDisk(..)) => 2,
        None => planted_outliers.first().map_or(0, Vec::len),
    };
    let mut data = Dataset::new(dims);
    let mut labels = Vec::new();
    for (label, component) in components.iter().enumerate() {
        let part = component.generate(rng);
        labels.extend(std::iter::repeat_n(label, part.len()));
        data.extend(&part).expect("components agree on dimensionality");
    }
    for outlier in planted_outliers {
        data.push(outlier).expect("outlier has the mixture's dimensionality");
        labels.push(LabeledDataset::OUTLIER);
    }
    LabeledDataset { data, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn gaussian_cluster_centers_correctly() {
        let mut rng = seeded(3);
        let ds = gaussian_cluster(&mut rng, 20_000, &[5.0, -2.0], 1.5);
        assert_eq!(ds.len(), 20_000);
        let mut mean = [0.0, 0.0];
        for (_, p) in ds.iter() {
            mean[0] += p[0];
            mean[1] += p[1];
        }
        mean[0] /= ds.len() as f64;
        mean[1] /= ds.len() as f64;
        assert!((mean[0] - 5.0).abs() < 0.05);
        assert!((mean[1] + 2.0).abs() < 0.05);
    }

    #[test]
    fn uniform_box_respects_bounds() {
        let mut rng = seeded(9);
        let ds = uniform_box(&mut rng, 5_000, &[0.0, 10.0], &[1.0, 20.0]);
        for (_, p) in ds.iter() {
            assert!((0.0..1.0).contains(&p[0]));
            assert!((10.0..20.0).contains(&p[1]));
        }
    }

    #[test]
    fn uniform_box_handles_degenerate_dim() {
        let mut rng = seeded(9);
        let ds = uniform_box(&mut rng, 100, &[0.0, 5.0], &[1.0, 5.0]);
        for (_, p) in ds.iter() {
            assert_eq!(p[1], 5.0);
        }
    }

    #[test]
    fn disk_and_ring_respect_radii() {
        let mut rng = seeded(11);
        let disk = uniform_disk(&mut rng, 2_000, [1.0, 1.0], 3.0);
        for (_, p) in disk.iter() {
            let r = ((p[0] - 1.0).powi(2) + (p[1] - 1.0).powi(2)).sqrt();
            assert!(r <= 3.0 + 1e-9);
        }
        let annulus = ring(&mut rng, 2_000, [0.0, 0.0], 2.0, 4.0);
        for (_, p) in annulus.iter() {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            assert!((2.0 - 1e-9..=4.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn mixture_labels_line_up() {
        let mut rng = seeded(5);
        let labeled = mixture(
            &mut rng,
            &[
                Component::Gaussian(50, vec![0.0, 0.0], 1.0),
                Component::UniformBox(30, vec![10.0, 10.0], vec![12.0, 12.0]),
            ],
            &[vec![100.0, 100.0], vec![-50.0, 0.0]],
        );
        assert_eq!(labeled.len(), 82);
        assert_eq!(labeled.ids_with_label(0).len(), 50);
        assert_eq!(labeled.ids_with_label(1).len(), 30);
        assert_eq!(labeled.outlier_ids(), vec![80, 81]);
    }

    #[test]
    fn representative_is_central() {
        let mut rng = seeded(13);
        let labeled = mixture(
            &mut rng,
            &[Component::Gaussian(200, vec![10.0, -5.0], 2.0)],
            &[vec![100.0, 100.0]],
        );
        let rep = labeled.representative(0).unwrap();
        let p = labeled.data.point(rep);
        assert!((p[0] - 10.0).abs() < 1.0, "rep x = {}", p[0]);
        assert!((p[1] + 5.0).abs() < 1.0, "rep y = {}", p[1]);
        assert!(labeled.representative(9).is_none());
    }

    #[test]
    fn same_seed_same_mixture() {
        let spec = [Component::Gaussian(40, vec![1.0], 0.5)];
        let a = mixture(&mut seeded(77), &spec, &[]);
        let b = mixture(&mut seeded(77), &spec, &[]);
        assert_eq!(a.data, b.data);
    }
}
