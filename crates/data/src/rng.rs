//! Seeded randomness helpers.
//!
//! All generators in this crate take explicit seeds so every experiment in
//! the harness is reproducible bit-for-bit. Gaussian variates come from a
//! hand-rolled Marsaglia polar method (keeping the dependency set to plain
//! `rand`).

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// The deterministic RNG used throughout the workloads.
pub type WorkloadRng = StdRng;

/// A seeded RNG.
pub fn seeded(seed: u64) -> WorkloadRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal variate via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.random_range(-1.0..1.0);
        let v: f64 = rng.random_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// A normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(7);
        let mut b = seeded(7);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a), standard_normal(&mut b));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = seeded(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn normal_respects_parameters() {
        let mut rng = seeded(1);
        let n = 30_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
