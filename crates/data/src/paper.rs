//! The paper's synthetic datasets, reconstructed from their textual
//! descriptions. Each function documents which figure or experiment it
//! feeds and which structural properties the reconstruction preserves.

use crate::generators::{mixture, Component, LabeledDataset};
use crate::rng::{seeded, standard_normal};
use lof_core::Dataset;
use rand::RngExt;

/// Figure 1's dataset DS1: 502 objects — a 400-object low-density cluster
/// `C1` (label 0), a 100-object much denser cluster `C2` (label 1), and two
/// additional objects `o1` (far from everything) and `o2` (just outside
/// `C2`).
///
/// The construction preserves the property section 3 argues from: the gap
/// between `o2` and `C2` is *smaller* than the typical nearest-neighbor
/// spacing inside `C1`, so no `DB(pct, dmin)` parameterization can flag `o2`
/// without also flagging much of `C1` — while `o2` is still an obvious
/// *local* outlier relative to `C2`'s density.
pub fn ds1(seed: u64) -> LabeledDataset {
    let mut rng = seeded(seed);
    // C1: 400 points over a 180x180 box — mean nearest-neighbor spacing
    // ≈ 0.5·sqrt(area/n) ≈ 4.5.
    // C2: 100 points over a 10x10 box — spacing ≈ 0.5.
    // o2 sits 3 units above C2: closer to C2 than C1 objects are to each
    // other, yet 6x the C2 spacing.
    mixture(
        &mut rng,
        &[
            Component::UniformBox(400, vec![0.0, 0.0], vec![180.0, 180.0]),
            Component::UniformBox(100, vec![300.0, 85.0], vec![310.0, 95.0]),
        ],
        &[
            vec![245.0, 200.0], // o1: detached from both clusters
            vec![305.0, 98.0],  // o2: just outside dense C2
        ],
    )
}

/// Id of `o1` in [`ds1`].
pub const DS1_O1: usize = 500;
/// Id of `o2` in [`ds1`].
pub const DS1_O2: usize = 501;

/// Figure 7's dataset: a single 2-d Gaussian cluster. The figure plots the
/// min/max/mean/stddev of LOF for `MinPts` in 2..=50 over it.
pub fn fig7_gaussian(seed: u64, n: usize) -> Dataset {
    let mut rng = seeded(seed);
    crate::generators::gaussian_cluster(&mut rng, n, &[0.0, 0.0], 10.0)
}

/// Figure 8's dataset: three clusters `S1` (10 objects, label 0), `S2`
/// (35 objects, label 1), `S3` (500 objects, label 2).
///
/// Geometry is chosen so the paper's `MinPts` phase transitions occur: `S1`
/// and `S2` are adjacent (so at `MinPts = 36 > |S2|` the neighborhoods of
/// `S2`'s objects spill into `S1` and the two behave as one 45-object
/// group), and `S3` is further away (so from `MinPts = 45` upward the
/// combined group becomes outlying relative to `S3`).
pub fn fig8(seed: u64) -> LabeledDataset {
    let mut rng = seeded(seed);
    mixture(
        &mut rng,
        &[
            Component::Gaussian(10, vec![30.0, 0.0], 0.25),
            Component::Gaussian(35, vec![45.0, 0.0], 1.2),
            Component::Gaussian(500, vec![100.0, 0.0], 7.0),
        ],
        &[],
    )
}

/// Figure 9's dataset: "one low density Gaussian cluster of 200 objects and
/// three large clusters of 500 objects each. Among these three, one is a
/// dense Gaussian cluster and the other two are uniform clusters of
/// different densities. Furthermore, it contains a couple of outliers" —
/// seven strong ones, per the discussion of the right-hand plot.
pub fn fig9(seed: u64) -> LabeledDataset {
    let mut rng = seeded(seed);
    mixture(
        &mut rng,
        &[
            // label 0: low-density Gaussian, 200 objects
            Component::Gaussian(200, vec![25.0, 75.0], 7.0),
            // label 1: dense Gaussian, 500 objects
            Component::Gaussian(500, vec![75.0, 75.0], 2.0),
            // label 2: sparse uniform cluster
            Component::UniformBox(500, vec![5.0, 5.0], vec![45.0, 45.0]),
            // label 3: denser uniform cluster
            Component::UniformBox(500, vec![65.0, 15.0], vec![85.0, 35.0]),
        ],
        &[
            // Seven planted outliers at varying distances from clusters of
            // varying density — their LOF should scale with the density of
            // the cluster they are outlying relative to, and their distance.
            vec![75.0, 60.0],   // just below the dense Gaussian
            vec![85.0, 85.0],   // above-right of the dense Gaussian
            vec![55.0, 50.0],   // between everything
            vec![95.0, 50.0],   // right edge, near the dense uniform
            vec![50.0, 95.0],   // between the two Gaussians
            vec![10.0, 55.0],   // above the sparse uniform
            vec![110.0, 110.0], // far corner, global outlier
        ],
    )
}

/// Performance datasets for figures 10 and 11: a mixture of Gaussian
/// clusters "of different sizes and densities" in `dims` dimensions,
/// totalling `n` points.
pub fn perf_mixture(seed: u64, n: usize, dims: usize, n_clusters: usize) -> Dataset {
    let mut rng = seeded(seed);
    let mut data = Dataset::new(dims);
    let mut remaining = n;
    for c in 0..n_clusters {
        let share = if c + 1 == n_clusters {
            remaining
        } else {
            // Unequal sizes: earlier clusters are bigger.
            (remaining / 2).max(1)
        };
        remaining -= share;
        let center: Vec<f64> = (0..dims).map(|_| rng.random_range(0.0..100.0)).collect();
        let std_dev = rng.random_range(1.0..8.0);
        let part = crate::generators::gaussian_cluster(&mut rng, share, &center, std_dev);
        data.extend(&part).expect("same dimensionality");
        if remaining == 0 {
            break;
        }
    }
    data
}

/// The 64-dimensional color-histogram-style dataset of section 7's
/// preamble: "feature vectors used are color histograms extracted from tv
/// snapshots. We identified multiple clusters, e.g. a cluster of pictures
/// from a tennis match, and reasonable local outliers with LOF values of up
/// to 7."
///
/// **Substitution** (documented in DESIGN.md): we have no TV snapshots, so
/// we synthesize histogram-like vectors — points on the 64-bin probability
/// simplex. Each cluster has a sparse prototype distribution (a "scene");
/// members add small renormalized noise. Outliers are blends of two scenes
/// plus heavy noise — plausible histograms that belong to no cluster.
pub fn histograms64(
    seed: u64,
    clusters: usize,
    per_cluster: usize,
    outliers: usize,
) -> LabeledDataset {
    const DIMS: usize = 64;
    let mut rng = seeded(seed);

    // Sparse prototypes: a handful of dominant bins per scene.
    let mut prototypes: Vec<Vec<f64>> = Vec::with_capacity(clusters);
    for _ in 0..clusters {
        let mut proto = vec![0.0f64; DIMS];
        for _ in 0..6 {
            let bin = rng.random_range(0..DIMS);
            proto[bin] += rng.random_range(0.5..1.0);
        }
        normalize_histogram(&mut proto);
        prototypes.push(proto);
    }

    let mut data = Dataset::new(DIMS);
    let mut labels = Vec::new();
    let mut row = vec![0.0; DIMS];
    for (label, proto) in prototypes.iter().enumerate() {
        for _ in 0..per_cluster {
            for (d, v) in row.iter_mut().enumerate() {
                *v = (proto[d] + 0.004 * standard_normal(&mut rng)).max(0.0);
            }
            normalize_histogram(&mut row);
            data.push(&row).expect("finite");
            labels.push(label);
        }
    }
    for _ in 0..outliers {
        // A blend of two random scenes plus strong uniform noise.
        let a = &prototypes[rng.random_range(0..clusters)];
        let b = &prototypes[rng.random_range(0..clusters)];
        let w: f64 = rng.random_range(0.3..0.7);
        for (d, v) in row.iter_mut().enumerate() {
            *v = (w * a[d] + (1.0 - w) * b[d] + rng.random_range(0.0..0.02)).max(0.0);
        }
        normalize_histogram(&mut row);
        data.push(&row).expect("finite");
        labels.push(LabeledDataset::OUTLIER);
    }
    LabeledDataset { data, labels }
}

fn normalize_histogram(h: &mut [f64]) {
    let sum: f64 = h.iter().sum();
    if sum > 0.0 {
        for v in h.iter_mut() {
            *v /= sum;
        }
    } else {
        let uniform = 1.0 / h.len() as f64;
        for v in h.iter_mut() {
            *v = uniform;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::Metric;

    #[test]
    fn ds1_shape_matches_paper() {
        let d = ds1(1);
        assert_eq!(d.len(), 502);
        assert_eq!(d.ids_with_label(0).len(), 400);
        assert_eq!(d.ids_with_label(1).len(), 100);
        assert_eq!(d.outlier_ids(), vec![DS1_O1, DS1_O2]);
        assert_eq!(d.data.dims(), 2);
    }

    #[test]
    fn ds1_preserves_the_section3_density_relation() {
        let d = ds1(2);
        // o2's gap to C2 must be smaller than C1's typical nearest-neighbor
        // spacing — the condition that defeats DB(pct, dmin) outliers.
        let o2 = d.data.point(DS1_O2);
        let c2_gap = d
            .ids_with_label(1)
            .iter()
            .map(|&id| lof_core::Euclidean.distance(o2, d.data.point(id)))
            .fold(f64::INFINITY, f64::min);
        let c1_ids = d.ids_with_label(0);
        let mut spacings: Vec<f64> = c1_ids
            .iter()
            .map(|&p| {
                c1_ids
                    .iter()
                    .filter(|&&q| q != p)
                    .map(|&q| lof_core::Euclidean.distance(d.data.point(p), d.data.point(q)))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        spacings.sort_unstable_by(f64::total_cmp);
        let median_spacing = spacings[spacings.len() / 2];
        assert!(
            c2_gap < median_spacing,
            "o2 gap {c2_gap} must undercut C1 median spacing {median_spacing}"
        );
        let o1 = d.data.point(DS1_O1);
        let o1_gap = (0..500)
            .map(|id| lof_core::Euclidean.distance(o1, d.data.point(id)))
            .fold(f64::INFINITY, f64::min);
        assert!(o1_gap > 3.0 * median_spacing, "o1 must be globally detached ({o1_gap})");
    }

    #[test]
    fn fig8_cluster_sizes() {
        let d = fig8(3);
        assert_eq!(d.ids_with_label(0).len(), 10);
        assert_eq!(d.ids_with_label(1).len(), 35);
        assert_eq!(d.ids_with_label(2).len(), 500);
        assert_eq!(d.len(), 545);
    }

    #[test]
    fn fig9_composition() {
        let d = fig9(4);
        assert_eq!(d.len(), 200 + 500 + 500 + 500 + 7);
        assert_eq!(d.outlier_ids().len(), 7);
    }

    #[test]
    fn perf_mixture_has_requested_size() {
        for (n, dims) in [(100, 2), (500, 5), (300, 20)] {
            let ds = perf_mixture(7, n, dims, 5);
            assert_eq!(ds.len(), n);
            assert_eq!(ds.dims(), dims);
        }
    }

    #[test]
    fn histograms_live_on_the_simplex() {
        let d = histograms64(5, 4, 30, 6);
        assert_eq!(d.len(), 126);
        assert_eq!(d.data.dims(), 64);
        for (_, p) in d.data.iter() {
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        assert_eq!(ds1(9).data, ds1(9).data);
        assert_eq!(fig9(9).data, fig9(9).data);
        assert_eq!(perf_mixture(9, 200, 5, 4), perf_mixture(9, 200, 5, 4));
    }
}
