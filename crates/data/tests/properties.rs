//! Property tests for the workload generators: determinism, advertised
//! shapes, and scaling laws.

use lof_data::csv::{dataset_from_csv, dataset_to_csv};
use lof_data::generators::{mixture, Component};
use lof_data::normalize::{min_max_scale, standardize, ZScore};
use lof_data::paper::perf_mixture;
use lof_data::rng::seeded;
use lof_data::{gaussian_cluster, ring, uniform_box, uniform_disk};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn generators_are_deterministic_per_seed(
        seed in 0u64..1000,
        n in 1usize..200,
        dims in 1usize..6,
    ) {
        let center = vec![1.5; dims];
        let a = gaussian_cluster(&mut seeded(seed), n, &center, 2.0);
        let b = gaussian_cluster(&mut seeded(seed), n, &center, 2.0);
        prop_assert_eq!(a, b);
        let a = perf_mixture(seed, n, dims, 4);
        let b = perf_mixture(seed, n, dims, 4);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ(
        seed in 0u64..1000,
        n in 10usize..100,
    ) {
        let a = gaussian_cluster(&mut seeded(seed), n, &[0.0], 1.0);
        let b = gaussian_cluster(&mut seeded(seed + 1), n, &[0.0], 1.0);
        prop_assert_ne!(a, b);
    }

    #[test]
    fn uniform_box_stays_inside(
        n in 1usize..300,
        lo in -50.0f64..0.0,
        extent in 0.0f64..100.0,
        seed in 0u64..100,
    ) {
        let hi = lo + extent;
        let ds = uniform_box(&mut seeded(seed), n, &[lo, lo], &[hi, hi]);
        prop_assert_eq!(ds.len(), n);
        for (_, p) in ds.iter() {
            prop_assert!(p[0] >= lo && p[0] <= hi);
            prop_assert!(p[1] >= lo && p[1] <= hi);
        }
    }

    #[test]
    fn disk_and_ring_radii(
        n in 1usize..300,
        r_inner in 0.0f64..5.0,
        extra in 0.0f64..5.0,
        seed in 0u64..100,
    ) {
        let r_outer = r_inner + extra;
        let ds = ring(&mut seeded(seed), n, [0.0, 0.0], r_inner, r_outer);
        for (_, p) in ds.iter() {
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            prop_assert!(r >= r_inner - 1e-9 && r <= r_outer + 1e-9);
        }
        let ds = uniform_disk(&mut seeded(seed), n, [3.0, -2.0], r_outer);
        for (_, p) in ds.iter() {
            let r = ((p[0] - 3.0).powi(2) + (p[1] + 2.0).powi(2)).sqrt();
            prop_assert!(r <= r_outer + 1e-9);
        }
    }

    #[test]
    fn mixture_label_counts_match_spec(
        n1 in 1usize..50,
        n2 in 1usize..50,
        outliers in 0usize..5,
        seed in 0u64..100,
    ) {
        let planted: Vec<Vec<f64>> = (0..outliers).map(|i| vec![100.0 + i as f64, 0.0]).collect();
        let labeled = mixture(
            &mut seeded(seed),
            &[
                Component::Gaussian(n1, vec![0.0, 0.0], 1.0),
                Component::UniformBox(n2, vec![10.0, 10.0], vec![12.0, 12.0]),
            ],
            &planted,
        );
        prop_assert_eq!(labeled.len(), n1 + n2 + outliers);
        prop_assert_eq!(labeled.ids_with_label(0).len(), n1);
        prop_assert_eq!(labeled.ids_with_label(1).len(), n2);
        prop_assert_eq!(labeled.outlier_ids().len(), outliers);
    }

    #[test]
    fn standardize_then_stats_are_canonical(
        n in 3usize..100,
        seed in 0u64..100,
        spread in 0.1f64..50.0,
    ) {
        let ds = gaussian_cluster(&mut seeded(seed), n, &[7.0, -3.0], spread);
        let z = standardize(&ds);
        for d in 0..2 {
            let mean: f64 = z.iter().map(|(_, p)| p[d]).sum::<f64>() / n as f64;
            let var: f64 = z.iter().map(|(_, p)| p[d] * p[d]).sum::<f64>() / n as f64;
            prop_assert!(mean.abs() < 1e-8);
            prop_assert!((var - 1.0).abs() < 1e-8);
        }
        let m = min_max_scale(&ds);
        let (lo, hi) = m.bounding_box().unwrap();
        for d in 0..2 {
            prop_assert!(lo[d] >= -1e-12 && hi[d] <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn zscore_transform_point_matches_bulk(
        n in 3usize..60,
        seed in 0u64..100,
    ) {
        let ds = gaussian_cluster(&mut seeded(seed), n, &[0.0, 10.0, -5.0], 4.0);
        let scaler = ZScore::fit(&ds);
        let bulk = scaler.transform(&ds);
        for (id, p) in ds.iter() {
            prop_assert_eq!(scaler.transform_point(p), bulk.point(id).to_vec());
        }
    }

    #[test]
    fn csv_roundtrips_exactly(
        rows in proptest::collection::vec(
            proptest::collection::vec(-1e6f64..1e6, 3),
            1..50,
        ),
    ) {
        let ds = lof_core::Dataset::from_rows(&rows).unwrap();
        let text = dataset_to_csv(&ds);
        let back = dataset_from_csv(&text).unwrap();
        prop_assert_eq!(ds, back);
    }

    #[test]
    fn perf_mixture_shape(
        n in 1usize..500,
        dims in 1usize..8,
        clusters in 1usize..10,
        seed in 0u64..50,
    ) {
        let ds = perf_mixture(seed, n, dims, clusters);
        prop_assert_eq!(ds.len(), n);
        prop_assert_eq!(ds.dims(), dims);
    }
}
