//! Fixed-bucket latency histogram — `std`-only observability for the
//! streaming detector.
//!
//! Buckets are powers of two over nanoseconds (bucket `i` covers
//! `[2^i, 2^{i+1})` ns), which keeps recording a handful of integer ops and
//! bounds the relative quantile error by 2× — plenty for p50/p95/p99
//! monitoring of a scoring loop whose latencies span microseconds to
//! milliseconds.

/// Number of power-of-two buckets: covers `[1 ns, 2^63 ns)`, i.e. every
/// representable latency.
const BUCKETS: usize = 64;

/// A fixed-memory histogram of nanosecond latencies with quantile queries.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram { counts: [0; BUCKETS], total: 0, sum_ns: 0, max_ns: 0 }
    }

    /// Records one latency observation.
    pub fn record(&mut self, ns: u64) {
        let bucket = (u64::BITS - ns.leading_zeros()).saturating_sub(1) as usize;
        self.counts[bucket.min(BUCKETS - 1)] += 1;
        self.total += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.total as f64
        }
    }

    /// Largest recorded latency in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// The `q`-quantile (`0 < q <= 1`) in nanoseconds: the upper edge of
    /// the first bucket whose cumulative count reaches `ceil(q · total)`,
    /// clamped to the observed maximum. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                let upper = if bucket >= 63 { u64::MAX } else { (2u64 << bucket) - 1 };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Convenience trio: (p50, p95, p99) in nanoseconds.
    pub fn percentiles_ns(&self) -> (u64, u64, u64) {
        (self.quantile_ns(0.50), self.quantile_ns(0.95), self.quantile_ns(0.99))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.mean_ns(), 0.0);
    }

    #[test]
    fn quantiles_bracket_the_data_within_a_bucket() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 1000, 2000, 4000, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 8);
        let p50 = h.quantile_ns(0.5);
        // The 4th value (400 ns) lives in bucket [256, 512): upper edge 511.
        assert!((400..=511).contains(&p50), "p50 = {p50}");
        // p99 falls in the last populated bucket, clamped to the max.
        assert_eq!(h.quantile_ns(0.99), 100_000);
        assert_eq!(h.max_ns(), 100_000);
        assert!(h.mean_ns() > 0.0);
    }

    #[test]
    fn zero_and_huge_latencies_are_representable() {
        let mut h = LatencyHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ns(1.0) >= 1);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let (p50, p95, p99) = h.percentiles_ns();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 <= h.max_ns());
    }
}
