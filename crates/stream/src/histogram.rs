//! Latency histogram — promoted to [`lof_obs`] in PR 4.
//!
//! The power-of-two histogram that used to live here is now
//! [`lof_obs::Histogram`]: same bucketing (bucket `b` covers
//! `[2^b, 2^(b+1))`), but recording goes through `&self` atomics so the
//! serve loop can snapshot concurrently, and values past the top bucket
//! land in an explicit saturating overflow bucket instead of being
//! clamped into the last one. This alias keeps the streaming crate's
//! public name stable; the tests below are the original seed tests,
//! pinning the promoted type to the old behavioral contract.

/// Per-event scoring latency distribution (see module docs; this is
/// [`lof_obs::Histogram`] under its streaming name).
pub type LatencyHistogram = lof_obs::Histogram;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.quantile_ns(0.5), 0);
        assert_eq!(h.percentiles_ns(), (0, 0, 0));
    }

    #[test]
    fn quantiles_bracket_the_data_within_a_bucket() {
        let h = LatencyHistogram::default();
        for ns in [100, 200, 300, 400, 500, 600, 700, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 8);
        // p50 -> 4th sample (400) -> bucket [256, 512) -> edge 511.
        let p50 = h.quantile_ns(0.5);
        assert!((400..=511).contains(&p50), "p50 = {p50}");
        // p99 -> 8th sample -> clamped to the observed max.
        assert_eq!(h.quantile_ns(0.99), 100_000);
    }

    #[test]
    fn zero_and_huge_latencies_are_representable() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
        assert!(h.quantile_ns(1.0) >= 1);
        // Promoted-histogram refinement: the huge sample is visible as
        // overflow rather than silently folded into the top bucket.
        assert_eq!(h.overflow_count(), 1);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = LatencyHistogram::default();
        for i in 0..1000u64 {
            h.record(i * 37 % 5000);
        }
        let mut last = 0;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = h.quantile_ns(q);
            assert!(v >= last, "quantile regressed at q={q}: {v} < {last}");
            last = v;
        }
    }
}
