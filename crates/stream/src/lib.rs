//! # lof-stream — sliding-window streaming LOF
//!
//! The paper's conclusions name incremental LOF maintenance as the key
//! ongoing-work direction; `lof_core::incremental` implements the
//! insert/remove cascade, and this crate turns that primitive into a
//! deployable streaming subsystem:
//!
//! * [`SlidingWindowLof`] — a bounded count-based window with a warm-up
//!   phase, slide-oldest or landmark eviction, per-event scoring, and two
//!   alert rules (absolute LOF threshold, rolling window top-k);
//! * [`LatencyHistogram`] + [`StreamStats`] — `std`-only observability:
//!   events, evictions, cascade sizes, p50/p95/p99 scoring latency;
//! * [`wire`] — the NDJSON record schema shared by `lof stream`,
//!   `lof serve`, and the batch CLI's `--format json`;
//! * [`serve`] — the long-running loop: stdin→stdout pumping
//!   ([`run_stream`]) and a TCP server ([`serve::spawn`]) with
//!   thread-per-connection readers/writers and a bounded job queue for
//!   backpressure.
//!
//! Every emitted score is **bit-identical** to a fresh batch
//! [`lof_core::incremental::IncrementalLof`] over the live window
//! contents — the window only re-orders when work happens, never what is
//! computed (property-tested in `tests/properties.rs`).
//!
//! ## Quick start
//!
//! ```
//! use lof_core::Euclidean;
//! use lof_stream::{SlidingWindowLof, StreamConfig};
//!
//! let config = StreamConfig::new(5, 100).warmup(20).threshold(2.0);
//! let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
//! for i in 0..50 {
//!     window.push(&[f64::from(i % 7), f64::from(i % 11)]).unwrap();
//! }
//! let spike = window.push(&[80.0, 80.0]).unwrap();
//! assert!(spike.is_alert());
//! let (p50, _, p99) = window.stats().latency.percentiles_ns();
//! assert!(p50 <= p99);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod histogram;
pub mod linebuf;
pub mod serve;
pub mod snapshot;
pub mod window;
pub mod wire;

pub use histogram::LatencyHistogram;
pub use linebuf::{Line, LineBuffer};
pub use serve::{run_stream, ServeError, ServeHandle, StreamSummary, DEFAULT_QUEUE};
pub use snapshot::{SnapshotStats, WindowSnapshot};
pub use window::{EvictionPolicy, ScoredEvent, SlidingWindowLof, StreamConfig, StreamStats};
pub use wire::{metrics_record, parse_metrics_request, ControlCommand, MetricsFormat};
