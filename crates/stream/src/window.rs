//! The sliding-window streaming detector: a bounded window over
//! [`IncrementalLof`] with a warm-up phase, a configurable eviction policy,
//! per-event alert rules, and built-in latency/cascade observability.
//!
//! Every event is scored *against the current window* (definitions 3–7
//! applied to the window contents), so the emitted score is exactly what a
//! batch LOF over the live window would produce — property tests assert
//! bit-identity against a fresh [`IncrementalLof::new`] after every event.

use crate::histogram::LatencyHistogram;
use crate::snapshot::{SnapshotStats, WindowSnapshot};
use lof_core::incremental::{IncrementalLof, UpdateStats};
use lof_core::{Dataset, LofError, Metric, Result};
use lof_obs::{Counter, Gauge, MetricsRegistry};
use std::sync::Arc;
use std::time::Instant;

/// What happens when the window outgrows its capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Count-based sliding window: evict the longest-resident event once
    /// `len > capacity` (the streaming-LOF default).
    SlideOldest,
    /// Landmark window: never evict — the model accretes every event since
    /// the landmark (capacity is ignored).
    Landmark,
}

/// Configuration of a [`SlidingWindowLof`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// `MinPts` for the maintained LOF model.
    pub min_pts: usize,
    /// Window capacity (events) under [`EvictionPolicy::SlideOldest`].
    pub capacity: usize,
    /// Events buffered before the model is built; events arriving during
    /// warm-up are recorded but not scored. Clamped to
    /// `min_pts + 1 ..= capacity` by [`StreamConfig::validate`].
    pub warmup: usize,
    /// Eviction policy.
    pub policy: EvictionPolicy,
    /// Absolute alert rule: flag events with `LOF > threshold`.
    pub threshold: Option<f64>,
    /// Relative alert rule: flag events whose score ranks among the `k`
    /// highest LOF values of the current window.
    pub top_k: Option<usize>,
    /// Spatial shards the model is partitioned into (1 = flat engine).
    /// Scores are bit-identical at any shard count — sharding changes
    /// which distances are computed, never which values are produced.
    pub shards: usize,
    /// Defer lrd/LOF maintenance to the read side (the arriving event's
    /// score, [`top_n`](SlidingWindowLof::top_n), and the top-k alert
    /// rule flush exactly what they need). Scores stay bit-identical to
    /// eager maintenance; per-event cost drops sharply for streams that
    /// read only the arriving score.
    pub deferred: bool,
}

impl StreamConfig {
    /// A slide-oldest window of `capacity` events at the given `MinPts`,
    /// with warm-up `min_pts + 1` and no alert rules.
    pub fn new(min_pts: usize, capacity: usize) -> Self {
        StreamConfig {
            min_pts,
            capacity,
            warmup: min_pts + 1,
            policy: EvictionPolicy::SlideOldest,
            threshold: None,
            top_k: None,
            shards: 1,
            deferred: false,
        }
    }

    /// Sets the warm-up length (events buffered before scoring starts).
    #[must_use]
    pub fn warmup(mut self, events: usize) -> Self {
        self.warmup = events;
        self
    }

    /// Sets the eviction policy.
    #[must_use]
    pub fn policy(mut self, policy: EvictionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the absolute LOF alert threshold.
    #[must_use]
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Sets the rolling top-`k` alert rule.
    #[must_use]
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Sets the shard count (1 disables sharding).
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Switches score maintenance between eager and deferred.
    #[must_use]
    pub fn deferred(mut self, deferred: bool) -> Self {
        self.deferred = deferred;
        self
    }

    /// Checks the invariants the window needs: `min_pts >= 1`,
    /// `capacity > min_pts + 1` (room to evict while neighborhoods stay
    /// defined), `warmup` within `min_pts + 1 ..= capacity`,
    /// `shards >= 1`.
    ///
    /// # Errors
    ///
    /// Returns [`LofError::InvalidMinPts`] when the window could never hold
    /// a defined neighborhood, [`LofError::InvalidRange`] when the warm-up
    /// falls outside the valid band, [`LofError::InvalidPartition`] for a
    /// zero shard count.
    pub fn validate(&self) -> Result<()> {
        if self.min_pts == 0 || self.capacity <= self.min_pts + 1 {
            return Err(LofError::InvalidMinPts {
                min_pts: self.min_pts,
                dataset_size: self.capacity,
            });
        }
        if self.warmup <= self.min_pts || self.warmup > self.capacity {
            return Err(LofError::InvalidRange { lb: self.warmup, ub: self.capacity });
        }
        if self.shards == 0 {
            return Err(LofError::InvalidPartition(
                "shard count must be at least 1 (1 = unsharded)".to_owned(),
            ));
        }
        Ok(())
    }
}

/// The record emitted for one processed event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEvent {
    /// Stream sequence number of this event (0-based; equals the model's
    /// arrival number).
    pub seq: u64,
    /// LOF of the event against the post-eviction window; `None` during
    /// warm-up.
    pub score: Option<f64>,
    /// True while the window is still warming up.
    pub warmup: bool,
    /// Window size after this event (including it, minus any eviction).
    pub window_len: usize,
    /// Sequence number of the event this one evicted, if any.
    pub evicted: Option<u64>,
    /// Merged insert + eviction update cascade; `None` during warm-up.
    pub cascade: Option<UpdateStats>,
    /// The absolute-threshold alert rule fired.
    pub threshold_alert: bool,
    /// The rolling top-k alert rule fired.
    pub top_k_alert: bool,
    /// Wall-clock scoring latency of this event, nanoseconds.
    pub latency_ns: u64,
}

impl ScoredEvent {
    /// True when any configured alert rule fired.
    pub fn is_alert(&self) -> bool {
        self.threshold_alert || self.top_k_alert
    }
}

/// Aggregate counters of a window's lifetime (for dashboards and the
/// end-of-stream summary record).
///
/// The latency histogram is `Arc`-shared: the same instance is registered
/// in the window's [`MetricsRegistry`] under `stream.latency_ns`, so a
/// metrics snapshot and these stats can never disagree. Since PR 4 it
/// records **scored events only** — warm-up buffering is not a scoring
/// latency, and the reconciliation invariant is
/// `latency.count() == scored`.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    /// Events processed (warm-up included).
    pub events: u64,
    /// Events that received a score.
    pub scored: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Events on which at least one alert rule fired.
    pub alerts: u64,
    /// Total LOF recomputations across all cascades (insert + evict).
    pub cascade_lofs: u64,
    /// Cross-shard cascade repairs: cascade members living outside the
    /// triggering event's home shard. Always 0 while unsharded.
    pub border_repairs: u64,
    /// Scoring latency distribution over scored events.
    pub latency: Arc<LatencyHistogram>,
}

/// The window's registry handles, resolved once at construction so the
/// per-event mirror writes are plain sharded-atomic bumps.
#[derive(Debug)]
struct WindowMetrics {
    events: Arc<Counter>,
    scored: Arc<Counter>,
    evictions: Arc<Counter>,
    alerts: Arc<Counter>,
    cascade_lofs: Arc<Counter>,
    border_repairs: Arc<Counter>,
    occupancy: Arc<Gauge>,
    last_lof: Arc<Gauge>,
}

impl WindowMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        WindowMetrics {
            events: registry.counter("stream.events"),
            scored: registry.counter("stream.scored"),
            evictions: registry.counter("stream.evictions"),
            alerts: registry.counter("stream.alerts"),
            cascade_lofs: registry.counter("stream.cascade_lofs"),
            border_repairs: registry.counter("stream.shard.border_repairs"),
            occupancy: registry.gauge("stream.window_occupancy"),
            last_lof: registry.gauge("stream.last_lof"),
        }
    }
}

/// A bounded sliding-window streaming LOF detector.
///
/// ```
/// use lof_core::Euclidean;
/// use lof_stream::{SlidingWindowLof, StreamConfig};
///
/// let config = StreamConfig::new(3, 50).warmup(10).threshold(2.0);
/// let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
/// for i in 0u32..30 {
///     let ev = window.push(&[f64::from(i % 5), f64::from(i / 5)]).unwrap();
///     assert_eq!(ev.seq, u64::from(i));
/// }
/// let spike = window.push(&[100.0, 100.0]).unwrap();
/// assert!(spike.score.unwrap() > 2.0);
/// assert!(spike.threshold_alert);
/// ```
#[derive(Debug)]
pub struct SlidingWindowLof<M: Metric> {
    config: StreamConfig,
    /// Holds the metric until the warm-up completes and the model takes it.
    metric: Option<M>,
    /// Warm-up buffer (created on the first event, fixing the stream's
    /// dimensionality).
    pending: Option<Dataset>,
    model: Option<IncrementalLof<M>>,
    next_seq: u64,
    /// The model's lifetime border-repair count already folded into
    /// `stats.border_repairs` (the model counter restarts at 0 on
    /// restore while the stream counter resumes).
    border_seen: u64,
    stats: StreamStats,
    registry: Arc<MetricsRegistry>,
    metrics: WindowMetrics,
}

impl<M: Metric> SlidingWindowLof<M> {
    /// Creates an empty window with its own private [`MetricsRegistry`].
    ///
    /// # Errors
    ///
    /// Propagates [`StreamConfig::validate`].
    pub fn new(config: StreamConfig, metric: M) -> Result<Self> {
        Self::with_registry(config, metric, Arc::new(MetricsRegistry::new()))
    }

    /// Creates an empty window mirroring its counters into `registry`
    /// (`stream.*` names). The stats' latency histogram is registered
    /// there as `stream.latency_ns` — shared, not copied.
    ///
    /// # Errors
    ///
    /// Propagates [`StreamConfig::validate`].
    pub fn with_registry(
        config: StreamConfig,
        metric: M,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self> {
        config.validate()?;
        let stats = StreamStats::default();
        registry.insert_histogram("stream.latency_ns", Arc::clone(&stats.latency));
        let metrics = WindowMetrics::new(&registry);
        Ok(SlidingWindowLof {
            config,
            metric: Some(metric),
            pending: None,
            model: None,
            next_seq: 0,
            border_seen: 0,
            stats,
            registry,
            metrics,
        })
    }

    /// The window's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The registry this window mirrors its counters into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &StreamStats {
        &self.stats
    }

    /// Events currently in the window (buffered or modeled).
    pub fn len(&self) -> usize {
        match (&self.model, &self.pending) {
            (Some(model), _) => model.len(),
            (None, Some(pending)) => pending.len(),
            (None, None) => 0,
        }
    }

    /// True before the first event arrives.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True until the warm-up completes and the model is live.
    pub fn is_warming_up(&self) -> bool {
        self.model.is_none()
    }

    /// The live LOF model (after warm-up).
    pub fn model(&self) -> Option<&IncrementalLof<M>> {
        self.model.as_ref()
    }

    /// Processes one event: inserts it, applies the eviction policy, scores
    /// it against the resulting window, and evaluates the alert rules.
    ///
    /// # Errors
    ///
    /// Returns [`LofError::DimensionMismatch`] /
    /// [`LofError::NonFiniteCoordinate`] for invalid points; the window is
    /// left unchanged and no sequence number is consumed.
    pub fn push(&mut self, point: &[f64]) -> Result<ScoredEvent> {
        let start = Instant::now();
        let seq = self.next_seq;
        let (score, evicted, cascade) = if self.model.is_some() {
            self.push_live(point)?
        } else {
            self.push_warmup(point)?;
            (None, None, None)
        };
        self.next_seq += 1;

        let threshold_alert = match (score, self.config.threshold) {
            (Some(s), Some(t)) => s > t,
            _ => false,
        };
        let top_k_alert = match (score, self.config.top_k) {
            (Some(s), Some(k)) => self.ranks_in_top_k(s, k),
            _ => false,
        };

        let latency_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let event = ScoredEvent {
            seq,
            score,
            warmup: score.is_none(),
            window_len: self.len(),
            evicted,
            cascade,
            threshold_alert,
            top_k_alert,
            latency_ns,
        };

        self.stats.events += 1;
        self.metrics.events.inc();
        if let Some(s) = score {
            self.stats.scored += 1;
            self.metrics.scored.inc();
            self.metrics.last_lof.set(s);
            // Scored events only: warm-up buffering is not a scoring
            // latency, and reconciliation tests pin
            // `latency.count() == scored`.
            self.stats.latency.record(latency_ns);
        }
        if evicted.is_some() {
            self.stats.evictions += 1;
            self.metrics.evictions.inc();
        }
        if event.is_alert() {
            self.stats.alerts += 1;
            self.metrics.alerts.inc();
        }
        if let Some(c) = cascade {
            self.stats.cascade_lofs += c.lofs_recomputed as u64;
            self.metrics.cascade_lofs.add(c.lofs_recomputed as u64);
        }
        if let Some(model) = self.model.as_ref() {
            let repairs = model.border_repairs();
            let delta = repairs - self.border_seen;
            if delta > 0 {
                self.border_seen = repairs;
                self.stats.border_repairs += delta;
                self.metrics.border_repairs.add(delta);
            }
        }
        self.metrics.occupancy.set(event.window_len as f64);
        Ok(event)
    }

    /// Warm-up path: buffer the point; build the model when the buffer
    /// reaches the configured warm-up length.
    fn push_warmup(&mut self, point: &[f64]) -> Result<()> {
        let pending = self.pending.get_or_insert_with(|| Dataset::new(point.len().max(1)));
        pending.push(point)?;
        if pending.len() >= self.config.warmup {
            let seed = self.pending.take().expect("warm-up buffer exists");
            let metric = self.metric.take().expect("metric unclaimed before model build");
            let mut model = IncrementalLof::new(seed, metric, self.config.min_pts)?;
            Self::apply_engine_modes(&mut model, &self.config);
            self.model = Some(model);
        }
        Ok(())
    }

    /// Applies the configured engine modes to a freshly built model
    /// (warm-up completion and snapshot restore share this).
    fn apply_engine_modes(model: &mut IncrementalLof<M>, config: &StreamConfig) {
        if config.shards > 1 {
            model.enable_sharding(config.shards, 1);
        }
        if config.deferred {
            model.enable_deferred(true);
        }
    }

    /// Live path: insert, evict per policy, and re-read the event's score
    /// from the post-eviction window.
    fn push_live(
        &mut self,
        point: &[f64],
    ) -> Result<(Option<f64>, Option<u64>, Option<UpdateStats>)> {
        let model = self.model.as_mut().expect("live model");
        // Lazy insert + a single `lof_now` read after the eviction
        // decision: in deferred mode the emitted (post-eviction) score is
        // then computed exactly once per event.
        let (id, insert_stats) = model.insert_lazy(point)?;

        let over_capacity =
            self.config.policy == EvictionPolicy::SlideOldest && model.len() > self.config.capacity;
        if !over_capacity {
            let score = model.lof_now(id)?;
            return Ok((Some(score), None, Some(insert_stats)));
        }

        // Evict the longest-resident event. The freshly inserted point sits
        // in the last slot (maximum arrival), so the swap-remove relocates
        // it into the evicted slot — re-read its score there: the emitted
        // value must reflect the *post-eviction* window.
        let oldest = model.oldest();
        let evicted_seq = model.arrival(oldest)?;
        debug_assert_ne!(oldest, id, "the newest event is never the eviction candidate");
        let evict_stats = model.remove(oldest)?;
        let new_id = model.newest();
        // `lof_now` (not `lof`): in deferred mode it refreshes exactly the
        // lrds this one score averages; in eager mode it is a plain read.
        let score = model.lof_now(new_id)?;
        Ok((Some(score), Some(evicted_seq), Some(insert_stats.merge(evict_stats))))
    }

    /// The window's `n` most outlying members as `(event seq, LOF)`
    /// pairs, ordered by score descending with ties broken by earlier
    /// arrival. Empty during warm-up (no model, no scores yet).
    ///
    /// This is a snapshot of the maintained incremental scores — the
    /// sliding window keeps every member's LOF current after each
    /// insert/evict cascade, so answering is a sort, not a sweep. In
    /// deferred mode the model is flushed first (hence `&mut self`), so
    /// the ranking is exactly the eager one.
    pub fn top_n(&mut self, n: usize) -> Vec<(u64, f64)> {
        let Some(model) = self.model.as_mut() else {
            return Vec::new();
        };
        model.flush();
        let model = &*model;
        let mut ranked: Vec<(u64, f64)> = (0..model.len())
            .map(|id| {
                let seq = model.arrival(id).expect("window members have arrivals");
                (seq, model.lof_values()[id])
            })
            .collect();
        ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }

    /// Captures the window's complete scoring state as a serializable
    /// [`WindowSnapshot`] tagged with the caller's metric identity.
    ///
    /// The snapshot holds the points in id order plus the arrival /
    /// sequence counters — by the maintained-state invariant (incremental
    /// state == fresh batch build over the current id order) that is
    /// sufficient for [`restore`](Self::restore) to resume scoring and
    /// evicting bit-identically. The latency histogram is deliberately
    /// not captured.
    pub fn snapshot(&self, metric_tag: &str) -> WindowSnapshot {
        let (dims, warming, points, arrivals, next_arrival) = match (&self.model, &self.pending) {
            (Some(model), _) => {
                let data = model.dataset();
                let arrivals =
                    (0..model.len()).map(|id| model.arrival(id).expect("id in range")).collect();
                (data.dims(), false, data.as_flat().to_vec(), arrivals, model.next_arrival())
            }
            (None, Some(pending)) => {
                (pending.dims(), true, pending.as_flat().to_vec(), Vec::new(), self.next_seq)
            }
            (None, None) => (0, true, Vec::new(), Vec::new(), self.next_seq),
        };
        WindowSnapshot {
            metric_tag: metric_tag.to_owned(),
            config: self.config.clone(),
            dims,
            warming,
            points,
            arrivals,
            next_seq: self.next_seq,
            next_arrival,
            stats: SnapshotStats {
                events: self.stats.events,
                scored: self.stats.scored,
                evictions: self.stats.evictions,
                alerts: self.stats.alerts,
                cascade_lofs: self.stats.cascade_lofs,
                border_repairs: self.stats.border_repairs,
            },
            extras: Vec::new(),
        }
    }

    /// Rebuilds a window from a snapshot with its own private registry.
    ///
    /// # Errors
    ///
    /// See [`restore_with_registry`](Self::restore_with_registry).
    pub fn restore(snap: &WindowSnapshot, metric: M, metric_tag: &str) -> Result<Self> {
        Self::restore_with_registry(snap, metric, metric_tag, Arc::new(MetricsRegistry::new()))
    }

    /// Rebuilds a window from a snapshot, mirroring counters into
    /// `registry` exactly as [`with_registry`](Self::with_registry) does.
    ///
    /// The restored window scores, alerts, and evicts **bit-identically**
    /// to the uninterrupted original from the next event on (property
    /// tests in `tests/snapshot.rs` pin this). Lifetime counters resume;
    /// the latency histogram restarts empty — wall-clock timings of the
    /// dead process are not comparable, so after a restore
    /// `latency.count()` lags `stats().scored` by the pre-snapshot count.
    ///
    /// # Errors
    ///
    /// Returns [`LofError::InvalidPartition`] when `metric_tag` does not
    /// match the tag the snapshot was taken under, or when the snapshot's
    /// fields are mutually inconsistent (warming buffer at or past the
    /// warm-up length, sequence counters that cannot have produced the
    /// contents); propagates model-construction errors otherwise.
    pub fn restore_with_registry(
        snap: &WindowSnapshot,
        metric: M,
        metric_tag: &str,
        registry: Arc<MetricsRegistry>,
    ) -> Result<Self> {
        if snap.metric_tag != metric_tag {
            return Err(LofError::InvalidPartition(format!(
                "snapshot was taken under metric '{}' but restore was handed '{metric_tag}'",
                snap.metric_tag
            )));
        }
        let mut window = Self::with_registry(snap.config.clone(), metric, registry)?;
        let n = snap.points.len().checked_div(snap.dims).unwrap_or(0);
        if snap.warming {
            if n >= snap.config.warmup {
                return Err(LofError::InvalidPartition(format!(
                    "warming snapshot buffers {n} events at warm-up length {}",
                    snap.config.warmup
                )));
            }
            if snap.next_seq != n as u64 {
                return Err(LofError::InvalidPartition(format!(
                    "warming snapshot buffers {n} events but next_seq is {}",
                    snap.next_seq
                )));
            }
            if n > 0 {
                window.pending = Some(Dataset::from_flat(snap.dims, snap.points.clone())?);
            }
        } else {
            let data = Dataset::from_flat(snap.dims, snap.points.clone())?;
            let metric = window.metric.take().expect("metric unclaimed before restore build");
            let mut model = IncrementalLof::with_arrivals(
                data,
                metric,
                snap.config.min_pts,
                snap.arrivals.clone(),
                snap.next_arrival,
            )?;
            Self::apply_engine_modes(&mut model, &window.config);
            window.model = Some(model);
        }
        window.next_seq = snap.next_seq;
        window.stats.events = snap.stats.events;
        window.stats.scored = snap.stats.scored;
        window.stats.evictions = snap.stats.evictions;
        window.stats.alerts = snap.stats.alerts;
        window.stats.cascade_lofs = snap.stats.cascade_lofs;
        // The rebuilt model's border counter restarts at 0; the stream
        // counter resumes from the snapshot (border_seen stays 0).
        window.stats.border_repairs = snap.stats.border_repairs;
        window.metrics.events.add(snap.stats.events);
        window.metrics.scored.add(snap.stats.scored);
        window.metrics.evictions.add(snap.stats.evictions);
        window.metrics.alerts.add(snap.stats.alerts);
        window.metrics.cascade_lofs.add(snap.stats.cascade_lofs);
        window.metrics.border_repairs.add(snap.stats.border_repairs);
        window.metrics.occupancy.set(window.len() as f64);
        Ok(window)
    }

    /// True when at most `k - 1` window members score strictly higher than
    /// `score` (i.e. the event ranks in the window's top-`k`). Flushes a
    /// deferred model first — the rule compares against every member's
    /// current score.
    fn ranks_in_top_k(&mut self, score: f64, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        let model = self.model.as_mut().expect("scored events imply a live model");
        model.flush();
        let higher = model.lof_values().iter().filter(|&&v| v > score).count();
        higher < k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::Euclidean;

    fn grid_point(i: u64) -> [f64; 2] {
        [(i % 6) as f64, ((i / 6) % 6) as f64]
    }

    #[test]
    fn warmup_then_scoring_then_sliding() {
        let config = StreamConfig::new(3, 20).warmup(10);
        let mut w = SlidingWindowLof::new(config, Euclidean).unwrap();
        for i in 0..10 {
            let ev = w.push(&grid_point(i)).unwrap();
            assert!(ev.warmup && ev.score.is_none(), "event {i} is warm-up");
        }
        assert!(!w.is_warming_up());
        for i in 10..20 {
            let ev = w.push(&grid_point(i)).unwrap();
            assert!(ev.score.is_some() && ev.evicted.is_none());
        }
        // Capacity reached: the next push evicts seq 0, then 1, ...
        for (step, i) in (20..25).enumerate() {
            let ev = w.push(&grid_point(i)).unwrap();
            assert_eq!(ev.evicted, Some(step as u64));
            assert_eq!(ev.window_len, 20);
        }
        assert_eq!(w.stats().evictions, 5);
        assert_eq!(w.stats().events, 25);
        assert_eq!(w.stats().scored, 15);
        assert_eq!(w.stats().latency.count(), 15, "latency records scored events only");
    }

    #[test]
    fn top_n_ranks_window_members_by_score_then_arrival() {
        let config = StreamConfig::new(3, 64).warmup(5);
        let mut w = SlidingWindowLof::new(config, Euclidean).unwrap();
        assert!(w.top_n(3).is_empty(), "no ranking during warm-up");
        for i in 0..4 {
            w.push(&grid_point(i)).unwrap();
            assert!(w.top_n(3).is_empty(), "still warming up");
        }
        for i in 4..16 {
            w.push(&grid_point(i)).unwrap();
        }
        // A far-away outlier must rank first.
        let ev = w.push(&[40.0, 40.0]).unwrap();
        let top = w.top_n(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, ev.seq, "the planted outlier leads the ranking");
        assert!(top[0].1 > top[1].1);
        // Ordered by score desc, ties by earlier arrival; full ranking is
        // capped at the window size.
        let all = w.top_n(usize::MAX);
        assert_eq!(all.len(), w.len());
        for pair in all.windows(2) {
            let ((s0, l0), (s1, l1)) = (pair[0], pair[1]);
            assert!(l0 > l1 || (l0 == l1 && s0 < s1), "ranking order violated");
        }
    }

    #[test]
    fn registry_mirror_matches_the_stats() {
        let config = StreamConfig::new(3, 20).warmup(10).threshold(2.0);
        let mut w = SlidingWindowLof::new(config, Euclidean).unwrap();
        for i in 0..25 {
            w.push(&grid_point(i)).unwrap();
        }
        w.push(&[100.0, 100.0]).unwrap();
        let r = Arc::clone(w.registry());
        let stats = w.stats().clone();
        // The registered histogram IS the stats histogram, in both modes.
        assert_eq!(r.histogram("stream.latency_ns").count(), stats.latency.count());
        if lof_obs::enabled() {
            assert_eq!(r.counter("stream.events").value(), stats.events);
            assert_eq!(r.counter("stream.scored").value(), stats.scored);
            assert_eq!(r.counter("stream.evictions").value(), stats.evictions);
            assert_eq!(r.counter("stream.alerts").value(), stats.alerts);
            assert_eq!(r.counter("stream.cascade_lofs").value(), stats.cascade_lofs);
            assert_eq!(r.gauge("stream.window_occupancy").value(), w.len() as f64);
            assert_eq!(
                r.counter("stream.events").value() - r.counter("stream.evictions").value(),
                w.len() as u64,
                "occupancy == inserts - evictions"
            );
        }
    }

    #[test]
    fn landmark_never_evicts() {
        let config = StreamConfig::new(3, 10).warmup(5).policy(EvictionPolicy::Landmark);
        let mut w = SlidingWindowLof::new(config, Euclidean).unwrap();
        for i in 0..40 {
            let ev = w.push(&grid_point(i)).unwrap();
            assert_eq!(ev.evicted, None);
        }
        assert_eq!(w.len(), 40);
        assert_eq!(w.stats().evictions, 0);
    }

    #[test]
    fn threshold_and_top_k_alerts_fire_on_a_spike() {
        let config = StreamConfig::new(4, 60).warmup(30).threshold(2.5).top_k(1);
        let mut w = SlidingWindowLof::new(config, Euclidean).unwrap();
        for i in 0..40 {
            let ev = w.push(&grid_point(i)).unwrap();
            assert!(!ev.threshold_alert, "grid points stay under threshold");
        }
        let spike = w.push(&[50.0, 50.0]).unwrap();
        assert!(spike.threshold_alert && spike.top_k_alert && spike.is_alert());
        assert!(w.stats().alerts >= 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SlidingWindowLof::new(StreamConfig::new(0, 10), Euclidean).is_err());
        assert!(SlidingWindowLof::new(StreamConfig::new(5, 6), Euclidean).is_err());
        assert!(SlidingWindowLof::new(StreamConfig::new(3, 10).warmup(2), Euclidean).is_err());
        assert!(SlidingWindowLof::new(StreamConfig::new(3, 10).warmup(11), Euclidean).is_err());
    }

    #[test]
    fn bad_points_do_not_consume_sequence_numbers() {
        let mut w = SlidingWindowLof::new(StreamConfig::new(3, 20), Euclidean).unwrap();
        w.push(&[0.0, 0.0]).unwrap();
        assert!(w.push(&[1.0]).is_err(), "dimension mismatch");
        assert!(w.push(&[f64::NAN, 0.0]).is_err(), "non-finite");
        let ev = w.push(&[1.0, 1.0]).unwrap();
        assert_eq!(ev.seq, 1, "failed pushes must not burn seq 1");
        assert_eq!(w.stats().events, 2);
    }

    #[test]
    fn emitted_score_reflects_the_post_eviction_window() {
        let config = StreamConfig::new(3, 12).warmup(12);
        let mut w = SlidingWindowLof::new(config, Euclidean).unwrap();
        for i in 0..12 {
            w.push(&grid_point(i)).unwrap();
        }
        let ev = w.push(&grid_point(12)).unwrap();
        assert_eq!(ev.evicted, Some(0));
        let model = w.model().unwrap();
        let newest = model.newest();
        assert_eq!(ev.score.unwrap().to_bits(), model.lof(newest).unwrap().to_bits());
    }
}
