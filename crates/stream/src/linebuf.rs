//! Incremental line framing for socket readers.
//!
//! Both serving layers (the thread-per-connection loop here and the
//! event-loop tier in `lof-serve`) read NDJSON off sockets in arbitrary
//! chunks: a line may arrive split across many reads, and a hostile or
//! broken client may send an unbounded "line" that never ends. This
//! buffer turns raw chunks into complete lines while holding both
//! properties:
//!
//! * **partial lines survive across reads** — bytes without a newline
//!   stay buffered until the rest arrives;
//! * **oversized lines are rejected, not truncated** — once a line
//!   exceeds the cap, the buffer switches to discard mode, reports one
//!   [`Line::Oversized`] marker (the serve loops answer it with an
//!   in-band error record), and silently drops bytes until the next
//!   newline resynchronizes the stream. Nothing of the overlong line is
//!   ever delivered as if it were the client's event.

/// Default per-line cap: far above any realistic event (a 1000-d point
/// in JSON is ~25 KiB) but small enough that one bad client cannot
/// balloon the server's memory.
pub const DEFAULT_MAX_LINE: usize = 256 * 1024;

/// One framing outcome from [`LineBuffer::next_line`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Line {
    /// A complete line (newline stripped, `\r\n` tolerated), decoded
    /// UTF-8-lossily — invalid sequences become U+FFFD and then fail
    /// event parsing with a readable message instead of killing the
    /// connection.
    Complete(String),
    /// A line exceeded the cap and was discarded up to the next newline.
    Oversized {
        /// The configured cap the line overran.
        limit: usize,
    },
}

/// Reassembles newline-delimited lines from arbitrary read chunks.
#[derive(Debug)]
pub struct LineBuffer {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
    /// True while dropping the remainder of an overlong line.
    discarding: bool,
    max_line: usize,
}

impl LineBuffer {
    /// A buffer enforcing `max_line` bytes per line (0 means
    /// [`DEFAULT_MAX_LINE`]).
    pub fn new(max_line: usize) -> Self {
        let max_line = if max_line == 0 { DEFAULT_MAX_LINE } else { max_line };
        LineBuffer { buf: Vec::new(), start: 0, discarding: false, max_line }
    }

    /// Appends one read chunk.
    pub fn push(&mut self, chunk: &[u8]) {
        // Compact before growing: the consumed prefix is dead weight.
        if self.start > 0 && (self.start >= self.buf.len() || self.start > 4096) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered and not yet delivered.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Drains the next framed line, if a complete one (or an overflow
    /// verdict) is available. Call repeatedly after each
    /// [`push`](Self::push) until it returns `None`.
    pub fn next_line(&mut self) -> Option<Line> {
        loop {
            let pending = &self.buf[self.start..];
            match pending.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let line_end = self.start + pos;
                    let line_start = self.start;
                    self.start = line_end + 1;
                    if self.discarding {
                        // The tail of an already-reported overlong line:
                        // drop it and resynchronize.
                        self.discarding = false;
                        continue;
                    }
                    let mut line = &self.buf[line_start..line_end];
                    if line.last() == Some(&b'\r') {
                        line = &line[..line.len() - 1];
                    }
                    if line.len() > self.max_line {
                        return Some(Line::Oversized { limit: self.max_line });
                    }
                    return Some(Line::Complete(String::from_utf8_lossy(line).into_owned()));
                }
                None => {
                    if self.discarding {
                        // Still inside the overlong line: drop everything.
                        self.buf.clear();
                        self.start = 0;
                        return None;
                    }
                    if self.pending() > self.max_line {
                        // The partial line already overran the cap; report
                        // once and discard until the newline arrives.
                        self.buf.clear();
                        self.start = 0;
                        self.discarding = true;
                        return Some(Line::Oversized { limit: self.max_line });
                    }
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_survive_arbitrary_chunking() {
        let mut lb = LineBuffer::new(64);
        lb.push(b"1.0,");
        assert_eq!(lb.next_line(), None, "partial line stays buffered");
        lb.push(b"2.0\n3.0");
        assert_eq!(lb.next_line(), Some(Line::Complete("1.0,2.0".to_owned())));
        assert_eq!(lb.next_line(), None);
        lb.push(b",4.0\r\n\n");
        assert_eq!(lb.next_line(), Some(Line::Complete("3.0,4.0".to_owned())));
        assert_eq!(lb.next_line(), Some(Line::Complete(String::new())));
        assert_eq!(lb.next_line(), None);
    }

    #[test]
    fn single_byte_chunks_work() {
        let mut lb = LineBuffer::new(64);
        for &b in b"a,b\nc,d\n" {
            lb.push(&[b]);
        }
        assert_eq!(lb.next_line(), Some(Line::Complete("a,b".to_owned())));
        assert_eq!(lb.next_line(), Some(Line::Complete("c,d".to_owned())));
        assert_eq!(lb.next_line(), None);
    }

    #[test]
    fn oversized_complete_line_is_rejected_not_truncated() {
        let mut lb = LineBuffer::new(8);
        lb.push(b"0123456789ABCDEF\nok\n");
        assert_eq!(lb.next_line(), Some(Line::Oversized { limit: 8 }));
        assert_eq!(lb.next_line(), Some(Line::Complete("ok".to_owned())));
    }

    #[test]
    fn oversized_partial_line_reports_once_and_resynchronizes() {
        let mut lb = LineBuffer::new(8);
        lb.push(b"0123456789");
        assert_eq!(lb.next_line(), Some(Line::Oversized { limit: 8 }), "cap overrun mid-line");
        // More of the same overlong line: silently discarded.
        lb.push(b"ABCDEFGHIJ");
        assert_eq!(lb.next_line(), None);
        assert_eq!(lb.pending(), 0, "discard mode must not buffer");
        // The newline ends the bad line; the next one is delivered.
        lb.push(b"tail\nfresh\n");
        assert_eq!(lb.next_line(), Some(Line::Complete("fresh".to_owned())));
        assert_eq!(lb.next_line(), None);
    }

    #[test]
    fn zero_cap_means_default() {
        let lb = LineBuffer::new(0);
        assert_eq!(lb.max_line, DEFAULT_MAX_LINE);
    }

    #[test]
    fn invalid_utf8_is_delivered_lossily() {
        let mut lb = LineBuffer::new(64);
        lb.push(b"1.0,\xFF\xFE\n");
        match lb.next_line() {
            Some(Line::Complete(s)) => assert!(s.contains('\u{FFFD}')),
            other => panic!("expected a lossy line, got {other:?}"),
        }
    }
}
