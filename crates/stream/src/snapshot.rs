//! Versioned on-disk snapshots of a [`SlidingWindowLof`]: the `LOFW`
//! binary format with CRC32 framing.
//!
//! A window's complete scoring state is surprisingly small. The crate's
//! maintained-state invariant — the incremental model is bit-identical to
//! a fresh batch build over the current window contents in id order
//! (property-tested in `tests/properties.rs`) — means a snapshot never
//! has to serialize neighborhoods, lrd/LOF vectors, or CSR arenas: the
//! points in id order, their arrival numbers, and the sequence counters
//! are enough for [`SlidingWindowLof::restore`] to rebuild a model that
//! scores and evicts **bit-identically** to the uninterrupted run.
//!
//! Format (`LOFW` magic, version 2, all integers little-endian):
//!
//! ```text
//! [magic u32 = 0x4C4F4657] [version u32] [payload_len u64]
//! [payload: payload_len bytes] [crc32 u32 of the payload]
//! ```
//!
//! The payload is a flat field sequence (strings are `u64` length +
//! UTF-8 bytes, options are a presence byte + value):
//!
//! ```text
//! metric_tag:str  min_pts:u64 capacity:u64 warmup:u64 policy:u8
//! threshold:opt<f64> top_k:opt<u64>  shards:u64 deferred:u8
//! dims:u64 warming:u8
//! n:u64 points:n*dims*f64  arrivals:(count:u64, count*u64)
//! next_seq:u64 next_arrival:u64
//! events:u64 scored:u64 evictions:u64 alerts:u64 cascade_lofs:u64
//! border_repairs:u64
//! extras:(count:u64, count*(key:str, value:str))
//! ```
//!
//! Version 1 (readable, never written) lacks the `shards` / `deferred` /
//! `border_repairs` fields; they default to `1` / off / `0`, so a v1
//! snapshot restores into an unsharded eager window exactly as it always
//! did.
//!
//! `extras` carries serving-layer annotations (tenant name, quota
//! settings) opaquely: the window itself neither reads nor validates
//! them, so the serve tier can evolve its metadata without a format
//! bump. Corruption anywhere in the payload is caught by the trailing
//! CRC32 (IEEE polynomial) before any field is interpreted; truncation
//! is caught by the declared `payload_len`.
//!
//! What a snapshot deliberately does **not** carry: the latency
//! histogram (wall-clock timings of a dead process are not comparable to
//! the restored one's — counts restart at zero while the `events` /
//! `scored` counters resume, documented on
//! [`SlidingWindowLof::restore`]).

use crate::window::{EvictionPolicy, StreamConfig};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// `"LOFW"` interpreted as a little-endian u32.
pub const MAGIC: u32 = 0x4C4F_4657;
/// Current format version.
pub const VERSION: u32 = 2;
/// Oldest version [`WindowSnapshot::from_bytes`] still reads.
pub const MIN_VERSION: u32 = 1;

/// Hard cap on the declared payload length (1 GiB): a corrupt header
/// must not drive a multi-gigabyte allocation before the CRC check.
const MAX_PAYLOAD: u64 = 1 << 30;

/// CRC32 (IEEE 802.3 polynomial, reflected) over `bytes` — the same
/// checksum `cksum`-style tools and zlib compute.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The lifetime counters persisted with a window (everything in
/// [`StreamStats`](crate::StreamStats) except the latency histogram).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Events processed (warm-up included).
    pub events: u64,
    /// Events that received a score.
    pub scored: u64,
    /// Evictions performed.
    pub evictions: u64,
    /// Events on which at least one alert rule fired.
    pub alerts: u64,
    /// Total LOF recomputations across all cascades.
    pub cascade_lofs: u64,
    /// Cross-shard cascade repairs (0 in v1 snapshots and unsharded
    /// windows).
    pub border_repairs: u64,
}

/// A serializable image of a [`SlidingWindowLof`]'s scoring state.
///
/// Produced by [`SlidingWindowLof::snapshot`], consumed by
/// [`SlidingWindowLof::restore`]; [`to_bytes`](Self::to_bytes) /
/// [`from_bytes`](Self::from_bytes) are the `LOFW` wire form.
///
/// [`SlidingWindowLof::snapshot`]: crate::SlidingWindowLof::snapshot
/// [`SlidingWindowLof::restore`]: crate::SlidingWindowLof::restore
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSnapshot {
    /// Caller-declared metric identity (e.g. `"euclidean"`). Restore
    /// refuses a snapshot whose tag differs from the metric it is handed:
    /// scoring the same points under a different metric would silently
    /// produce different (non-resumed) results.
    pub metric_tag: String,
    /// The window configuration.
    pub config: StreamConfig,
    /// Stream dimensionality (meaningful when `points` is non-empty).
    pub dims: usize,
    /// True when the window was still buffering its warm-up.
    pub warming: bool,
    /// Window contents in id order, row-major flat (`n * dims` values).
    pub points: Vec<f64>,
    /// Arrival sequence numbers in id order; empty while warming (the
    /// buffered events' sequence numbers are the implicit `0..n`).
    pub arrivals: Vec<u64>,
    /// The next stream sequence number.
    pub next_seq: u64,
    /// The model's next arrival number (equals `next_seq` in a window
    /// that has never been tampered with; persisted independently so the
    /// model's eviction clock is explicit).
    pub next_arrival: u64,
    /// Lifetime counters at snapshot time.
    pub stats: SnapshotStats,
    /// Opaque serving-layer annotations (tenant name, quotas, ...).
    pub extras: Vec<(String, String)>,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked little-endian reader over the payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_owned())
}

impl<'a> Cursor<'a> {
    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(len).ok_or_else(|| bad("length overflow"))?;
        if end > self.bytes.len() {
            return Err(bad("snapshot payload truncated"));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn usize(&mut self) -> io::Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| bad("count exceeds the address space"))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("snapshot string is not UTF-8"))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

impl WindowSnapshot {
    /// Serializes the snapshot to the framed `LOFW` byte form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.points.len() * 8 + self.arrivals.len() * 8);
        put_str(&mut payload, &self.metric_tag);
        put_u64(&mut payload, self.config.min_pts as u64);
        put_u64(&mut payload, self.config.capacity as u64);
        put_u64(&mut payload, self.config.warmup as u64);
        payload.push(match self.config.policy {
            EvictionPolicy::SlideOldest => 0,
            EvictionPolicy::Landmark => 1,
        });
        match self.config.threshold {
            Some(t) => {
                payload.push(1);
                payload.extend_from_slice(&t.to_le_bytes());
            }
            None => payload.push(0),
        }
        match self.config.top_k {
            Some(k) => {
                payload.push(1);
                put_u64(&mut payload, k as u64);
            }
            None => payload.push(0),
        }
        put_u64(&mut payload, self.config.shards as u64);
        payload.push(u8::from(self.config.deferred));
        put_u64(&mut payload, self.dims as u64);
        payload.push(u8::from(self.warming));
        let n = self.points.len().checked_div(self.dims).unwrap_or(0);
        put_u64(&mut payload, n as u64);
        for &c in &self.points {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        put_u64(&mut payload, self.arrivals.len() as u64);
        for &a in &self.arrivals {
            put_u64(&mut payload, a);
        }
        put_u64(&mut payload, self.next_seq);
        put_u64(&mut payload, self.next_arrival);
        put_u64(&mut payload, self.stats.events);
        put_u64(&mut payload, self.stats.scored);
        put_u64(&mut payload, self.stats.evictions);
        put_u64(&mut payload, self.stats.alerts);
        put_u64(&mut payload, self.stats.cascade_lofs);
        put_u64(&mut payload, self.stats.border_repairs);
        put_u64(&mut payload, self.extras.len() as u64);
        for (k, v) in &self.extras {
            put_str(&mut payload, k);
            put_str(&mut payload, v);
        }

        let mut out = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let crc = crc32(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a framed `LOFW` byte image.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for wrong magic, unsupported version,
    /// truncation, CRC mismatch, or structurally inconsistent fields
    /// (shape mismatches, non-finite points, invalid config).
    pub fn from_bytes(bytes: &[u8]) -> io::Result<WindowSnapshot> {
        let mut cur = Cursor { bytes, pos: 0 };
        let magic = u32::from_le_bytes(cur.take(4)?.try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(bad("not a LOF window snapshot (bad magic)"));
        }
        let version = u32::from_le_bytes(cur.take(4)?.try_into().expect("4 bytes"));
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(bad("unsupported LOF window snapshot version"));
        }
        let payload_len = cur.u64()?;
        if payload_len > MAX_PAYLOAD {
            return Err(bad("snapshot payload length is implausible"));
        }
        let payload = cur.take(payload_len as usize)?;
        let declared_crc = u32::from_le_bytes(cur.take(4)?.try_into().expect("4 bytes"));
        if !cur.done() {
            return Err(bad("trailing garbage after the snapshot frame"));
        }
        if crc32(payload) != declared_crc {
            return Err(bad("snapshot CRC mismatch (corrupted payload)"));
        }

        let mut cur = Cursor { bytes: payload, pos: 0 };
        let metric_tag = cur.str()?;
        let min_pts = cur.usize()?;
        let capacity = cur.usize()?;
        let warmup = cur.usize()?;
        let policy = match cur.u8()? {
            0 => EvictionPolicy::SlideOldest,
            1 => EvictionPolicy::Landmark,
            _ => return Err(bad("unknown eviction policy byte")),
        };
        let threshold = match cur.u8()? {
            0 => None,
            1 => Some(cur.f64()?),
            _ => return Err(bad("bad threshold presence byte")),
        };
        let top_k = match cur.u8()? {
            0 => None,
            1 => Some(cur.usize()?),
            _ => return Err(bad("bad top_k presence byte")),
        };
        // v1 predates engine modes: flat eager windows only.
        let (shards, deferred) = if version >= 2 {
            let shards = cur.usize()?;
            let deferred = match cur.u8()? {
                0 => false,
                1 => true,
                _ => return Err(bad("bad deferred byte")),
            };
            (shards, deferred)
        } else {
            (1, false)
        };
        let config =
            StreamConfig { min_pts, capacity, warmup, policy, threshold, top_k, shards, deferred };
        config.validate().map_err(|e| bad(&format!("snapshot config invalid: {e}")))?;

        let dims = cur.usize()?;
        let warming = match cur.u8()? {
            0 => false,
            1 => true,
            _ => return Err(bad("bad warming byte")),
        };
        let n = cur.usize()?;
        let coords = n.checked_mul(dims).ok_or_else(|| bad("point count overflow"))?;
        let mut points = Vec::with_capacity(coords.min(payload.len() / 8));
        for _ in 0..coords {
            let c = cur.f64()?;
            if !c.is_finite() {
                return Err(bad("snapshot holds a non-finite coordinate"));
            }
            points.push(c);
        }
        let arrival_count = cur.usize()?;
        if arrival_count != if warming { 0 } else { n } {
            return Err(bad("arrival metadata does not match the point count"));
        }
        let mut arrivals = Vec::with_capacity(arrival_count);
        for _ in 0..arrival_count {
            arrivals.push(cur.u64()?);
        }
        let next_seq = cur.u64()?;
        let next_arrival = cur.u64()?;
        let stats = SnapshotStats {
            events: cur.u64()?,
            scored: cur.u64()?,
            evictions: cur.u64()?,
            alerts: cur.u64()?,
            cascade_lofs: cur.u64()?,
            border_repairs: if version >= 2 { cur.u64()? } else { 0 },
        };
        let extra_count = cur.usize()?;
        let mut extras = Vec::with_capacity(extra_count.min(1024));
        for _ in 0..extra_count {
            let k = cur.str()?;
            let v = cur.str()?;
            extras.push((k, v));
        }
        if !cur.done() {
            return Err(bad("trailing garbage inside the snapshot payload"));
        }
        Ok(WindowSnapshot {
            metric_tag,
            config,
            dims,
            warming,
            points,
            arrivals,
            next_seq,
            next_arrival,
            stats,
            extras,
        })
    }

    /// Looks up an extra by key.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extras.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Writes the framed snapshot to `path` (atomic enough for a single
    /// writer: a temp file in the same directory, then rename).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to_file(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut w = BufWriter::new(File::create(&tmp)?);
            w.write_all(&self.to_bytes())?;
            w.flush()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Reads and validates a framed snapshot from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; returns `InvalidData` as
    /// [`from_bytes`](Self::from_bytes) does.
    pub fn read_from_file(path: &Path) -> io::Result<WindowSnapshot> {
        let mut bytes = Vec::new();
        BufReader::new(File::open(path)?).read_to_end(&mut bytes)?;
        WindowSnapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WindowSnapshot {
        WindowSnapshot {
            metric_tag: "euclidean".to_owned(),
            config: StreamConfig::new(3, 16)
                .warmup(8)
                .threshold(2.0)
                .top_k(4)
                .shards(4)
                .deferred(true),
            dims: 2,
            warming: false,
            points: vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            arrivals: vec![7, 3, 4, 5, 6],
            next_seq: 8,
            next_arrival: 8,
            stats: SnapshotStats {
                events: 8,
                scored: 3,
                evictions: 3,
                alerts: 1,
                cascade_lofs: 9,
                border_repairs: 2,
            },
            extras: vec![("tenant".to_owned(), "alpha".to_owned())],
        }
    }

    /// Serializes `snap` in the retired v1 layout (no shards / deferred /
    /// border_repairs fields) so the compat read path stays covered.
    fn v1_bytes(snap: &WindowSnapshot) -> Vec<u8> {
        let mut payload = Vec::new();
        put_str(&mut payload, &snap.metric_tag);
        put_u64(&mut payload, snap.config.min_pts as u64);
        put_u64(&mut payload, snap.config.capacity as u64);
        put_u64(&mut payload, snap.config.warmup as u64);
        payload.push(match snap.config.policy {
            EvictionPolicy::SlideOldest => 0,
            EvictionPolicy::Landmark => 1,
        });
        match snap.config.threshold {
            Some(t) => {
                payload.push(1);
                payload.extend_from_slice(&t.to_le_bytes());
            }
            None => payload.push(0),
        }
        match snap.config.top_k {
            Some(k) => {
                payload.push(1);
                put_u64(&mut payload, k as u64);
            }
            None => payload.push(0),
        }
        put_u64(&mut payload, snap.dims as u64);
        payload.push(u8::from(snap.warming));
        put_u64(&mut payload, (snap.points.len() / snap.dims.max(1)) as u64);
        for &c in &snap.points {
            payload.extend_from_slice(&c.to_le_bytes());
        }
        put_u64(&mut payload, snap.arrivals.len() as u64);
        for &a in &snap.arrivals {
            put_u64(&mut payload, a);
        }
        put_u64(&mut payload, snap.next_seq);
        put_u64(&mut payload, snap.next_arrival);
        put_u64(&mut payload, snap.stats.events);
        put_u64(&mut payload, snap.stats.scored);
        put_u64(&mut payload, snap.stats.evictions);
        put_u64(&mut payload, snap.stats.alerts);
        put_u64(&mut payload, snap.stats.cascade_lofs);
        put_u64(&mut payload, snap.extras.len() as u64);
        for (k, v) in &snap.extras {
            put_str(&mut payload, k);
            put_str(&mut payload, v);
        }
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let crc = crc32(&payload);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    #[test]
    fn v1_snapshots_restore_as_flat_eager_windows() {
        let mut snap = sample();
        // A v1 writer could not have produced engine-mode settings.
        snap.config.shards = 1;
        snap.config.deferred = false;
        snap.stats.border_repairs = 0;
        let back = WindowSnapshot::from_bytes(&v1_bytes(&snap)).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.config.shards, 1);
        assert!(!back.config.deferred);
        assert_eq!(back.stats.border_repairs, 0);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn byte_round_trip_is_lossless() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = WindowSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.extra("tenant"), Some("alpha"));
        assert_eq!(back.extra("missing"), None);
    }

    #[test]
    fn corruption_and_truncation_are_rejected() {
        let bytes = sample().to_bytes();
        // Wrong magic.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(WindowSnapshot::from_bytes(&bad_magic).is_err());
        // Unsupported version.
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(WindowSnapshot::from_bytes(&bad_version).is_err());
        // Every truncation point fails cleanly.
        for cut in 0..bytes.len() {
            assert!(WindowSnapshot::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Any single bit flip in the payload trips the CRC.
        for byte in (16..bytes.len() - 4).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x10;
            assert!(WindowSnapshot::from_bytes(&corrupt).is_err(), "flip at {byte}");
        }
        // Trailing garbage after the frame.
        let mut long = bytes.clone();
        long.push(0);
        assert!(WindowSnapshot::from_bytes(&long).is_err());
    }

    #[test]
    fn inconsistent_fields_are_rejected() {
        // Arrival metadata must match the point count when live.
        let mut snap = sample();
        snap.arrivals.pop();
        assert!(WindowSnapshot::from_bytes(&snap.to_bytes()).is_err());
        // A warming snapshot carries no arrivals.
        let mut snap = sample();
        snap.warming = true;
        assert!(WindowSnapshot::from_bytes(&snap.to_bytes()).is_err());
        // Non-finite coordinates never round-trip.
        let mut snap = sample();
        snap.points[3] = f64::NAN;
        assert!(WindowSnapshot::from_bytes(&snap.to_bytes()).is_err());
        // Invalid configs are caught at parse time.
        let mut snap = sample();
        snap.config.min_pts = 0;
        assert!(WindowSnapshot::from_bytes(&snap.to_bytes()).is_err());
    }
}
