//! The long-running serve loop: NDJSON scoring over stdin or TCP.
//!
//! Architecture (`std`-only, no async runtime):
//!
//! ```text
//!  conn 1 ──reader──▶ ┐                                   ┌──▶ writer 1 ──▶ conn 1
//!  conn 2 ──reader──▶ ┤  bounded job queue  ──▶ scorer ──▶┤
//!  conn 3 ──reader──▶ ┘  (sync_channel)         thread    └──▶ writer 3 ──▶ conn 3
//! ```
//!
//! One **scorer thread** owns the [`SlidingWindowLof`] — the window is
//! inherently sequential (every event mutates the model), so a single
//! consumer is both correct and the throughput ceiling. Each connection
//! gets a **reader thread** (parses lines into jobs) and a **writer
//! thread** (forwards reply records); the job queue is a bounded
//! [`std::sync::mpsc::sync_channel`], so when the scorer falls behind,
//! readers block on `send` and backpressure propagates into the kernel's
//! TCP buffers instead of growing the heap. Per-connection reply order
//! equals send order (the channel is FIFO per producer).

use crate::linebuf::{Line, LineBuffer};
use crate::window::{SlidingWindowLof, StreamStats};
use crate::wire::{
    error_record, metrics_record, parse_control, parse_event, parse_metrics_request,
    parse_topn_request, stream_record, topn_record, MetricsFormat, ParsedLine,
};
use lof_core::Metric;
use lof_obs::{Counter, MetricsRegistry};
use std::io::{BufRead, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// Default bound of the job queue (events in flight between readers and
/// the scorer).
pub const DEFAULT_QUEUE: usize = 1024;

/// What went wrong while joining a serve loop.
///
/// Historically [`ServeHandle::wait`] / [`ServeHandle::shutdown`]
/// `expect`ed the scorer join, so a panic inside the scoring thread
/// aborted the *caller* (the CLI, a test harness) with an opaque double
/// panic. The join result is now propagated as a typed error instead.
#[derive(Debug)]
pub enum ServeError {
    /// The scorer thread panicked; carries the panic payload's message
    /// when it was a string.
    ScorerPanicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::ScorerPanicked(msg) => write!(f, "scorer thread panicked: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Renders a `JoinHandle::join` panic payload as a readable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// What one input line asks the scorer to do. Parse rejects and metrics
/// requests travel through the same queue as events so each connection's
/// replies come back in exactly its send order — a metrics snapshot taken
/// between two events reflects exactly the events before it.
enum Payload {
    /// A valid event: score it.
    Event(Vec<f64>),
    /// A rejected line: echo the in-band error record.
    Malformed(String),
    /// An in-band metrics request: answer with a registry snapshot.
    Metrics(MetricsFormat),
    /// An in-band top-n request: answer with the window's current
    /// ranking of its most outlying members.
    TopN(usize),
}

/// One unit of work for the scorer thread.
struct Job {
    payload: Payload,
    reply: Sender<String>,
}

/// The serve loop's registry handles (`serve.*` names), resolved once so
/// per-line accounting is a sharded-atomic bump. The reconciliation
/// invariants the differential tests pin:
/// `events_in == score_records + push_errors` and
/// `error_records == parse_errors + push_errors`.
struct ServeMetrics {
    events_in: Arc<Counter>,
    parse_errors: Arc<Counter>,
    push_errors: Arc<Counter>,
    score_records: Arc<Counter>,
    error_records: Arc<Counter>,
    metrics_requests: Arc<Counter>,
    topn_requests: Arc<Counter>,
}

impl ServeMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        ServeMetrics {
            events_in: registry.counter("serve.events_in"),
            parse_errors: registry.counter("serve.parse_errors"),
            push_errors: registry.counter("serve.push_errors"),
            score_records: registry.counter("serve.score_records"),
            error_records: registry.counter("serve.error_records"),
            metrics_requests: registry.counter("serve.metrics_requests"),
            topn_requests: registry.counter("serve.topn_requests"),
        }
    }

    /// Renders the reply to one metrics request. The Prometheus block is
    /// multi-line and `# EOF`-terminated (that terminator is the client's
    /// end-of-block marker on a shared NDJSON connection); the JSON form
    /// is a single typed record.
    fn answer(&self, registry: &MetricsRegistry, format: MetricsFormat) -> String {
        self.metrics_requests.inc();
        match format {
            MetricsFormat::Text => registry.render_prometheus(),
            MetricsFormat::Json => metrics_record(registry),
        }
    }

    /// Renders the reply to one top-n request: the window's current
    /// ranking as a single typed record (empty during warm-up).
    fn answer_topn<M: Metric>(&self, window: &mut SlidingWindowLof<M>, n: usize) -> String {
        self.topn_requests.inc();
        let ranked = window.top_n(n);
        topn_record(n, &ranked, window.is_warming_up())
    }
}

/// Summary of one finished stream (stdin mode and in-process runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Events scored or buffered (valid lines).
    pub events: u64,
    /// Events on which an alert rule fired.
    pub alerts: u64,
    /// Lines rejected (parse or scoring errors).
    pub errors: u64,
}

/// Pumps line-delimited events from `input` through the window, writing
/// one NDJSON record per line to `output`. This is `lof stream` and the
/// in-process half of the serve demo; it consumes the window and returns
/// it with the summary so callers can inspect final stats.
///
/// # Errors
///
/// Propagates I/O errors from `input`/`output`; malformed *events* are
/// reported as in-band `{"type":"error",...}` records, not errors.
pub fn run_stream<M: Metric>(
    mut window: SlidingWindowLof<M>,
    input: impl BufRead,
    output: &mut impl Write,
) -> std::io::Result<(SlidingWindowLof<M>, StreamSummary)> {
    let mut summary = StreamSummary::default();
    let metrics = ServeMetrics::new(window.registry());
    for line in input.lines() {
        let line = line?;
        if let Some(format) = parse_metrics_request(&line) {
            let registry = Arc::clone(window.registry());
            writeln!(output, "{}", metrics.answer(&registry, format))?;
            continue;
        }
        match parse_topn_request(&line) {
            Some(Some(n)) => {
                writeln!(output, "{}", metrics.answer_topn(&mut window, n))?;
                continue;
            }
            Some(None) => {
                summary.errors += 1;
                metrics.parse_errors.inc();
                metrics.error_records.inc();
                writeln!(output, "{}", error_record("topn request needs a count: /topn N"))?;
                continue;
            }
            None => {}
        }
        if let Some(command) = parse_control(&line) {
            let message = match command {
                Ok(_) => "control commands need the multi-tenant server (lof serve)".to_owned(),
                Err(e) => e,
            };
            summary.errors += 1;
            metrics.parse_errors.inc();
            metrics.error_records.inc();
            writeln!(output, "{}", error_record(&message))?;
            continue;
        }
        let record = match parse_event(&line) {
            Ok(ParsedLine::Empty) => continue,
            Ok(ParsedLine::Point(point)) => {
                metrics.events_in.inc();
                match window.push(&point) {
                    Ok(event) => {
                        summary.events += 1;
                        if event.is_alert() {
                            summary.alerts += 1;
                        }
                        metrics.score_records.inc();
                        stream_record(&event)
                    }
                    Err(e) => {
                        summary.errors += 1;
                        metrics.push_errors.inc();
                        metrics.error_records.inc();
                        error_record(&e.to_string())
                    }
                }
            }
            Err(e) => {
                summary.errors += 1;
                metrics.parse_errors.inc();
                metrics.error_records.inc();
                error_record(&e)
            }
        };
        writeln!(output, "{record}")?;
    }
    output.flush()?;
    Ok((window, summary))
}

/// A running NDJSON scoring server (see [`spawn`]).
pub struct ServeHandle {
    addr: std::net::SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    scorer: Option<JoinHandle<StreamStats>>,
    registry: Arc<MetricsRegistry>,
}

impl ServeHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The window's metrics registry — live while the server runs, and
    /// still readable after [`ServeHandle::shutdown`] for final
    /// snapshots (`lof serve --metrics`).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Blocks until the accept loop exits. The loop normally runs for the
    /// life of the process, so this is the CLI's "serve forever" call —
    /// tests use [`ServeHandle::shutdown`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ScorerPanicked`] if the scoring thread died
    /// on a panic instead of draining cleanly.
    pub fn wait(mut self) -> Result<StreamStats, ServeError> {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.join_scorer()
    }

    /// Stops accepting, waits for live connections to drain, and returns
    /// the window's lifetime stats. Clients should disconnect first:
    /// draining blocks until every open connection closes.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ScorerPanicked`] if the scoring thread died
    /// on a panic instead of draining cleanly.
    pub fn shutdown(mut self) -> Result<StreamStats, ServeError> {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.join_scorer()
    }

    fn join_scorer(&mut self) -> Result<StreamStats, ServeError> {
        self.scorer
            .take()
            .expect("scorer joined once")
            .join()
            .map_err(|payload| ServeError::ScorerPanicked(panic_message(payload)))
    }
}

/// Spawns the serve loop on an already-bound listener: a scorer thread
/// owning `window`, an accept thread, and reader/writer thread pairs per
/// connection, with a `queue`-bounded job channel in between (0 means
/// [`DEFAULT_QUEUE`]).
///
/// # Errors
///
/// Propagates the listener's local-address query failure.
pub fn spawn<M: Metric + 'static>(
    listener: TcpListener,
    window: SlidingWindowLof<M>,
    queue: usize,
) -> std::io::Result<ServeHandle> {
    let addr = listener.local_addr()?;
    let queue = if queue == 0 { DEFAULT_QUEUE } else { queue };
    let (jobs_tx, jobs_rx) = sync_channel::<Job>(queue);
    let shutdown = Arc::new(AtomicBool::new(false));

    // Keep a registry handle before the window moves into the scorer: the
    // accept loop counts connections and callers snapshot through it.
    let registry = Arc::clone(window.registry());
    let connections = registry.counter("serve.connections");

    let scorer = thread::spawn(move || score_loop(window, jobs_rx));

    let accept_shutdown = Arc::clone(&shutdown);
    let accept = thread::spawn(move || {
        let mut handlers = Vec::new();
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            connections.inc();
            let jobs = jobs_tx.clone();
            handlers.push(thread::spawn(move || handle_connection(stream, &jobs)));
        }
        drop(jobs_tx); // last sender: lets the scorer exit once handlers drain
        for handler in handlers {
            let _ = handler.join();
        }
    });

    Ok(ServeHandle { addr, shutdown, accept: Some(accept), scorer: Some(scorer), registry })
}

/// The scorer thread: drains jobs in arrival order, replies with one
/// NDJSON record each, and returns the window's stats at end of stream.
fn score_loop<M: Metric>(mut window: SlidingWindowLof<M>, jobs: Receiver<Job>) -> StreamStats {
    let registry = Arc::clone(window.registry());
    let metrics = ServeMetrics::new(&registry);
    for job in jobs {
        let record = match job.payload {
            Payload::Event(point) => {
                metrics.events_in.inc();
                match window.push(&point) {
                    Ok(event) => {
                        metrics.score_records.inc();
                        stream_record(&event)
                    }
                    Err(e) => {
                        metrics.push_errors.inc();
                        metrics.error_records.inc();
                        error_record(&e.to_string())
                    }
                }
            }
            Payload::Malformed(message) => {
                metrics.parse_errors.inc();
                metrics.error_records.inc();
                error_record(&message)
            }
            Payload::Metrics(format) => metrics.answer(&registry, format),
            Payload::TopN(n) => metrics.answer_topn(&mut window, n),
        };
        // A dropped receiver means the client hung up mid-reply; the event
        // is already applied to the window, so just move on.
        let _ = job.reply.send(record);
    }
    window.stats().clone()
}

/// Classifies one complete input line into a scorer payload (`None`
/// means nothing to do — a blank or comment line). Metrics, top-n, and
/// control lines are recognized before event parsing so they can never
/// be misread as malformed events; this single-window loop answers
/// control commands with an explanatory in-band error (the multi-tenant
/// tier in `lof-serve` executes them for real).
fn classify_line(line: &str) -> Option<Payload> {
    if let Some(format) = parse_metrics_request(line) {
        return Some(Payload::Metrics(format));
    }
    if let Some(count) = parse_topn_request(line) {
        return Some(match count {
            Some(n) => Payload::TopN(n),
            None => Payload::Malformed("topn request needs a count: /topn N".to_owned()),
        });
    }
    if let Some(command) = parse_control(line) {
        return Some(Payload::Malformed(match command {
            Ok(_) => "control commands need the multi-tenant server (lof serve)".to_owned(),
            Err(e) => e,
        }));
    }
    match parse_event(line) {
        Ok(ParsedLine::Empty) => None,
        Ok(ParsedLine::Point(point)) => Some(Payload::Event(point)),
        Err(e) => Some(Payload::Malformed(e)),
    }
}

/// One connection: reader half frames lines through a [`LineBuffer`]
/// (partial lines survive across reads; oversized lines are rejected
/// with an in-band error record, never truncated into a bogus event) and
/// parses them into jobs, blocking on the bounded queue when the scorer
/// is behind. Writer half forwards reply records back over the socket.
fn handle_connection(mut stream: TcpStream, jobs: &SyncSender<Job>) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (reply_tx, reply_rx) = std::sync::mpsc::channel::<String>();
    let writer = thread::spawn(move || {
        let mut out = BufWriter::new(write_half);
        for record in reply_rx {
            if writeln!(out, "{record}").is_err() || out.flush().is_err() {
                break;
            }
        }
    });

    let mut lines = LineBuffer::new(0);
    let mut chunk = [0u8; 8192];
    'conn: loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        lines.push(&chunk[..n]);
        while let Some(framed) = lines.next_line() {
            let payload = match framed {
                Line::Complete(line) => match classify_line(&line) {
                    Some(payload) => payload,
                    None => continue,
                },
                Line::Oversized { limit } => {
                    Payload::Malformed(format!("line exceeds the {limit}-byte limit"))
                }
            };
            if jobs.send(Job { payload, reply: reply_tx.clone() }).is_err() {
                break 'conn; // server shutting down
            }
        }
    }
    drop(reply_tx);
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::StreamConfig;
    use lof_core::Euclidean;

    #[test]
    fn scorer_panics_surface_as_serve_error_not_an_abort() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A handle whose scorer dies on a panic: joining must yield a
        // typed error carrying the message, not re-panic in the caller.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let scorer = thread::spawn(|| -> StreamStats { panic!("injected scorer failure") });
        while !scorer.is_finished() {
            thread::yield_now();
        }
        std::panic::set_hook(prev_hook);
        let handle = ServeHandle {
            addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            accept: Some(thread::spawn(|| {})),
            scorer: Some(scorer),
            registry: Arc::new(MetricsRegistry::new()),
        };
        match handle.wait() {
            Err(ServeError::ScorerPanicked(msg)) => {
                assert!(msg.contains("injected scorer failure"), "got '{msg}'");
            }
            Ok(_) => panic!("a panicked scorer must not join cleanly"),
        }
        assert!(ServeError::ScorerPanicked("x".into()).to_string().contains("panicked"));
    }

    #[test]
    fn control_lines_are_answered_not_misparsed() {
        assert!(matches!(classify_line("TENANT LIST"), Some(Payload::Malformed(_))));
        assert!(matches!(classify_line("TENANT CREATE bad/name"), Some(Payload::Malformed(_))));
        assert!(matches!(classify_line("DRAIN"), Some(Payload::Malformed(_))));
        assert!(matches!(classify_line("1.0,2.0"), Some(Payload::Event(_))));
        assert!(classify_line("# comment").is_none());
    }

    #[test]
    fn run_stream_scores_counts_and_reports_errors_in_band() {
        let config = StreamConfig::new(3, 20).warmup(5).threshold(3.0);
        let window = SlidingWindowLof::new(config, Euclidean).unwrap();
        let mut input = String::new();
        for i in 0..12 {
            input.push_str(&format!("{},{}\n", i % 4, i / 4));
        }
        input.push_str("# a comment\n");
        input.push_str("not,a,number\n");
        input.push_str("[40, 40]\n");
        let mut output = Vec::new();
        let (window, summary) = run_stream(window, input.as_bytes(), &mut output).unwrap();
        assert_eq!(summary.events, 13);
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.alerts, 1, "the [40,40] spike must alert");
        assert_eq!(window.stats().events, 13);
        let text = String::from_utf8(output).unwrap();
        assert_eq!(text.lines().count(), 14, "one record per non-comment line");
        assert!(text.lines().all(|l| l.starts_with("{\"type\":")));
        assert!(text.contains("\"type\":\"error\""));
    }

    #[test]
    fn run_stream_answers_topn_requests_in_band() {
        let config = StreamConfig::new(3, 20).warmup(5);
        let window = SlidingWindowLof::new(config, Euclidean).unwrap();
        let mut input = String::from("GET /topn 2\n");
        for i in 0..12 {
            input.push_str(&format!("{},{}\n", i % 4, i / 4));
        }
        input.push_str("[40, 40]\n");
        input.push_str("/topn 2\n");
        input.push_str("/topn\n");
        let mut output = Vec::new();
        let (mut window, summary) = run_stream(window, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let topn_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("{\"type\":\"topn\"")).collect();
        assert_eq!(topn_lines.len(), 2);
        assert_eq!(topn_lines[0], "{\"type\":\"topn\",\"n\":2,\"warmup\":true,\"top\":[]}");
        // The post-spike ranking leads with the outlier's sequence number
        // and matches the window's own answer.
        let expected = crate::wire::topn_record(2, &window.top_n(2), false);
        assert_eq!(topn_lines[1], expected);
        assert!(topn_lines[1].contains("\"seq\":12"));
        assert_eq!(summary.errors, 1, "a countless /topn is an in-band error");
        if lof_obs::enabled() {
            assert_eq!(window.registry().counter("serve.topn_requests").value(), 2);
        }
    }
}
