//! The wire format of the streaming subsystem.
//!
//! **Input** is line-delimited: each non-empty line is one event, either a
//! JSON array of numbers (`[1.0, 2.0]`), a JSON object with a `"point"`
//! field (`{"point": [1.0, 2.0]}` — other fields are ignored), or a bare
//! CSV row (`1.0,2.0`). Lines starting with `#` are comments.
//!
//! **Output** is NDJSON, one record per event. The same schema backs the
//! batch CLI's `--format json` mode, `lof stream` (stdin), and `lof serve`
//! (TCP), so downstream consumers parse one shape:
//!
//! ```json
//! {"type":"score","seq":7,"lof":1.04,"alert":false,"alerts":[],
//!  "warmup":false,"window":400,"evicted":3,
//!  "cascade":{"neighborhoods_updated":2,"lrds_recomputed":9,"lofs_recomputed":31,"cascade_depth":3},
//!  "latency_us":12.5}
//! {"type":"error","error":"line 12: unparsable event"}
//! ```
//!
//! Batch records carry only `type`/`seq`/`lof`/`alert`/`alerts` (there is
//! no window). Non-finite LOF values (duplicate-heavy windows produce
//! `∞`) are encoded as the JSON strings `"inf"` / `"-inf"` / `"nan"`,
//! since JSON has no number literal for them. Everything is hand-rolled
//! `std`-only code: the workspace's dependency policy has no serde.

use crate::window::ScoredEvent;
use std::fmt::Write as _;

/// One parsed input line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// A blank or `#`-comment line — nothing to score.
    Empty,
    /// One event: the point's coordinates.
    Point(Vec<f64>),
}

/// Parses one input line (JSON array, JSON object with `"point"`, or CSV).
///
/// # Errors
///
/// Returns a human-readable message for unparsable lines.
pub fn parse_event(line: &str) -> Result<ParsedLine, String> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return Ok(ParsedLine::Empty);
    }
    let point = if trimmed.starts_with('[') {
        parse_json_array(trimmed)?
    } else if trimmed.starts_with('{') {
        parse_json_object(trimmed)?
    } else {
        trimmed
            .split(',')
            .map(|f| {
                f.trim().parse::<f64>().map_err(|e| format!("bad CSV field '{}': {e}", f.trim()))
            })
            .collect::<Result<Vec<f64>, String>>()?
    };
    if point.is_empty() {
        return Err("event has no coordinates".to_owned());
    }
    Ok(ParsedLine::Point(point))
}

/// Parses a JSON array of numbers, e.g. `[1, 2.5, -3e-2]`.
fn parse_json_array(text: &str) -> Result<Vec<f64>, String> {
    let inner = text
        .strip_prefix('[')
        .and_then(|rest| rest.trim_end().strip_suffix(']'))
        .ok_or_else(|| "unterminated JSON array".to_owned())?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(|f| {
            f.trim().parse::<f64>().map_err(|e| format!("bad JSON number '{}': {e}", f.trim()))
        })
        .collect()
}

/// Extracts the `"point"` array from a single-line JSON object. This is a
/// deliberately small scanner, not a full JSON parser: it finds the
/// top-level `"point"` key and parses its array value; every other field
/// is ignored. Nested objects/arrays in other fields are tolerated.
fn parse_json_object(text: &str) -> Result<Vec<f64>, String> {
    let bytes = text.as_bytes();
    let mut i = 0;
    let mut depth = 0i32;
    let mut in_string = false;
    let mut escaped = false;
    while i < bytes.len() {
        let b = bytes[i];
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match b {
            b'"' => {
                // At depth 1, check whether this string is the "point" key.
                if depth == 1 {
                    if let Some(rest) = text[i..].strip_prefix("\"point\"") {
                        let after = rest.trim_start();
                        if let Some(value) = after.strip_prefix(':') {
                            let value = value.trim_start();
                            let end = value.find(']').ok_or("unterminated \"point\" array")?;
                            return parse_json_array(&value[..=end]);
                        }
                    }
                }
                in_string = true;
            }
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    Err("JSON object has no \"point\" field".to_owned())
}

/// Encodes an `f64` as a JSON value (non-finite values become strings,
/// see the module docs).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` prints integral floats without a decimal point; keep the
        // value unambiguously a float for strict consumers.
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else if v.is_nan() {
        "\"nan\"".to_owned()
    } else if v > 0.0 {
        "\"inf\"".to_owned()
    } else {
        "\"-inf\"".to_owned()
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the names of the alert rules that fired as a JSON array.
fn alerts_json(threshold: bool, top_k: bool) -> String {
    match (threshold, top_k) {
        (true, true) => "[\"threshold\",\"top_k\"]".to_owned(),
        (true, false) => "[\"threshold\"]".to_owned(),
        (false, true) => "[\"top_k\"]".to_owned(),
        (false, false) => "[]".to_owned(),
    }
}

/// The NDJSON record for one streamed event (serve and stream modes).
pub fn stream_record(event: &ScoredEvent) -> String {
    let mut out = String::with_capacity(160);
    let _ = write!(out, "{{\"type\":\"score\",\"seq\":{}", event.seq);
    match event.score {
        Some(score) => {
            let _ = write!(out, ",\"lof\":{}", json_f64(score));
        }
        None => out.push_str(",\"lof\":null"),
    }
    let _ = write!(
        out,
        ",\"alert\":{},\"alerts\":{},\"warmup\":{},\"window\":{}",
        event.is_alert(),
        alerts_json(event.threshold_alert, event.top_k_alert),
        event.warmup,
        event.window_len
    );
    match event.evicted {
        Some(seq) => {
            let _ = write!(out, ",\"evicted\":{seq}");
        }
        None => out.push_str(",\"evicted\":null"),
    }
    match event.cascade {
        Some(stats) => {
            let _ = write!(out, ",\"cascade\":{}", stats.to_json());
        }
        None => out.push_str(",\"cascade\":null"),
    }
    let _ = write!(out, ",\"latency_us\":{:.1}}}", event.latency_ns as f64 / 1_000.0);
    out
}

/// The NDJSON record for one batch-scored row (`lof --format json`): the
/// same `type`/`seq`/`lof`/`alert`/`alerts` prefix as [`stream_record`],
/// without the window-only fields.
pub fn batch_record(row: usize, lof: f64, threshold_alert: bool) -> String {
    format!(
        "{{\"type\":\"score\",\"seq\":{row},\"lof\":{},\"alert\":{threshold_alert},\"alerts\":{}}}",
        json_f64(lof),
        alerts_json(threshold_alert, false),
    )
}

/// The NDJSON record for a rejected line (parse or scoring failure).
pub fn error_record(message: &str) -> String {
    format!("{{\"type\":\"error\",\"error\":\"{}\"}}", json_escape(message))
}

/// Which exposition format a metrics request asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition: a multi-line block terminated by
    /// `# EOF` (the terminator is what delimits it on a shared NDJSON
    /// connection).
    Text,
    /// A single `{"type":"metrics",...}` NDJSON record.
    Json,
}

/// Recognizes an in-band metrics request. The serve loop answers these
/// on the event connection itself — no second port, no HTTP stack:
/// `GET /metrics` (or bare `/metrics`) asks for Prometheus text,
/// `GET /metrics.json` (or bare `/metrics.json`) for the NDJSON record.
/// Returns `None` for anything else, which then flows to
/// [`parse_event`] as usual. Checked before event parsing, so a metrics
/// request is never misread as a malformed event.
pub fn parse_metrics_request(line: &str) -> Option<MetricsFormat> {
    let trimmed = line.trim();
    let path = trimmed.strip_prefix("GET ").map(str::trim).unwrap_or(trimmed);
    match path {
        "/metrics" => Some(MetricsFormat::Text),
        "/metrics.json" => Some(MetricsFormat::Json),
        _ => None,
    }
}

/// The NDJSON record answering a [`MetricsFormat::Json`] request: the
/// registry's single-line snapshot wrapped in a typed envelope so stream
/// consumers can route it like any other record.
pub fn metrics_record(registry: &lof_obs::MetricsRegistry) -> String {
    format!("{{\"type\":\"metrics\",\"metrics\":{}}}", registry.render_ndjson())
}

/// Recognizes an in-band top-n request: `GET /topn N` (or bare
/// `/topn N`) asks for the window's `N` most outlying members. Same
/// in-band convention as [`parse_metrics_request`]: checked before event
/// parsing, anything else flows on. A missing or unparsable count is
/// still recognized as a top-n request (`None` inner value) so the
/// serve loop can answer with an in-band error instead of misreading
/// the line as an event.
pub fn parse_topn_request(line: &str) -> Option<Option<usize>> {
    let trimmed = line.trim();
    let path = trimmed.strip_prefix("GET ").map(str::trim).unwrap_or(trimmed);
    let rest = path.strip_prefix("/topn")?;
    if !rest.is_empty() && !rest.starts_with([' ', '\t']) {
        return None; // e.g. "/topnews" is not ours
    }
    Some(rest.trim().parse().ok())
}

/// The NDJSON record answering a top-n request: the requested size and
/// the ranked `(event seq, LOF)` pairs, most outlying first (ties by
/// earlier arrival). During warm-up the window has no scores and the
/// list is empty.
pub fn topn_record(n: usize, ranking: &[(u64, f64)], warmup: bool) -> String {
    let mut out = String::with_capacity(32 + ranking.len() * 32);
    let _ = write!(out, "{{\"type\":\"topn\",\"n\":{n},\"warmup\":{warmup},\"top\":[");
    for (i, &(seq, lof)) in ranking.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"seq\":{seq},\"lof\":{}}}", json_f64(lof));
    }
    out.push_str("]}");
    out
}

/// A parsed serving-layer control command (`TENANT` / `SNAPSHOT` /
/// `DRAIN` lines). The multi-tenant tier in `lof-serve` executes these;
/// the single-window loop answers them with an explanatory error so old
/// servers fail loudly rather than misparse them as events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlCommand {
    /// `TENANT CREATE <name> [key=value ...]` — create a named window.
    /// Recognized keys are validated by the server, not the parser.
    TenantCreate {
        /// The tenant name.
        name: String,
        /// Raw `key=value` configuration pairs, in line order.
        params: Vec<(String, String)>,
    },
    /// `TENANT ATTACH <name>` — route this connection's events to the
    /// named window.
    TenantAttach {
        /// The tenant name.
        name: String,
    },
    /// `TENANT LIST` — enumerate live tenants.
    TenantList,
    /// `TENANT DROP <name>` — destroy a tenant and its window.
    TenantDrop {
        /// The tenant name.
        name: String,
    },
    /// `SNAPSHOT [name]` — persist one tenant (or every tenant) to the
    /// server's snapshot directory.
    Snapshot {
        /// The tenant to snapshot; `None` means all.
        name: Option<String>,
    },
    /// `DRAIN` — stop accepting, flush in-flight jobs, snapshot every
    /// tenant, and exit.
    Drain,
}

/// Validates a tenant name: 1–64 characters from `[A-Za-z0-9_-]`. Names
/// become snapshot file names and metric label values, so the alphabet
/// is deliberately restrictive (no path separators, no quotes).
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Recognizes a control command line. Returns `None` for anything that
/// is not a control line (events, metrics requests, ...); returns
/// `Some(Err(...))` for a line that *is* a control command but malformed
/// (unknown subcommand, invalid tenant name), so the serve loop answers
/// in-band instead of misreading the line as an event. Checked before
/// event parsing, like [`parse_metrics_request`].
pub fn parse_control(line: &str) -> Option<Result<ControlCommand, String>> {
    let trimmed = line.trim();
    let mut words = trimmed.split_ascii_whitespace();
    let keyword = words.next()?;
    match keyword {
        "TENANT" => Some(parse_tenant_command(&mut words)),
        "SNAPSHOT" => {
            let name = words.next().map(str::to_owned);
            if words.next().is_some() {
                return Some(Err("usage: SNAPSHOT [name]".to_owned()));
            }
            if let Some(n) = &name {
                if !valid_tenant_name(n) {
                    return Some(Err(format!("invalid tenant name '{n}'")));
                }
            }
            Some(Ok(ControlCommand::Snapshot { name }))
        }
        "DRAIN" => {
            if words.next().is_some() {
                return Some(Err("usage: DRAIN".to_owned()));
            }
            Some(Ok(ControlCommand::Drain))
        }
        _ => None,
    }
}

fn parse_tenant_command(
    words: &mut std::str::SplitAsciiWhitespace<'_>,
) -> Result<ControlCommand, String> {
    const USAGE: &str = "usage: TENANT CREATE <name> [key=value ...] | \
                         TENANT ATTACH <name> | TENANT LIST | TENANT DROP <name>";
    let sub = words.next().ok_or_else(|| USAGE.to_owned())?;
    let mut named = |op: &str| -> Result<String, String> {
        let name = words.next().ok_or_else(|| format!("TENANT {op} needs a name"))?.to_owned();
        if !valid_tenant_name(&name) {
            return Err(format!("invalid tenant name '{name}' (1-64 chars from [A-Za-z0-9_-])"));
        }
        Ok(name)
    };
    match sub {
        "CREATE" => {
            let name = named("CREATE")?;
            let mut params = Vec::new();
            for word in words.by_ref() {
                let (key, value) = word
                    .split_once('=')
                    .ok_or_else(|| format!("bad parameter '{word}' (expected key=value)"))?;
                if key.is_empty() || value.is_empty() {
                    return Err(format!("bad parameter '{word}' (expected key=value)"));
                }
                params.push((key.to_owned(), value.to_owned()));
            }
            Ok(ControlCommand::TenantCreate { name, params })
        }
        "ATTACH" => {
            let name = named("ATTACH")?;
            if words.next().is_some() {
                return Err("TENANT ATTACH takes exactly one name".to_owned());
            }
            Ok(ControlCommand::TenantAttach { name })
        }
        "LIST" => {
            if words.next().is_some() {
                return Err("TENANT LIST takes no arguments".to_owned());
            }
            Ok(ControlCommand::TenantList)
        }
        "DROP" => {
            let name = named("DROP")?;
            if words.next().is_some() {
                return Err("TENANT DROP takes exactly one name".to_owned());
            }
            Ok(ControlCommand::TenantDrop { name })
        }
        other => Err(format!("unknown TENANT subcommand '{other}'; {USAGE}")),
    }
}

/// The acknowledgement record for a successful control command:
/// `{"type":"ok","op":"tenant.create","tenant":"alpha"}`. `tenant` is
/// omitted for tenant-less operations (`DRAIN`).
pub fn ok_record(op: &str, tenant: Option<&str>) -> String {
    match tenant {
        Some(t) => format!(
            "{{\"type\":\"ok\",\"op\":\"{}\",\"tenant\":\"{}\"}}",
            json_escape(op),
            json_escape(t)
        ),
        None => format!("{{\"type\":\"ok\",\"op\":\"{}\"}}", json_escape(op)),
    }
}

/// One row of a `TENANT LIST` answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantInfo {
    /// The tenant name.
    pub name: String,
    /// Events currently held in the tenant's window.
    pub window_len: usize,
    /// Connections currently attached.
    pub connections: usize,
    /// Lifetime events pushed into the window.
    pub events: u64,
    /// True while the window is still warming up.
    pub warming: bool,
}

/// The NDJSON record answering `TENANT LIST`.
pub fn tenants_record(rows: &[TenantInfo]) -> String {
    let mut out = String::with_capacity(32 + rows.len() * 64);
    out.push_str("{\"type\":\"tenants\",\"tenants\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"window\":{},\"connections\":{},\"events\":{},\"warmup\":{}}}",
            json_escape(&row.name),
            row.window_len,
            row.connections,
            row.events,
            row.warming
        );
    }
    out.push_str("]}");
    out
}

/// The NDJSON record acknowledging a `SNAPSHOT` command: which tenants
/// were persisted (sorted by name by the caller).
pub fn snapshot_record(tenants: &[String]) -> String {
    let mut out = String::with_capacity(32 + tenants.len() * 16);
    out.push_str("{\"type\":\"snapshot\",\"tenants\":[");
    for (i, name) in tenants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(name));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::incremental::UpdateStats;

    #[test]
    fn parses_csv_json_array_and_object() {
        assert_eq!(parse_event("1.5, -2").unwrap(), ParsedLine::Point(vec![1.5, -2.0]));
        assert_eq!(parse_event("[1.5, -2e1]").unwrap(), ParsedLine::Point(vec![1.5, -20.0]));
        assert_eq!(
            parse_event("{\"id\": \"x[3]\", \"point\": [0.5, 1], \"tag\": {\"a\": 1}}").unwrap(),
            ParsedLine::Point(vec![0.5, 1.0])
        );
        assert_eq!(parse_event("   ").unwrap(), ParsedLine::Empty);
        assert_eq!(parse_event("# comment [1,2]").unwrap(), ParsedLine::Empty);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_event("[1, oops]").is_err());
        assert!(parse_event("[1, 2").is_err());
        assert!(parse_event("{\"nope\": 1}").is_err());
        assert!(parse_event("a,b").is_err());
        assert!(parse_event("[]").is_err(), "zero-dimensional events are invalid");
    }

    #[test]
    fn point_key_inside_other_strings_is_not_confused() {
        assert_eq!(
            parse_event("{\"label\": \"point\", \"point\": [2]}").unwrap(),
            ParsedLine::Point(vec![2.0])
        );
    }

    #[test]
    fn json_f64_handles_every_class() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::INFINITY), "\"inf\"");
        assert_eq!(json_f64(f64::NEG_INFINITY), "\"-inf\"");
        assert_eq!(json_f64(f64::NAN), "\"nan\"");
        // Round-trips exactly (Rust's shortest-roundtrip formatting).
        assert_eq!(json_f64(1e300).trim_end_matches(".0").parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn records_are_single_line_json() {
        let event = crate::ScoredEvent {
            seq: 7,
            score: Some(1.25),
            warmup: false,
            window_len: 400,
            evicted: Some(3),
            cascade: Some(UpdateStats {
                neighborhoods_updated: 2,
                lrds_recomputed: 9,
                lofs_recomputed: 31,
                cascade_depth: 3,
            }),
            threshold_alert: true,
            top_k_alert: false,
            latency_ns: 12_500,
        };
        let rec = stream_record(&event);
        assert!(!rec.contains('\n'));
        assert!(rec.starts_with("{\"type\":\"score\",\"seq\":7,\"lof\":1.25"));
        assert!(rec.contains("\"alert\":true"));
        assert!(rec.contains("\"alerts\":[\"threshold\"]"));
        assert!(rec.contains("\"evicted\":3"));
        assert!(rec.contains("\"lofs_recomputed\":31"));
        assert!(rec.contains("\"latency_us\":12.5"));

        let batch = batch_record(3, f64::INFINITY, false);
        assert_eq!(
            batch,
            "{\"type\":\"score\",\"seq\":3,\"lof\":\"inf\",\"alert\":false,\"alerts\":[]}"
        );

        let err = error_record("bad \"line\"\n");
        assert_eq!(err, "{\"type\":\"error\",\"error\":\"bad \\\"line\\\"\\n\"}");
    }

    #[test]
    fn warmup_records_carry_null_score() {
        let event = crate::ScoredEvent {
            seq: 0,
            score: None,
            warmup: true,
            window_len: 1,
            evicted: None,
            cascade: None,
            threshold_alert: false,
            top_k_alert: false,
            latency_ns: 800,
        };
        let rec = stream_record(&event);
        assert!(rec.contains("\"lof\":null"));
        assert!(rec.contains("\"warmup\":true"));
        assert!(rec.contains("\"evicted\":null"));
        assert!(rec.contains("\"cascade\":null"));
    }

    #[test]
    fn metrics_requests_are_recognized_before_event_parsing() {
        assert_eq!(parse_metrics_request("GET /metrics"), Some(MetricsFormat::Text));
        assert_eq!(parse_metrics_request("/metrics"), Some(MetricsFormat::Text));
        assert_eq!(parse_metrics_request("  GET /metrics.json  "), Some(MetricsFormat::Json));
        assert_eq!(parse_metrics_request("/metrics.json"), Some(MetricsFormat::Json));
        assert_eq!(parse_metrics_request("[1.0, 2.0]"), None);
        assert_eq!(parse_metrics_request("1.0,2.0"), None);
        assert_eq!(parse_metrics_request("GET /other"), None);
    }

    #[test]
    fn topn_requests_are_recognized_before_event_parsing() {
        assert_eq!(parse_topn_request("GET /topn 5"), Some(Some(5)));
        assert_eq!(parse_topn_request("/topn 10"), Some(Some(10)));
        assert_eq!(parse_topn_request("  GET /topn\t3  "), Some(Some(3)));
        // Recognized as a top-n request, but with no usable count.
        assert_eq!(parse_topn_request("/topn"), Some(None));
        assert_eq!(parse_topn_request("GET /topn many"), Some(None));
        // Not ours: events and other paths flow on.
        assert_eq!(parse_topn_request("/topnews 3"), None);
        assert_eq!(parse_topn_request("[1.0, 2.0]"), None);
        assert_eq!(parse_topn_request("GET /metrics"), None);
    }

    #[test]
    fn topn_record_is_a_typed_single_line_envelope() {
        let rec = topn_record(3, &[(7, 2.5), (2, f64::INFINITY)], false);
        assert_eq!(
            rec,
            "{\"type\":\"topn\",\"n\":3,\"warmup\":false,\"top\":[{\"seq\":7,\"lof\":2.5},{\"seq\":2,\"lof\":\"inf\"}]}"
        );
        assert_eq!(
            topn_record(2, &[], true),
            "{\"type\":\"topn\",\"n\":2,\"warmup\":true,\"top\":[]}"
        );
    }

    #[test]
    fn control_commands_parse_and_validate() {
        assert_eq!(
            parse_control("TENANT CREATE alpha minpts=5 capacity=256"),
            Some(Ok(ControlCommand::TenantCreate {
                name: "alpha".to_owned(),
                params: vec![
                    ("minpts".to_owned(), "5".to_owned()),
                    ("capacity".to_owned(), "256".to_owned()),
                ],
            }))
        );
        assert_eq!(
            parse_control("  TENANT ATTACH beta-2  "),
            Some(Ok(ControlCommand::TenantAttach { name: "beta-2".to_owned() }))
        );
        assert_eq!(parse_control("TENANT LIST"), Some(Ok(ControlCommand::TenantList)));
        assert_eq!(
            parse_control("TENANT DROP old_one"),
            Some(Ok(ControlCommand::TenantDrop { name: "old_one".to_owned() }))
        );
        assert_eq!(
            parse_control("SNAPSHOT alpha"),
            Some(Ok(ControlCommand::Snapshot { name: Some("alpha".to_owned()) }))
        );
        assert_eq!(parse_control("SNAPSHOT"), Some(Ok(ControlCommand::Snapshot { name: None })));
        assert_eq!(parse_control("DRAIN"), Some(Ok(ControlCommand::Drain)));

        // Malformed control lines are recognized but rejected in-band.
        assert!(parse_control("TENANT").unwrap().is_err());
        assert!(parse_control("TENANT CREATE").unwrap().is_err());
        assert!(parse_control("TENANT CREATE bad/name").unwrap().is_err());
        assert!(parse_control("TENANT CREATE a minpts").unwrap().is_err());
        assert!(parse_control("TENANT FROB x").unwrap().is_err());
        assert!(parse_control("TENANT ATTACH a b").unwrap().is_err());
        assert!(parse_control("SNAPSHOT a b").unwrap().is_err());
        assert!(parse_control("DRAIN now").unwrap().is_err());

        // Events and other requests are not control lines.
        assert_eq!(parse_control("1.0,2.0"), None);
        assert_eq!(parse_control("[1.0, 2.0]"), None);
        assert_eq!(parse_control("GET /metrics"), None);
        assert_eq!(parse_control(""), None);
    }

    #[test]
    fn tenant_names_are_strictly_validated() {
        assert!(valid_tenant_name("alpha"));
        assert!(valid_tenant_name("A-1_b"));
        assert!(valid_tenant_name(&"x".repeat(64)));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name(&"x".repeat(65)));
        assert!(!valid_tenant_name("a b"));
        assert!(!valid_tenant_name("../etc"));
        assert!(!valid_tenant_name("a\"b"));
    }

    #[test]
    fn control_reply_records_are_typed_single_lines() {
        assert_eq!(
            ok_record("tenant.create", Some("alpha")),
            "{\"type\":\"ok\",\"op\":\"tenant.create\",\"tenant\":\"alpha\"}"
        );
        assert_eq!(ok_record("drain", None), "{\"type\":\"ok\",\"op\":\"drain\"}");
        let rows = vec![
            TenantInfo {
                name: "a".to_owned(),
                window_len: 5,
                connections: 2,
                events: 7,
                warming: false,
            },
            TenantInfo {
                name: "b".to_owned(),
                window_len: 0,
                connections: 0,
                events: 0,
                warming: true,
            },
        ];
        assert_eq!(
            tenants_record(&rows),
            "{\"type\":\"tenants\",\"tenants\":[\
             {\"name\":\"a\",\"window\":5,\"connections\":2,\"events\":7,\"warmup\":false},\
             {\"name\":\"b\",\"window\":0,\"connections\":0,\"events\":0,\"warmup\":true}]}"
        );
        assert_eq!(tenants_record(&[]), "{\"type\":\"tenants\",\"tenants\":[]}");
        assert_eq!(
            snapshot_record(&["a".to_owned(), "b".to_owned()]),
            "{\"type\":\"snapshot\",\"tenants\":[\"a\",\"b\"]}"
        );
    }

    #[test]
    fn metrics_record_is_a_typed_single_line_envelope() {
        let registry = lof_obs::MetricsRegistry::new();
        registry.counter("serve.events_in").add(4);
        let rec = metrics_record(&registry);
        assert!(!rec.contains('\n'));
        assert!(rec.starts_with("{\"type\":\"metrics\",\"metrics\":{"));
        assert!(rec.ends_with("}}"));
        assert!(rec.contains("\"serve.events_in\""));
    }

    #[test]
    fn exposition_f64_encoding_matches_the_wire_encoding() {
        // The serve loop emits wire records and registry snapshots over
        // the same connection; their non-finite encodings must agree.
        let battery = [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            1e-300,
            1e300,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        for v in battery {
            assert_eq!(json_f64(v), lof_obs::expose::json_f64(v), "diverged at {v}");
        }
    }
}
