//! The window-equivalence property: after **any** interleaving of inserts
//! and evictions, every score the window emits — and every score it holds —
//! is bit-identical to a fresh batch `IncrementalLof::new` over the current
//! window contents. The window may re-order *when* work happens; it must
//! never change *what* is computed.

use lof_core::incremental::IncrementalLof;
use lof_core::Euclidean;
use lof_stream::{EvictionPolicy, SlidingWindowLof, StreamConfig};
use proptest::prelude::*;

/// Batch oracle: a fresh model over the window's current contents, in the
/// window model's id order (swap-remove shuffles ids, not contents).
fn batch_oracle(window: &SlidingWindowLof<Euclidean>) -> IncrementalLof<Euclidean> {
    let model = window.model().expect("oracle needs a live model");
    IncrementalLof::new(model.dataset().clone(), Euclidean, model.min_pts())
        .expect("window contents are always a valid model seed")
}

fn assert_bit_identical(window: &SlidingWindowLof<Euclidean>, context: &str) {
    let model = window.model().expect("live model");
    let oracle = batch_oracle(window);
    for (id, (live, batch)) in model.lof_values().iter().zip(oracle.lof_values()).enumerate() {
        assert_eq!(
            live.to_bits(),
            batch.to_bits(),
            "{context}: window id {id} diverges from batch recompute ({live} vs {batch})"
        );
    }
}

/// Point coordinates drawn from a mix of a tiny grid (forces exact ties and
/// duplicates) and jittered continuous values.
fn coord_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), Just(2.0), -4.0..4.0f64]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn streamed_scores_are_bit_identical_to_batch(
        points in proptest::collection::vec((coord_strategy(), coord_strategy()), 30..90),
        min_pts in 2usize..5,
        extra_capacity in 2usize..12,
        warmup_slack in 0usize..6,
    ) {
        let capacity = min_pts + extra_capacity;
        let warmup = (min_pts + 1 + warmup_slack).min(capacity);
        let config = StreamConfig::new(min_pts, capacity).warmup(warmup);
        let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();

        for (i, (x, y)) in points.iter().enumerate() {
            let event = window.push(&[*x, *y]).unwrap();
            prop_assert_eq!(event.seq, i as u64);
            if event.warmup {
                prop_assert!(event.score.is_none());
                continue;
            }
            // The emitted score equals the batch score of the newest
            // window member, bit for bit...
            let model = window.model().unwrap();
            let newest = model.newest();
            let oracle = batch_oracle(&window);
            prop_assert_eq!(
                event.score.unwrap().to_bits(),
                oracle.lof_values()[newest].to_bits(),
                "event {} emitted score diverges from batch", i
            );
            // ...and so does every other score the window holds.
            assert_bit_identical(&window, &format!("after event {i}"));
            // The window obeys its capacity bound.
            prop_assert!(window.len() <= capacity);
        }
    }

    fn landmark_windows_are_bit_identical_too(
        points in proptest::collection::vec((coord_strategy(), coord_strategy()), 20..50),
    ) {
        let config = StreamConfig::new(3, 16).warmup(8).policy(EvictionPolicy::Landmark);
        let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
        for (x, y) in &points {
            window.push(&[*x, *y]).unwrap();
        }
        prop_assert_eq!(window.len(), points.len(), "landmark never evicts");
        assert_bit_identical(&window, "landmark end state");
    }
}

/// Deterministic spot-check that exercises heavy duplicate/tie pressure
/// (the `∞`-lrd regime) through many evictions.
#[test]
fn duplicate_heavy_stream_stays_bit_identical() {
    let config = StreamConfig::new(2, 8).warmup(4);
    let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
    for i in 0..60u64 {
        // Every value repeats: neighborhoods collapse to distance-0 ties.
        let v = f64::from((i % 3) as u32);
        window.push(&[v, v]).unwrap();
        if !window.is_warming_up() {
            assert_bit_identical(&window, &format!("duplicate stream event {i}"));
        }
    }
    assert_eq!(window.len(), 8);
    assert_eq!(window.stats().evictions, 52);
}

/// The eviction order is strictly arrival order, independent of the id
/// shuffling that swap-remove performs internally.
#[test]
fn evictions_follow_arrival_order_exactly() {
    let config = StreamConfig::new(3, 10).warmup(10);
    let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
    let mut evicted = Vec::new();
    for i in 0..40u32 {
        let ev = window.push(&[f64::from(i % 7), f64::from(i % 5)]).unwrap();
        if let Some(seq) = ev.evicted {
            evicted.push(seq);
        }
    }
    let expected: Vec<u64> = (0..30).collect();
    assert_eq!(evicted, expected, "events must leave in exactly the order they arrived");
}

/// Window contents after a long run are exactly the last `capacity` points
/// of the stream (as a multiset of rows).
#[test]
fn window_holds_exactly_the_stream_suffix() {
    let config = StreamConfig::new(3, 12).warmup(12);
    let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
    let points: Vec<[f64; 2]> =
        (0..50).map(|i| [f64::from(i % 9), f64::from((i * 3) % 11)]).collect();
    for p in &points {
        window.push(p).unwrap();
    }
    let model = window.model().unwrap();
    let mut held: Vec<Vec<f64>> =
        (0..model.len()).map(|id| model.dataset().point(id).to_vec()).collect();
    let mut expected: Vec<Vec<f64>> = points[38..].iter().map(|p| p.to_vec()).collect();
    let key = |v: &Vec<f64>| (v[0].to_bits(), v[1].to_bits());
    held.sort_by_key(key);
    expected.sort_by_key(key);
    assert_eq!(held, expected);
}

/// `Dataset`-level sanity: the oracle construction used above really does
/// see the same rows the window holds.
#[test]
fn oracle_dataset_matches_window_dataset() {
    let config = StreamConfig::new(2, 6).warmup(4);
    let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
    for i in 0..10u32 {
        window.push(&[f64::from(i), 0.0]).unwrap();
    }
    let oracle = batch_oracle(&window);
    assert_eq!(oracle.dataset(), window.model().unwrap().dataset());
    assert_eq!(oracle.dataset().len(), 6);
}
