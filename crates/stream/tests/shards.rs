//! Shard-border reconciliation and deferred-mode equivalence at the
//! window level: a sharded and/or deferred [`SlidingWindowLof`] must
//! emit — and hold — **bit-identical** scores to the flat eager window
//! and to a fresh batch build after *every* event, through duplicates,
//! tie shells, and eviction storms. Sharding and deferral change which
//! work happens when, never what is computed.

use lof_core::incremental::IncrementalLof;
use lof_core::Euclidean;
use lof_stream::{SlidingWindowLof, StreamConfig, WindowSnapshot};
use proptest::prelude::*;

/// Pushes one point into every window and asserts the emitted events
/// agree bit-for-bit (score, eviction, alerts — everything but latency).
fn push_all(
    windows: &mut [(&str, SlidingWindowLof<Euclidean>)],
    point: &[f64],
    context: &str,
) -> Result<(), TestCaseError> {
    let reference = windows[0].1.push(point).unwrap();
    let ref_name = windows[0].0;
    for (name, window) in &mut windows[1..] {
        let event = window.push(point).unwrap();
        prop_assert_eq!(event.seq, reference.seq);
        prop_assert_eq!(event.warmup, reference.warmup, "{}: warmup vs {}", name, context);
        prop_assert_eq!(
            event.score.map(f64::to_bits),
            reference.score.map(f64::to_bits),
            "{}: {} emits a different score than {}",
            context,
            name,
            ref_name
        );
        prop_assert_eq!(event.evicted, reference.evicted, "{}: {}", name, context);
        prop_assert_eq!(event.threshold_alert, reference.threshold_alert);
        prop_assert_eq!(event.top_k_alert, reference.top_k_alert);
        prop_assert_eq!(event.window_len, reference.window_len);
    }
    Ok(())
}

/// Asserts every window holds the same full ranking, and that it matches
/// a fresh batch build over the window contents (the batch oracle).
fn assert_rankings_agree(
    windows: &mut [(&str, SlidingWindowLof<Euclidean>)],
    context: &str,
) -> Result<(), TestCaseError> {
    let reference: Vec<(u64, u64)> =
        windows[0].1.top_n(usize::MAX).into_iter().map(|(seq, lof)| (seq, lof.to_bits())).collect();
    for (name, window) in &mut windows[1..] {
        let ranking: Vec<(u64, u64)> =
            window.top_n(usize::MAX).into_iter().map(|(seq, lof)| (seq, lof.to_bits())).collect();
        prop_assert_eq!(&ranking, &reference, "{}: ranking diverges ({})", name, context);
    }
    // Batch oracle over the reference window's current contents.
    if let Some(model) = windows[0].1.model() {
        let oracle = IncrementalLof::new(model.dataset().clone(), Euclidean, model.min_pts())
            .expect("window contents are a valid seed");
        for (id, (live, batch)) in model.lof_values().iter().zip(oracle.lof_values()).enumerate() {
            prop_assert_eq!(
                live.to_bits(),
                batch.to_bits(),
                "{}: id {} diverges from the batch oracle",
                context,
                id
            );
        }
    }
    Ok(())
}

/// Tie-shell-heavy coordinates: a tiny integer grid (exact duplicate
/// distances everywhere) mixed with jittered continuous values.
fn coord_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(0.0), Just(1.0), Just(2.0), Just(3.0), -4.0..4.0f64]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// sharded(N) == sharded(1) == flat eager == batch, after every event.
    fn sharded_and_deferred_windows_match_the_flat_eager_window(
        points in proptest::collection::vec((coord_strategy(), coord_strategy()), 30..80),
        min_pts in 2usize..5,
        extra_capacity in 2usize..10,
    ) {
        let capacity = min_pts + extra_capacity;
        let base = StreamConfig::new(min_pts, capacity).top_k(2);
        let mut windows = vec![
            ("flat-eager", SlidingWindowLof::new(base.clone(), Euclidean).unwrap()),
            ("shards-1", SlidingWindowLof::new(base.clone().shards(1), Euclidean).unwrap()),
            ("shards-2", SlidingWindowLof::new(base.clone().shards(2), Euclidean).unwrap()),
            ("shards-4", SlidingWindowLof::new(base.clone().shards(4), Euclidean).unwrap()),
            ("deferred", SlidingWindowLof::new(base.clone().deferred(true), Euclidean).unwrap()),
            (
                "shards-4-deferred",
                SlidingWindowLof::new(base.shards(4).deferred(true), Euclidean).unwrap(),
            ),
        ];
        for (i, (x, y)) in points.iter().enumerate() {
            let context = format!("event {i}");
            push_all(&mut windows, &[*x, *y], &context)?;
        }
        assert_rankings_agree(&mut windows, "end of stream")?;
    }

    /// An eviction storm — capacity pinned at the legal minimum so every
    /// post-warm-up push evicts — with duplicate-saturated input.
    fn eviction_storms_over_duplicates_stay_bit_identical(
        points in proptest::collection::vec((0u8..3, 0u8..3), 40..90),
        min_pts in 2usize..4,
    ) {
        let capacity = min_pts + 2; // smallest validate() accepts
        let base = StreamConfig::new(min_pts, capacity);
        let mut windows = vec![
            ("flat-eager", SlidingWindowLof::new(base.clone(), Euclidean).unwrap()),
            ("shards-3", SlidingWindowLof::new(base.clone().shards(3), Euclidean).unwrap()),
            (
                "shards-2-deferred",
                SlidingWindowLof::new(base.deferred(true).shards(2), Euclidean).unwrap(),
            ),
        ];
        for (i, (x, y)) in points.iter().enumerate() {
            let context = format!("storm event {i}");
            push_all(&mut windows, &[f64::from(*x), f64::from(*y)], &context)?;
            if i % 7 == 0 {
                assert_rankings_agree(&mut windows, &context)?;
            }
        }
        assert_rankings_agree(&mut windows, "after the storm")?;
    }

    /// A sharded deferred window survives a snapshot round-trip: the
    /// restored window scores bit-identically to the uninterrupted one
    /// and keeps its engine configuration and border accounting.
    fn sharded_snapshot_round_trip_resumes_bit_identically(
        points in proptest::collection::vec((coord_strategy(), coord_strategy()), 40..80),
        cut in 20usize..35,
    ) {
        let config = StreamConfig::new(3, 16).shards(4).deferred(true).threshold(1.8);
        let mut original = SlidingWindowLof::new(config, Euclidean).unwrap();
        for (x, y) in &points[..cut] {
            original.push(&[*x, *y]).unwrap();
        }
        let snap = original.snapshot("euclidean");
        prop_assert_eq!(snap.config.shards, 4, "shard count rides the snapshot");
        prop_assert!(snap.config.deferred, "deferred flag rides the snapshot");
        prop_assert_eq!(snap.stats.border_repairs, original.stats().border_repairs);

        let bytes = snap.to_bytes();
        let decoded = WindowSnapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&decoded, &snap, "wire round-trip is lossless");
        let mut restored = SlidingWindowLof::restore(&decoded, Euclidean, "euclidean").unwrap();
        prop_assert_eq!(restored.stats().border_repairs, snap.stats.border_repairs);

        for (i, (x, y)) in points[cut..].iter().enumerate() {
            let a = original.push(&[*x, *y]).unwrap();
            let b = restored.push(&[*x, *y]).unwrap();
            prop_assert_eq!(a.seq, b.seq);
            prop_assert_eq!(
                a.score.map(f64::to_bits),
                b.score.map(f64::to_bits),
                "post-restore event {} diverges",
                i
            );
            prop_assert_eq!(a.evicted, b.evicted);
            prop_assert_eq!(a.threshold_alert, b.threshold_alert);
        }
        let a: Vec<(u64, u64)> =
            original.top_n(usize::MAX).into_iter().map(|(s, l)| (s, l.to_bits())).collect();
        let b: Vec<(u64, u64)> =
            restored.top_n(usize::MAX).into_iter().map(|(s, l)| (s, l.to_bits())).collect();
        prop_assert_eq!(a, b, "restored ranking diverges");
        // Note: border_repairs may legitimately drift between the two
        // from here on — the restored window builds its shard layout
        // from the *current* contents while the original's dates from
        // warm-up, so which cascades cross borders differs even though
        // every score is bit-identical.
    }
}

/// Border-repair accounting: a sharded window under churn must cross
/// shard borders (the counter moves); an unsharded window never does.
#[test]
fn border_repairs_flow_into_stats_and_the_registry() {
    let sharded = StreamConfig::new(4, 48).warmup(32).shards(4);
    let mut w = SlidingWindowLof::new(sharded, Euclidean).unwrap();
    let mut flat = SlidingWindowLof::new(StreamConfig::new(4, 48).warmup(32), Euclidean).unwrap();
    for i in 0..200u32 {
        let p = [f64::from(i % 7), f64::from((i / 7) % 9)];
        w.push(&p).unwrap();
        flat.push(&p).unwrap();
    }
    assert!(w.stats().border_repairs > 0, "200 churn events across 4 shards must cross borders");
    assert_eq!(flat.stats().border_repairs, 0, "flat windows never cross borders");
    if lof_obs::enabled() {
        assert_eq!(
            w.registry().counter("stream.shard.border_repairs").value(),
            w.stats().border_repairs,
            "registry mirror tracks the stats"
        );
    }
}

/// The validate() gate: a zero shard count can never build a window.
#[test]
fn zero_shards_are_rejected() {
    let config = StreamConfig::new(3, 16).shards(0);
    assert!(SlidingWindowLof::new(config, Euclidean).is_err());
}
