//! Differential reconciliation suite (PR 4): the observability layer is
//! a *second*, independent accounting of the stream, and it must agree
//! with the ground truth exactly — no sampling, no drift. Three ledgers
//! are reconciled here:
//!
//! 1. the window's own [`StreamStats`] (plain integers, always on);
//! 2. the registry counters/gauges mirrored by `SlidingWindowLof` and
//!    the serve loop (`stream.*` / `serve.*` names);
//! 3. arithmetic ground truth recomputed from the generated input.
//!
//! Pinned invariants: `events_in == score_records + push_errors`,
//! `error_records == parse_errors + push_errors`,
//! `window_occupancy == events - evictions`, and the latency histogram's
//! `total_count ==` scored events. Registry *values* are zero when the
//! crates are built with `--no-default-features` (obs off), so those
//! assertions are gated on [`lof_obs::enabled`]; the structural
//! invariants hold in both modes.

use lof_core::Euclidean;
use lof_stream::{run_stream, SlidingWindowLof, StreamConfig};
use proptest::prelude::*;

/// One adversarial input line for the NDJSON loop.
#[derive(Debug, Clone)]
enum Line {
    /// A valid 2-d event: parses, scores.
    Point(f64, f64),
    /// A 1-d event: parses, but the push fails (dimension mismatch)
    /// once the first 2-d point has fixed the window's dimensionality.
    WrongDims(f64),
    /// A parse reject.
    Malformed,
    /// Skipped silently (no reply, no counters).
    Comment,
    /// Skipped silently.
    Empty,
    /// In-band metrics request, single-line JSON reply.
    MetricsJson,
}

fn line_strategy() -> impl Strategy<Value = Line> {
    // Selector-based weighting: values 0..=5 pick valid points (~55%),
    // the rest spread over the adversarial line kinds.
    (0u8..10, -4.0..4.0f64, -4.0..4.0f64).prop_map(|(kind, x, y)| match kind {
        0..=5 => Line::Point(x, y),
        6 => Line::WrongDims(x),
        7 => Line::Malformed,
        8 => Line::Comment,
        9 if x < 0.0 => Line::Empty,
        _ => Line::MetricsJson,
    })
}

fn render(lines: &[Line]) -> String {
    let mut input = String::new();
    for line in lines {
        match line {
            Line::Point(x, y) => input.push_str(&format!("{x},{y}\n")),
            Line::WrongDims(x) => input.push_str(&format!("{x}\n")),
            Line::Malformed => input.push_str("definitely, not, a, number\n"),
            Line::Comment => input.push_str("# comment\n"),
            Line::Empty => input.push('\n'),
            Line::MetricsJson => input.push_str("GET /metrics.json\n"),
        }
    }
    input
}

/// Ground-truth classification of the generated input, recomputed
/// independently of both the summary and the registry.
#[derive(Debug, Default, PartialEq, Eq)]
struct Expected {
    events_in: u64,
    scored: u64,
    push_errors: u64,
    parse_errors: u64,
    metrics_requests: u64,
}

fn classify(lines: &[Line]) -> Expected {
    let mut e = Expected::default();
    for line in lines {
        match line {
            Line::Point(..) => {
                e.events_in += 1;
                e.scored += 1;
            }
            Line::WrongDims(_) => {
                e.events_in += 1;
                e.push_errors += 1;
            }
            Line::Malformed => e.parse_errors += 1,
            Line::Comment | Line::Empty => {}
            Line::MetricsJson => e.metrics_requests += 1,
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The serve loop (via `run_stream`, which shares the per-line
    /// accounting with the TCP scorer thread) against all three ledgers.
    #[test]
    fn serve_loop_counters_reconcile_with_ground_truth(
        soup in proptest::collection::vec(line_strategy(), 0..80),
    ) {
        // Pin the window to 2-d up front so `WrongDims` lines are
        // deterministically push errors, never dimension-setters.
        let mut lines = vec![Line::Point(0.0, 0.0)];
        lines.extend(soup);
        let expected = classify(&lines);

        let config = StreamConfig::new(2, 12).warmup(4).threshold(2.5);
        let window = SlidingWindowLof::new(config, Euclidean).unwrap();
        let mut output = Vec::new();
        let (window, summary) =
            run_stream(window, render(&lines).as_bytes(), &mut output).unwrap();
        let stats = window.stats().clone();

        // Ledger 1 vs ground truth: the summary.
        prop_assert_eq!(summary.events, expected.scored);
        prop_assert_eq!(summary.errors, expected.push_errors + expected.parse_errors);

        // Ledger 1 vs ground truth: the window stats. Only valid pushes
        // reach the window, and since PR 4 the latency histogram records
        // scored events only — its total count is the scored ledger.
        prop_assert_eq!(stats.events, expected.scored);
        prop_assert_eq!(stats.latency.count(), stats.scored);
        prop_assert_eq!(
            stats.events - stats.evictions,
            window.len() as u64,
            "occupancy must equal inserts minus evictions"
        );

        // One reply line per accounted line: events + errors + metrics
        // answers (JSON form is single-line by construction).
        let text = String::from_utf8(output).unwrap();
        prop_assert_eq!(
            text.lines().count() as u64,
            expected.events_in + expected.parse_errors + expected.metrics_requests
        );
        prop_assert_eq!(
            text.lines().filter(|l| l.starts_with("{\"type\":\"metrics\"")).count() as u64,
            expected.metrics_requests
        );

        // Ledger 2: the registry, reconciled against both ground truth
        // and the invariants. Counter values exist only with obs on.
        if lof_obs::enabled() {
            let r = window.registry();
            let events_in = r.counter("serve.events_in").value();
            let score_records = r.counter("serve.score_records").value();
            let push_errors = r.counter("serve.push_errors").value();
            let parse_errors = r.counter("serve.parse_errors").value();
            let error_records = r.counter("serve.error_records").value();

            prop_assert_eq!(events_in, expected.events_in);
            prop_assert_eq!(score_records, expected.scored);
            prop_assert_eq!(push_errors, expected.push_errors);
            prop_assert_eq!(parse_errors, expected.parse_errors);
            prop_assert_eq!(r.counter("serve.metrics_requests").value(), expected.metrics_requests);

            prop_assert_eq!(events_in, score_records + push_errors);
            prop_assert_eq!(error_records, parse_errors + push_errors);

            prop_assert_eq!(r.counter("stream.events").value(), stats.events);
            prop_assert_eq!(r.counter("stream.scored").value(), stats.scored);
            prop_assert_eq!(r.counter("stream.evictions").value(), stats.evictions);
            prop_assert_eq!(r.counter("stream.alerts").value(), stats.alerts);
            prop_assert_eq!(r.gauge("stream.window_occupancy").value(), window.len() as f64);
            prop_assert_eq!(r.histogram("stream.latency_ns").count(), stats.scored);
        }
    }

    /// `SlidingWindowLof` pushed directly (no serve loop in between):
    /// the registry mirror must track the stats ledger push for push.
    #[test]
    fn window_counters_reconcile_under_direct_pushes(
        points in proptest::collection::vec((-5.0..5.0f64, -5.0..5.0f64), 1..70),
        min_pts in 2usize..4,
        extra in 2usize..10,
        spike_every in 5usize..9,
    ) {
        let capacity = min_pts + extra;
        let config = StreamConfig::new(min_pts, capacity)
            .warmup((min_pts + 1).min(capacity))
            .threshold(2.0);
        let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
        let mut rejected = 0u64;
        for (i, (x, y)) in points.iter().enumerate() {
            if i % spike_every == spike_every - 1 {
                // A dimension-mismatched push: must be rejected without
                // touching any ledger.
                window.push(&[*x]).unwrap_err();
                rejected += 1;
            }
            window.push(&[*x, *y]).unwrap();
        }
        let stats = window.stats().clone();

        prop_assert_eq!(stats.events, points.len() as u64);
        prop_assert_eq!(stats.latency.count(), stats.scored);
        prop_assert_eq!(stats.events - stats.evictions, window.len() as u64);
        prop_assert!(window.len() <= capacity);

        if lof_obs::enabled() {
            let r = window.registry();
            prop_assert_eq!(r.counter("stream.events").value(), stats.events);
            prop_assert_eq!(r.counter("stream.scored").value(), stats.scored);
            prop_assert_eq!(r.counter("stream.evictions").value(), stats.evictions);
            prop_assert_eq!(r.counter("stream.alerts").value(), stats.alerts);
            prop_assert_eq!(r.counter("stream.cascade_lofs").value(), stats.cascade_lofs);
            prop_assert_eq!(r.gauge("stream.window_occupancy").value(), window.len() as f64);
            prop_assert_eq!(r.histogram("stream.latency_ns").count(), stats.scored);
            // Rejected pushes never reach any ledger.
            prop_assert_eq!(r.counter("stream.events").value() + rejected,
                stats.events + rejected);
        }
    }
}
