//! Snapshot/restore equivalence: killing a window at **any** point in the
//! stream and restoring it from its `LOFW` snapshot must continue the run
//! bit-identically — every emitted score, eviction, alert decision, and
//! the final held scores match the uninterrupted window exactly.

use lof_core::Euclidean;
use lof_stream::{SlidingWindowLof, StreamConfig, WindowSnapshot};
use proptest::prelude::*;

const TAG: &str = "euclidean";

/// One emitted event: (seq, score bits, evicted seq, threshold alert,
/// top-k alert).
type EventTrace = (u64, Option<u64>, Option<u64>, bool, bool);

/// Pushes `points` through `window`, recording what each event emitted
/// (score bits, eviction, alert flags) for exact comparison.
fn drive(window: &mut SlidingWindowLof<Euclidean>, points: &[(f64, f64)]) -> Vec<EventTrace> {
    points
        .iter()
        .map(|&(x, y)| {
            let ev = window.push(&[x, y]).unwrap();
            (ev.seq, ev.score.map(f64::to_bits), ev.evicted, ev.threshold_alert, ev.top_k_alert)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    fn restored_window_continues_bit_identically(
        points in proptest::collection::vec(
            (prop_oneof![Just(0.0), Just(1.0), -4.0..4.0f64],
             prop_oneof![Just(0.0), Just(2.0), -4.0..4.0f64]),
            20..70,
        ),
        cut_ratio in 0.0..1.0f64,
        min_pts in 2usize..4,
    ) {
        let config = StreamConfig::new(min_pts, min_pts + 8)
            .warmup(min_pts + 2)
            .threshold(1.8)
            .top_k(3);
        // The cut can land anywhere: before warm-up completes, exactly at
        // the model build, or deep into the sliding regime.
        let cut = ((points.len() as f64) * cut_ratio) as usize;

        let mut uninterrupted = SlidingWindowLof::new(config.clone(), Euclidean).unwrap();
        let mut original = SlidingWindowLof::new(config, Euclidean).unwrap();
        let full = drive(&mut uninterrupted, &points);

        let before = drive(&mut original, &points[..cut]);
        prop_assert_eq!(&before[..], &full[..cut]);

        // Kill: serialize to bytes, drop the window, parse the bytes back.
        let bytes = original.snapshot(TAG).to_bytes();
        drop(original);
        let snap = WindowSnapshot::from_bytes(&bytes).unwrap();
        let mut restored = SlidingWindowLof::restore(&snap, Euclidean, TAG).unwrap();

        // The restored window replays the rest of the stream identically.
        let after = drive(&mut restored, &points[cut..]);
        prop_assert_eq!(&after[..], &full[cut..]);

        // Held state matches too: same occupancy, same ranked scores.
        prop_assert_eq!(restored.len(), uninterrupted.len());
        let a = restored.top_n(usize::MAX);
        let b = uninterrupted.top_n(usize::MAX);
        prop_assert_eq!(a.len(), b.len());
        for ((sa, la), (sb, lb)) in a.iter().zip(&b) {
            prop_assert_eq!(sa, sb);
            prop_assert_eq!(la.to_bits(), lb.to_bits());
        }

        // Lifetime counters resume rather than restart.
        prop_assert_eq!(restored.stats().events, uninterrupted.stats().events);
        prop_assert_eq!(restored.stats().scored, uninterrupted.stats().scored);
        prop_assert_eq!(restored.stats().evictions, uninterrupted.stats().evictions);
        prop_assert_eq!(restored.stats().alerts, uninterrupted.stats().alerts);
        prop_assert_eq!(restored.stats().cascade_lofs, uninterrupted.stats().cascade_lofs);
        // The latency histogram restarts: only post-restore scored events.
        let rescored = full[cut..].iter().filter(|r| r.1.is_some()).count() as u64;
        prop_assert_eq!(restored.stats().latency.count(), rescored);
    }
}

/// A snapshot written to disk and read back survives the file round trip,
/// while corrupted and truncated files are rejected with `InvalidData`.
#[test]
fn file_round_trip_rejects_corruption_and_truncation() {
    let config = StreamConfig::new(3, 12).warmup(6);
    let mut window = SlidingWindowLof::new(config, Euclidean).unwrap();
    for i in 0..20u32 {
        window.push(&[f64::from(i % 5), f64::from(i % 7)]).unwrap();
    }
    let snap = window.snapshot(TAG);
    let dir = std::env::temp_dir().join(format!("lof_snapshot_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("window.lofw");
    snap.write_to_file(&path).unwrap();

    let back = WindowSnapshot::read_from_file(&path).unwrap();
    assert_eq!(back, snap);
    let restored = SlidingWindowLof::restore(&back, Euclidean, TAG).unwrap();
    assert_eq!(restored.len(), window.len());

    // Truncate the file: every prefix must fail cleanly, never panic.
    let bytes = std::fs::read(&path).unwrap();
    for cut in [0, 3, 8, 16, bytes.len() / 2, bytes.len() - 1] {
        let trunc = dir.join("trunc.lofw");
        std::fs::write(&trunc, &bytes[..cut]).unwrap();
        let err = WindowSnapshot::read_from_file(&trunc).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "cut at {cut}");
    }

    // Flip one payload byte: the CRC must catch it.
    let mut corrupt = bytes.clone();
    let mid = 16 + (corrupt.len() - 20) / 2;
    corrupt[mid] ^= 0x40;
    let bad = dir.join("bad.lofw");
    std::fs::write(&bad, &corrupt).unwrap();
    let err = WindowSnapshot::read_from_file(&bad).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

    // A mismatched metric tag is refused at restore time.
    assert!(SlidingWindowLof::restore(&back, Euclidean, "manhattan").is_err());

    std::fs::remove_dir_all(&dir).ok();
}

/// Restoring an empty (pre-first-event) snapshot yields a usable window.
#[test]
fn empty_window_snapshot_round_trips() {
    let config = StreamConfig::new(2, 8).warmup(4);
    let window = SlidingWindowLof::new(config, Euclidean).unwrap();
    let snap = window.snapshot(TAG);
    assert!(snap.warming);
    assert_eq!(snap.points.len(), 0);
    let bytes = snap.to_bytes();
    let back = WindowSnapshot::from_bytes(&bytes).unwrap();
    let mut restored = SlidingWindowLof::restore(&back, Euclidean, TAG).unwrap();
    assert!(restored.is_empty());
    for i in 0..10u32 {
        restored.push(&[f64::from(i), f64::from(i % 3)]).unwrap();
    }
    assert_eq!(restored.stats().events, 10);
}
