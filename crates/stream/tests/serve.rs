//! TCP round-trip tests for the serve loop: concurrent clients, in-band
//! errors, ordered replies, and a clean shutdown that reports lifetime
//! stats covering every connection's events.

use lof_core::Euclidean;
use lof_stream::{serve, SlidingWindowLof, StreamConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

/// Extracts an integer field (`"name":123`) from a flat NDJSON record.
fn json_u64(record: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let start = record.find(&key)? + key.len();
    let digits: String = record[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn spawn_server(config: StreamConfig) -> serve::ServeHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let window = SlidingWindowLof::new(config, Euclidean).expect("valid config");
    serve::spawn(listener, window, 0).expect("spawn serve loop")
}

#[test]
fn concurrent_clients_round_trip_and_stats_add_up() {
    const CLIENTS: usize = 3;
    const EVENTS_PER_CLIENT: usize = 40;

    let handle = spawn_server(StreamConfig::new(3, 32).warmup(8));
    let addr = handle.addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone socket");
                let mut reader = BufReader::new(stream);
                let mut replies = Vec::with_capacity(EVENTS_PER_CLIENT);
                for i in 0..EVENTS_PER_CLIENT {
                    // Interleave send/receive so the bounded queue and the
                    // per-connection reply channel both stay exercised.
                    let x = (c * EVENTS_PER_CLIENT + i) % 7;
                    writeln!(writer, "[{x}.0, {}.0]", i % 5).expect("send event");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read reply");
                    replies.push(line.trim().to_owned());
                }
                replies
            })
        })
        .collect();

    let mut all_seqs = Vec::new();
    for worker in workers {
        let replies = worker.join().expect("client thread");
        assert_eq!(replies.len(), EVENTS_PER_CLIENT);
        let seqs: Vec<u64> = replies
            .iter()
            .map(|r| {
                assert!(r.starts_with("{\"type\":\"score\""), "unexpected record: {r}");
                json_u64(r, "seq").expect("score records carry a seq")
            })
            .collect();
        // Per-connection replies arrive in that connection's send order,
        // so its slice of the global seq space is strictly increasing.
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "out-of-order replies: {seqs:?}");
        all_seqs.extend(seqs);
    }

    // The three clients together observed every seq exactly once.
    all_seqs.sort_unstable();
    let expected: Vec<u64> = (0..(CLIENTS * EVENTS_PER_CLIENT) as u64).collect();
    assert_eq!(all_seqs, expected);

    let stats = handle.shutdown().expect("clean scorer shutdown");
    assert_eq!(stats.events, (CLIENTS * EVENTS_PER_CLIENT) as u64);
    assert_eq!(stats.evictions, (CLIENTS * EVENTS_PER_CLIENT - 32) as u64);
}

#[test]
fn malformed_lines_get_in_band_error_records() {
    let handle = spawn_server(StreamConfig::new(2, 16).warmup(4));
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);

    writeln!(writer, "1.0, 2.0").expect("send");
    writeln!(writer, "definitely not an event").expect("send");
    writeln!(writer, "# comments are silently skipped").expect("send");
    writeln!(writer, "{{\"point\": [3, 4]}}").expect("send");

    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        lines.push(line);
    }
    assert!(lines[0].starts_with("{\"type\":\"score\",\"seq\":0"));
    assert!(lines[1].starts_with("{\"type\":\"error\""));
    assert!(lines[2].starts_with("{\"type\":\"score\",\"seq\":1"), "comment consumed no seq");

    drop(writer);
    drop(reader);
    let stats = handle.shutdown().expect("clean scorer shutdown");
    assert_eq!(stats.events, 2);
}

#[test]
fn oversized_and_split_lines_are_framed_correctly() {
    let handle = spawn_server(StreamConfig::new(2, 16).warmup(4));
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);

    // An event split across two writes with a flush in between: the
    // per-connection buffer must reassemble it, not score a fragment.
    writer.write_all(b"1.0,").expect("send prefix");
    writer.flush().expect("flush");
    thread::sleep(std::time::Duration::from_millis(30));
    writer.write_all(b"2.0\n").expect("send suffix");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(line.starts_with("{\"type\":\"score\",\"seq\":0"), "split line misread: {line}");

    // A line far beyond the cap: rejected with one in-band error record
    // (never truncated into a bogus event), and the connection survives.
    let oversized = "9.0,".repeat(100_000); // ~400 KiB, no newline yet
    writer.write_all(oversized.as_bytes()).expect("send oversized");
    writer.write_all(b"9.0\n").expect("terminate oversized");
    writer.write_all(b"3.0,4.0\n").expect("send follow-up event");
    writer.flush().expect("flush");

    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(line.starts_with("{\"type\":\"error\""), "expected overflow error, got: {line}");
    assert!(line.contains("exceeds"), "error names the limit: {line}");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    assert!(line.starts_with("{\"type\":\"score\",\"seq\":1"), "connection must survive: {line}");

    drop(writer);
    drop(reader);
    let stats = handle.shutdown().expect("clean scorer shutdown");
    assert_eq!(stats.events, 2, "the oversized line must not count as an event");
}

#[test]
fn warmup_then_alerts_flow_over_tcp() {
    let handle = spawn_server(StreamConfig::new(3, 64).warmup(10).threshold(2.5));
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);

    let mut saw_alert = false;
    for i in 0..30 {
        // A tight cluster, then one far-away spike that must alert.
        let (x, y) = if i == 29 { (90.0, 90.0) } else { (f64::from(i % 3), f64::from(i % 4)) };
        writeln!(writer, "{x},{y}").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        if i < 10 {
            assert!(line.contains("\"warmup\":true"), "event {i} should be warm-up: {line}");
            assert!(line.contains("\"lof\":null"));
        }
        if line.contains("\"alerts\":[\"threshold\"]") {
            saw_alert = true;
        }
    }
    assert!(saw_alert, "the (90,90) spike must trip the threshold rule");

    drop(writer);
    drop(reader);
    let stats = handle.shutdown().expect("clean scorer shutdown");
    assert_eq!(stats.events, 30);
    assert!(stats.alerts >= 1);
}

#[test]
fn metrics_requests_are_answered_in_band_over_tcp() {
    let handle = spawn_server(StreamConfig::new(2, 16).warmup(3));
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);

    for i in 0..5 {
        writeln!(writer, "{i}.0,1.0").expect("send event");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        assert!(line.starts_with("{\"type\":\"score\""));
    }

    // Prometheus text form: multi-line, terminated by `# EOF`. The reply
    // is causally consistent — it travels through the same job queue as
    // the five events, so it must already see them.
    writeln!(writer, "GET /metrics").expect("send metrics request");
    let mut block = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read metrics line");
        let done = line.trim_end() == "# EOF";
        block.push_str(&line);
        if done {
            break;
        }
    }
    assert!(block.contains("# TYPE lof_serve_events_in counter"), "missing type line:\n{block}");
    assert!(block.contains("# TYPE lof_stream_latency_ns summary"), "missing summary:\n{block}");
    if lof_obs::enabled() {
        assert!(block.contains("lof_serve_events_in 5"), "events not counted:\n{block}");
        assert!(block.contains("lof_stream_window_occupancy 5"), "occupancy gauge:\n{block}");
    }

    // JSON form: one typed single-line record.
    writeln!(writer, "/metrics.json").expect("send metrics request");
    let mut json = String::new();
    reader.read_line(&mut json).expect("read json metrics");
    assert!(json.starts_with("{\"type\":\"metrics\",\"metrics\":{"), "unexpected: {json}");
    assert_eq!(json.trim_end().lines().count(), 1);
    if lof_obs::enabled() {
        assert!(json.contains("\"serve.metrics_requests\":2"), "both requests counted: {json}");
    }

    drop(writer);
    drop(reader);
    let stats = handle.shutdown().expect("clean scorer shutdown");
    assert_eq!(stats.events, 5, "metrics requests consume no event seq");
}

/// Satellite 5: N writer threads hammer the server concurrently; after
/// they all join, the registry must show *exact* totals — the sharded
/// counters lose nothing under contention, and the serve ledgers
/// reconcile: `events_in == score_records + push_errors`,
/// `error_records == parse_errors + push_errors`.
#[test]
fn concurrent_writers_produce_exact_counter_totals() {
    const WRITERS: usize = 4;
    const EVENTS: usize = 30;
    const MALFORMED: usize = 3;

    let handle = spawn_server(StreamConfig::new(3, 64).warmup(8));
    let addr = handle.addr();
    let registry = std::sync::Arc::clone(handle.registry());

    let workers: Vec<_> = (0..WRITERS)
        .map(|w| {
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone socket");
                let mut reader = BufReader::new(stream);
                for i in 0..EVENTS + MALFORMED {
                    if i % 11 == 10 {
                        writeln!(writer, "w{w} garbage line {i}").expect("send junk");
                    } else {
                        writeln!(writer, "[{}.0, {}.0]", (w * 7 + i) % 9, i % 5).expect("send");
                    }
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read reply");
                    if i % 11 == 10 {
                        assert!(line.starts_with("{\"type\":\"error\""), "junk reply: {line}");
                    } else {
                        assert!(line.starts_with("{\"type\":\"score\""), "event reply: {line}");
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("writer thread");
    }

    let stats = handle.shutdown().expect("clean scorer shutdown");
    assert_eq!(stats.events, (WRITERS * EVENTS) as u64);

    let events_in = registry.counter("serve.events_in").value();
    let score_records = registry.counter("serve.score_records").value();
    let push_errors = registry.counter("serve.push_errors").value();
    let parse_errors = registry.counter("serve.parse_errors").value();
    let error_records = registry.counter("serve.error_records").value();
    // Structural reconciliation holds in both feature modes (all-zero
    // ledgers reconcile trivially with obs off).
    assert_eq!(events_in, score_records + push_errors);
    assert_eq!(error_records, parse_errors + push_errors);
    if lof_obs::enabled() {
        assert_eq!(events_in, (WRITERS * EVENTS) as u64);
        assert_eq!(score_records, (WRITERS * EVENTS) as u64);
        assert_eq!(parse_errors, (WRITERS * MALFORMED) as u64);
        assert_eq!(push_errors, 0);
        assert_eq!(registry.counter("serve.connections").value(), WRITERS as u64);
        assert_eq!(registry.counter("stream.events").value(), stats.events);
        assert_eq!(registry.counter("stream.scored").value(), stats.scored);
        assert_eq!(registry.histogram("stream.latency_ns").count(), stats.scored);
    }
}
