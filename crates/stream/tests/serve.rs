//! TCP round-trip tests for the serve loop: concurrent clients, in-band
//! errors, ordered replies, and a clean shutdown that reports lifetime
//! stats covering every connection's events.

use lof_core::Euclidean;
use lof_stream::{serve, SlidingWindowLof, StreamConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::thread;

/// Extracts an integer field (`"name":123`) from a flat NDJSON record.
fn json_u64(record: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let start = record.find(&key)? + key.len();
    let digits: String = record[start..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn spawn_server(config: StreamConfig) -> serve::ServeHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let window = SlidingWindowLof::new(config, Euclidean).expect("valid config");
    serve::spawn(listener, window, 0).expect("spawn serve loop")
}

#[test]
fn concurrent_clients_round_trip_and_stats_add_up() {
    const CLIENTS: usize = 3;
    const EVENTS_PER_CLIENT: usize = 40;

    let handle = spawn_server(StreamConfig::new(3, 32).warmup(8));
    let addr = handle.addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut writer = stream.try_clone().expect("clone socket");
                let mut reader = BufReader::new(stream);
                let mut replies = Vec::with_capacity(EVENTS_PER_CLIENT);
                for i in 0..EVENTS_PER_CLIENT {
                    // Interleave send/receive so the bounded queue and the
                    // per-connection reply channel both stay exercised.
                    let x = (c * EVENTS_PER_CLIENT + i) % 7;
                    writeln!(writer, "[{x}.0, {}.0]", i % 5).expect("send event");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("read reply");
                    replies.push(line.trim().to_owned());
                }
                replies
            })
        })
        .collect();

    let mut all_seqs = Vec::new();
    for worker in workers {
        let replies = worker.join().expect("client thread");
        assert_eq!(replies.len(), EVENTS_PER_CLIENT);
        let seqs: Vec<u64> = replies
            .iter()
            .map(|r| {
                assert!(r.starts_with("{\"type\":\"score\""), "unexpected record: {r}");
                json_u64(r, "seq").expect("score records carry a seq")
            })
            .collect();
        // Per-connection replies arrive in that connection's send order,
        // so its slice of the global seq space is strictly increasing.
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "out-of-order replies: {seqs:?}");
        all_seqs.extend(seqs);
    }

    // The three clients together observed every seq exactly once.
    all_seqs.sort_unstable();
    let expected: Vec<u64> = (0..(CLIENTS * EVENTS_PER_CLIENT) as u64).collect();
    assert_eq!(all_seqs, expected);

    let stats = handle.shutdown();
    assert_eq!(stats.events, (CLIENTS * EVENTS_PER_CLIENT) as u64);
    assert_eq!(stats.evictions, (CLIENTS * EVENTS_PER_CLIENT - 32) as u64);
}

#[test]
fn malformed_lines_get_in_band_error_records() {
    let handle = spawn_server(StreamConfig::new(2, 16).warmup(4));
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);

    writeln!(writer, "1.0, 2.0").expect("send");
    writeln!(writer, "definitely not an event").expect("send");
    writeln!(writer, "# comments are silently skipped").expect("send");
    writeln!(writer, "{{\"point\": [3, 4]}}").expect("send");

    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        lines.push(line);
    }
    assert!(lines[0].starts_with("{\"type\":\"score\",\"seq\":0"));
    assert!(lines[1].starts_with("{\"type\":\"error\""));
    assert!(lines[2].starts_with("{\"type\":\"score\",\"seq\":1"), "comment consumed no seq");

    drop(writer);
    drop(reader);
    let stats = handle.shutdown();
    assert_eq!(stats.events, 2);
}

#[test]
fn warmup_then_alerts_flow_over_tcp() {
    let handle = spawn_server(StreamConfig::new(3, 64).warmup(10).threshold(2.5));
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone socket");
    let mut reader = BufReader::new(stream);

    let mut saw_alert = false;
    for i in 0..30 {
        // A tight cluster, then one far-away spike that must alert.
        let (x, y) = if i == 29 { (90.0, 90.0) } else { (f64::from(i % 3), f64::from(i % 4)) };
        writeln!(writer, "{x},{y}").expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        if i < 10 {
            assert!(line.contains("\"warmup\":true"), "event {i} should be warm-up: {line}");
            assert!(line.contains("\"lof\":null"));
        }
        if line.contains("\"alerts\":[\"threshold\"]") {
            saw_alert = true;
        }
    }
    assert!(saw_alert, "the (90,90) spike must trip the threshold rule");

    drop(writer);
    drop(reader);
    let stats = handle.shutdown();
    assert_eq!(stats.events, 30);
    assert!(stats.alerts >= 1);
}
