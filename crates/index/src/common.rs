//! Shared plumbing for the index implementations.

use lof_core::{LofError, Result};

/// Validates a `k_nearest(id, k)` query against dataset size `n`.
pub(crate) fn validate_knn(n: usize, id: usize, k: usize) -> Result<()> {
    if id >= n {
        return Err(LofError::UnknownObject { id, dataset_size: n });
    }
    if k == 0 || k >= n {
        return Err(LofError::InvalidMinPts { min_pts: k, dataset_size: n });
    }
    Ok(())
}

/// Validates a `within(id, radius)` query against dataset size `n`.
pub(crate) fn validate_within(n: usize, id: usize) -> Result<()> {
    if id >= n {
        return Err(LofError::UnknownObject { id, dataset_size: n });
    }
    Ok(())
}

/// Widens a squared-space radius for node pruning in a batch range phase.
/// Candidate inclusion runs on exact reference distances, so the only
/// requirement here is that no node containing a true neighbor is pruned;
/// a relative `1e-9` (far above any `sqrt` rounding) plus `MIN_POSITIVE`
/// (covering zero radii) over-covers that, at the cost of a few extra
/// node visits.
#[inline]
pub(crate) fn widen_sq(r_sq: f64) -> f64 {
    r_sq * (1.0 + 1e-9) + f64::MIN_POSITIVE
}

/// Drives a leaf-grouped batch self-join for a tree index.
///
/// Queries are sorted by `(containing leaf, id)` so ids sharing a leaf
/// become one contiguous group, and each group is handed to
/// `process_group` exactly once — that is where the tree traverses once
/// per group instead of once per query. For every `(leaf, id)` pair of
/// its group, **in the given order**, `process_group` must append the
/// id's canonically sorted neighborhood to the staging buffer (3rd
/// argument) and push the neighborhood's length (4th argument). The
/// driver re-emits the staged neighborhoods in ascending id order, which
/// is the `batch_k_nearest` contract.
///
/// All staging lives in the caller's [`lof_core::KnnScratch`], so a
/// warmed-up scratch makes the whole batch allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn leaf_grouped_batch<F>(
    n: usize,
    ids: std::ops::Range<usize>,
    k: usize,
    leaf_of: &[usize],
    scratch: &mut lof_core::KnnScratch,
    out: &mut Vec<lof_core::Neighbor>,
    lens: &mut Vec<usize>,
    mut process_group: F,
) -> Result<()>
where
    F: FnMut(
        &[(usize, usize)],
        &mut lof_core::KnnScratch,
        &mut Vec<lof_core::Neighbor>,
        &mut Vec<usize>,
    ),
{
    if ids.start >= ids.end {
        return Ok(());
    }
    validate_knn(n, ids.start, k)?;
    if ids.end > n {
        return Err(LofError::UnknownObject { id: n, dataset_size: n });
    }
    let base = ids.start;
    let count = ids.len();
    // Take the staging buffers out of the scratch so `process_group` can
    // borrow the rest of it (heaps, tile buffers) without conflicts.
    let mut order = std::mem::take(&mut scratch.join_order);
    let mut staged = std::mem::take(&mut scratch.join_staged);
    let mut glens = std::mem::take(&mut scratch.join_lens);
    let mut spans = std::mem::take(&mut scratch.join_spans);
    order.clear();
    staged.clear();
    glens.clear();
    order.extend(ids.clone().map(|id| (leaf_of[id], id)));
    order.sort_unstable();

    let mut g = 0;
    while g < order.len() {
        let leaf = order[g].0;
        let mut h = g + 1;
        while h < order.len() && order[h].0 == leaf {
            h += 1;
        }
        process_group(&order[g..h], scratch, &mut staged, &mut glens);
        g = h;
    }
    debug_assert_eq!(glens.len(), count, "one neighborhood length per query");

    // Map the traversal-order spans back to ascending id order.
    spans.clear();
    spans.resize(count, (0, 0));
    let mut cursor = 0;
    for (i, &(_, qid)) in order.iter().enumerate() {
        spans[qid - base] = (cursor, glens[i]);
        cursor += glens[i];
    }
    debug_assert_eq!(cursor, staged.len(), "lengths must cover the staging buffer");
    out.reserve(staged.len());
    for id in ids {
        let (start, len) = spans[id - base];
        out.extend_from_slice(&staged[start..start + len]);
        lens.push(len);
    }

    scratch.join_order = order;
    scratch.join_staged = staged;
    scratch.join_lens = glens;
    scratch.join_spans = spans;
    Ok(())
}

/// Implements [`lof_core::KnnProvider`] for an index type exposing the
/// internal two-phase search API:
///
/// * `fn search_k_distance(&self, q, k, exclude, scratch) -> f64` — exact
///   `k`-distance among candidates (excluding `exclude`), using the scratch
///   buffers for all transient search state;
/// * `fn search_within_into(&self, q, radius, exclude, scratch, out)` —
///   appends all candidates within `radius` (inclusive) to `out`, in any
///   order (the macro sorts the appended tail canonically);
/// * `fn size(&self) -> usize`.
///
/// Tie-inclusion (definition 4) falls out of running the range phase at the
/// exact `k`-distance. Because both phases draw every buffer from the
/// caller's [`lof_core::KnnScratch`], the generated `k_nearest_into` is
/// allocation-free once the scratch is warm; `k_nearest`/`within` borrow
/// the calling thread's shared scratch.
///
/// The `($ty, self_join)` form additionally overrides the trait's default
/// `batch_k_nearest` with a call to the index's inherent
/// `batch_self_join`, the leaf-grouped batch join driven by
/// [`leaf_grouped_batch`].
macro_rules! impl_knn_provider {
    ($ty:ident) => {
        crate::common::impl_knn_provider!(@impl $ty,);
    };
    ($ty:ident, self_join) => {
        crate::common::impl_knn_provider!(
            @impl $ty,
            /// Leaf-grouped batch self-join: queries sharing a leaf are
            /// answered by a single traversal with shared node pruning and
            /// blocked candidate evaluation. Bit-identical to the default
            /// per-id loop (property-tested in `tests/batch_consistency.rs`).
            fn batch_k_nearest(
                &self,
                ids: std::ops::Range<usize>,
                k: usize,
                scratch: &mut lof_core::KnnScratch,
                out: &mut Vec<lof_core::Neighbor>,
                lens: &mut Vec<usize>,
            ) -> lof_core::Result<()> {
                self.batch_self_join(ids, k, scratch, out, lens)
            }
        );
    };
    (@impl $ty:ident, $($batch:item)?) => {
        impl<M: lof_core::Metric> lof_core::KnnProvider for $ty<'_, M> {
            $($batch)?

            fn len(&self) -> usize {
                self.size()
            }

            fn k_nearest(&self, id: usize, k: usize) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.k_nearest_into(id, k, scratch, &mut out)?;
                    Ok(out)
                })
            }

            fn k_nearest_into(
                &self,
                id: usize,
                k: usize,
                scratch: &mut lof_core::KnnScratch,
                out: &mut Vec<lof_core::Neighbor>,
            ) -> lof_core::Result<usize> {
                crate::common::validate_knn(self.size(), id, k)?;
                let q = self.data.point(id);
                let k_distance = self.search_k_distance(q, k, Some(id), scratch);
                let start = out.len();
                self.search_within_into(q, k_distance, Some(id), scratch, out);
                lof_core::neighbors::sort_neighbors(&mut out[start..]);
                Ok(out.len() - start)
            }

            fn within(&self, id: usize, radius: f64) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                crate::common::validate_within(self.size(), id)?;
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.search_within_into(
                        self.data.point(id),
                        radius,
                        Some(id),
                        scratch,
                        &mut out,
                    );
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }
        }

        impl<M: lof_core::Metric> $ty<'_, M> {
            /// Tie-inclusive k-nearest neighbors of an arbitrary query point
            /// (which need not be part of the dataset; no object is
            /// excluded).
            ///
            /// # Errors
            ///
            /// Returns [`lof_core::LofError::InvalidMinPts`] when `k == 0`
            /// or `k > len()`, and [`lof_core::LofError::DimensionMismatch`]
            /// for queries of the wrong dimensionality.
            pub fn k_nearest_point(
                &self,
                q: &[f64],
                k: usize,
            ) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                if q.len() != self.data.dims() {
                    return Err(lof_core::LofError::DimensionMismatch {
                        expected: self.data.dims(),
                        found: q.len(),
                    });
                }
                if k == 0 || k > self.size() {
                    return Err(lof_core::LofError::InvalidMinPts {
                        min_pts: k,
                        dataset_size: self.size(),
                    });
                }
                lof_core::with_thread_scratch(|scratch| {
                    let k_distance = self.search_k_distance(q, k, None, scratch);
                    let mut out = Vec::new();
                    self.search_within_into(q, k_distance, None, scratch, &mut out);
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }

            /// All objects within `radius` (inclusive) of an arbitrary query
            /// point, sorted canonically.
            ///
            /// # Errors
            ///
            /// Returns [`lof_core::LofError::DimensionMismatch`] for queries
            /// of the wrong dimensionality.
            pub fn within_point(
                &self,
                q: &[f64],
                radius: f64,
            ) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                if q.len() != self.data.dims() {
                    return Err(lof_core::LofError::DimensionMismatch {
                        expected: self.data.dims(),
                        found: q.len(),
                    });
                }
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.search_within_into(q, radius, None, scratch, &mut out);
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }
        }
    };
}

pub(crate) use impl_knn_provider;
