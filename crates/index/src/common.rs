//! Shared plumbing for the index implementations.

use lof_core::{LofError, Result};

/// Validates a `k_nearest(id, k)` query against dataset size `n`.
pub(crate) fn validate_knn(n: usize, id: usize, k: usize) -> Result<()> {
    if id >= n {
        return Err(LofError::UnknownObject { id, dataset_size: n });
    }
    if k == 0 || k >= n {
        return Err(LofError::InvalidMinPts { min_pts: k, dataset_size: n });
    }
    Ok(())
}

/// Validates a `within(id, radius)` query against dataset size `n`.
pub(crate) fn validate_within(n: usize, id: usize) -> Result<()> {
    if id >= n {
        return Err(LofError::UnknownObject { id, dataset_size: n });
    }
    Ok(())
}

/// Widens a squared-space radius for node pruning in a batch range phase.
/// Candidate inclusion runs on exact reference distances, so the only
/// requirement here is that no node containing a true neighbor is pruned;
/// a relative `1e-9` (far above any `sqrt` rounding) plus `MIN_POSITIVE`
/// (covering zero radii) over-covers that, at the cost of a few extra
/// node visits.
#[inline]
pub(crate) fn widen_sq(r_sq: f64) -> f64 {
    r_sq * (1.0 + 1e-9) + f64::MIN_POSITIVE
}

/// Drives a leaf-grouped batch self-join for a tree index.
///
/// Queries are sorted by `(containing leaf, id)` so ids sharing a leaf
/// become one contiguous group, and each group is handed to
/// `process_group` exactly once — that is where the tree traverses once
/// per group instead of once per query. For every `(leaf, id)` pair of
/// its group, **in the given order**, `process_group` must append the
/// id's canonically sorted neighborhood to the staging buffer (3rd
/// argument) and push the neighborhood's length (4th argument). The
/// driver re-emits the staged neighborhoods in ascending id order, which
/// is the `batch_k_nearest` contract.
///
/// All staging lives in the caller's [`lof_core::KnnScratch`], so a
/// warmed-up scratch makes the whole batch allocation-free.
#[allow(clippy::too_many_arguments)]
pub(crate) fn leaf_grouped_batch<F>(
    n: usize,
    ids: std::ops::Range<usize>,
    k: usize,
    leaf_of: &[usize],
    scratch: &mut lof_core::KnnScratch,
    out: &mut Vec<lof_core::Neighbor>,
    lens: &mut Vec<usize>,
    mut process_group: F,
) -> Result<()>
where
    F: FnMut(
        &[(usize, usize)],
        &mut lof_core::KnnScratch,
        &mut Vec<lof_core::Neighbor>,
        &mut Vec<usize>,
    ),
{
    if ids.start >= ids.end {
        return Ok(());
    }
    validate_knn(n, ids.start, k)?;
    if ids.end > n {
        return Err(LofError::UnknownObject { id: n, dataset_size: n });
    }
    let base = ids.start;
    let count = ids.len();
    // Take the staging buffers out of the scratch so `process_group` can
    // borrow the rest of it (heaps, tile buffers) without conflicts.
    let mut order = std::mem::take(&mut scratch.join_order);
    let mut staged = std::mem::take(&mut scratch.join_staged);
    let mut glens = std::mem::take(&mut scratch.join_lens);
    let mut spans = std::mem::take(&mut scratch.join_spans);
    order.clear();
    staged.clear();
    glens.clear();
    order.extend(ids.clone().map(|id| (leaf_of[id], id)));
    order.sort_unstable();

    let mut g = 0;
    while g < order.len() {
        let leaf = order[g].0;
        let mut h = g + 1;
        while h < order.len() && order[h].0 == leaf {
            h += 1;
        }
        process_group(&order[g..h], scratch, &mut staged, &mut glens);
        g = h;
    }
    debug_assert_eq!(glens.len(), count, "one neighborhood length per query");

    // Map the traversal-order spans back to ascending id order.
    spans.clear();
    spans.resize(count, (0, 0));
    let mut cursor = 0;
    for (i, &(_, qid)) in order.iter().enumerate() {
        spans[qid - base] = (cursor, glens[i]);
        cursor += glens[i];
    }
    debug_assert_eq!(cursor, staged.len(), "lengths must cover the staging buffer");
    out.reserve(staged.len());
    for id in ids {
        let (start, len) = spans[id - base];
        out.extend_from_slice(&staged[start..start + len]);
        lens.push(len);
    }

    scratch.join_order = order;
    scratch.join_staged = staged;
    scratch.join_lens = glens;
    scratch.join_spans = spans;
    Ok(())
}

/// How many times larger than the typical (90th-percentile) leaf hull a
/// leaf may be before [`leaf_partitions`] splits it into singletons.
const SPRAWL_FACTOR: f64 = 4.0;

/// Builds top-n [`lof_core::Partition`]s from a tree's leaf id ranges:
/// members sorted ascending (the engine's cover contract), tight
/// bounding boxes and exact intra-partition rank profiles recomputed
/// from coordinates. Leaves are `LEAF_SIZE`-bounded, so the per-leaf
/// all-pairs profile pass stays cheap.
///
/// Most candidate partitions one isolation query may verify exactly;
/// past the cap the rectangle distance of the next candidate floors the
/// radius instead (sound, just looser).
const ISOLATION_CANDIDATE_CAP: usize = 64;

/// Largest member-count product for which one candidate pair is verified
/// point-by-point; bigger pairs (oversized duplicate leaves) fall back to
/// the rectangle distance.
const ISOLATION_PAIR_CAP: usize = 4096;

/// **Sprawl hygiene:** a leaf that captures an isolated outlier together
/// with its nearest cluster spans a hull orders of magnitude larger than
/// its siblings'. Such a box passes near everything along its extent, so
/// every partition it is "reachable" from inherits its huge reachability
/// envelope — one sprawling leaf can poison the bounds of the whole
/// cover and disable pruning outright. The engine is exact for *any*
/// cover, so we split every leaf whose hull diameter exceeds
/// [`SPRAWL_FACTOR`]× the 90th-percentile diameter into singleton
/// partitions: point-sized boxes bound nothing about their own LOF
/// (they get refined), but they cannot pollute anyone else's envelope.
///
/// **Isolation radii:** tree splits land on coordinate values shared by
/// points on both sides, so sibling leaf boxes routinely abut (rectangle
/// distance 0) even when the closest cross-leaf point pair sits a full
/// neighbor-spacing apart. The envelope pass can only see geometry, so
/// after the cover is final each partition gets the exact minimum
/// member-to-non-member distance ([`lof_core::Partition::isolation`]),
/// found by a best-first traversal over the partition boxes that
/// verifies near candidates point-by-point and stops as soon as the next
/// rectangle distance can no longer improve on the best verified pair.
pub(crate) fn leaf_partitions<M: lof_core::Metric>(
    data: &lof_core::Dataset,
    metric: &M,
    ids: &[usize],
    leaves: impl Iterator<Item = (usize, usize)>,
) -> Vec<lof_core::Partition> {
    let make = |members: Vec<usize>| {
        lof_core::Partition::from_member_points(metric, members, |id| data.point(id))
    };
    let parts: Vec<lof_core::Partition> = leaves
        .map(|(start, end)| {
            let mut members = ids[start..end].to_vec();
            members.sort_unstable();
            make(members)
        })
        .collect();

    let diameter =
        |p: &lof_core::Partition| metric.max_dist_between_rects(&p.lo, &p.hi, &p.lo, &p.hi);
    let mut finite: Vec<f64> = parts.iter().map(diameter).filter(|d| d.is_finite()).collect();
    finite.sort_unstable_by(f64::total_cmp);
    let p90 = finite.get(finite.len().saturating_sub(1) * 9 / 10).copied().unwrap_or(0.0);
    let sprawl = SPRAWL_FACTOR * p90;
    let mut parts = if sprawl > 0.0 {
        parts
            .into_iter()
            .flat_map(|p| {
                let d = diameter(&p);
                if p.members.len() > 1 && d.is_finite() && d > sprawl {
                    p.members.iter().map(|&id| make(vec![id])).collect()
                } else {
                    vec![p]
                }
            })
            .collect()
    } else {
        // Blind metric (all diameters infinite) or degenerate point-pile
        // leaves: no meaningful scale to judge sprawl against.
        parts
    };
    let radii = isolation_radii(data, metric, &parts);
    for (p, r) in parts.iter_mut().zip(radii) {
        p.isolation = r;
    }
    parts
}

/// A node of the throwaway box tree behind [`isolation_radii`]; children
/// precede their parent in the arena.
struct IsoNode {
    lo: Vec<f64>,
    hi: Vec<f64>,
    children: Option<(usize, usize)>,
    /// Partition index (leaves only; `usize::MAX` on internal nodes).
    part: usize,
}

fn iso_tree_rec(
    parts: &[lof_core::Partition],
    centers: &[Vec<f64>],
    idx: &mut [usize],
    nodes: &mut Vec<IsoNode>,
) -> usize {
    if idx.len() == 1 {
        let p = idx[0];
        nodes.push(IsoNode {
            lo: parts[p].lo.clone(),
            hi: parts[p].hi.clone(),
            children: None,
            part: p,
        });
        return nodes.len() - 1;
    }
    let dims = centers[0].len();
    let mut best_dim = 0;
    let mut best_spread = f64::NEG_INFINITY;
    #[allow(clippy::needless_range_loop)] // indexes each center's d-th coordinate
    for d in 0..dims {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &i in idx.iter() {
            min = min.min(centers[i][d]);
            max = max.max(centers[i][d]);
        }
        if max - min > best_spread {
            best_spread = max - min;
            best_dim = d;
        }
    }
    let mid = idx.len() / 2;
    idx.select_nth_unstable_by(mid, |&a, &b| {
        centers[a][best_dim].total_cmp(&centers[b][best_dim]).then(a.cmp(&b))
    });
    let (left_ids, right_ids) = idx.split_at_mut(mid);
    let left = iso_tree_rec(parts, centers, left_ids, nodes);
    let right = iso_tree_rec(parts, centers, right_ids, nodes);
    let mut lo = nodes[left].lo.clone();
    let mut hi = nodes[left].hi.clone();
    for d in 0..lo.len() {
        lo[d] = lo[d].min(nodes[right].lo[d]);
        hi[d] = hi[d].max(nodes[right].hi[d]);
    }
    nodes.push(IsoNode { lo, hi, children: Some((left, right)), part: usize::MAX });
    nodes.len() - 1
}

/// Exact (capped) isolation radius per partition: the minimum distance
/// from any member to any point outside the partition, which is also the
/// minimum over other partitions of the bipartite closest-pair distance
/// (the cover property). Each query walks the box tree best-first by
/// rectangle distance, verifies candidate partitions point-by-point, and
/// stops once the next rectangle distance cannot beat the best verified
/// pair. A single-partition cover has no non-members and gets `+inf`.
fn isolation_radii<M: lof_core::Metric>(
    data: &lof_core::Dataset,
    metric: &M,
    parts: &[lof_core::Partition],
) -> Vec<f64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    if parts.len() < 2 {
        return vec![f64::INFINITY; parts.len()];
    }
    let centers: Vec<Vec<f64>> = parts
        .iter()
        .map(|p| p.lo.iter().zip(&p.hi).map(|(l, h)| 0.5 * (l + h)).collect())
        .collect();
    let mut idx: Vec<usize> = (0..parts.len()).collect();
    let mut nodes = Vec::with_capacity(2 * parts.len());
    let root = iso_tree_rec(parts, &centers, &mut idx, &mut nodes);

    /// Totally ordered non-NaN f64 heap key.
    #[derive(PartialEq)]
    struct Key(f64);
    impl Eq for Key {}
    impl PartialOrd for Key {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Key {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }

    let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
    parts
        .iter()
        .enumerate()
        .map(|(i, src)| {
            heap.clear();
            heap.push(Reverse((Key(0.0), root)));
            let mut best = f64::INFINITY;
            let mut verified = 0usize;
            while let Some(Reverse((Key(key), ni))) = heap.pop() {
                if key >= best {
                    break;
                }
                let node = &nodes[ni];
                match node.children {
                    Some((l, r)) => {
                        for child in [l, r] {
                            let c = &nodes[child];
                            let d = metric.min_dist_between_rects(&src.lo, &src.hi, &c.lo, &c.hi);
                            if d < best {
                                heap.push(Reverse((Key(d), child)));
                            }
                        }
                    }
                    None if node.part == i => {}
                    None => {
                        let other = &parts[node.part];
                        let pairs = src.members.len() * other.members.len();
                        if verified >= ISOLATION_CANDIDATE_CAP || pairs > ISOLATION_PAIR_CAP {
                            // Fall back to the rectangle distance: looser
                            // but sound, and it terminates the traversal.
                            best = best.min(key);
                            continue;
                        }
                        verified += 1;
                        for &a in &src.members {
                            for &b in &other.members {
                                best = best.min(metric.distance(data.point(a), data.point(b)));
                            }
                        }
                    }
                }
            }
            best
        })
        .collect()
}

/// Implements [`lof_core::KnnProvider`] for an index type exposing the
/// internal two-phase search API:
///
/// * `fn search_k_distance(&self, q, k, exclude, scratch) -> f64` — exact
///   `k`-distance among candidates (excluding `exclude`), using the scratch
///   buffers for all transient search state;
/// * `fn search_within_into(&self, q, radius, exclude, scratch, out)` —
///   appends all candidates within `radius` (inclusive) to `out`, in any
///   order (the macro sorts the appended tail canonically);
/// * `fn size(&self) -> usize`.
///
/// Tie-inclusion (definition 4) falls out of running the range phase at the
/// exact `k`-distance. Because both phases draw every buffer from the
/// caller's [`lof_core::KnnScratch`], the generated `k_nearest_into` is
/// allocation-free once the scratch is warm; `k_nearest`/`within` borrow
/// the calling thread's shared scratch.
///
/// The `($ty, self_join)` form additionally overrides the trait's default
/// `batch_k_nearest` with a call to the index's inherent
/// `batch_self_join`, the leaf-grouped batch join driven by
/// [`leaf_grouped_batch`].
macro_rules! impl_knn_provider {
    ($ty:ident) => {
        crate::common::impl_knn_provider!(@impl $ty,);
    };
    ($ty:ident, self_join) => {
        crate::common::impl_knn_provider!(
            @impl $ty,
            /// Leaf-grouped batch self-join: queries sharing a leaf are
            /// answered by a single traversal with shared node pruning and
            /// blocked candidate evaluation. Bit-identical to the default
            /// per-id loop (property-tested in `tests/batch_consistency.rs`).
            fn batch_k_nearest(
                &self,
                ids: std::ops::Range<usize>,
                k: usize,
                scratch: &mut lof_core::KnnScratch,
                out: &mut Vec<lof_core::Neighbor>,
                lens: &mut Vec<usize>,
            ) -> lof_core::Result<()> {
                self.batch_self_join(ids, k, scratch, out, lens)
            }
        );
    };
    (@impl $ty:ident, $($batch:item)?) => {
        impl<M: lof_core::Metric> lof_core::KnnProvider for $ty<'_, M> {
            $($batch)?

            fn len(&self) -> usize {
                self.size()
            }

            fn k_nearest(&self, id: usize, k: usize) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.k_nearest_into(id, k, scratch, &mut out)?;
                    Ok(out)
                })
            }

            fn k_nearest_into(
                &self,
                id: usize,
                k: usize,
                scratch: &mut lof_core::KnnScratch,
                out: &mut Vec<lof_core::Neighbor>,
            ) -> lof_core::Result<usize> {
                crate::common::validate_knn(self.size(), id, k)?;
                let q = self.data.point(id);
                let k_distance = self.search_k_distance(q, k, Some(id), scratch);
                let start = out.len();
                self.search_within_into(q, k_distance, Some(id), scratch, out);
                lof_core::neighbors::sort_neighbors(&mut out[start..]);
                Ok(out.len() - start)
            }

            fn within(&self, id: usize, radius: f64) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                crate::common::validate_within(self.size(), id)?;
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.search_within_into(
                        self.data.point(id),
                        radius,
                        Some(id),
                        scratch,
                        &mut out,
                    );
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }
        }

        impl<M: lof_core::Metric> $ty<'_, M> {
            /// Tie-inclusive k-nearest neighbors of an arbitrary query point
            /// (which need not be part of the dataset; no object is
            /// excluded).
            ///
            /// # Errors
            ///
            /// Returns [`lof_core::LofError::InvalidMinPts`] when `k == 0`
            /// or `k > len()`, and [`lof_core::LofError::DimensionMismatch`]
            /// for queries of the wrong dimensionality.
            pub fn k_nearest_point(
                &self,
                q: &[f64],
                k: usize,
            ) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                if q.len() != self.data.dims() {
                    return Err(lof_core::LofError::DimensionMismatch {
                        expected: self.data.dims(),
                        found: q.len(),
                    });
                }
                if k == 0 || k > self.size() {
                    return Err(lof_core::LofError::InvalidMinPts {
                        min_pts: k,
                        dataset_size: self.size(),
                    });
                }
                lof_core::with_thread_scratch(|scratch| {
                    let k_distance = self.search_k_distance(q, k, None, scratch);
                    let mut out = Vec::new();
                    self.search_within_into(q, k_distance, None, scratch, &mut out);
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }

            /// All objects within `radius` (inclusive) of an arbitrary query
            /// point, sorted canonically.
            ///
            /// # Errors
            ///
            /// Returns [`lof_core::LofError::DimensionMismatch`] for queries
            /// of the wrong dimensionality.
            pub fn within_point(
                &self,
                q: &[f64],
                radius: f64,
            ) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                if q.len() != self.data.dims() {
                    return Err(lof_core::LofError::DimensionMismatch {
                        expected: self.data.dims(),
                        found: q.len(),
                    });
                }
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.search_within_into(q, radius, None, scratch, &mut out);
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }
        }
    };
}

pub(crate) use impl_knn_provider;
