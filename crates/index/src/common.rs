//! Shared plumbing for the index implementations.

use lof_core::{LofError, Result};

/// Validates a `k_nearest(id, k)` query against dataset size `n`.
pub(crate) fn validate_knn(n: usize, id: usize, k: usize) -> Result<()> {
    if id >= n {
        return Err(LofError::UnknownObject { id, dataset_size: n });
    }
    if k == 0 || k >= n {
        return Err(LofError::InvalidMinPts { min_pts: k, dataset_size: n });
    }
    Ok(())
}

/// Validates a `within(id, radius)` query against dataset size `n`.
pub(crate) fn validate_within(n: usize, id: usize) -> Result<()> {
    if id >= n {
        return Err(LofError::UnknownObject { id, dataset_size: n });
    }
    Ok(())
}

/// Implements [`lof_core::KnnProvider`] for an index type exposing the
/// internal two-phase search API:
///
/// * `fn search_k_distance(&self, q, k, exclude, scratch) -> f64` — exact
///   `k`-distance among candidates (excluding `exclude`), using the scratch
///   buffers for all transient search state;
/// * `fn search_within_into(&self, q, radius, exclude, scratch, out)` —
///   appends all candidates within `radius` (inclusive) to `out`, in any
///   order (the macro sorts the appended tail canonically);
/// * `fn size(&self) -> usize`.
///
/// Tie-inclusion (definition 4) falls out of running the range phase at the
/// exact `k`-distance. Because both phases draw every buffer from the
/// caller's [`lof_core::KnnScratch`], the generated `k_nearest_into` is
/// allocation-free once the scratch is warm; `k_nearest`/`within` borrow
/// the calling thread's shared scratch.
macro_rules! impl_knn_provider {
    ($ty:ident) => {
        impl<M: lof_core::Metric> lof_core::KnnProvider for $ty<'_, M> {
            fn len(&self) -> usize {
                self.size()
            }

            fn k_nearest(&self, id: usize, k: usize) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.k_nearest_into(id, k, scratch, &mut out)?;
                    Ok(out)
                })
            }

            fn k_nearest_into(
                &self,
                id: usize,
                k: usize,
                scratch: &mut lof_core::KnnScratch,
                out: &mut Vec<lof_core::Neighbor>,
            ) -> lof_core::Result<usize> {
                crate::common::validate_knn(self.size(), id, k)?;
                let q = self.data.point(id);
                let k_distance = self.search_k_distance(q, k, Some(id), scratch);
                let start = out.len();
                self.search_within_into(q, k_distance, Some(id), scratch, out);
                lof_core::neighbors::sort_neighbors(&mut out[start..]);
                Ok(out.len() - start)
            }

            fn within(&self, id: usize, radius: f64) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                crate::common::validate_within(self.size(), id)?;
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.search_within_into(
                        self.data.point(id),
                        radius,
                        Some(id),
                        scratch,
                        &mut out,
                    );
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }
        }

        impl<M: lof_core::Metric> $ty<'_, M> {
            /// Tie-inclusive k-nearest neighbors of an arbitrary query point
            /// (which need not be part of the dataset; no object is
            /// excluded).
            ///
            /// # Errors
            ///
            /// Returns [`lof_core::LofError::InvalidMinPts`] when `k == 0`
            /// or `k > len()`, and [`lof_core::LofError::DimensionMismatch`]
            /// for queries of the wrong dimensionality.
            pub fn k_nearest_point(
                &self,
                q: &[f64],
                k: usize,
            ) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                if q.len() != self.data.dims() {
                    return Err(lof_core::LofError::DimensionMismatch {
                        expected: self.data.dims(),
                        found: q.len(),
                    });
                }
                if k == 0 || k > self.size() {
                    return Err(lof_core::LofError::InvalidMinPts {
                        min_pts: k,
                        dataset_size: self.size(),
                    });
                }
                lof_core::with_thread_scratch(|scratch| {
                    let k_distance = self.search_k_distance(q, k, None, scratch);
                    let mut out = Vec::new();
                    self.search_within_into(q, k_distance, None, scratch, &mut out);
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }

            /// All objects within `radius` (inclusive) of an arbitrary query
            /// point, sorted canonically.
            ///
            /// # Errors
            ///
            /// Returns [`lof_core::LofError::DimensionMismatch`] for queries
            /// of the wrong dimensionality.
            pub fn within_point(
                &self,
                q: &[f64],
                radius: f64,
            ) -> lof_core::Result<Vec<lof_core::Neighbor>> {
                if q.len() != self.data.dims() {
                    return Err(lof_core::LofError::DimensionMismatch {
                        expected: self.data.dims(),
                        found: q.len(),
                    });
                }
                lof_core::with_thread_scratch(|scratch| {
                    let mut out = Vec::new();
                    self.search_within_into(q, radius, None, scratch, &mut out);
                    lof_core::neighbors::sort_neighbors(&mut out);
                    Ok(out)
                })
            }
        }
    };
}

pub(crate) use impl_knn_provider;
