//! A bounded max-heap tracking the `k` nearest candidates seen so far.
//!
//! Every index in this crate answers a tie-inclusive k-NN query the same
//! way: an exact best-first / pruned search using this heap determines the
//! `k`-distance, then a range query at that radius collects the full
//! tie-inclusive neighborhood. The heap's [`KBest::bound`] is the pruning
//! radius during the first phase.

use lof_core::Neighbor;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    dist: f64,
    id: usize,
}

impl Eq for Entry {}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by (distance, id): the canonical-order-largest candidate
        // sits on top and is evicted first.
        self.dist.total_cmp(&other.dist).then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Tracks the `k` candidates smallest in `(distance, id)` order.
#[derive(Debug)]
pub struct KBest {
    k: usize,
    heap: BinaryHeap<Entry>,
}

impl KBest {
    /// A tracker for the `k` nearest candidates.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "KBest requires k >= 1");
        KBest { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    /// Offers a candidate; keeps it only if it beats the current worst.
    pub fn offer(&mut self, id: usize, dist: f64) {
        if self.heap.len() < self.k {
            self.heap.push(Entry { dist, id });
        } else if (Entry { dist, id }) < *self.heap.peek().expect("heap holds k entries") {
            self.heap.pop();
            self.heap.push(Entry { dist, id });
        }
    }

    /// Current pruning bound: the k-th best distance seen, or `+∞` while
    /// fewer than `k` candidates have been offered. Subtrees whose minimum
    /// possible distance **exceeds** this bound cannot contribute.
    pub fn bound(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::INFINITY
        } else {
            self.heap.peek().expect("heap holds k entries").dist
        }
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The exact `k`-distance once the search is complete: the distance of
    /// the worst kept candidate (`None` if nothing was offered).
    pub fn k_distance(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.dist)
    }

    /// Drains into a sorted neighbor list (ascending canonical order).
    pub fn into_sorted(self) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> =
            self.heap.into_iter().map(|e| Neighbor::new(e.id, e.dist)).collect();
        lof_core::neighbors::sort_neighbors(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_smallest() {
        let mut kb = KBest::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5), (4, 4.0)] {
            kb.offer(id, d);
        }
        let v = kb.into_sorted();
        assert_eq!(v.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut kb = KBest::new(2);
        assert_eq!(kb.bound(), f64::INFINITY);
        kb.offer(0, 1.0);
        assert_eq!(kb.bound(), f64::INFINITY);
        kb.offer(1, 2.0);
        assert_eq!(kb.bound(), 2.0);
        kb.offer(2, 0.5);
        assert_eq!(kb.bound(), 1.0);
        assert_eq!(kb.k_distance(), Some(1.0));
    }

    #[test]
    fn equal_distances_prefer_smaller_ids() {
        let mut kb = KBest::new(2);
        kb.offer(5, 1.0);
        kb.offer(3, 1.0);
        kb.offer(1, 1.0);
        let v = kb.into_sorted();
        assert_eq!(v.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = KBest::new(0);
    }
}
