//! A bounded max-heap tracking the `k` nearest candidates seen so far —
//! the public, owning convenience wrapper around
//! [`lof_core::BoundedMaxHeap`].
//!
//! None of this crate's hot paths route through this type anymore. The
//! single-query searches borrow their heap out of a
//! [`lof_core::KnnScratch`] (zero-allocation steady state), and the
//! leaf-blocked batch self-joins go further: they emit tie-inclusive
//! neighborhoods straight from one scratch heap per grouped query and run
//! a shell recovery pass only when a heap provably dropped a candidate at
//! its k-distance. `KBest` remains for external callers that want the
//! canonical `(distance, id)` selection semantics — identical tie
//! handling, same pruning-bound contract — without managing a scratch.

use lof_core::{BoundedMaxHeap, Neighbor};

/// Tracks the `k` candidates smallest in `(distance, id)` order.
#[derive(Debug)]
pub struct KBest {
    heap: BoundedMaxHeap,
}

impl KBest {
    /// A tracker for the `k` nearest candidates.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        let mut heap = BoundedMaxHeap::new();
        heap.reset(k);
        KBest { heap }
    }

    /// Offers a candidate; keeps it only if it beats the current worst.
    pub fn offer(&mut self, id: usize, dist: f64) {
        self.heap.offer(id, dist);
    }

    /// Current pruning bound: the k-th best distance seen, or `+∞` while
    /// fewer than `k` candidates have been offered. Subtrees whose minimum
    /// possible distance **exceeds** this bound cannot contribute.
    pub fn bound(&self) -> f64 {
        self.heap.bound()
    }

    /// Number of candidates currently held.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no candidate has been offered yet.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The exact `k`-distance once the search is complete: the distance of
    /// the worst kept candidate (`None` if nothing was offered).
    pub fn k_distance(&self) -> Option<f64> {
        self.heap.kth_dist()
    }

    /// Drains into a sorted neighbor list (ascending canonical order).
    pub fn into_sorted(mut self) -> Vec<Neighbor> {
        let mut v = Vec::with_capacity(self.heap.len());
        self.heap.append_to(&mut v);
        lof_core::neighbors::sort_neighbors(&mut v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_k_smallest() {
        let mut kb = KBest::new(3);
        for (id, d) in [(0, 5.0), (1, 1.0), (2, 3.0), (3, 0.5), (4, 4.0)] {
            kb.offer(id, d);
        }
        let v = kb.into_sorted();
        assert_eq!(v.iter().map(|n| n.id).collect::<Vec<_>>(), vec![3, 1, 2]);
    }

    #[test]
    fn bound_is_infinite_until_full() {
        let mut kb = KBest::new(2);
        assert_eq!(kb.bound(), f64::INFINITY);
        kb.offer(0, 1.0);
        assert_eq!(kb.bound(), f64::INFINITY);
        kb.offer(1, 2.0);
        assert_eq!(kb.bound(), 2.0);
        kb.offer(2, 0.5);
        assert_eq!(kb.bound(), 1.0);
        assert_eq!(kb.k_distance(), Some(1.0));
    }

    #[test]
    fn equal_distances_prefer_smaller_ids() {
        let mut kb = KBest::new(2);
        kb.offer(5, 1.0);
        kb.offer(3, 1.0);
        kb.offer(1, 1.0);
        assert_eq!(kb.len(), 2);
        assert!(!kb.is_empty());
        let v = kb.into_sorted();
        assert_eq!(v.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = KBest::new(0);
    }
}
