//! kd-tree: the classic main-memory spatial index for low- to
//! medium-dimensional k-NN queries (the `O(log n)`-per-query regime of the
//! paper's section 7.4).
//!
//! Median-split construction over an id permutation (no point copies),
//! bounding boxes per node, and depth-first search with
//! `Metric::min_dist_to_rect` pruning.
//!
//! For metrics with a squared-Euclidean form the k-distance descent runs
//! entirely in squared space (`min_dist_to_rect_sq` pruning, no square
//! roots in the inner loop) and takes a single square root at the end —
//! exact, because `sqrt` is monotone, so the k-th smallest squared
//! distance maps to the k-th smallest distance.

use crate::common::impl_knn_provider;
use lof_core::distance::BlockedForm;
use lof_core::{BoundedMaxHeap, Dataset, KnnScratch, Metric, Neighbor};

const LEAF_SIZE: usize = 16;

#[derive(Debug)]
struct Node {
    /// Bounding box of all points below this node.
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Range into `KdTree::ids`.
    start: usize,
    end: usize,
    /// Children indices into `KdTree::nodes`; `None` for leaves.
    children: Option<(usize, usize)>,
}

/// A kd-tree over a borrowed dataset.
///
/// ```
/// use lof_core::{Dataset, Euclidean, KnnProvider};
/// use lof_index::KdTree;
///
/// let rows: Vec<[f64; 2]> = (0..100).map(|i| [(i % 10) as f64, (i / 10) as f64]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let tree = KdTree::new(&data, Euclidean);
/// // Query by id (excludes the object itself)...
/// assert_eq!(tree.k_nearest(55, 4).unwrap().len(), 4);
/// // ...or by arbitrary point (no exclusion).
/// assert_eq!(tree.k_nearest_point(&[4.5, 4.5], 4).unwrap().len(), 4);
/// ```
#[derive(Debug)]
pub struct KdTree<'a, M: Metric> {
    data: &'a Dataset,
    metric: M,
    ids: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
}

impl<'a, M: Metric> KdTree<'a, M> {
    /// Builds the tree in `O(n log n)`.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        let mut ids: Vec<usize> = (0..data.len()).collect();
        let mut nodes = Vec::new();
        let root = if data.is_empty() {
            usize::MAX
        } else {
            let n = data.len();
            build(data, &mut ids, 0, n, &mut nodes)
        };
        KdTree { data, metric, ids, nodes, root }
    }

    /// Number of indexed objects.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Number of tree nodes (for diagnostics and tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn search_k_distance(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
    ) -> f64 {
        let best = &mut scratch.heap;
        best.reset(k);
        match self.metric.blocked_form() {
            // Squared-space descent: one sqrt total instead of one per
            // visited point. Exact — sqrt is monotone, so order statistics
            // commute with it, and `Euclidean::distance` is literally
            // `squared_euclidean(..).sqrt()`.
            BlockedForm::Euclidean => {
                self.knn_rec_sq(self.root, q, exclude, best);
                best.kth_dist().expect("validated: at least k candidates exist").sqrt()
            }
            BlockedForm::SquaredEuclidean => {
                self.knn_rec_sq(self.root, q, exclude, best);
                best.kth_dist().expect("validated: at least k candidates exist")
            }
            BlockedForm::Generic => {
                self.knn_rec(self.root, q, exclude, best);
                best.kth_dist().expect("validated: at least k candidates exist")
            }
        }
    }

    fn knn_rec(
        &self,
        node_id: usize,
        q: &[f64],
        exclude: Option<usize>,
        best: &mut BoundedMaxHeap,
    ) {
        let node = &self.nodes[node_id];
        if self.metric.min_dist_to_rect(q, &node.lo, &node.hi) > best.bound() {
            return;
        }
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) != exclude {
                        best.offer(id, self.metric.distance(q, self.data.point(id)));
                    }
                }
            }
            Some((left, right)) => {
                // Visit the nearer child first so the bound tightens early.
                let dl =
                    self.metric.min_dist_to_rect(q, &self.nodes[left].lo, &self.nodes[left].hi);
                let dr =
                    self.metric.min_dist_to_rect(q, &self.nodes[right].lo, &self.nodes[right].hi);
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.knn_rec(first, q, exclude, best);
                self.knn_rec(second, q, exclude, best);
            }
        }
    }

    /// [`KdTree::knn_rec`] with distances and rectangle bounds kept in
    /// squared-Euclidean space; the heap holds squared distances.
    fn knn_rec_sq(
        &self,
        node_id: usize,
        q: &[f64],
        exclude: Option<usize>,
        best: &mut BoundedMaxHeap,
    ) {
        let node = &self.nodes[node_id];
        if self.metric.min_dist_to_rect_sq(q, &node.lo, &node.hi) > best.bound() {
            return;
        }
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) != exclude {
                        best.offer(
                            id,
                            lof_core::distance::squared_euclidean(q, self.data.point(id)),
                        );
                    }
                }
            }
            Some((left, right)) => {
                let dl =
                    self.metric.min_dist_to_rect_sq(q, &self.nodes[left].lo, &self.nodes[left].hi);
                let dr = self.metric.min_dist_to_rect_sq(
                    q,
                    &self.nodes[right].lo,
                    &self.nodes[right].hi,
                );
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.knn_rec_sq(first, q, exclude, best);
                self.knn_rec_sq(second, q, exclude, best);
            }
        }
    }

    fn search_within_into(
        &self,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        _scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        if self.root != usize::MAX {
            self.range_rec(self.root, q, radius, exclude, out);
        }
    }

    fn range_rec(
        &self,
        node_id: usize,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        out: &mut Vec<Neighbor>,
    ) {
        let node = &self.nodes[node_id];
        if self.metric.min_dist_to_rect(q, &node.lo, &node.hi) > radius {
            return;
        }
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) == exclude {
                        continue;
                    }
                    let d = self.metric.distance(q, self.data.point(id));
                    if d <= radius {
                        out.push(Neighbor::new(id, d));
                    }
                }
            }
            Some((left, right)) => {
                self.range_rec(left, q, radius, exclude, out);
                self.range_rec(right, q, radius, exclude, out);
            }
        }
    }
}

/// Recursively builds the subtree over `ids[start..end]`, returning its node
/// index.
fn build(
    data: &Dataset,
    ids: &mut [usize],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let slice = &ids[start..end];
    let dims = data.dims();
    let mut lo = data.point(slice[0]).to_vec();
    let mut hi = lo.clone();
    for &id in &slice[1..] {
        let p = data.point(id);
        for d in 0..dims {
            if p[d] < lo[d] {
                lo[d] = p[d];
            }
            if p[d] > hi[d] {
                hi[d] = p[d];
            }
        }
    }

    let count = end - start;
    if count <= LEAF_SIZE {
        nodes.push(Node { lo, hi, start, end, children: None });
        return nodes.len() - 1;
    }

    // Split on the dimension of largest extent, at the median.
    let mut split_dim = 0;
    let mut best_extent = hi[0] - lo[0];
    for d in 1..dims {
        let extent = hi[d] - lo[d];
        if extent > best_extent {
            best_extent = extent;
            split_dim = d;
        }
    }
    if best_extent == 0.0 {
        // All points identical in every dimension: an (oversized) leaf is
        // the only sensible shape.
        nodes.push(Node { lo, hi, start, end, children: None });
        return nodes.len() - 1;
    }

    let mid = count / 2;
    ids[start..end].select_nth_unstable_by(mid, |&a, &b| {
        data.point(a)[split_dim].total_cmp(&data.point(b)[split_dim]).then(a.cmp(&b))
    });

    let left = build(data, ids, start, start + mid, nodes);
    let right = build(data, ids, start + mid, end, nodes);
    nodes.push(Node { lo, hi, start, end, children: Some((left, right)) });
    nodes.len() - 1
}

impl_knn_provider!(KdTree);

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Euclidean, KnnProvider, LinearScan, Manhattan};

    fn clustered_dataset() -> Dataset {
        // Deterministic pseudo-random points via a tiny LCG — two clusters.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for i in 0..200 {
            let offset = if i % 2 == 0 { 0.0 } else { 10.0 };
            rows.push([offset + next() * 2.0, offset + next() * 2.0, next()]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_linear_scan_on_clustered_data() {
        let ds = clustered_dataset();
        let tree = KdTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(13) {
            for k in [1, 3, 10] {
                assert_eq!(
                    tree.k_nearest(id, k).unwrap(),
                    scan.k_nearest(id, k).unwrap(),
                    "id={id} k={k}"
                );
            }
        }
    }

    #[test]
    fn within_matches_linear_scan() {
        let ds = clustered_dataset();
        let tree = KdTree::new(&ds, Manhattan);
        let scan = LinearScan::new(&ds, Manhattan);
        for id in (0..ds.len()).step_by(29) {
            for radius in [0.1, 1.0, 5.0, 100.0] {
                assert_eq!(tree.within(id, radius).unwrap(), scan.within(id, radius).unwrap());
            }
        }
    }

    #[test]
    fn query_by_point_includes_exact_matches() {
        let ds = Dataset::from_rows(&[[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [5.0, 5.0]]).unwrap();
        let tree = KdTree::new(&ds, Euclidean);
        let nn = tree.k_nearest_point(&[0.0, 0.0], 1).unwrap();
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[0].dist, 0.0);
        let all = tree.within_point(&[0.0, 0.0], 1.0).unwrap();
        assert_eq!(all.len(), 3);
        assert!(tree.k_nearest_point(&[0.0], 1).is_err());
        assert!(tree.k_nearest_point(&[0.0, 0.0], 5).is_err());
    }

    #[test]
    fn handles_duplicate_points() {
        let rows: Vec<[f64; 2]> = (0..50).map(|i| [(i % 3) as f64, 0.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let tree = KdTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in 0..ds.len() {
            assert_eq!(tree.k_nearest(id, 5).unwrap(), scan.k_nearest(id, 5).unwrap());
        }
    }

    #[test]
    fn validation_errors() {
        let ds = clustered_dataset();
        let tree = KdTree::new(&ds, Euclidean);
        assert!(tree.k_nearest(0, 0).is_err());
        assert!(tree.k_nearest(0, ds.len()).is_err());
        assert!(tree.k_nearest(ds.len(), 1).is_err());
        assert!(tree.within(ds.len(), 1.0).is_err());
    }

    #[test]
    fn builds_internal_nodes_for_large_inputs() {
        let ds = clustered_dataset();
        let tree = KdTree::new(&ds, Euclidean);
        assert!(tree.node_count() > 1, "200 points must split beyond one leaf");
    }
}
