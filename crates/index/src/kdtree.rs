//! kd-tree: the classic main-memory spatial index for low- to
//! medium-dimensional k-NN queries (the `O(log n)`-per-query regime of the
//! paper's section 7.4).
//!
//! Median-split construction over an id permutation (no point copies),
//! bounding boxes per node, and depth-first search with
//! `Metric::min_dist_to_rect` pruning.
//!
//! For metrics with a squared-Euclidean form the k-distance descent runs
//! entirely in squared space (`min_dist_to_rect_sq` pruning, no square
//! roots in the inner loop) and takes a single square root at the end —
//! exact, because `sqrt` is monotone, so the k-th smallest squared
//! distance maps to the k-th smallest distance.

use crate::common::{impl_knn_provider, widen_sq};
use lof_core::distance::BlockedForm;
use lof_core::{BlockKernel, BoundedMaxHeap, Dataset, KnnScratch, Metric, Neighbor};

const LEAF_SIZE: usize = 16;

#[derive(Debug)]
struct Node {
    /// Bounding box of all points below this node.
    lo: Vec<f64>,
    hi: Vec<f64>,
    /// Range into `KdTree::ids`.
    start: usize,
    end: usize,
    /// Children indices into `KdTree::nodes`; `None` for leaves.
    children: Option<(usize, usize)>,
}

/// A kd-tree over a borrowed dataset.
///
/// ```
/// use lof_core::{Dataset, Euclidean, KnnProvider};
/// use lof_index::KdTree;
///
/// let rows: Vec<[f64; 2]> = (0..100).map(|i| [(i % 10) as f64, (i / 10) as f64]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let tree = KdTree::new(&data, Euclidean);
/// // Query by id (excludes the object itself)...
/// assert_eq!(tree.k_nearest(55, 4).unwrap().len(), 4);
/// // ...or by arbitrary point (no exclusion).
/// assert_eq!(tree.k_nearest_point(&[4.5, 4.5], 4).unwrap().len(), 4);
/// ```
#[derive(Debug)]
pub struct KdTree<'a, M: Metric> {
    data: &'a Dataset,
    metric: M,
    ids: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
    /// Index of the leaf node containing each object, for the leaf-grouped
    /// batch self-join (leaf ranges partition `ids`, so this is total).
    leaf_of: Vec<usize>,
    /// Norm-form surrogate kernel; `None` for generic metrics.
    kernel: Option<BlockKernel>,
}

impl<'a, M: Metric> KdTree<'a, M> {
    /// Builds the tree in `O(n log n)`.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        let mut ids: Vec<usize> = (0..data.len()).collect();
        let mut nodes = Vec::new();
        let root = if data.is_empty() {
            usize::MAX
        } else {
            let n = data.len();
            build(data, &mut ids, 0, n, &mut nodes)
        };
        let mut leaf_of = vec![usize::MAX; data.len()];
        for (idx, node) in nodes.iter().enumerate() {
            if node.children.is_none() {
                for &id in &ids[node.start..node.end] {
                    leaf_of[id] = idx;
                }
            }
        }
        let kernel = BlockKernel::for_metric(data, &metric);
        KdTree { data, metric, ids, nodes, root, leaf_of, kernel }
    }

    /// Number of indexed objects.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Number of tree nodes (for diagnostics and tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn search_k_distance(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
    ) -> f64 {
        let best = &mut scratch.heap;
        best.reset(k);
        match self.metric.blocked_form() {
            // Squared-space descent: one sqrt total instead of one per
            // visited point. Exact — sqrt is monotone, so order statistics
            // commute with it, and `Euclidean::distance` is literally
            // `squared_euclidean(..).sqrt()`.
            BlockedForm::Euclidean => {
                self.knn_rec_sq(self.root, q, exclude, best);
                best.kth_dist().expect("validated: at least k candidates exist").sqrt()
            }
            BlockedForm::SquaredEuclidean => {
                self.knn_rec_sq(self.root, q, exclude, best);
                best.kth_dist().expect("validated: at least k candidates exist")
            }
            BlockedForm::Generic => {
                self.knn_rec(self.root, q, exclude, best);
                best.kth_dist().expect("validated: at least k candidates exist")
            }
        }
    }

    fn knn_rec(
        &self,
        node_id: usize,
        q: &[f64],
        exclude: Option<usize>,
        best: &mut BoundedMaxHeap,
    ) {
        let node = &self.nodes[node_id];
        if self.metric.min_dist_to_rect(q, &node.lo, &node.hi) > best.bound() {
            return;
        }
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) != exclude {
                        best.offer(id, self.metric.distance(q, self.data.point(id)));
                    }
                }
            }
            Some((left, right)) => {
                // Visit the nearer child first so the bound tightens early.
                let dl =
                    self.metric.min_dist_to_rect(q, &self.nodes[left].lo, &self.nodes[left].hi);
                let dr =
                    self.metric.min_dist_to_rect(q, &self.nodes[right].lo, &self.nodes[right].hi);
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.knn_rec(first, q, exclude, best);
                self.knn_rec(second, q, exclude, best);
            }
        }
    }

    /// [`KdTree::knn_rec`] with distances and rectangle bounds kept in
    /// squared-Euclidean space; the heap holds squared distances.
    fn knn_rec_sq(
        &self,
        node_id: usize,
        q: &[f64],
        exclude: Option<usize>,
        best: &mut BoundedMaxHeap,
    ) {
        let node = &self.nodes[node_id];
        if self.metric.min_dist_to_rect_sq(q, &node.lo, &node.hi) > best.bound() {
            return;
        }
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) != exclude {
                        best.offer(
                            id,
                            lof_core::distance::squared_euclidean(q, self.data.point(id)),
                        );
                    }
                }
            }
            Some((left, right)) => {
                let dl =
                    self.metric.min_dist_to_rect_sq(q, &self.nodes[left].lo, &self.nodes[left].hi);
                let dr = self.metric.min_dist_to_rect_sq(
                    q,
                    &self.nodes[right].lo,
                    &self.nodes[right].hi,
                );
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.knn_rec_sq(first, q, exclude, best);
                self.knn_rec_sq(second, q, exclude, best);
            }
        }
    }

    fn search_within_into(
        &self,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        _scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        if self.root != usize::MAX {
            self.range_rec(self.root, q, radius, exclude, out);
        }
    }

    fn range_rec(
        &self,
        node_id: usize,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        out: &mut Vec<Neighbor>,
    ) {
        let node = &self.nodes[node_id];
        if self.metric.min_dist_to_rect(q, &node.lo, &node.hi) > radius {
            return;
        }
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) == exclude {
                        continue;
                    }
                    let d = self.metric.distance(q, self.data.point(id));
                    if d <= radius {
                        out.push(Neighbor::new(id, d));
                    }
                }
            }
            Some((left, right)) => {
                self.range_rec(left, q, radius, exclude, out);
                self.range_rec(right, q, radius, exclude, out);
            }
        }
    }

    /// Leaf-blocked batch self-join (see [`crate::common::leaf_grouped_batch`]):
    /// queries are grouped by containing leaf, each group traverses the
    /// tree once with shared node pruning, and candidate leaves are
    /// evaluated through the norm-form surrogate kernel where the metric
    /// has a squared-Euclidean form. Produces bit-identical neighborhoods
    /// to the per-id `k_nearest_into` loop.
    fn batch_self_join(
        &self,
        ids: std::ops::Range<usize>,
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
        lens: &mut Vec<usize>,
    ) -> lof_core::Result<()> {
        crate::common::leaf_grouped_batch(
            self.size(),
            ids,
            k,
            &self.leaf_of,
            scratch,
            out,
            lens,
            |group, scratch, staged, glens| self.join_group(group, k, scratch, staged, glens),
        )
    }

    /// Answers one leaf group: a shared k-distance descent, then a shared
    /// range collection at each query's exact k-distance (the same two
    /// phases as the single-query path, fused across the group).
    fn join_group(
        &self,
        group: &[(usize, usize)],
        k: usize,
        scratch: &mut KnnScratch,
        staged: &mut Vec<Neighbor>,
        glens: &mut Vec<usize>,
    ) {
        let gn = group.len();
        let leaf = &self.nodes[group[0].0];
        if scratch.heaps.len() < gn {
            scratch.heaps.resize_with(gn, BoundedMaxHeap::new);
        }
        if scratch.block_pairs.len() < gn {
            scratch.block_pairs.resize_with(gn, Vec::new);
        }
        let KnnScratch { heaps, tile_sq, block_pairs, join_radii, join_lost, stats, .. } = scratch;
        stats.bump_join_groups(1);
        let heaps = &mut heaps[..gn];
        for h in heaps.iter_mut() {
            h.reset(k);
        }
        let pairs = &mut block_pairs[..gn];
        for p in pairs.iter_mut() {
            p.clear();
        }
        join_radii.clear();
        join_lost.clear();
        join_lost.resize(gn, f64::INFINITY);

        if let Some(kernel) = &self.kernel {
            let sqrt_form = self.metric.blocked_form() == BlockedForm::Euclidean;
            self.group_knn_sq(self.root, leaf, group, heaps, join_lost);
            for (gi, heap) in heaps.iter().enumerate() {
                let kth_sq = heap.kth_dist().expect("validated: at least k candidates exist");
                let radius = if sqrt_form { kth_sq.sqrt() } else { kth_sq };
                join_radii.push((radius, kth_sq));
                // Emit the neighborhood straight from the heap: every point
                // strictly inside the k-distance ball beats the k-th
                // candidate in `(distance, id)` order, so it is guaranteed
                // to be held — only ties dropped by the id tie-break are
                // missing, and the gated shell pass below recovers those.
                for &(sq, id) in heap.entries() {
                    let d = if sqrt_form { sq.sqrt() } else { sq };
                    pairs[gi].push((d, id));
                }
            }
            // The shell pass has work to do only when some query actually
            // lost a candidate at its k-distance. The widened descent prune
            // guarantees every point whose *emitted* distance ties the
            // radius was offered to the heap, so it is either held or
            // recorded in `join_lost` — if no lost distance maps onto a
            // radius, every neighborhood is already complete and the whole
            // second traversal (as expensive as the descent) is skipped.
            // Continuous data virtually never ties, so this is the common
            // path; the gate fires on duplicate/grid-structured inputs.
            let needs_shell =
                join_radii.iter().zip(join_lost.iter()).any(|(&(radius, _), &lost)| {
                    let lost_d = if sqrt_form { lost.sqrt() } else { lost };
                    lost_d == radius
                });
            if needs_shell {
                stats.bump_shell_passes(1);
                self.group_shell_sq(
                    self.root, leaf, group, join_radii, heaps, kernel, tile_sq, pairs,
                );
            }
        } else {
            self.group_knn_generic(self.root, group, heaps);
            for heap in heaps.iter() {
                let kd = heap.kth_dist().expect("validated: at least k candidates exist");
                join_radii.push((kd, kd));
            }
            self.group_range_generic(self.root, group, join_radii, pairs);
        }

        stats.bump_heap_offers(heaps.iter().map(|h| h.offers()).sum());
        for list in pairs.iter_mut() {
            list.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            staged.extend(list.iter().map(|&(d, id)| Neighbor::new(id, d)));
            glens.push(list.len());
        }
    }

    /// Group k-distance descent in squared space. Internal nodes are
    /// pruned once per group against the loosest per-query bound using the
    /// rect-to-rect lower bound (valid for every query inside the group's
    /// leaf rect); per-query `min_dist_to_rect_sq` tests run only at the
    /// leaves. Candidates are offered at the exact scalar
    /// `squared_euclidean` — the same values the single-query descent
    /// offers, so the resulting k-distances are bit-identical. (No
    /// surrogate filter here: while heap bounds are loose nearly every
    /// candidate would survive the widened cutoff and be evaluated twice;
    /// the filter earns its keep only in the thin-window shell pass.)
    ///
    /// Both prunes are widened by [`widen_sq`] so that every point whose
    /// emitted distance could tie a final k-distance is *offered* (extra
    /// offers of worse candidates cannot change the k smallest, so heap
    /// contents stay bit-identical). Together with the per-heap lost-
    /// candidate minimum this makes "no lost distance ties a radius" a
    /// proof that the shell pass is unnecessary.
    fn group_knn_sq(
        &self,
        node_id: usize,
        leaf: &Node,
        group: &[(usize, usize)],
        heaps: &mut [BoundedMaxHeap],
        lost: &mut [f64],
    ) {
        let node = &self.nodes[node_id];
        let group_bound = heaps.iter().fold(0.0f64, |m, h| m.max(h.bound()));
        if rect_rect_min_sq(&leaf.lo, &leaf.hi, &node.lo, &node.hi) > widen_sq(group_bound) {
            return;
        }
        match node.children {
            None => {
                for (gi, &(_, qid)) in group.iter().enumerate() {
                    let q = self.data.point(qid);
                    let bound = heaps[gi].bound();
                    if self.metric.min_dist_to_rect_sq(q, &node.lo, &node.hi) > widen_sq(bound) {
                        continue;
                    }
                    for &id in &self.ids[node.start..node.end] {
                        if id != qid {
                            heaps[gi].offer_tracking(
                                id,
                                lof_core::distance::squared_euclidean(q, self.data.point(id)),
                                &mut lost[gi],
                            );
                        }
                    }
                }
            }
            Some((left, right)) => {
                let dl = rect_rect_min_sq(
                    &leaf.lo,
                    &leaf.hi,
                    &self.nodes[left].lo,
                    &self.nodes[left].hi,
                );
                let dr = rect_rect_min_sq(
                    &leaf.lo,
                    &leaf.hi,
                    &self.nodes[right].lo,
                    &self.nodes[right].hi,
                );
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.group_knn_sq(first, leaf, group, heaps, lost);
                self.group_knn_sq(second, leaf, group, heaps, lost);
            }
        }
    }

    /// Shell pass of the batch join: the heap emission above already
    /// covers every point with distance `< k-distance` (and the kept
    /// ties), so this traversal only hunts for ties dropped by the heap's
    /// id tie-break — points at distance *exactly* the query's k-distance.
    /// That lets it prune, in addition to everything beyond the widened
    /// radius, every node lying **strictly inside** the k-distance ball
    /// (its points are all in the heap). Inclusion of each surviving
    /// candidate is decided on the exact reference computation — scalar
    /// squared distance, plus the same single `sqrt` for
    /// [`BlockedForm::Euclidean`] — so combined neighborhoods match the
    /// single-query range phase bit for bit.
    #[allow(clippy::too_many_arguments)]
    fn group_shell_sq(
        &self,
        node_id: usize,
        leaf: &Node,
        group: &[(usize, usize)],
        radii: &[(f64, f64)],
        heaps: &[BoundedMaxHeap],
        kernel: &BlockKernel,
        tile_sq: &mut Vec<f64>,
        pairs: &mut [Vec<(f64, usize)>],
    ) {
        let node = &self.nodes[node_id];
        let max_r_sq = radii.iter().fold(0.0f64, |m, r| m.max(r.1));
        let min_r_sq = radii.iter().fold(f64::INFINITY, |m, r| m.min(r.1));
        if rect_rect_min_sq(&leaf.lo, &leaf.hi, &node.lo, &node.hi) > widen_sq(max_r_sq)
            || rect_rect_max_sq(&leaf.lo, &leaf.hi, &node.lo, &node.hi) < min_r_sq
        {
            return;
        }
        match node.children {
            None => {
                let cands = &self.ids[node.start..node.end];
                let two_slack = 2.0 * kernel.slack();
                let sqrt_form = self.metric.blocked_form() == BlockedForm::Euclidean;
                for (gi, &(_, qid)) in group.iter().enumerate() {
                    let (radius, r_sq) = radii[gi];
                    let q = self.data.point(qid);
                    if self.metric.min_dist_to_rect_sq(q, &node.lo, &node.hi) > widen_sq(r_sq)
                        || point_rect_max_sq(q, &node.lo, &node.hi) < r_sq
                    {
                        continue;
                    }
                    kernel.surrogates_into(self.data, qid, cands, tile_sq);
                    // Two-sided surrogate window around the k-distance: a
                    // tie's squared distance sits within a relative ~5e-16
                    // of `r_sq` (`sqrt` rounding), far inside the 1e-9
                    // margins.
                    let hi = widen_sq(r_sq) + two_slack;
                    let lo = r_sq * (1.0 - 1e-9) - two_slack;
                    for (ci, &sur) in tile_sq.iter().enumerate() {
                        if sur < lo || sur > hi {
                            continue;
                        }
                        let id = cands[ci];
                        if id == qid {
                            continue;
                        }
                        let sq = lof_core::distance::squared_euclidean(q, self.data.point(id));
                        let d = if sqrt_form { sq.sqrt() } else { sq };
                        if d == radius && !heaps[gi].entries().iter().any(|e| e.1 == id) {
                            pairs[gi].push((d, id));
                        }
                    }
                }
            }
            Some((left, right)) => {
                self.group_shell_sq(left, leaf, group, radii, heaps, kernel, tile_sq, pairs);
                self.group_shell_sq(right, leaf, group, radii, heaps, kernel, tile_sq, pairs);
            }
        }
    }

    /// Group k-distance descent for generic metrics: a node is visited
    /// when *any* group member still needs it; each member applies exactly
    /// the single-query `min_dist_to_rect > bound` prune before touching a
    /// leaf. Offers go through the scalar metric, so heap contents (and
    /// hence k-distances) are bit-identical to the per-query search.
    fn group_knn_generic(
        &self,
        node_id: usize,
        group: &[(usize, usize)],
        heaps: &mut [BoundedMaxHeap],
    ) {
        let node = &self.nodes[node_id];
        let needed = group.iter().enumerate().any(|(gi, &(_, qid))| {
            self.metric.min_dist_to_rect(self.data.point(qid), &node.lo, &node.hi)
                <= heaps[gi].bound()
        });
        if !needed {
            return;
        }
        match node.children {
            None => {
                for (gi, &(_, qid)) in group.iter().enumerate() {
                    let q = self.data.point(qid);
                    if self.metric.min_dist_to_rect(q, &node.lo, &node.hi) > heaps[gi].bound() {
                        continue;
                    }
                    for &id in &self.ids[node.start..node.end] {
                        if id != qid {
                            heaps[gi].offer(id, self.metric.distance(q, self.data.point(id)));
                        }
                    }
                }
            }
            Some((left, right)) => {
                self.group_knn_generic(left, group, heaps);
                self.group_knn_generic(right, group, heaps);
            }
        }
    }

    /// Group range collection for generic metrics, mirroring the
    /// single-query `range_rec` per member (same prune, same inclusion
    /// test) with one traversal per group.
    fn group_range_generic(
        &self,
        node_id: usize,
        group: &[(usize, usize)],
        radii: &[(f64, f64)],
        pairs: &mut [Vec<(f64, usize)>],
    ) {
        let node = &self.nodes[node_id];
        let needed = group.iter().zip(radii).any(|(&(_, qid), &(radius, _))| {
            self.metric.min_dist_to_rect(self.data.point(qid), &node.lo, &node.hi) <= radius
        });
        if !needed {
            return;
        }
        match node.children {
            None => {
                for (gi, (&(_, qid), &(radius, _))) in group.iter().zip(radii).enumerate() {
                    let q = self.data.point(qid);
                    if self.metric.min_dist_to_rect(q, &node.lo, &node.hi) > radius {
                        continue;
                    }
                    for &id in &self.ids[node.start..node.end] {
                        if id == qid {
                            continue;
                        }
                        let d = self.metric.distance(q, self.data.point(id));
                        if d <= radius {
                            pairs[gi].push((d, id));
                        }
                    }
                }
            }
            Some((left, right)) => {
                self.group_range_generic(left, group, radii, pairs);
                self.group_range_generic(right, group, radii, pairs);
            }
        }
    }
}

/// Lower bound on the squared Euclidean distance between any point of rect
/// `a` and any point of rect `b`: per-dimension gaps, squared and
/// forward-summed. Safe for exact `>` pruning against computed squared
/// distances: rounding is monotone, so each computed gap is `<=` the
/// computed `|q_d - x_d|` for any `q ∈ a`, `x ∈ b`, and squaring plus
/// forward summation preserve the termwise order — the bound never
/// exceeds the computed `squared_euclidean(q, x)`.
fn rect_rect_min_sq(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
    let mut acc = 0.0;
    for d in 0..alo.len() {
        let gap = if bhi[d] < alo[d] {
            alo[d] - bhi[d]
        } else if blo[d] > ahi[d] {
            blo[d] - ahi[d]
        } else {
            0.0
        };
        acc += gap * gap;
    }
    acc
}

/// Upper bound on the squared Euclidean distance between any point of rect
/// `a` and any point of rect `b`. Safe for strict `<` interior pruning:
/// `fl(q_d - x_d) <= max(fl(ahi - blo), fl(bhi - alo))` in magnitude by
/// rounding monotonicity, and squares plus forward sums preserve the
/// termwise order, so the bound never undercuts a computed
/// `squared_euclidean(q, x)`.
fn rect_rect_max_sq(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> f64 {
    let mut acc = 0.0;
    for d in 0..alo.len() {
        let gap = (ahi[d] - blo[d]).max(bhi[d] - alo[d]);
        acc += gap * gap;
    }
    acc
}

/// Upper bound on the squared Euclidean distance from point `q` to any
/// point of the rect; same floating-point-safety argument as
/// [`rect_rect_max_sq`].
fn point_rect_max_sq(q: &[f64], lo: &[f64], hi: &[f64]) -> f64 {
    let mut acc = 0.0;
    for d in 0..q.len() {
        let gap = (q[d] - lo[d]).max(hi[d] - q[d]);
        acc += gap * gap;
    }
    acc
}

/// Recursively builds the subtree over `ids[start..end]`, returning its node
/// index.
fn build(
    data: &Dataset,
    ids: &mut [usize],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let slice = &ids[start..end];
    let dims = data.dims();
    let mut lo = data.point(slice[0]).to_vec();
    let mut hi = lo.clone();
    for &id in &slice[1..] {
        let p = data.point(id);
        for d in 0..dims {
            if p[d] < lo[d] {
                lo[d] = p[d];
            }
            if p[d] > hi[d] {
                hi[d] = p[d];
            }
        }
    }

    let count = end - start;
    if count <= LEAF_SIZE {
        nodes.push(Node { lo, hi, start, end, children: None });
        return nodes.len() - 1;
    }

    // Split on the dimension of largest extent, at the median.
    let mut split_dim = 0;
    let mut best_extent = hi[0] - lo[0];
    for d in 1..dims {
        let extent = hi[d] - lo[d];
        if extent > best_extent {
            best_extent = extent;
            split_dim = d;
        }
    }
    if best_extent == 0.0 {
        // All points identical in every dimension: an (oversized) leaf is
        // the only sensible shape.
        nodes.push(Node { lo, hi, start, end, children: None });
        return nodes.len() - 1;
    }

    let mid = count / 2;
    ids[start..end].select_nth_unstable_by(mid, |&a, &b| {
        data.point(a)[split_dim].total_cmp(&data.point(b)[split_dim]).then(a.cmp(&b))
    });

    let left = build(data, ids, start, start + mid, nodes);
    let right = build(data, ids, start + mid, end, nodes);
    nodes.push(Node { lo, hi, start, end, children: Some((left, right)) });
    nodes.len() - 1
}

impl_knn_provider!(KdTree, self_join);

impl<M: Metric> lof_core::PartitionSource for KdTree<'_, M> {
    /// One partition per tree leaf — the same spatially tight,
    /// `LEAF_SIZE`-bounded groups the batch self-join exploits, which is
    /// exactly the locality the top-n engine's envelopes need.
    fn partitions(&self) -> Vec<lof_core::Partition> {
        crate::common::leaf_partitions(
            self.data,
            &self.metric,
            &self.ids,
            self.nodes.iter().filter(|n| n.children.is_none()).map(|n| (n.start, n.end)),
        )
    }
}

impl<M: Metric> lof_core::PartitionMetric for KdTree<'_, M> {
    fn partition_metric(&self) -> &dyn Metric {
        &self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Euclidean, KnnProvider, LinearScan, Manhattan};

    fn clustered_dataset() -> Dataset {
        // Deterministic pseudo-random points via a tiny LCG — two clusters.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for i in 0..200 {
            let offset = if i % 2 == 0 { 0.0 } else { 10.0 };
            rows.push([offset + next() * 2.0, offset + next() * 2.0, next()]);
        }
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_linear_scan_on_clustered_data() {
        let ds = clustered_dataset();
        let tree = KdTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(13) {
            for k in [1, 3, 10] {
                assert_eq!(
                    tree.k_nearest(id, k).unwrap(),
                    scan.k_nearest(id, k).unwrap(),
                    "id={id} k={k}"
                );
            }
        }
    }

    #[test]
    fn within_matches_linear_scan() {
        let ds = clustered_dataset();
        let tree = KdTree::new(&ds, Manhattan);
        let scan = LinearScan::new(&ds, Manhattan);
        for id in (0..ds.len()).step_by(29) {
            for radius in [0.1, 1.0, 5.0, 100.0] {
                assert_eq!(tree.within(id, radius).unwrap(), scan.within(id, radius).unwrap());
            }
        }
    }

    #[test]
    fn query_by_point_includes_exact_matches() {
        let ds = Dataset::from_rows(&[[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [5.0, 5.0]]).unwrap();
        let tree = KdTree::new(&ds, Euclidean);
        let nn = tree.k_nearest_point(&[0.0, 0.0], 1).unwrap();
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[0].dist, 0.0);
        let all = tree.within_point(&[0.0, 0.0], 1.0).unwrap();
        assert_eq!(all.len(), 3);
        assert!(tree.k_nearest_point(&[0.0], 1).is_err());
        assert!(tree.k_nearest_point(&[0.0, 0.0], 5).is_err());
    }

    #[test]
    fn handles_duplicate_points() {
        let rows: Vec<[f64; 2]> = (0..50).map(|i| [(i % 3) as f64, 0.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let tree = KdTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in 0..ds.len() {
            assert_eq!(tree.k_nearest(id, 5).unwrap(), scan.k_nearest(id, 5).unwrap());
        }
    }

    #[test]
    fn validation_errors() {
        let ds = clustered_dataset();
        let tree = KdTree::new(&ds, Euclidean);
        assert!(tree.k_nearest(0, 0).is_err());
        assert!(tree.k_nearest(0, ds.len()).is_err());
        assert!(tree.k_nearest(ds.len(), 1).is_err());
        assert!(tree.within(ds.len(), 1.0).is_err());
    }

    #[test]
    fn builds_internal_nodes_for_large_inputs() {
        let ds = clustered_dataset();
        let tree = KdTree::new(&ds, Euclidean);
        assert!(tree.node_count() > 1, "200 points must split beyond one leaf");
    }
}
