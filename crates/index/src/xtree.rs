//! X-tree: the index used in the paper's performance experiments ("we used
//! a variant of the X-tree, leading to the complexity of O(n log n)").
//!
//! The X-tree (Berchtold, Keim, Kriegel, VLDB 1996) is an R-tree variant for
//! higher-dimensional data. Directory splits that would produce highly
//! overlapping bounding boxes are refused; the node instead grows into a
//! **supernode** spanning multiple block's worth of entries, trading fan-out
//! for overlap-free directories. In low dimensions it behaves like an
//! R*-tree; as dimensionality grows, more and more supernodes form and the
//! tree gracefully degrades toward a sequential scan — exactly the
//! degradation figure 10 of the paper shows for 10- and 20-dimensional data.
//!
//! This implementation uses incremental insertion with R*-style topological
//! splits (minimum-margin axis choice, minimum-overlap distribution) and the
//! Jaccard overlap criterion for the supernode decision. k-NN queries run
//! best-first (Hjaltason–Samet) over minimum rectangle distances.

use crate::common::impl_knn_provider;
use lof_core::{Dataset, KnnScratch, Metric, Neighbor};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Entries per directory/leaf block; a supernode of `b` blocks holds up to
/// `b * MAX_ENTRIES`.
const MAX_ENTRIES: usize = 16;
/// Minimum fill fraction for split distributions.
const MIN_FILL: f64 = 0.4;

/// Tuning knobs for the supernode policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XTreeOptions {
    /// Maximum tolerated Jaccard overlap of the two split halves before the
    /// split is refused and a supernode created. `0.2` is the X-tree
    /// paper's recommendation; `1.0` disables supernodes entirely, turning
    /// the structure into a plain R*-style tree (useful as an ablation
    /// baseline); `0.0` makes every overlapping split a supernode.
    pub max_overlap: f64,
}

impl Default for XTreeOptions {
    fn default() -> Self {
        XTreeOptions { max_overlap: 0.2 }
    }
}

/// An axis-aligned minimum bounding rectangle.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Rect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl Rect {
    fn point(p: &[f64]) -> Self {
        Rect { lo: p.to_vec(), hi: p.to_vec() }
    }

    fn enlarge(&mut self, other: &Rect) {
        for d in 0..self.lo.len() {
            if other.lo[d] < self.lo[d] {
                self.lo[d] = other.lo[d];
            }
            if other.hi[d] > self.hi[d] {
                self.hi[d] = other.hi[d];
            }
        }
    }

    fn union(&self, other: &Rect) -> Rect {
        let mut r = self.clone();
        r.enlarge(other);
        r
    }

    fn volume(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    fn margin(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).sum()
    }

    fn intersection_volume(&self, other: &Rect) -> f64 {
        let mut v = 1.0;
        for d in 0..self.lo.len() {
            let lo = self.lo[d].max(other.lo[d]);
            let hi = self.hi[d].min(other.hi[d]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Volume enlargement needed to also cover `other`.
    fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).volume() - self.volume()
    }
}

#[derive(Debug)]
enum Kind {
    /// Point ids.
    Leaf(Vec<usize>),
    /// Child node indices.
    Inner(Vec<usize>),
}

#[derive(Debug)]
struct Node {
    rect: Rect,
    parent: Option<usize>,
    /// Capacity multiplier; `> 1` marks a supernode.
    blocks: usize,
    kind: Kind,
}

impl Node {
    fn capacity(&self) -> usize {
        self.blocks * MAX_ENTRIES
    }

    fn entry_count(&self) -> usize {
        match &self.kind {
            Kind::Leaf(ids) => ids.len(),
            Kind::Inner(children) => children.len(),
        }
    }
}

/// An X-tree over a borrowed dataset.
///
/// ```
/// use lof_core::{Dataset, Euclidean, KnnProvider};
/// use lof_index::XTree;
///
/// let rows: Vec<[f64; 2]> = (0..100).map(|i| [(i % 10) as f64, (i / 10) as f64]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let tree = XTree::new(&data, Euclidean); // or XTree::bulk_load(...)
/// let nn = tree.k_nearest(0, 3).unwrap();
/// assert!(nn.len() >= 3);
/// assert_eq!(nn[0].dist, 1.0);
/// ```
#[derive(Debug)]
pub struct XTree<'a, M: Metric> {
    data: &'a Dataset,
    metric: M,
    options: XTreeOptions,
    nodes: Vec<Node>,
    root: usize,
}

impl<'a, M: Metric> XTree<'a, M> {
    /// Builds the tree by inserting every point, with the default
    /// supernode policy.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        Self::with_options(data, metric, XTreeOptions::default())
    }

    /// Builds the tree with an explicit supernode policy (see
    /// [`XTreeOptions`]; `max_overlap = 1.0` yields a plain R*-style tree).
    pub fn with_options(data: &'a Dataset, metric: M, options: XTreeOptions) -> Self {
        let dims = data.dims().max(1);
        let root_rect = Rect { lo: vec![f64::INFINITY; dims], hi: vec![f64::NEG_INFINITY; dims] };
        let mut tree = XTree {
            data,
            metric,
            options,
            nodes: vec![Node {
                rect: root_rect,
                parent: None,
                blocks: 1,
                kind: Kind::Leaf(Vec::new()),
            }],
            root: 0,
        };
        for id in 0..data.len() {
            tree.insert(id);
        }
        tree
    }

    /// Builds the tree by Sort-Tile-Recursive (STR) bulk loading instead of
    /// one-by-one insertion: points are recursively tiled into
    /// `MAX_ENTRIES`-sized leaves along successive dimensions, then parent
    /// levels are packed the same way. Roughly an order of magnitude faster
    /// to build than insertion and yields near-full nodes; since the data
    /// is known up front, no supernodes are needed (tiles never overlap).
    /// Queries return exactly the same results as the insertion-built tree.
    pub fn bulk_load(data: &'a Dataset, metric: M) -> Self {
        let dims = data.dims().max(1);
        let mut tree =
            XTree { data, metric, options: XTreeOptions::default(), nodes: Vec::new(), root: 0 };
        if data.is_empty() {
            let root_rect =
                Rect { lo: vec![f64::INFINITY; dims], hi: vec![f64::NEG_INFINITY; dims] };
            tree.nodes.push(Node {
                rect: root_rect,
                parent: None,
                blocks: 1,
                kind: Kind::Leaf(Vec::new()),
            });
            return tree;
        }

        // Tile ids into leaves.
        let mut ids: Vec<usize> = (0..data.len()).collect();
        let mut leaves: Vec<usize> = Vec::new();
        tree.str_tile_leaves(&mut ids, 0, &mut leaves);

        // Pack upward until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut parents = Vec::new();
            for chunk in level.chunks(MAX_ENTRIES) {
                let mut rect = tree.nodes[chunk[0]].rect.clone();
                for &c in &chunk[1..] {
                    let child_rect = tree.nodes[c].rect.clone();
                    rect.enlarge(&child_rect);
                }
                let parent = tree.nodes.len();
                tree.nodes.push(Node {
                    rect,
                    parent: None,
                    blocks: 1,
                    kind: Kind::Inner(chunk.to_vec()),
                });
                for &c in chunk {
                    tree.nodes[c].parent = Some(parent);
                }
                parents.push(parent);
            }
            level = parents;
        }
        tree.root = level[0];
        tree
    }

    /// Recursively tiles `ids` into leaf nodes, cycling the sort dimension.
    fn str_tile_leaves(&mut self, ids: &mut [usize], dim: usize, leaves: &mut Vec<usize>) {
        if ids.len() <= MAX_ENTRIES {
            let mut rect = Rect::point(self.data.point(ids[0]));
            for &id in &ids[1..] {
                rect.enlarge(&Rect::point(self.data.point(id)));
            }
            let leaf = self.nodes.len();
            self.nodes.push(Node { rect, parent: None, blocks: 1, kind: Kind::Leaf(ids.to_vec()) });
            leaves.push(leaf);
            return;
        }
        let d = dim % self.data.dims().max(1);
        ids.sort_unstable_by(|&a, &b| {
            self.data.point(a)[d].total_cmp(&self.data.point(b)[d]).then(a.cmp(&b))
        });
        // Split into ceil(sqrt(n / MAX_ENTRIES)) slabs along this dimension
        // so the recursion produces roughly square tiles.
        let leaves_needed = ids.len().div_ceil(MAX_ENTRIES);
        let slabs = (leaves_needed as f64).sqrt().ceil() as usize;
        let per_slab = ids.len().div_ceil(slabs);
        let mut start = 0;
        while start < ids.len() {
            let end = (start + per_slab).min(ids.len());
            self.str_tile_leaves(&mut ids[start..end], dim + 1, leaves);
            start = end;
        }
    }

    /// Number of indexed objects.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Number of supernodes (diagnostic; grows with dimensionality).
    pub fn supernode_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.blocks > 1).count()
    }

    /// Tree height (diagnostic).
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = self.root;
        loop {
            match &self.nodes[node].kind {
                Kind::Leaf(_) => return h,
                Kind::Inner(children) => {
                    node = children[0];
                    h += 1;
                }
            }
        }
    }

    // ---- insertion ----

    fn insert(&mut self, id: usize) {
        let point_rect = Rect::point(self.data.point(id));
        let leaf = self.choose_leaf(&point_rect);
        match &mut self.nodes[leaf].kind {
            Kind::Leaf(ids) => ids.push(id),
            Kind::Inner(_) => unreachable!("choose_leaf returns leaves"),
        }
        if self.nodes[leaf].entry_count() == 1 {
            self.nodes[leaf].rect = point_rect;
        } else {
            self.nodes[leaf].rect.enlarge(&point_rect);
        }
        self.propagate_rect(leaf);
        self.handle_overflow(leaf);
    }

    fn choose_leaf(&self, rect: &Rect) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node].kind {
                Kind::Leaf(_) => return node,
                Kind::Inner(children) => {
                    let mut best = children[0];
                    let mut best_enl = self.nodes[best].rect.enlargement(rect);
                    let mut best_vol = self.nodes[best].rect.volume();
                    for &c in &children[1..] {
                        let enl = self.nodes[c].rect.enlargement(rect);
                        let vol = self.nodes[c].rect.volume();
                        if enl < best_enl || (enl == best_enl && vol < best_vol) {
                            best = c;
                            best_enl = enl;
                            best_vol = vol;
                        }
                    }
                    node = best;
                }
            }
        }
    }

    fn propagate_rect(&mut self, from: usize) {
        let mut node = from;
        while let Some(parent) = self.nodes[node].parent {
            let child_rect = self.nodes[node].rect.clone();
            self.nodes[parent].rect.enlarge(&child_rect);
            node = parent;
        }
    }

    fn handle_overflow(&mut self, mut node: usize) {
        while self.nodes[node].entry_count() > self.nodes[node].capacity() {
            match self.try_split(node) {
                Some(new_sibling) => {
                    // Splitting the root grows the tree by one level.
                    if self.nodes[node].parent.is_none() {
                        let rect = self.nodes[node].rect.union(&self.nodes[new_sibling].rect);
                        let new_root = self.nodes.len();
                        self.nodes.push(Node {
                            rect,
                            parent: None,
                            blocks: 1,
                            kind: Kind::Inner(vec![node, new_sibling]),
                        });
                        self.nodes[node].parent = Some(new_root);
                        self.nodes[new_sibling].parent = Some(new_root);
                        self.root = new_root;
                        return;
                    }
                    let parent = self.nodes[node].parent.expect("checked above");
                    self.nodes[new_sibling].parent = Some(parent);
                    match &mut self.nodes[parent].kind {
                        Kind::Inner(children) => children.push(new_sibling),
                        Kind::Leaf(_) => unreachable!("parents are inner nodes"),
                    }
                    node = parent;
                }
                None => {
                    // Split refused: grow into (or extend) a supernode.
                    self.nodes[node].blocks += 1;
                    return;
                }
            }
        }
    }

    /// Attempts a topological split; returns the new sibling's index, or
    /// `None` when every distribution overlaps too much (supernode case).
    fn try_split(&mut self, node: usize) -> Option<usize> {
        let entry_rects: Vec<Rect> = match &self.nodes[node].kind {
            Kind::Leaf(ids) => ids.iter().map(|&id| Rect::point(self.data.point(id))).collect(),
            Kind::Inner(children) => children.iter().map(|&c| self.nodes[c].rect.clone()).collect(),
        };
        let split = best_topological_split(&entry_rects)?;
        if split.overlap > self.options.max_overlap {
            return None;
        }

        // Materialize the split.
        let (left_rect, right_rect) = (split.left_rect, split.right_rect);
        let in_left = split.left_membership;
        let new_index = self.nodes.len();
        match &mut self.nodes[node].kind {
            Kind::Leaf(ids) => {
                let mut left = Vec::new();
                let mut right = Vec::new();
                for (pos, id) in ids.drain(..).enumerate() {
                    if in_left[pos] {
                        left.push(id);
                    } else {
                        right.push(id);
                    }
                }
                *ids = left;
                self.nodes.push(Node {
                    rect: right_rect,
                    parent: None,
                    blocks: 1,
                    kind: Kind::Leaf(right),
                });
            }
            Kind::Inner(children) => {
                let mut left = Vec::new();
                let mut right = Vec::new();
                for (pos, c) in children.drain(..).enumerate() {
                    if in_left[pos] {
                        left.push(c);
                    } else {
                        right.push(c);
                    }
                }
                *children = left;
                self.nodes.push(Node {
                    rect: right_rect,
                    parent: None,
                    blocks: 1,
                    kind: Kind::Inner(right),
                });
                // Re-home the moved children.
                let moved: Vec<usize> = match &self.nodes[new_index].kind {
                    Kind::Inner(cs) => cs.clone(),
                    Kind::Leaf(_) => unreachable!(),
                };
                for c in moved {
                    self.nodes[c].parent = Some(new_index);
                }
            }
        }
        self.nodes[node].rect = left_rect;
        // A split half usually fits one block again, but a very large
        // supernode can split into halves that are still oversized; keep
        // them supernodes of the minimal size instead of re-overflowing.
        self.nodes[node].blocks = self.nodes[node].entry_count().div_ceil(MAX_ENTRIES).max(1);
        self.nodes[new_index].blocks =
            self.nodes[new_index].entry_count().div_ceil(MAX_ENTRIES).max(1);
        Some(new_index)
    }

    // ---- queries ----

    fn search_k_distance(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
    ) -> f64 {
        let best = &mut scratch.heap;
        best.reset(k);
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        heap.push(HeapItem { dist: self.node_min_dist(q, self.root), node: self.root });
        while let Some(item) = heap.pop() {
            if item.dist > best.bound() {
                break; // nothing closer remains
            }
            match &self.nodes[item.node].kind {
                Kind::Leaf(ids) => {
                    for &id in ids {
                        if Some(id) != exclude {
                            best.offer(id, self.metric.distance(q, self.data.point(id)));
                        }
                    }
                }
                Kind::Inner(children) => {
                    for &c in children {
                        let dist = self.node_min_dist(q, c);
                        if dist <= best.bound() {
                            heap.push(HeapItem { dist, node: c });
                        }
                    }
                }
            }
        }
        best.kth_dist().expect("validated: at least k candidates exist")
    }

    fn search_within_into(
        &self,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        _scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        if self.data.is_empty() {
            return;
        }
        self.range_rec(self.root, q, radius, exclude, out);
    }

    fn range_rec(
        &self,
        node: usize,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        out: &mut Vec<Neighbor>,
    ) {
        if self.node_min_dist(q, node) > radius {
            return;
        }
        match &self.nodes[node].kind {
            Kind::Leaf(ids) => {
                for &id in ids {
                    if Some(id) == exclude {
                        continue;
                    }
                    let d = self.metric.distance(q, self.data.point(id));
                    if d <= radius {
                        out.push(Neighbor::new(id, d));
                    }
                }
            }
            Kind::Inner(children) => {
                for &c in children {
                    self.range_rec(c, q, radius, exclude, out);
                }
            }
        }
    }

    fn node_min_dist(&self, q: &[f64], node: usize) -> f64 {
        let rect = &self.nodes[node].rect;
        if rect.lo[0] > rect.hi[0] {
            return f64::INFINITY; // empty root before the first insert
        }
        self.metric.min_dist_to_rect(q, &rect.lo, &rect.hi)
    }
}

/// Best-first queue item — min-heap by distance via reversed `Ord`.
#[derive(Debug, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist).then(other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

struct SplitPlan {
    left_membership: Vec<bool>,
    left_rect: Rect,
    right_rect: Rect,
    /// Jaccard overlap of the two halves' bounding boxes.
    overlap: f64,
}

/// The R*-style topological split: choose the axis minimizing the summed
/// margins over all candidate distributions, then the distribution on that
/// axis minimizing overlap (ties: total volume). Returns `None` for fewer
/// than two entries.
fn best_topological_split(rects: &[Rect]) -> Option<SplitPlan> {
    let total = rects.len();
    if total < 2 {
        return None;
    }
    let dims = rects[0].lo.len();
    let min_fill = ((total as f64 * MIN_FILL).ceil() as usize).clamp(1, total / 2);

    // For each axis, order entries by lower then upper boundary and score
    // both orderings.
    let mut best_axis = 0;
    let mut best_axis_margin = f64::INFINITY;
    let mut best_axis_orders: Vec<Vec<usize>> = Vec::new();
    for d in 0..dims {
        let mut by_lo: Vec<usize> = (0..total).collect();
        by_lo.sort_unstable_by(|&a, &b| {
            rects[a].lo[d]
                .total_cmp(&rects[b].lo[d])
                .then(rects[a].hi[d].total_cmp(&rects[b].hi[d]))
        });
        let mut by_hi: Vec<usize> = (0..total).collect();
        by_hi.sort_unstable_by(|&a, &b| {
            rects[a].hi[d]
                .total_cmp(&rects[b].hi[d])
                .then(rects[a].lo[d].total_cmp(&rects[b].lo[d]))
        });
        let mut margin_sum = 0.0;
        for order in [&by_lo, &by_hi] {
            for split_at in min_fill..=(total - min_fill) {
                let (l, r) = group_rects(rects, order, split_at);
                margin_sum += l.margin() + r.margin();
            }
        }
        if margin_sum < best_axis_margin {
            best_axis_margin = margin_sum;
            best_axis = d;
            best_axis_orders = vec![by_lo, by_hi];
        }
    }
    let _ = best_axis;

    // On the chosen axis, pick the minimum-overlap distribution.
    let mut best: Option<SplitPlan> = None;
    let mut best_key = (f64::INFINITY, f64::INFINITY);
    for order in &best_axis_orders {
        for split_at in min_fill..=(total - min_fill) {
            let (l, r) = group_rects(rects, order, split_at);
            let inter = l.intersection_volume(&r);
            let union_vol = l.volume() + r.volume() - inter;
            let overlap = if union_vol > 0.0 { inter / union_vol } else { 0.0 };
            let key = (overlap, l.volume() + r.volume());
            if key < best_key {
                best_key = key;
                let mut membership = vec![false; total];
                for &i in &order[..split_at] {
                    membership[i] = true;
                }
                best = Some(SplitPlan {
                    left_membership: membership,
                    left_rect: l,
                    right_rect: r,
                    overlap,
                });
            }
        }
    }
    best
}

fn group_rects(rects: &[Rect], order: &[usize], split_at: usize) -> (Rect, Rect) {
    let mut left = rects[order[0]].clone();
    for &i in &order[1..split_at] {
        left.enlarge(&rects[i]);
    }
    let mut right = rects[order[split_at]].clone();
    for &i in &order[split_at + 1..] {
        right.enlarge(&rects[i]);
    }
    (left, right)
}

impl_knn_provider!(XTree);

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Euclidean, KnnProvider, LinearScan};

    fn pseudo_random_dataset(n: usize, dims: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ds = Dataset::new(dims);
        let mut row = vec![0.0; dims];
        for i in 0..n {
            let offset = if i % 3 == 0 { 5.0 } else { 0.0 };
            for v in &mut row {
                *v = offset + next() * 3.0;
            }
            ds.push(&row).unwrap();
        }
        ds
    }

    #[test]
    fn matches_linear_scan_2d() {
        let ds = pseudo_random_dataset(400, 2, 7);
        let tree = XTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(23) {
            for k in [1, 5, 20] {
                assert_eq!(
                    tree.k_nearest(id, k).unwrap(),
                    scan.k_nearest(id, k).unwrap(),
                    "id={id} k={k}"
                );
            }
        }
    }

    #[test]
    fn matches_linear_scan_high_dim() {
        let ds = pseudo_random_dataset(250, 12, 99);
        let tree = XTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(31) {
            assert_eq!(tree.k_nearest(id, 8).unwrap(), scan.k_nearest(id, 8).unwrap());
        }
    }

    #[test]
    fn within_matches_linear_scan() {
        let ds = pseudo_random_dataset(300, 3, 21);
        let tree = XTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(37) {
            for radius in [0.2, 1.0, 4.0] {
                assert_eq!(tree.within(id, radius).unwrap(), scan.within(id, radius).unwrap());
            }
        }
    }

    #[test]
    fn tree_actually_splits() {
        let ds = pseudo_random_dataset(500, 2, 3);
        let tree = XTree::new(&ds, Euclidean);
        assert!(tree.height() >= 2, "500 points must overflow the root");
        assert!(tree.nodes.len() > 1);
    }

    #[test]
    fn structure_invariants_hold() {
        let ds = pseudo_random_dataset(400, 4, 17);
        let tree = XTree::new(&ds, Euclidean);
        // Every node's rect contains its entries; every point is present
        // exactly once.
        let mut seen = vec![0usize; ds.len()];
        for node in &tree.nodes {
            match &node.kind {
                Kind::Leaf(ids) => {
                    for &id in ids {
                        seen[id] += 1;
                        let p = ds.point(id);
                        for (d, &v) in p.iter().enumerate() {
                            assert!(node.rect.lo[d] <= v && v <= node.rect.hi[d]);
                        }
                    }
                }
                Kind::Inner(children) => {
                    for &c in children {
                        assert_eq!(tree.nodes[c].parent, Some(tree.index_of(node)));
                        for d in 0..ds.dims() {
                            assert!(node.rect.lo[d] <= tree.nodes[c].rect.lo[d]);
                            assert!(node.rect.hi[d] >= tree.nodes[c].rect.hi[d]);
                        }
                    }
                }
            }
            assert!(node.entry_count() <= node.capacity());
        }
        assert!(seen.iter().all(|&c| c == 1), "each point indexed exactly once");
    }

    #[test]
    fn supernode_policy_is_an_accuracy_preserving_knob() {
        // Overlappy high-dimensional data: the paper's policy (0.2) forms
        // supernodes, the R*-ablation (1.0) never does, a zero threshold
        // forms at least as many — and all three answer queries exactly.
        let ds = pseudo_random_dataset(300, 10, 5);
        let scan = LinearScan::new(&ds, Euclidean);
        let xtree = XTree::with_options(&ds, Euclidean, XTreeOptions { max_overlap: 0.2 });
        let rstar = XTree::with_options(&ds, Euclidean, XTreeOptions { max_overlap: 1.0 });
        let eager = XTree::with_options(&ds, Euclidean, XTreeOptions { max_overlap: 0.0 });
        assert_eq!(rstar.supernode_count(), 0, "overlap 1.0 must never refuse a split");
        assert!(
            eager.supernode_count() >= xtree.supernode_count(),
            "stricter threshold cannot form fewer supernodes"
        );
        for id in (0..ds.len()).step_by(41) {
            let want = scan.k_nearest(id, 9).unwrap();
            assert_eq!(xtree.k_nearest(id, 9).unwrap(), want);
            assert_eq!(rstar.k_nearest(id, 9).unwrap(), want);
            assert_eq!(eager.k_nearest(id, 9).unwrap(), want);
        }
    }

    #[test]
    fn bulk_load_matches_linear_scan() {
        for (n, dims, seed) in [(400usize, 2usize, 7u64), (300, 6, 19), (50, 3, 5)] {
            let ds = pseudo_random_dataset(n, dims, seed);
            let tree = XTree::bulk_load(&ds, Euclidean);
            let scan = LinearScan::new(&ds, Euclidean);
            for id in (0..ds.len()).step_by(17) {
                for k in [1, 8] {
                    assert_eq!(
                        tree.k_nearest(id, k).unwrap(),
                        scan.k_nearest(id, k).unwrap(),
                        "n={n} dims={dims} id={id} k={k}"
                    );
                }
                assert_eq!(tree.within(id, 2.0).unwrap(), scan.within(id, 2.0).unwrap());
            }
        }
    }

    #[test]
    fn bulk_load_structure_is_packed() {
        let ds = pseudo_random_dataset(1000, 2, 31);
        let bulk = XTree::bulk_load(&ds, Euclidean);
        let inserted = XTree::new(&ds, Euclidean);
        assert_eq!(bulk.supernode_count(), 0);
        // STR slab rounding can cost a few extra leaves, but packing stays
        // within a small constant of the insertion-built structure and well
        // above the information-theoretic floor.
        assert!(
            bulk.nodes.len() <= inserted.nodes.len() * 3 / 2,
            "bulk ({}) should be within 1.5x of insertion ({})",
            bulk.nodes.len(),
            inserted.nodes.len()
        );
        assert!(bulk.nodes.len() >= ds.len().div_ceil(MAX_ENTRIES));
        // Every point indexed exactly once.
        let mut seen = vec![0usize; ds.len()];
        for node in &bulk.nodes {
            if let Kind::Leaf(ids) = &node.kind {
                for &id in ids {
                    seen[id] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn bulk_load_empty_and_tiny() {
        let empty = Dataset::new(2);
        let tree = XTree::bulk_load(&empty, Euclidean);
        assert_eq!(tree.size(), 0);
        let one = Dataset::from_rows(&[[1.0, 2.0]]).unwrap();
        let tree = XTree::bulk_load(&one, Euclidean);
        assert_eq!(tree.within(0, 10.0).unwrap(), vec![]);
    }

    #[test]
    fn high_dimensional_data_forms_supernodes() {
        let ds = pseudo_random_dataset(400, 16, 23);
        let tree = XTree::new(&ds, Euclidean);
        assert!(
            tree.supernode_count() > 0,
            "16-d overlappy data should trigger the supernode mechanism"
        );
    }

    #[test]
    fn duplicates_are_handled() {
        let rows: Vec<[f64; 2]> = (0..100).map(|i| [(i % 2) as f64, 0.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let tree = XTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(11) {
            assert_eq!(tree.k_nearest(id, 7).unwrap(), scan.k_nearest(id, 7).unwrap());
        }
    }

    impl<M: Metric> XTree<'_, M> {
        fn index_of(&self, node: &Node) -> usize {
            self.nodes
                .iter()
                .position(|n| std::ptr::eq(n, node))
                .expect("node belongs to this tree")
        }
    }
}
