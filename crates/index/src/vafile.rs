//! VA-file: vector approximation file (Weber, Schek, Blott, VLDB 1998) —
//! the paper's recommendation for "extremely high-dimensional data", where
//! tree indexes degenerate and a compressed sequential scan wins.
//!
//! Every coordinate is quantized into `2^BITS` equi-width intervals of the
//! data's bounding box; the resulting cell signatures are bit-packed into a
//! contiguous byte buffer (the "approximation file"). Queries scan the
//! signatures computing per-object lower/upper distance bounds, and only
//! refine the survivors against the real vectors (filter-and-refine):
//!
//! 1. scan phase: keep the `k` smallest **upper** bounds as a candidate
//!    threshold, collect objects whose **lower** bound does not exceed it;
//! 2. refine phase: visit candidates in lower-bound order, computing exact
//!    distances; stop once the next lower bound exceeds the running
//!    `k`-distance.
//!
//! Distance bounds use `Metric::min_dist_to_rect` for the lower bound and
//! the farthest-corner distance for the upper bound — exact for the whole
//! Minkowski family (any metric that is monotone in per-dimension
//! coordinate gaps).

use crate::common::impl_knn_provider;
use lof_core::{Dataset, KnnScratch, Metric, Neighbor};

/// Default bits per dimension in the approximation (the VA-file paper's
/// experiments use 4–8; 6 is a good default).
const DEFAULT_BITS: u32 = 6;

/// A VA-file over a borrowed dataset.
///
/// ```
/// use lof_core::{Dataset, Euclidean, KnnProvider};
/// use lof_index::VaFile;
///
/// let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64; 16]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let va = VaFile::new(&data, Euclidean);
/// assert!(va.approximation_bytes() < 60 * 16 * 8 / 5, "compressed signatures");
/// assert_eq!(va.k_nearest(30, 2).unwrap().len(), 2);
/// ```
#[derive(Debug)]
pub struct VaFile<'a, M: Metric> {
    data: &'a Dataset,
    metric: M,
    bits: u32,
    cells: usize,
    lo: Vec<f64>,
    /// Interval width per dimension (strictly positive).
    width: Vec<f64>,
    /// Bit-packed approximations, `BITS * dims` bits per object, stored in
    /// one contiguous buffer.
    approximations: Vec<u8>,
}

impl<'a, M: Metric> VaFile<'a, M> {
    /// Builds the approximation file with the default 6 bits per
    /// dimension, in `O(n · dims)`.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        Self::with_bits(data, metric, DEFAULT_BITS)
    }

    /// Builds the approximation file with an explicit resolution — the
    /// VA-file's central tuning knob: more bits mean a larger signature
    /// file but tighter bounds and fewer exact-distance refinements.
    /// Results are identical at any resolution; only the filtering power
    /// changes.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 8`.
    pub fn with_bits(data: &'a Dataset, metric: M, bits: u32) -> Self {
        assert!((1..=8).contains(&bits), "VA-file bits must be in 1..=8, got {bits}");
        let cells = 1usize << bits;
        let dims = data.dims().max(1);
        let (lo, hi) = data.bounding_box().unwrap_or_else(|| (vec![0.0; dims], vec![1.0; dims]));
        let mut width = Vec::with_capacity(dims);
        for d in 0..dims {
            let extent = hi[d] - lo[d];
            width.push(if extent > 0.0 { extent / cells as f64 } else { 1.0 });
        }

        let bits_per_object = bits as usize * dims;
        let bytes_total = (data.len() * bits_per_object).div_ceil(8);
        let mut buf = Vec::with_capacity(bytes_total + 8);
        let mut acc: u64 = 0;
        let mut acc_bits: u32 = 0;
        for (_, p) in data.iter() {
            for d in 0..dims {
                let cell = cell_index(p[d], lo[d], width[d], cells);
                acc |= (cell as u64) << acc_bits;
                acc_bits += bits;
                while acc_bits >= 8 {
                    buf.push((acc & 0xFF) as u8);
                    acc >>= 8;
                    acc_bits -= 8;
                }
            }
        }
        if acc_bits > 0 {
            buf.push((acc & 0xFF) as u8);
        }
        VaFile { data, metric, bits, cells, lo, width, approximations: buf }
    }

    /// The configured bits per dimension.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of indexed objects.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Size of the approximation file in bytes (diagnostic; the compression
    /// the VA-file trades exactness for).
    pub fn approximation_bytes(&self) -> usize {
        self.approximations.len()
    }

    /// Reads the quantized cell of `object` in dimension `dim`.
    fn cell(&self, object: usize, dim: usize) -> usize {
        let dims = self.data.dims();
        let bit_offset = (object * dims + dim) * self.bits as usize;
        let byte = bit_offset / 8;
        let shift = (bit_offset % 8) as u32;
        // bits <= 8, so two bytes always suffice.
        let lo = self.approximations[byte] as u16;
        let hi = *self.approximations.get(byte + 1).unwrap_or(&0) as u16;
        (((lo | (hi << 8)) >> shift) as usize) & (self.cells - 1)
    }

    /// `(lower, upper)` bounds on the distance from `q` to `object`, from
    /// the approximation alone, using caller-provided per-dimension
    /// buffers for the cell rectangle and its farthest corner.
    fn bounds_into(
        &self,
        q: &[f64],
        object: usize,
        cell_lo: &mut Vec<f64>,
        cell_hi: &mut Vec<f64>,
        far: &mut Vec<f64>,
    ) -> (f64, f64) {
        let dims = self.data.dims();
        cell_lo.clear();
        cell_hi.clear();
        far.clear();
        #[allow(clippy::needless_range_loop)] // indexes q/width/lo in lockstep
        for d in 0..dims {
            let c = self.cell(object, d) as f64;
            // Widen each cell by a hair so that floating-point rounding in
            // the quantization can never push a coordinate outside its cell,
            // which would break the bracketing guarantee.
            let slack = self.width[d] * 1e-9;
            let lo = self.lo[d] + c * self.width[d] - slack;
            let hi = lo + self.width[d] + 2.0 * slack;
            cell_lo.push(lo);
            cell_hi.push(hi);
            // Farthest corner of the cell from q in this dimension.
            far.push(if (q[d] - lo).abs() >= (q[d] - hi).abs() { lo } else { hi });
        }
        let lower = self.metric.min_dist_to_rect(q, cell_lo, cell_hi);
        let upper = self.metric.distance(q, far);
        (lower, upper)
    }

    /// `(lower, upper)` bounds with fresh buffers (tests and one-off use).
    #[cfg(test)]
    fn bounds(&self, q: &[f64], object: usize) -> (f64, f64) {
        self.bounds_into(q, object, &mut Vec::new(), &mut Vec::new(), &mut Vec::new())
    }

    fn search_k_distance(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
    ) -> f64 {
        let KnnScratch { heap: best, heap2: threshold, pairs: candidates, lo, hi, far, .. } =
            scratch;
        // Phase 1: scan approximations, tracking the k smallest upper
        // bounds and staging every lower bound.
        let n = self.data.len();
        threshold.reset(k);
        candidates.clear();
        for id in 0..n {
            if Some(id) == exclude {
                continue;
            }
            let (lower, upper) = self.bounds_into(q, id, lo, hi, far);
            threshold.offer(id, upper);
            candidates.push((lower, id));
        }
        let cutoff = threshold.kth_dist().expect("validated: k candidates exist");
        candidates.retain(|&(lower, _)| lower <= cutoff);
        candidates.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Phase 2: refine in lower-bound order.
        best.reset(k);
        for &(lower, id) in candidates.iter() {
            if lower > best.bound() {
                break;
            }
            best.offer(id, self.metric.distance(q, self.data.point(id)));
        }
        best.kth_dist().expect("validated: at least k candidates exist")
    }

    fn search_within_into(
        &self,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        let KnnScratch { lo, hi, far, .. } = scratch;
        for id in 0..self.data.len() {
            if Some(id) == exclude {
                continue;
            }
            let (lower, _) = self.bounds_into(q, id, lo, hi, far);
            if lower > radius {
                continue; // filtered by the approximation alone
            }
            let d = self.metric.distance(q, self.data.point(id));
            if d <= radius {
                out.push(Neighbor::new(id, d));
            }
        }
    }
}

#[inline]
fn cell_index(value: f64, lo: f64, width: f64, cells: usize) -> usize {
    (((value - lo) / width).floor() as isize).clamp(0, cells as isize - 1) as usize
}

impl_knn_provider!(VaFile);

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Chebyshev, Euclidean, KnnProvider, LinearScan, Manhattan};

    fn dataset(n: usize, dims: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ds = Dataset::new(dims);
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in &mut row {
                *v = next() * 10.0 - 5.0;
            }
            ds.push(&row).unwrap();
        }
        ds
    }

    #[test]
    fn matches_linear_scan_high_dim() {
        let ds = dataset(200, 16, 1234);
        let va = VaFile::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(19) {
            for k in [1, 5, 15] {
                assert_eq!(
                    va.k_nearest(id, k).unwrap(),
                    scan.k_nearest(id, k).unwrap(),
                    "id={id} k={k}"
                );
            }
        }
    }

    #[test]
    fn matches_linear_scan_for_each_metric() {
        let ds = dataset(150, 8, 77);
        let scan_e = LinearScan::new(&ds, Euclidean);
        let scan_m = LinearScan::new(&ds, Manhattan);
        let scan_c = LinearScan::new(&ds, Chebyshev);
        let va_e = VaFile::new(&ds, Euclidean);
        let va_m = VaFile::new(&ds, Manhattan);
        let va_c = VaFile::new(&ds, Chebyshev);
        for id in (0..ds.len()).step_by(13) {
            assert_eq!(va_e.k_nearest(id, 6).unwrap(), scan_e.k_nearest(id, 6).unwrap());
            assert_eq!(va_m.k_nearest(id, 6).unwrap(), scan_m.k_nearest(id, 6).unwrap());
            assert_eq!(va_c.k_nearest(id, 6).unwrap(), scan_c.k_nearest(id, 6).unwrap());
        }
    }

    #[test]
    fn within_matches_linear_scan() {
        let ds = dataset(200, 10, 5);
        let va = VaFile::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(23) {
            for radius in [1.0, 4.0, 12.0] {
                assert_eq!(va.within(id, radius).unwrap(), scan.within(id, radius).unwrap());
            }
        }
    }

    #[test]
    fn approximation_is_compact() {
        let ds = dataset(100, 16, 9);
        let va = VaFile::new(&ds, Euclidean);
        // 6 bits x 16 dims x 100 objects = 9600 bits = 1200 bytes, vs
        // 12,800 bytes of raw f64 coordinates.
        assert_eq!(va.approximation_bytes(), 1200);
    }

    #[test]
    fn bounds_bracket_true_distance() {
        let ds = dataset(80, 6, 31);
        let va = VaFile::new(&ds, Euclidean);
        for id in 0..ds.len() {
            let q = ds.point(0);
            let (lower, upper) = va.bounds(q, id);
            let exact = Euclidean.distance(q, ds.point(id));
            assert!(lower <= exact + 1e-12, "id={id}: lower={lower} exact={exact}");
            assert!(upper >= exact - 1e-12, "id={id}: upper={upper} exact={exact}");
        }
    }

    #[test]
    fn every_resolution_gives_identical_results() {
        let ds = dataset(120, 6, 2025);
        let scan = LinearScan::new(&ds, Euclidean);
        for bits in [1u32, 2, 4, 6, 8] {
            let va = VaFile::with_bits(&ds, Euclidean, bits);
            assert_eq!(va.bits(), bits);
            for id in (0..ds.len()).step_by(17) {
                assert_eq!(
                    va.k_nearest(id, 5).unwrap(),
                    scan.k_nearest(id, 5).unwrap(),
                    "bits={bits} id={id}"
                );
            }
        }
    }

    #[test]
    fn signature_size_scales_with_bits() {
        let ds = dataset(100, 8, 3);
        let small = VaFile::with_bits(&ds, Euclidean, 2);
        let large = VaFile::with_bits(&ds, Euclidean, 8);
        assert_eq!(large.approximation_bytes(), small.approximation_bytes() * 4);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=8")]
    fn rejects_zero_bits() {
        let ds = dataset(10, 2, 1);
        let _ = VaFile::with_bits(&ds, Euclidean, 0);
    }

    #[test]
    fn duplicates_and_degenerate_dims() {
        let rows: Vec<[f64; 3]> = (0..60).map(|i| [(i % 2) as f64, 3.0, (i % 5) as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let va = VaFile::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(7) {
            assert_eq!(va.k_nearest(id, 4).unwrap(), scan.k_nearest(id, 4).unwrap());
        }
    }
}
