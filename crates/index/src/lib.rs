//! # lof-index — k-NN substrates for LOF
//!
//! Section 7.4 of the LOF paper maps dimensionality regimes to index
//! choices for the materialization step:
//!
//! > "For low-dimensional data, we can use a grid based approach which can
//! > answer k-nn queries in constant time … For medium to medium
//! > high-dimensional data, we can use an index, which provides an average
//! > complexity of O(log n) … For extremely high-dimensional data, we need
//! > to use a sequential scan or some variant of it, e.g. the VA-file."
//!
//! This crate provides all of them, each implementing
//! [`lof_core::KnnProvider`] with the paper's tie-inclusive neighborhood
//! semantics, and each verified against the brute-force
//! [`lof_core::LinearScan`] oracle by unit and property tests:
//!
//! | type | regime | paper reference |
//! |---|---|---|
//! | [`GridIndex`] | low dimensions | grid file |
//! | [`KdTree`] | low–medium dimensions | generic tree index |
//! | [`XTree`] | medium–high dimensions | X-tree \[4\], used in the paper's experiments |
//! | [`VaFile`] | very high dimensions | VA-file \[21\] |
//! | [`BallTree`] | any proper metric | — (extension) |
//!
//! ```
//! use lof_core::{Dataset, Euclidean, LofDetector};
//! use lof_index::KdTree;
//!
//! let mut rows: Vec<[f64; 2]> = (0..200)
//!     .map(|i| [(i % 20) as f64, (i / 20) as f64])
//!     .collect();
//! rows.push([100.0, 100.0]);
//! let data = Dataset::from_rows(&rows).unwrap();
//!
//! let index = KdTree::new(&data, Euclidean);
//! let result = LofDetector::with_range(10, 20)
//!     .unwrap()
//!     .detect_with(&index)
//!     .unwrap();
//! assert_eq!(result.ranking()[0].0, 200);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod common;
mod kbest;

pub mod balltree;
pub mod grid;
pub mod kdtree;
pub mod vafile;
pub mod xtree;

pub use balltree::BallTree;
pub use grid::GridIndex;
pub use kbest::KBest;
pub use kdtree::KdTree;
pub use vafile::VaFile;
pub use xtree::{XTree, XTreeOptions};
