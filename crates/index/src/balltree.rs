//! Ball tree: a metric tree that only needs the triangle inequality, so it
//! supports every proper [`Metric`] (not just coordinate-decomposable ones).
//!
//! Not part of the paper's index lineup; included because LOF itself only
//! requires a distance function, and a metric tree lets the full pipeline
//! run efficiently under e.g. Manhattan or Minkowski-3 distances at scale.
//!
//! Construction: recursive two-means-style splitting — pick the point
//! farthest from the node centroid and the point farthest from *it* as
//! poles, assign points to the nearer pole. Search prunes a ball when
//! `d(q, center) - radius` exceeds the current bound.

use crate::common::impl_knn_provider;
use lof_core::{BlockKernel, BoundedMaxHeap, Dataset, KnnScratch, Metric, Neighbor};

const LEAF_SIZE: usize = 16;

#[derive(Debug)]
struct Node {
    center: Vec<f64>,
    radius: f64,
    start: usize,
    end: usize,
    children: Option<(usize, usize)>,
}

/// A ball tree over a borrowed dataset.
///
/// ```
/// use lof_core::{Dataset, Manhattan, KnnProvider};
/// use lof_index::BallTree;
///
/// let rows: Vec<[f64; 2]> = (0..50).map(|i| [(i % 5) as f64, (i / 5) as f64]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let tree = BallTree::new(&data, Manhattan); // any proper metric works
/// assert_eq!(tree.k_nearest(0, 2).unwrap()[0].dist, 1.0);
/// ```
#[derive(Debug)]
pub struct BallTree<'a, M: Metric> {
    data: &'a Dataset,
    metric: M,
    ids: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
    /// Index of the leaf node containing each object, for the leaf-grouped
    /// batch self-join (leaf ranges partition `ids`, so this is total).
    leaf_of: Vec<usize>,
    /// Norm-form surrogate kernel; `None` for generic metrics. Since the
    /// constructor rejects non-metrics, `Some` here implies plain
    /// Euclidean.
    kernel: Option<BlockKernel>,
}

impl<'a, M: Metric> BallTree<'a, M> {
    /// Builds the tree.
    ///
    /// # Panics
    ///
    /// Panics if `metric.is_metric()` is false (e.g.
    /// [`lof_core::SquaredEuclidean`]): ball pruning needs the triangle
    /// inequality, and silently wrong neighbors would be worse than a panic.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        assert!(
            metric.is_metric(),
            "BallTree requires a metric satisfying the triangle inequality"
        );
        let mut ids: Vec<usize> = (0..data.len()).collect();
        let mut nodes = Vec::new();
        let root = if data.is_empty() {
            usize::MAX
        } else {
            let n = data.len();
            build(data, &metric, &mut ids, 0, n, &mut nodes)
        };
        let mut leaf_of = vec![usize::MAX; data.len()];
        for (idx, node) in nodes.iter().enumerate() {
            if node.children.is_none() {
                for &id in &ids[node.start..node.end] {
                    leaf_of[id] = idx;
                }
            }
        }
        let kernel = BlockKernel::for_metric(data, &metric);
        BallTree { data, metric, ids, nodes, root, leaf_of, kernel }
    }

    /// Number of indexed objects.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Checks the ball invariant — every point under a node lies within
    /// the node's radius of its center — for every node.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated node.
    pub fn validate(&self) -> Result<(), String> {
        for (idx, node) in self.nodes.iter().enumerate() {
            for &id in &self.ids[node.start..node.end] {
                let d = self.metric.distance(&node.center, self.data.point(id));
                if d > node.radius * (1.0 + 1e-12) + 1e-12 {
                    return Err(format!(
                        "node {idx} (range {}..{}, radius {}): point {id} at distance {d}",
                        node.start, node.end, node.radius
                    ));
                }
            }
        }
        Ok(())
    }

    fn node_min_dist(&self, q: &[f64], node: usize) -> f64 {
        let n = &self.nodes[node];
        (self.metric.distance(q, &n.center) - n.radius).max(0.0)
    }

    /// Pruning test with a relative tolerance: the ball bound is computed
    /// from a *derived* centroid, so rounding can lift `min_dist` a few ulp
    /// above the true infimum; an exact `>` comparison would then wrongly
    /// prune points lying exactly on the query radius. Loosening only costs
    /// a few extra node visits, never correctness.
    #[inline]
    fn prune(min_dist: f64, bound: f64) -> bool {
        min_dist > bound * (1.0 + 1e-9) + f64::MIN_POSITIVE
    }

    fn search_k_distance(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
    ) -> f64 {
        let best = &mut scratch.heap;
        best.reset(k);
        self.knn_rec(self.root, q, exclude, best);
        best.kth_dist().expect("validated: at least k candidates exist")
    }

    fn knn_rec(
        &self,
        node_id: usize,
        q: &[f64],
        exclude: Option<usize>,
        best: &mut BoundedMaxHeap,
    ) {
        if Self::prune(self.node_min_dist(q, node_id), best.bound()) {
            return;
        }
        let node = &self.nodes[node_id];
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) != exclude {
                        best.offer(id, self.metric.distance(q, self.data.point(id)));
                    }
                }
            }
            Some((left, right)) => {
                let dl = self.node_min_dist(q, left);
                let dr = self.node_min_dist(q, right);
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.knn_rec(first, q, exclude, best);
                self.knn_rec(second, q, exclude, best);
            }
        }
    }

    fn search_within_into(
        &self,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        _scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        if self.root != usize::MAX {
            self.range_rec(self.root, q, radius, exclude, out);
        }
    }

    fn range_rec(
        &self,
        node_id: usize,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        out: &mut Vec<Neighbor>,
    ) {
        if Self::prune(self.node_min_dist(q, node_id), radius) {
            return;
        }
        let node = &self.nodes[node_id];
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) == exclude {
                        continue;
                    }
                    let d = self.metric.distance(q, self.data.point(id));
                    if d <= radius {
                        out.push(Neighbor::new(id, d));
                    }
                }
            }
            Some((left, right)) => {
                self.range_rec(left, q, radius, exclude, out);
                self.range_rec(right, q, radius, exclude, out);
            }
        }
    }

    /// True-space lower bound between a query ball (the group's leaf) and
    /// a tree node: center distance minus both radii, clamped at zero. By
    /// the triangle inequality no point of the node can be closer than
    /// this to any point of the leaf.
    fn ball_ball_min_dist(&self, leaf: &Node, node: usize) -> f64 {
        let n = &self.nodes[node];
        (self.metric.distance(&leaf.center, &n.center) - leaf.radius - n.radius).max(0.0)
    }

    /// Leaf-blocked batch self-join (see [`crate::common::leaf_grouped_batch`]):
    /// queries are grouped by containing leaf, each group traverses the
    /// tree once with shared ball-to-ball pruning, and — for the plain
    /// Euclidean metric — candidate leaves are evaluated through the
    /// norm-form surrogate kernel in squared space. Produces bit-identical
    /// neighborhoods to the per-id `k_nearest_into` loop.
    fn batch_self_join(
        &self,
        ids: std::ops::Range<usize>,
        k: usize,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
        lens: &mut Vec<usize>,
    ) -> lof_core::Result<()> {
        crate::common::leaf_grouped_batch(
            self.size(),
            ids,
            k,
            &self.leaf_of,
            scratch,
            out,
            lens,
            |group, scratch, staged, glens| self.join_group(group, k, scratch, staged, glens),
        )
    }

    /// Answers one leaf group: a shared k-distance descent whose heaps are
    /// emitted directly, then a shared shell pass recovering id-tie-break
    /// casualties at each query's exact k-distance (generic metrics fall
    /// back to a full range collection).
    fn join_group(
        &self,
        group: &[(usize, usize)],
        k: usize,
        scratch: &mut KnnScratch,
        staged: &mut Vec<Neighbor>,
        glens: &mut Vec<usize>,
    ) {
        let gn = group.len();
        let leaf = &self.nodes[group[0].0];
        if scratch.heaps.len() < gn {
            scratch.heaps.resize_with(gn, BoundedMaxHeap::new);
        }
        if scratch.block_pairs.len() < gn {
            scratch.block_pairs.resize_with(gn, Vec::new);
        }
        let KnnScratch { heaps, tile_sq, block_pairs, join_radii, join_lost, stats, .. } = scratch;
        stats.bump_join_groups(1);
        let heaps = &mut heaps[..gn];
        for h in heaps.iter_mut() {
            h.reset(k);
        }
        let pairs = &mut block_pairs[..gn];
        for p in pairs.iter_mut() {
            p.clear();
        }
        join_radii.clear();
        join_lost.clear();
        join_lost.resize(gn, f64::INFINITY);

        if let Some(kernel) = &self.kernel {
            // Constructor rejects non-metrics, so a present kernel means
            // plain Euclidean: the descent runs in squared space (the
            // k-th order statistic commutes with the monotone `sqrt`,
            // even across ties, so the k-distance below is bit-identical
            // to the true-space descent's).
            self.group_knn_sq(self.root, leaf, group, heaps, join_lost);
            for (gi, heap) in heaps.iter().enumerate() {
                let kth_sq = heap.kth_dist().expect("validated: at least k candidates exist");
                join_radii.push((kth_sq.sqrt(), kth_sq));
                // Emit the neighborhood straight from the heap: every
                // point strictly inside the k-distance ball is held (it
                // beats the k-th candidate in `(distance, id)` order);
                // only id-tie-break casualties are missing, recovered by
                // the gated shell pass below.
                for &(sq, id) in heap.entries() {
                    pairs[gi].push((sq.sqrt(), id));
                }
            }
            // Shell gate (same argument as on [`crate::KdTree`]): the
            // tolerance-widened descent prunes guarantee every candidate
            // whose emitted distance could tie a radius was offered, so a
            // tie casualty exists only if some query's minimum lost heap
            // distance maps onto its radius. Otherwise the second
            // traversal — nearly as expensive as the descent itself — is
            // skipped wholesale, which is the common case on continuous
            // data where exact distance ties essentially never occur.
            let needs_shell = join_radii
                .iter()
                .zip(join_lost.iter())
                .any(|(&(radius, _), &lost)| lost.sqrt() == radius);
            if needs_shell {
                stats.bump_shell_passes(1);
                self.group_shell_sq(
                    self.root, leaf, group, join_radii, heaps, kernel, tile_sq, pairs,
                );
            }
        } else {
            self.group_knn_generic(self.root, group, heaps);
            for heap in heaps.iter() {
                let kd = heap.kth_dist().expect("validated: at least k candidates exist");
                join_radii.push((kd, kd));
            }
            self.group_range_generic(self.root, group, join_radii, pairs);
        }

        stats.bump_heap_offers(heaps.iter().map(|h| h.offers()).sum());
        for list in pairs.iter_mut() {
            list.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            staged.extend(list.iter().map(|&(d, id)| Neighbor::new(id, d)));
            glens.push(list.len());
        }
    }

    /// Group k-distance descent for the Euclidean kernel path. Heaps hold
    /// squared distances; node pruning happens in true space (ball bounds
    /// don't square cleanly), taking one `sqrt` of the relevant heap
    /// bound per node. Candidates are offered at the exact scalar
    /// `squared_euclidean` — no surrogate filter here, for the reason
    /// given on [`crate::KdTree`]'s descent: loose bounds would let nearly
    /// everything through the widened cutoff and double the evaluations.
    /// The tolerance in [`Self::prune`] means every point whose emitted
    /// distance could tie a final k-distance is offered, so the per-heap
    /// lost-candidate minimum doubles as the shell-pass necessity test.
    fn group_knn_sq(
        &self,
        node_id: usize,
        leaf: &Node,
        group: &[(usize, usize)],
        heaps: &mut [BoundedMaxHeap],
        lost: &mut [f64],
    ) {
        let group_bound_sq = heaps.iter().fold(0.0f64, |m, h| m.max(h.bound()));
        if Self::prune(self.ball_ball_min_dist(leaf, node_id), group_bound_sq.sqrt()) {
            return;
        }
        let node = &self.nodes[node_id];
        match node.children {
            None => {
                for (gi, &(_, qid)) in group.iter().enumerate() {
                    let q = self.data.point(qid);
                    let bound_sq = heaps[gi].bound();
                    if Self::prune(self.node_min_dist(q, node_id), bound_sq.sqrt()) {
                        continue;
                    }
                    for &id in &self.ids[node.start..node.end] {
                        if id != qid {
                            heaps[gi].offer_tracking(
                                id,
                                lof_core::distance::squared_euclidean(q, self.data.point(id)),
                                &mut lost[gi],
                            );
                        }
                    }
                }
            }
            Some((left, right)) => {
                let dl = self.ball_ball_min_dist(leaf, left);
                let dr = self.ball_ball_min_dist(leaf, right);
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.group_knn_sq(first, leaf, group, heaps, lost);
                self.group_knn_sq(second, leaf, group, heaps, lost);
            }
        }
    }

    /// Shell pass for the Euclidean kernel path: the k-distance heaps were
    /// emitted directly, so this only recovers neighbors dropped by the
    /// heap's id tie-break — points at **exactly** each query's k-distance.
    /// Nodes strictly farther than every radius *or* strictly inside every
    /// ball are skipped (interior points are provably in the heap: their
    /// computed distance is below the k-distance). Both skips widen the
    /// derived-centroid bounds by the same tolerance as [`Self::prune`], so
    /// they only cost node visits, never a tie. Inclusion is decided on the
    /// exact reference distance (`squared_euclidean(..).sqrt()`, the
    /// literal `Euclidean::distance`) equalling the radius, with a dedup
    /// against the heap for ties that were kept.
    #[allow(clippy::too_many_arguments)]
    fn group_shell_sq(
        &self,
        node_id: usize,
        leaf: &Node,
        group: &[(usize, usize)],
        radii: &[(f64, f64)],
        heaps: &[BoundedMaxHeap],
        kernel: &BlockKernel,
        tile_sq: &mut Vec<f64>,
        pairs: &mut [Vec<(f64, usize)>],
    ) {
        let max_r = radii.iter().fold(0.0f64, |m, r| m.max(r.0));
        let min_r = radii.iter().fold(f64::INFINITY, |m, r| m.min(r.0));
        if Self::prune(self.ball_ball_min_dist(leaf, node_id), max_r) {
            return;
        }
        let node = &self.nodes[node_id];
        let center_gap = self.metric.distance(&leaf.center, &node.center);
        let max_dist = center_gap + leaf.radius + node.radius;
        if max_dist * (1.0 + 1e-9) + f64::MIN_POSITIVE < min_r {
            return; // strictly inside every ball: all already in the heaps
        }
        match node.children {
            None => {
                let cands = &self.ids[node.start..node.end];
                let two_slack = 2.0 * kernel.slack();
                for (gi, &(_, qid)) in group.iter().enumerate() {
                    let (radius, r_sq) = radii[gi];
                    let q = self.data.point(qid);
                    if Self::prune(self.node_min_dist(q, node_id), radius) {
                        continue;
                    }
                    let q_max = self.metric.distance(q, &node.center) + node.radius;
                    if q_max * (1.0 + 1e-9) + f64::MIN_POSITIVE < radius {
                        continue;
                    }
                    kernel.surrogates_into(self.data, qid, cands, tile_sq);
                    let lo = r_sq * (1.0 - 1e-9) - two_slack;
                    let hi = crate::common::widen_sq(r_sq) + two_slack;
                    for (ci, &sur) in tile_sq.iter().enumerate() {
                        if lo <= sur && sur <= hi {
                            let id = cands[ci];
                            if id == qid {
                                continue;
                            }
                            let d = lof_core::distance::squared_euclidean(q, self.data.point(id))
                                .sqrt();
                            if d == radius && !heaps[gi].entries().iter().any(|e| e.1 == id) {
                                pairs[gi].push((d, id));
                            }
                        }
                    }
                }
            }
            Some((left, right)) => {
                self.group_shell_sq(left, leaf, group, radii, heaps, kernel, tile_sq, pairs);
                self.group_shell_sq(right, leaf, group, radii, heaps, kernel, tile_sq, pairs);
            }
        }
    }

    /// Group k-distance descent for generic metrics: a node is visited
    /// when *any* group member still needs it; each member applies exactly
    /// the single-query prune before touching a leaf.
    fn group_knn_generic(
        &self,
        node_id: usize,
        group: &[(usize, usize)],
        heaps: &mut [BoundedMaxHeap],
    ) {
        let needed = group.iter().enumerate().any(|(gi, &(_, qid))| {
            !Self::prune(self.node_min_dist(self.data.point(qid), node_id), heaps[gi].bound())
        });
        if !needed {
            return;
        }
        let node = &self.nodes[node_id];
        match node.children {
            None => {
                for (gi, &(_, qid)) in group.iter().enumerate() {
                    let q = self.data.point(qid);
                    if Self::prune(self.node_min_dist(q, node_id), heaps[gi].bound()) {
                        continue;
                    }
                    for &id in &self.ids[node.start..node.end] {
                        if id != qid {
                            heaps[gi].offer(id, self.metric.distance(q, self.data.point(id)));
                        }
                    }
                }
            }
            Some((left, right)) => {
                self.group_knn_generic(left, group, heaps);
                self.group_knn_generic(right, group, heaps);
            }
        }
    }

    /// Group range collection for generic metrics, mirroring the
    /// single-query `range_rec` per member with one traversal per group.
    fn group_range_generic(
        &self,
        node_id: usize,
        group: &[(usize, usize)],
        radii: &[(f64, f64)],
        pairs: &mut [Vec<(f64, usize)>],
    ) {
        let needed = group.iter().zip(radii).any(|(&(_, qid), &(radius, _))| {
            !Self::prune(self.node_min_dist(self.data.point(qid), node_id), radius)
        });
        if !needed {
            return;
        }
        let node = &self.nodes[node_id];
        match node.children {
            None => {
                for (gi, (&(_, qid), &(radius, _))) in group.iter().zip(radii).enumerate() {
                    let q = self.data.point(qid);
                    if Self::prune(self.node_min_dist(q, node_id), radius) {
                        continue;
                    }
                    for &id in &self.ids[node.start..node.end] {
                        if id == qid {
                            continue;
                        }
                        let d = self.metric.distance(q, self.data.point(id));
                        if d <= radius {
                            pairs[gi].push((d, id));
                        }
                    }
                }
            }
            Some((left, right)) => {
                self.group_range_generic(left, group, radii, pairs);
                self.group_range_generic(right, group, radii, pairs);
            }
        }
    }
}

fn build<M: Metric>(
    data: &Dataset,
    metric: &M,
    ids: &mut [usize],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let slice = &ids[start..end];
    let dims = data.dims();

    // Centroid of the slice.
    let mut center = vec![0.0; dims];
    for &id in slice {
        let p = data.point(id);
        for d in 0..dims {
            center[d] += p[d];
        }
    }
    for c in &mut center {
        *c /= slice.len() as f64;
    }
    let radius =
        slice.iter().map(|&id| metric.distance(&center, data.point(id))).fold(0.0, f64::max);

    let count = end - start;
    if count <= LEAF_SIZE || radius == 0.0 {
        nodes.push(Node { center, radius, start, end, children: None });
        return nodes.len() - 1;
    }

    // Poles: farthest from centroid, then farthest from that pole.
    let pole_a = *slice
        .iter()
        .max_by(|&&a, &&b| {
            metric
                .distance(&center, data.point(a))
                .total_cmp(&metric.distance(&center, data.point(b)))
                .then(a.cmp(&b))
        })
        .expect("non-empty slice");
    let pole_b = *slice
        .iter()
        .max_by(|&&a, &&b| {
            metric
                .distance(data.point(pole_a), data.point(a))
                .total_cmp(&metric.distance(data.point(pole_a), data.point(b)))
                .then(a.cmp(&b))
        })
        .expect("non-empty slice");

    // Partition by nearer pole; ties (and identical poles) to A.
    let slice = &mut ids[start..end];
    let mut mid = 0;
    for i in 0..slice.len() {
        let p = data.point(slice[i]);
        let da = metric.distance(p, data.point(pole_a));
        let db = metric.distance(p, data.point(pole_b));
        if da <= db {
            slice.swap(mid, i);
            mid += 1;
        }
    }
    // A degenerate partition (all points to one side) falls back to an even
    // split, which keeps the tree balanced and terminating.
    if mid == 0 || mid == count {
        mid = count / 2;
    }

    let left = build(data, metric, ids, start, start + mid, nodes);
    let right = build(data, metric, ids, start + mid, end, nodes);
    nodes.push(Node { center, radius, start, end, children: Some((left, right)) });
    nodes.len() - 1
}

impl_knn_provider!(BallTree, self_join);

impl<M: Metric> lof_core::PartitionSource for BallTree<'_, M> {
    /// One partition per tree leaf. Ball nodes carry centers and radii,
    /// not rectangles, so the partition boxes are recomputed tight from
    /// the member coordinates.
    fn partitions(&self) -> Vec<lof_core::Partition> {
        crate::common::leaf_partitions(
            self.data,
            &self.metric,
            &self.ids,
            self.nodes.iter().filter(|n| n.children.is_none()).map(|n| (n.start, n.end)),
        )
    }
}

impl<M: Metric> lof_core::PartitionMetric for BallTree<'_, M> {
    fn partition_metric(&self) -> &dyn Metric {
        &self.metric
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Euclidean, KnnProvider, LinearScan, Manhattan, Minkowski, SquaredEuclidean};

    fn dataset(n: usize, dims: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ds = Dataset::new(dims);
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in &mut row {
                *v = next() * 20.0;
            }
            ds.push(&row).unwrap();
        }
        ds
    }

    #[test]
    fn matches_linear_scan_euclidean() {
        let ds = dataset(300, 4, 11);
        let tree = BallTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(29) {
            for k in [1, 6, 25] {
                assert_eq!(
                    tree.k_nearest(id, k).unwrap(),
                    scan.k_nearest(id, k).unwrap(),
                    "id={id} k={k}"
                );
            }
        }
    }

    #[test]
    fn matches_linear_scan_exotic_metrics() {
        let ds = dataset(200, 3, 4242);
        for_metric(&ds, Manhattan);
        for_metric(&ds, Minkowski::new(3.0));
    }

    #[test]
    fn matches_linear_scan_angular() {
        use lof_core::Angular;
        // Strictly positive coordinates so no zero vectors arise.
        let mut ds = Dataset::new(4);
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..150 {
            ds.push(&[next() + 0.1, next() + 0.1, next() + 0.1, next() + 0.1]).unwrap();
        }
        let tree = BallTree::new(&ds, Angular);
        let scan = LinearScan::new(&ds, Angular);
        for id in (0..ds.len()).step_by(13) {
            assert_eq!(tree.k_nearest(id, 6).unwrap(), scan.k_nearest(id, 6).unwrap());
            assert_eq!(tree.within(id, 0.4).unwrap(), scan.within(id, 0.4).unwrap());
        }
        tree.validate().unwrap();
    }

    fn for_metric<M: Metric + Clone>(ds: &Dataset, metric: M) {
        let tree = BallTree::new(ds, metric.clone());
        let scan = LinearScan::new(ds, metric);
        for id in (0..ds.len()).step_by(17) {
            assert_eq!(tree.k_nearest(id, 7).unwrap(), scan.k_nearest(id, 7).unwrap());
            assert_eq!(tree.within(id, 5.0).unwrap(), scan.within(id, 5.0).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "triangle inequality")]
    fn rejects_non_metric() {
        let ds = dataset(10, 2, 1);
        let _ = BallTree::new(&ds, SquaredEuclidean);
    }

    #[test]
    fn duplicate_heavy_data() {
        let rows: Vec<[f64; 2]> = (0..80).map(|i| [(i % 2) as f64, (i % 3) as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let tree = BallTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(9) {
            assert_eq!(tree.k_nearest(id, 10).unwrap(), scan.k_nearest(id, 10).unwrap());
        }
    }

    #[test]
    fn splits_beyond_root() {
        let ds = dataset(300, 4, 11);
        let tree = BallTree::new(&ds, Euclidean);
        assert!(tree.node_count() > 1);
    }
}
