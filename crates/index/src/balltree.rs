//! Ball tree: a metric tree that only needs the triangle inequality, so it
//! supports every proper [`Metric`] (not just coordinate-decomposable ones).
//!
//! Not part of the paper's index lineup; included because LOF itself only
//! requires a distance function, and a metric tree lets the full pipeline
//! run efficiently under e.g. Manhattan or Minkowski-3 distances at scale.
//!
//! Construction: recursive two-means-style splitting — pick the point
//! farthest from the node centroid and the point farthest from *it* as
//! poles, assign points to the nearer pole. Search prunes a ball when
//! `d(q, center) - radius` exceeds the current bound.

use crate::common::impl_knn_provider;
use lof_core::{BoundedMaxHeap, Dataset, KnnScratch, Metric, Neighbor};

const LEAF_SIZE: usize = 16;

#[derive(Debug)]
struct Node {
    center: Vec<f64>,
    radius: f64,
    start: usize,
    end: usize,
    children: Option<(usize, usize)>,
}

/// A ball tree over a borrowed dataset.
///
/// ```
/// use lof_core::{Dataset, Manhattan, KnnProvider};
/// use lof_index::BallTree;
///
/// let rows: Vec<[f64; 2]> = (0..50).map(|i| [(i % 5) as f64, (i / 5) as f64]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let tree = BallTree::new(&data, Manhattan); // any proper metric works
/// assert_eq!(tree.k_nearest(0, 2).unwrap()[0].dist, 1.0);
/// ```
#[derive(Debug)]
pub struct BallTree<'a, M: Metric> {
    data: &'a Dataset,
    metric: M,
    ids: Vec<usize>,
    nodes: Vec<Node>,
    root: usize,
}

impl<'a, M: Metric> BallTree<'a, M> {
    /// Builds the tree.
    ///
    /// # Panics
    ///
    /// Panics if `metric.is_metric()` is false (e.g.
    /// [`lof_core::SquaredEuclidean`]): ball pruning needs the triangle
    /// inequality, and silently wrong neighbors would be worse than a panic.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        assert!(
            metric.is_metric(),
            "BallTree requires a metric satisfying the triangle inequality"
        );
        let mut ids: Vec<usize> = (0..data.len()).collect();
        let mut nodes = Vec::new();
        let root = if data.is_empty() {
            usize::MAX
        } else {
            let n = data.len();
            build(data, &metric, &mut ids, 0, n, &mut nodes)
        };
        BallTree { data, metric, ids, nodes, root }
    }

    /// Number of indexed objects.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Number of tree nodes (diagnostic).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Checks the ball invariant — every point under a node lies within
    /// the node's radius of its center — for every node.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated node.
    pub fn validate(&self) -> Result<(), String> {
        for (idx, node) in self.nodes.iter().enumerate() {
            for &id in &self.ids[node.start..node.end] {
                let d = self.metric.distance(&node.center, self.data.point(id));
                if d > node.radius * (1.0 + 1e-12) + 1e-12 {
                    return Err(format!(
                        "node {idx} (range {}..{}, radius {}): point {id} at distance {d}",
                        node.start, node.end, node.radius
                    ));
                }
            }
        }
        Ok(())
    }

    fn node_min_dist(&self, q: &[f64], node: usize) -> f64 {
        let n = &self.nodes[node];
        (self.metric.distance(q, &n.center) - n.radius).max(0.0)
    }

    /// Pruning test with a relative tolerance: the ball bound is computed
    /// from a *derived* centroid, so rounding can lift `min_dist` a few ulp
    /// above the true infimum; an exact `>` comparison would then wrongly
    /// prune points lying exactly on the query radius. Loosening only costs
    /// a few extra node visits, never correctness.
    #[inline]
    fn prune(min_dist: f64, bound: f64) -> bool {
        min_dist > bound * (1.0 + 1e-9) + f64::MIN_POSITIVE
    }

    fn search_k_distance(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
    ) -> f64 {
        let best = &mut scratch.heap;
        best.reset(k);
        self.knn_rec(self.root, q, exclude, best);
        best.kth_dist().expect("validated: at least k candidates exist")
    }

    fn knn_rec(
        &self,
        node_id: usize,
        q: &[f64],
        exclude: Option<usize>,
        best: &mut BoundedMaxHeap,
    ) {
        if Self::prune(self.node_min_dist(q, node_id), best.bound()) {
            return;
        }
        let node = &self.nodes[node_id];
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) != exclude {
                        best.offer(id, self.metric.distance(q, self.data.point(id)));
                    }
                }
            }
            Some((left, right)) => {
                let dl = self.node_min_dist(q, left);
                let dr = self.node_min_dist(q, right);
                let (first, second) = if dl <= dr { (left, right) } else { (right, left) };
                self.knn_rec(first, q, exclude, best);
                self.knn_rec(second, q, exclude, best);
            }
        }
    }

    fn search_within_into(
        &self,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        _scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        if self.root != usize::MAX {
            self.range_rec(self.root, q, radius, exclude, out);
        }
    }

    fn range_rec(
        &self,
        node_id: usize,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        out: &mut Vec<Neighbor>,
    ) {
        if Self::prune(self.node_min_dist(q, node_id), radius) {
            return;
        }
        let node = &self.nodes[node_id];
        match node.children {
            None => {
                for &id in &self.ids[node.start..node.end] {
                    if Some(id) == exclude {
                        continue;
                    }
                    let d = self.metric.distance(q, self.data.point(id));
                    if d <= radius {
                        out.push(Neighbor::new(id, d));
                    }
                }
            }
            Some((left, right)) => {
                self.range_rec(left, q, radius, exclude, out);
                self.range_rec(right, q, radius, exclude, out);
            }
        }
    }
}

fn build<M: Metric>(
    data: &Dataset,
    metric: &M,
    ids: &mut [usize],
    start: usize,
    end: usize,
    nodes: &mut Vec<Node>,
) -> usize {
    let slice = &ids[start..end];
    let dims = data.dims();

    // Centroid of the slice.
    let mut center = vec![0.0; dims];
    for &id in slice {
        let p = data.point(id);
        for d in 0..dims {
            center[d] += p[d];
        }
    }
    for c in &mut center {
        *c /= slice.len() as f64;
    }
    let radius =
        slice.iter().map(|&id| metric.distance(&center, data.point(id))).fold(0.0, f64::max);

    let count = end - start;
    if count <= LEAF_SIZE || radius == 0.0 {
        nodes.push(Node { center, radius, start, end, children: None });
        return nodes.len() - 1;
    }

    // Poles: farthest from centroid, then farthest from that pole.
    let pole_a = *slice
        .iter()
        .max_by(|&&a, &&b| {
            metric
                .distance(&center, data.point(a))
                .total_cmp(&metric.distance(&center, data.point(b)))
                .then(a.cmp(&b))
        })
        .expect("non-empty slice");
    let pole_b = *slice
        .iter()
        .max_by(|&&a, &&b| {
            metric
                .distance(data.point(pole_a), data.point(a))
                .total_cmp(&metric.distance(data.point(pole_a), data.point(b)))
                .then(a.cmp(&b))
        })
        .expect("non-empty slice");

    // Partition by nearer pole; ties (and identical poles) to A.
    let slice = &mut ids[start..end];
    let mut mid = 0;
    for i in 0..slice.len() {
        let p = data.point(slice[i]);
        let da = metric.distance(p, data.point(pole_a));
        let db = metric.distance(p, data.point(pole_b));
        if da <= db {
            slice.swap(mid, i);
            mid += 1;
        }
    }
    // A degenerate partition (all points to one side) falls back to an even
    // split, which keeps the tree balanced and terminating.
    if mid == 0 || mid == count {
        mid = count / 2;
    }

    let left = build(data, metric, ids, start, start + mid, nodes);
    let right = build(data, metric, ids, start + mid, end, nodes);
    nodes.push(Node { center, radius, start, end, children: Some((left, right)) });
    nodes.len() - 1
}

impl_knn_provider!(BallTree);

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Euclidean, KnnProvider, LinearScan, Manhattan, Minkowski, SquaredEuclidean};

    fn dataset(n: usize, dims: usize, seed: u64) -> Dataset {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut ds = Dataset::new(dims);
        let mut row = vec![0.0; dims];
        for _ in 0..n {
            for v in &mut row {
                *v = next() * 20.0;
            }
            ds.push(&row).unwrap();
        }
        ds
    }

    #[test]
    fn matches_linear_scan_euclidean() {
        let ds = dataset(300, 4, 11);
        let tree = BallTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(29) {
            for k in [1, 6, 25] {
                assert_eq!(
                    tree.k_nearest(id, k).unwrap(),
                    scan.k_nearest(id, k).unwrap(),
                    "id={id} k={k}"
                );
            }
        }
    }

    #[test]
    fn matches_linear_scan_exotic_metrics() {
        let ds = dataset(200, 3, 4242);
        for_metric(&ds, Manhattan);
        for_metric(&ds, Minkowski::new(3.0));
    }

    #[test]
    fn matches_linear_scan_angular() {
        use lof_core::Angular;
        // Strictly positive coordinates so no zero vectors arise.
        let mut ds = Dataset::new(4);
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..150 {
            ds.push(&[next() + 0.1, next() + 0.1, next() + 0.1, next() + 0.1]).unwrap();
        }
        let tree = BallTree::new(&ds, Angular);
        let scan = LinearScan::new(&ds, Angular);
        for id in (0..ds.len()).step_by(13) {
            assert_eq!(tree.k_nearest(id, 6).unwrap(), scan.k_nearest(id, 6).unwrap());
            assert_eq!(tree.within(id, 0.4).unwrap(), scan.within(id, 0.4).unwrap());
        }
        tree.validate().unwrap();
    }

    fn for_metric<M: Metric + Clone>(ds: &Dataset, metric: M) {
        let tree = BallTree::new(ds, metric.clone());
        let scan = LinearScan::new(ds, metric);
        for id in (0..ds.len()).step_by(17) {
            assert_eq!(tree.k_nearest(id, 7).unwrap(), scan.k_nearest(id, 7).unwrap());
            assert_eq!(tree.within(id, 5.0).unwrap(), scan.within(id, 5.0).unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "triangle inequality")]
    fn rejects_non_metric() {
        let ds = dataset(10, 2, 1);
        let _ = BallTree::new(&ds, SquaredEuclidean);
    }

    #[test]
    fn duplicate_heavy_data() {
        let rows: Vec<[f64; 2]> = (0..80).map(|i| [(i % 2) as f64, (i % 3) as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let tree = BallTree::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(9) {
            assert_eq!(tree.k_nearest(id, 10).unwrap(), scan.k_nearest(id, 10).unwrap());
        }
    }

    #[test]
    fn splits_beyond_root() {
        let ds = dataset(300, 4, 11);
        let tree = BallTree::new(&ds, Euclidean);
        assert!(tree.node_count() > 1);
    }
}
