//! Uniform grid index — the paper's low-dimensional regime: "for
//! low-dimensional data, we can use a grid based approach which can answer
//! k-nn queries in constant time".
//!
//! The bounding box is partitioned into equal cells sized so that the
//! average occupancy is a small constant. Queries expand outward in
//! Chebyshev "shells" of cells around the query's cell and stop as soon as
//! the nearest possible point of the next shell cannot beat the current
//! pruning bound. Per-cell `min_dist_to_rect` pruning handles anisotropy.
//!
//! Above a handful of dimensions the cell count per dimension collapses to 1
//! and the grid degenerates into a (correct) sequential scan — the expected
//! behavior; use the kd-tree/X-tree there instead.

use crate::common::impl_knn_provider;
use lof_core::{Dataset, KnnScratch, Metric, Neighbor};

/// Target mean number of points per (non-empty) cell.
const TARGET_OCCUPANCY: f64 = 4.0;
/// Hard cap on total cells, to bound memory.
const MAX_TOTAL_CELLS: usize = 1 << 20;

/// A uniform grid over a borrowed dataset.
///
/// ```
/// use lof_core::{Dataset, Euclidean, KnnProvider};
/// use lof_index::GridIndex;
///
/// let rows: Vec<[f64; 2]> = (0..100).map(|i| [(i % 10) as f64, (i / 10) as f64]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let grid = GridIndex::new(&data, Euclidean);
/// assert_eq!(grid.within(0, 1.0).unwrap().len(), 2);
/// ```
#[derive(Debug)]
pub struct GridIndex<'a, M: Metric> {
    data: &'a Dataset,
    metric: M,
    lo: Vec<f64>,
    /// Cell edge length per dimension (strictly positive).
    cell_width: Vec<f64>,
    /// Cells per dimension (>= 1).
    cells_per_dim: Vec<usize>,
    /// Flat row-major buckets of point ids.
    buckets: Vec<Vec<usize>>,
}

impl<'a, M: Metric> GridIndex<'a, M> {
    /// Builds the grid in `O(n)`.
    pub fn new(data: &'a Dataset, metric: M) -> Self {
        let dims = data.dims().max(1);
        let (lo, hi) = data.bounding_box().unwrap_or_else(|| (vec![0.0; dims], vec![1.0; dims]));

        // Pick cells-per-dim so that total cells ≈ n / occupancy, evenly
        // split across dimensions, capped for memory.
        let n = data.len().max(1);
        let want_total = (n as f64 / TARGET_OCCUPANCY).max(1.0);
        let per_dim = want_total.powf(1.0 / dims as f64).floor().max(1.0) as usize;
        let mut cells_per_dim = vec![per_dim; dims];
        while cells_per_dim.iter().product::<usize>() > MAX_TOTAL_CELLS {
            for c in &mut cells_per_dim {
                *c = (*c / 2).max(1);
            }
        }

        let mut cell_width = Vec::with_capacity(dims);
        for d in 0..dims {
            let extent = hi[d] - lo[d];
            // Degenerate extents (all points share the coordinate) get unit
            // cells; every point then lands in cell 0 of that dimension.
            cell_width.push(if extent > 0.0 { extent / cells_per_dim[d] as f64 } else { 1.0 });
        }

        let total: usize = cells_per_dim.iter().product();
        let mut buckets = vec![Vec::new(); total];
        let me = GridIndex { data, metric, lo, cell_width, cells_per_dim, buckets: Vec::new() };
        let mut cell = Vec::new();
        for (id, p) in data.iter() {
            me.cell_of_into(p, &mut cell);
            buckets[me.flatten(&cell)].push(id);
        }
        GridIndex { buckets, ..me }
    }

    /// Number of indexed objects.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Total number of grid cells (for diagnostics and tests).
    pub fn cell_count(&self) -> usize {
        self.buckets.len()
    }

    /// Writes the grid cell coordinates containing point `p` into `out`.
    fn cell_of_into(&self, p: &[f64], out: &mut Vec<usize>) {
        out.clear();
        out.extend((0..p.len()).map(|d| {
            let raw = ((p[d] - self.lo[d]) / self.cell_width[d]).floor() as isize;
            raw.clamp(0, self.cells_per_dim[d] as isize - 1) as usize
        }));
    }

    fn flatten(&self, cell: &[usize]) -> usize {
        cell.iter().zip(&self.cells_per_dim).fold(0, |idx, (&c, &per_dim)| idx * per_dim + c)
    }

    /// Lower bound on the distance from `q` to any cell of the rectangle
    /// `[cell_lo_idx, cell_hi_idx]`'s *exterior* ring at Chebyshev cell
    /// radius `shell`; used to terminate shell expansion. The region covered
    /// by shells `0..shell` is the box extending `shell - 1` cells around
    /// `q`'s cell; any point beyond it is at least the gap to that box's
    /// nearest face away.
    fn shell_min_dist(&self, q: &[f64], center: &[usize], shell: usize) -> f64 {
        if shell == 0 {
            return 0.0;
        }
        let inner = shell - 1;
        let mut min_gap = f64::INFINITY;
        for d in 0..q.len() {
            let lo_cell = center[d].saturating_sub(inner);
            let hi_cell = (center[d] + inner).min(self.cells_per_dim[d] - 1);
            let box_lo = self.lo[d] + lo_cell as f64 * self.cell_width[d];
            let box_hi = self.lo[d] + (hi_cell + 1) as f64 * self.cell_width[d];
            // If the inner box already spans this whole dimension, leaving
            // through it is impossible; it imposes no exit gap.
            let spans_dim = lo_cell == 0 && hi_cell == self.cells_per_dim[d] - 1;
            if spans_dim {
                continue;
            }
            let gap = (q[d] - box_lo).min(box_hi - q[d]).max(0.0);
            min_gap = min_gap.min(gap);
        }
        if min_gap.is_infinite() {
            // The inner box covers the entire grid: there is no next shell.
            f64::INFINITY
        } else {
            min_gap
        }
    }

    /// Visits every cell whose Chebyshev distance (in cell units) from
    /// `center` is exactly `shell`, calling `f(bucket_index, cell_coords)`.
    /// `walk` is a reusable coordinate buffer for the enumeration.
    fn for_each_shell_cell(
        &self,
        center: &[usize],
        shell: usize,
        walk: &mut Vec<usize>,
        f: &mut impl FnMut(usize, &[usize]),
    ) {
        walk.clear();
        walk.resize(center.len(), 0);
        self.shell_rec(center, shell, 0, false, walk, f);
    }

    #[allow(clippy::too_many_arguments)]
    fn shell_rec(
        &self,
        center: &[usize],
        shell: usize,
        dim: usize,
        pinned: bool,
        cell: &mut Vec<usize>,
        f: &mut impl FnMut(usize, &[usize]),
    ) {
        let dims = center.len();
        if dim == dims {
            if pinned || shell == 0 {
                f(self.flatten(cell), cell);
            }
            return;
        }
        let c = center[dim] as isize;
        let s = shell as isize;
        let max = self.cells_per_dim[dim] as isize - 1;
        let lo = (c - s).max(0);
        let hi = (c + s).min(max);
        for v in lo..=hi {
            let offset = (v - c).unsigned_abs();
            // Cells strictly inside the shell in this dim are only valid if
            // some other dim pins the Chebyshev distance to `shell`.
            cell[dim] = v as usize;
            let now_pinned = pinned || offset == shell;
            // Prune: if no remaining dim can reach offset == shell and we
            // are not pinned yet, only continue when a later dim could pin.
            self.shell_rec(center, shell, dim + 1, now_pinned, cell, f);
        }
    }

    /// Writes the rectangle of `cell` into the `lo`/`hi` buffers.
    fn cell_rect_into(&self, cell: &[usize], lo: &mut Vec<f64>, hi: &mut Vec<f64>) {
        lo.clear();
        hi.clear();
        for (d, &c) in cell.iter().enumerate() {
            lo.push(self.lo[d] + c as f64 * self.cell_width[d]);
            hi.push(self.lo[d] + (c + 1) as f64 * self.cell_width[d]);
        }
    }

    fn max_shell(&self) -> usize {
        self.cells_per_dim.iter().max().copied().unwrap_or(1)
    }

    fn search_k_distance(
        &self,
        q: &[f64],
        k: usize,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
    ) -> f64 {
        // Disjoint field borrows: `cell` holds the query's cell, `cell2`
        // walks the shells, `lo`/`hi` stage each visited cell's rectangle.
        let KnnScratch { heap: best, cell: center, cell2: walk, lo, hi, .. } = scratch;
        self.cell_of_into(q, center);
        best.reset(k);
        for shell in 0..=self.max_shell() {
            if self.shell_min_dist(q, center, shell) > best.bound() {
                break;
            }
            self.for_each_shell_cell(center, shell, walk, &mut |bucket, cell| {
                self.cell_rect_into(cell, lo, hi);
                if self.metric.min_dist_to_rect(q, lo, hi) > best.bound() {
                    return;
                }
                for &id in &self.buckets[bucket] {
                    if Some(id) != exclude {
                        best.offer(id, self.metric.distance(q, self.data.point(id)));
                    }
                }
            });
        }
        best.kth_dist().expect("validated: at least k candidates exist")
    }

    fn search_within_into(
        &self,
        q: &[f64],
        radius: f64,
        exclude: Option<usize>,
        scratch: &mut KnnScratch,
        out: &mut Vec<Neighbor>,
    ) {
        let KnnScratch { cell: center, cell2: walk, lo, hi, .. } = scratch;
        self.cell_of_into(q, center);
        for shell in 0..=self.max_shell() {
            if self.shell_min_dist(q, center, shell) > radius {
                break;
            }
            self.for_each_shell_cell(center, shell, walk, &mut |bucket, cell| {
                self.cell_rect_into(cell, lo, hi);
                if self.metric.min_dist_to_rect(q, lo, hi) > radius {
                    return;
                }
                for &id in &self.buckets[bucket] {
                    if Some(id) == exclude {
                        continue;
                    }
                    let d = self.metric.distance(q, self.data.point(id));
                    if d <= radius {
                        out.push(Neighbor::new(id, d));
                    }
                }
            });
        }
    }
}

impl_knn_provider!(GridIndex);

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Euclidean, KnnProvider, LinearScan};

    fn dataset() -> Dataset {
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut rows = Vec::new();
        for _ in 0..300 {
            rows.push([next() * 100.0, next() * 50.0]);
        }
        // A distant point to exercise long shell walks.
        rows.push([1000.0, 1000.0]);
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn matches_linear_scan() {
        let ds = dataset();
        let grid = GridIndex::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(17) {
            for k in [1, 4, 12] {
                assert_eq!(
                    grid.k_nearest(id, k).unwrap(),
                    scan.k_nearest(id, k).unwrap(),
                    "id={id} k={k}"
                );
            }
        }
        // The far point's neighbors live many shells away.
        assert_eq!(grid.k_nearest(300, 3).unwrap(), scan.k_nearest(300, 3).unwrap());
    }

    #[test]
    fn within_matches_linear_scan() {
        let ds = dataset();
        let grid = GridIndex::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in (0..ds.len()).step_by(31) {
            for radius in [0.5, 5.0, 60.0] {
                assert_eq!(grid.within(id, radius).unwrap(), scan.within(id, radius).unwrap());
            }
        }
    }

    #[test]
    fn degenerate_single_coordinate_dimension() {
        // All ys identical: y-extent is zero.
        let rows: Vec<[f64; 2]> = (0..40).map(|i| [i as f64, 7.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let grid = GridIndex::new(&ds, Euclidean);
        let scan = LinearScan::new(&ds, Euclidean);
        for id in 0..ds.len() {
            assert_eq!(grid.k_nearest(id, 3).unwrap(), scan.k_nearest(id, 3).unwrap());
        }
    }

    #[test]
    fn all_points_identical() {
        let rows: Vec<[f64; 2]> = (0..20).map(|_| [1.0, 1.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let grid = GridIndex::new(&ds, Euclidean);
        let nn = grid.k_nearest(0, 5).unwrap();
        assert_eq!(nn.len(), 19, "all duplicates tie at distance 0");
    }

    #[test]
    fn grid_shape_is_reasonable() {
        let ds = dataset();
        let grid = GridIndex::new(&ds, Euclidean);
        assert!(grid.cell_count() >= 1);
        assert!(grid.cell_count() <= MAX_TOTAL_CELLS);
    }
}
