//! Ground-truth tests for the batched join's observability counters
//! (PR 4, obs builds only). The tie-shell recovery counter must fire
//! *exactly* on the duplicate-distance fixtures from
//! `batch_consistency.rs` — nonzero there, zero on tie-free data — and
//! heap offers on a single-leaf tree must equal the instrumented naive
//! scan's n·(n−1) candidate evaluations.
#![cfg(feature = "obs")]

use lof_core::knn::KnnScratch;
use lof_core::{Dataset, Euclidean, KernelStats, KnnProvider};
use lof_index::{BallTree, KdTree};

/// Runs the leaf-grouped batch join over every id, returning the
/// accumulated scratch counters.
fn join_stats<P: KnnProvider>(provider: &P, n: usize, k: usize) -> KernelStats {
    let mut scratch = KnnScratch::new();
    let mut out = Vec::new();
    let mut lens = Vec::new();
    provider.batch_k_nearest(0..n, k, &mut scratch, &mut out, &mut lens).unwrap();
    assert_eq!(lens.len(), n);
    scratch.stats
}

/// Tie-free points: consecutive pairwise distances are all distinct, so
/// no candidate lost at a k-distance can tie it.
fn spread_dataset(n: usize) -> Dataset {
    let rows: Vec<[f64; 2]> = (0..n).map(|i| [i as f64 * 1.37, (i * i) as f64 * 0.093]).collect();
    Dataset::from_rows(&rows).unwrap()
}

#[test]
fn single_leaf_offers_match_the_naive_scan() {
    // n = 12 <= LEAF_SIZE: the whole tree is one leaf, so the group
    // descent offers every other point to every query's heap — exactly
    // the n*(n-1) distance evaluations of a naive scan, no more (the
    // shell pass never offers; it collects by range).
    let n = 12;
    let data = spread_dataset(n);
    for (name, stats) in [
        ("kdtree", join_stats(&KdTree::new(&data, Euclidean), n, 3)),
        ("balltree", join_stats(&BallTree::new(&data, Euclidean), n, 3)),
    ] {
        assert_eq!(stats.heap_offers, (n * (n - 1)) as u64, "{name}: offers == naive scan");
        assert_eq!(stats.join_groups, 1, "{name}: one leaf, one group");
        assert_eq!(stats.shell_passes, 0, "{name}: tie-free data needs no shell recovery");
    }
}

#[test]
fn shell_recoveries_fire_exactly_on_duplicate_distance_fixtures() {
    // Fixture 1 (from batch_consistency): all points identical — every
    // candidate lost from a heap ties the k-distance (zero), so the
    // shell gate must fire.
    let dups = Dataset::from_rows(&[[1.5, -2.0]; 12]).unwrap();
    // Fixture 2: the 6x6 unit grid plus a 4-way duplicate block — tie
    // groups straddle the k-th rank across many leaves.
    let mut rows: Vec<[f64; 2]> = Vec::new();
    for i in 0..36 {
        rows.push([(i % 6) as f64, (i / 6) as f64]);
    }
    for _ in 0..4 {
        rows.push([40.0, 40.0]);
    }
    let grid = Dataset::from_rows(&rows).unwrap();

    for (name, data, k) in [("dups", &dups, 3), ("grid", &grid, 3)] {
        let kd = join_stats(&KdTree::new(data, Euclidean), data.len(), k);
        let ball = join_stats(&BallTree::new(data, Euclidean), data.len(), k);
        assert!(kd.shell_passes > 0, "kdtree/{name}: ties must trigger shell recovery");
        assert!(ball.shell_passes > 0, "balltree/{name}: ties must trigger shell recovery");
        assert!(kd.join_groups >= kd.shell_passes, "kdtree/{name}: at most one shell per group");
        assert!(
            ball.join_groups >= ball.shell_passes,
            "balltree/{name}: at most one shell per group"
        );
    }

    // ...and the negative control: the same assertion machinery on
    // tie-free data reports zero recoveries for every group.
    let spread = spread_dataset(40);
    let kd = join_stats(&KdTree::new(&spread, Euclidean), 40, 3);
    let ball = join_stats(&BallTree::new(&spread, Euclidean), 40, 3);
    assert!(kd.join_groups > 1, "n=40 spans multiple leaves");
    assert_eq!(kd.shell_passes, 0, "kdtree/spread: no ties, no shells");
    assert_eq!(ball.shell_passes, 0, "balltree/spread: no ties, no shells");
}
