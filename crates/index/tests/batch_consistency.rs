//! Property tests for the zero-allocation and batched query paths: for
//! every provider, `k_nearest`, `k_nearest_into`, and `batch_k_nearest`
//! must return **bit-identical** neighbor lists — same ids, same distance
//! bits — and they must all agree with a naive reference that computes
//! every pairwise distance and reduces it tie-inclusively (definition 4).
//! Also proves the lock-free parallel materialization is byte-for-byte
//! identical to the serial build after serialization.

use lof_core::knn::KnnScratch;
use lof_core::neighbors::select_k_tie_inclusive;
use lof_core::{
    build_table_parallel, Dataset, Euclidean, KnnProvider, LinearScan, Metric, Neighbor,
    NeighborhoodTable,
};
use lof_index::{BallTree, GridIndex, KdTree, VaFile, XTree};
use proptest::prelude::*;

/// Random dataset biased toward exact duplicates and ties: coordinates come
/// from a small set of fixed magnitudes plus two continuous ranges, so many
/// points coincide and tie groups straddle the k-th rank.
fn dataset_strategy(max_n: usize, max_dims: usize) -> impl Strategy<Value = Dataset> {
    (2usize..=max_dims, 6usize..=max_n).prop_flat_map(|(dims, n)| {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(0.0), Just(1.0), Just(2.0), Just(-3.5), -50.0..50.0f64,],
                dims,
            ),
            n,
        )
        .prop_map(move |rows| Dataset::from_rows(&rows).expect("finite rows"))
    })
}

/// Naive reference: all pairwise distances, reduced tie-inclusively with
/// the same canonical selection the providers use.
fn naive_k_nearest(data: &Dataset, id: usize, k: usize) -> Vec<Neighbor> {
    let q = data.point(id);
    let all: Vec<Neighbor> = (0..data.len())
        .filter(|&other| other != id)
        .map(|other| Neighbor::new(other, Euclidean.distance(q, data.point(other))))
        .collect();
    select_k_tie_inclusive(all, k)
}

/// Asserts two neighbor lists carry the same ids and the same distance
/// *bits* (stricter than `==`, which would accept `-0.0 == 0.0`).
fn assert_bit_identical(label: &str, got: &[Neighbor], want: &[Neighbor]) {
    assert_eq!(got.len(), want.len(), "{label}: neighborhood sizes diverge");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.id, w.id, "{label}: neighbor ids diverge");
        assert_eq!(
            g.dist.to_bits(),
            w.dist.to_bits(),
            "{label}: distance bits diverge ({} vs {})",
            g.dist,
            w.dist
        );
    }
}

/// Runs one provider through all three query paths and checks each against
/// the naive reference, bit for bit.
fn assert_paths_agree<P: KnnProvider>(name: &str, provider: &P, data: &Dataset, k: usize) {
    let k = k.min(data.len() - 1).max(1);
    let mut scratch = KnnScratch::new();

    // Batched path: one call covering every id.
    let mut batch_out: Vec<Neighbor> = Vec::new();
    let mut batch_lens: Vec<usize> = Vec::new();
    provider
        .batch_k_nearest(0..data.len(), k, &mut scratch, &mut batch_out, &mut batch_lens)
        .unwrap();
    assert_eq!(batch_lens.len(), data.len(), "{name}: one length per id");

    let mut batch_offset = 0;
    let mut into_out: Vec<Neighbor> = Vec::new();
    for id in 0..data.len() {
        let want = naive_k_nearest(data, id, k);

        let allocating = provider.k_nearest(id, k).unwrap();
        assert_bit_identical(&format!("{name}: k_nearest(id={id}, k={k})"), &allocating, &want);

        into_out.clear();
        let added = provider.k_nearest_into(id, k, &mut scratch, &mut into_out).unwrap();
        assert_eq!(added, into_out.len(), "{name}: k_nearest_into reported length");
        assert_bit_identical(&format!("{name}: k_nearest_into(id={id}, k={k})"), &into_out, &want);

        let batch_slice = &batch_out[batch_offset..batch_offset + batch_lens[id]];
        assert_bit_identical(
            &format!("{name}: batch_k_nearest(id={id}, k={k})"),
            batch_slice,
            &want,
        );
        batch_offset += batch_lens[id];
    }
    assert_eq!(batch_offset, batch_out.len(), "{name}: lens must cover the flat output");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn scan_query_paths_are_bit_identical(
        data in dataset_strategy(50, 6),
        k in 1usize..10,
    ) {
        let scan = LinearScan::new(&data, Euclidean);
        assert_paths_agree("scan", &scan, &data, k);
    }

    #[test]
    fn kdtree_query_paths_are_bit_identical(
        data in dataset_strategy(50, 4),
        k in 1usize..10,
    ) {
        let index = KdTree::new(&data, Euclidean);
        assert_paths_agree("kdtree", &index, &data, k);
    }

    #[test]
    fn balltree_query_paths_are_bit_identical(
        data in dataset_strategy(50, 4),
        k in 1usize..10,
    ) {
        let index = BallTree::new(&data, Euclidean);
        assert_paths_agree("balltree", &index, &data, k);
    }

    #[test]
    fn grid_query_paths_are_bit_identical(
        data in dataset_strategy(50, 3),
        k in 1usize..10,
    ) {
        let index = GridIndex::new(&data, Euclidean);
        assert_paths_agree("grid", &index, &data, k);
    }

    #[test]
    fn vafile_query_paths_are_bit_identical(
        data in dataset_strategy(40, 5),
        k in 1usize..8,
    ) {
        let index = VaFile::new(&data, Euclidean);
        assert_paths_agree("vafile", &index, &data, k);
    }

    #[test]
    fn xtree_query_paths_are_bit_identical(
        data in dataset_strategy(40, 4),
        k in 1usize..8,
    ) {
        let index = XTree::new(&data, Euclidean);
        assert_paths_agree("xtree", &index, &data, k);
    }

    #[test]
    fn parallel_tables_serialize_byte_for_byte(
        data in dataset_strategy(60, 4),
        k in 1usize..8,
        threads in 2usize..6,
    ) {
        let k = k.min(data.len() - 1).max(1);
        let scan = LinearScan::new(&data, Euclidean);

        let serial = NeighborhoodTable::build(&scan, k).unwrap();
        let parallel = build_table_parallel(&scan, k, threads).unwrap();

        let dir = std::env::temp_dir();
        let unique = format!("{}_{}_{}", std::process::id(), data.len(), threads);
        let serial_path = dir.join(format!("lof_bc_serial_{unique}.lofm"));
        let parallel_path = dir.join(format!("lof_bc_parallel_{unique}.lofm"));
        serial.save(&serial_path).unwrap();
        parallel.save(&parallel_path).unwrap();
        let serial_bytes = std::fs::read(&serial_path).unwrap();
        let parallel_bytes = std::fs::read(&parallel_path).unwrap();
        let _ = std::fs::remove_file(&serial_path);
        let _ = std::fs::remove_file(&parallel_path);

        prop_assert!(
            serial_bytes == parallel_bytes,
            "parallel table must serialize byte-for-byte like serial \
             (n={}, k={k}, threads={threads})",
            data.len()
        );
    }

    #[test]
    fn index_tables_match_scan_tables(
        data in dataset_strategy(40, 3),
        k in 1usize..6,
    ) {
        // The materialization database is provider-independent: every index
        // yields the same table the brute-force scan does.
        let k = k.min(data.len() - 1).max(1);
        let scan = LinearScan::new(&data, Euclidean);
        let want = NeighborhoodTable::build(&scan, k).unwrap();
        let kd = NeighborhoodTable::build(&KdTree::new(&data, Euclidean), k).unwrap();
        let grid = NeighborhoodTable::build(&GridIndex::new(&data, Euclidean), k).unwrap();
        for id in 0..data.len() {
            prop_assert_eq!(want.neighborhood(id, k).unwrap(), kd.neighborhood(id, k).unwrap());
            prop_assert_eq!(want.neighborhood(id, k).unwrap(), grid.neighborhood(id, k).unwrap());
        }
    }
}

/// Checks a batch over an id subrange (not necessarily starting at 0)
/// against per-id queries: the leaf-grouped join must re-emit
/// neighborhoods in ascending id order relative to the batch start, bit
/// for bit. An empty subrange must succeed and produce nothing.
fn check_subrange<P: KnnProvider>(name: &str, provider: &P, ids: std::ops::Range<usize>, k: usize) {
    let mut scratch = KnnScratch::new();
    let mut batch_out: Vec<Neighbor> = Vec::new();
    let mut batch_lens: Vec<usize> = Vec::new();
    provider
        .batch_k_nearest(ids.clone(), k, &mut scratch, &mut batch_out, &mut batch_lens)
        .unwrap();
    assert_eq!(batch_lens.len(), ids.len(), "{name}: one length per id in the subrange");

    let mut offset = 0;
    let mut want: Vec<Neighbor> = Vec::new();
    for (pos, id) in ids.enumerate() {
        want.clear();
        provider.k_nearest_into(id, k, &mut scratch, &mut want).unwrap();
        let got = &batch_out[offset..offset + batch_lens[pos]];
        assert_bit_identical(&format!("{name}: subrange batch (id={id}, k={k})"), got, &want);
        offset += batch_lens[pos];
    }
    assert_eq!(offset, batch_out.len(), "{name}: lens must cover the flat output");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_subrange_batches_are_bit_identical(
        data in dataset_strategy(60, 4),
        k in 1usize..8,
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
    ) {
        let n = data.len();
        let k = k.min(n - 1).max(1);
        let (a, b) = ((lo_frac * n as f64) as usize, (hi_frac * n as f64) as usize);
        let ids = a.min(b).min(n)..a.max(b).min(n);
        let kd = KdTree::new(&data, Euclidean);
        let ball = BallTree::new(&data, Euclidean);
        check_subrange("kdtree", &kd, ids.clone(), k);
        check_subrange("balltree", &ball, ids, k);
    }
}
#[test]
fn all_duplicate_points_agree_across_paths() {
    let data = Dataset::from_rows(&[[1.5, -2.0]; 12]).unwrap();
    let scan = LinearScan::new(&data, Euclidean);
    assert_paths_agree("scan/dups", &scan, &data, 3);
    assert_paths_agree("kdtree/dups", &KdTree::new(&data, Euclidean), &data, 3);
    assert_paths_agree("balltree/dups", &BallTree::new(&data, Euclidean), &data, 3);
    assert_paths_agree("grid/dups", &GridIndex::new(&data, Euclidean), &data, 3);
    assert_paths_agree("vafile/dups", &VaFile::new(&data, Euclidean), &data, 3);
    assert_paths_agree("xtree/dups", &XTree::new(&data, Euclidean), &data, 3);
}

/// Regression: tie blocks straddling the k-th rank, spread across many
/// tree leaves. Each of the 8 grid "spokes" holds several points at the
/// exact same distance from every grid point, so definition 4 forces
/// oversized neighborhoods and the batched join must reproduce them —
/// and their distance bits — exactly.
#[test]
fn tie_blocks_survive_the_batched_join() {
    let mut rows: Vec<[f64; 2]> = Vec::new();
    // A 6x6 unit grid: axis-aligned neighbors all tie at distance 1,
    // diagonal neighbors at sqrt(2).
    for i in 0..36 {
        rows.push([(i % 6) as f64, (i / 6) as f64]);
    }
    // Four duplicate outliers: a 4-way tie block at distance 0.
    for _ in 0..4 {
        rows.push([40.0, 40.0]);
    }
    let data = Dataset::from_rows(&rows).unwrap();
    for k in [1, 2, 3, 4, 7] {
        assert_paths_agree("scan/ties", &LinearScan::new(&data, Euclidean), &data, k);
        assert_paths_agree("kdtree/ties", &KdTree::new(&data, Euclidean), &data, k);
        assert_paths_agree("balltree/ties", &BallTree::new(&data, Euclidean), &data, k);
        assert_paths_agree("xtree/ties", &XTree::new(&data, Euclidean), &data, k);
    }
}

/// The generic (kernel-less) group paths get their own deterministic
/// coverage: Manhattan routes the kd-tree and ball tree through the
/// per-query rect/ball prunes instead of the surrogate kernel.
#[test]
fn generic_metric_batches_are_bit_identical() {
    use lof_core::Manhattan;
    let mut rows: Vec<[f64; 3]> = Vec::new();
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    for i in 0..120 {
        let offset = if i % 3 == 0 { 8.0 } else { 0.0 };
        rows.push([offset + next() * 2.0, next() * 2.0, (i % 4) as f64]);
    }
    let data = Dataset::from_rows(&rows).unwrap();
    let scan = LinearScan::new(&data, Manhattan);
    let kd = KdTree::new(&data, Manhattan);
    let ball = BallTree::new(&data, Manhattan);
    for k in [1, 5, 11] {
        // Batch vs per-id of the same provider (the generic group paths)...
        check_subrange("kdtree/manhattan", &kd, 0..data.len(), k);
        check_subrange("balltree/manhattan", &ball, 0..data.len(), k);
        // ...and per-id vs the brute-force scan under the same metric.
        for id in (0..data.len()).step_by(7) {
            let want = scan.k_nearest(id, k).unwrap();
            assert_bit_identical(
                &format!("kdtree/manhattan vs scan (id={id})"),
                &kd.k_nearest(id, k).unwrap(),
                &want,
            );
            assert_bit_identical(
                &format!("balltree/manhattan vs scan (id={id})"),
                &ball.k_nearest(id, k).unwrap(),
                &want,
            );
        }
    }
    check_subrange("kdtree/manhattan-sub", &kd, 17..83, 6);
    check_subrange("balltree/manhattan-sub", &ball, 17..83, 6);
    check_subrange("kdtree/manhattan-empty", &kd, 5..5, 6);
}
