//! Property tests: an mmap-backed `.lofd` dataset is indistinguishable —
//! bit for bit — from the same points held in RAM, across every provider
//! family the pipeline materializes through (the blocked kernel behind
//! [`LinearScan`], the kd-tree, and the ball tree) and both SIMD dispatch
//! targets (the native microkernel and the pinned scalar reference).
//!
//! This is the out-of-core exactness contract: tie-inclusive
//! neighborhoods, k-distances, and LOF scores must not change because the
//! coordinates moved from the heap to the page cache.

use lof_core::{
    lof_range_reference, Dataset, Euclidean, Isa, KnnProvider, LinearScan, Lofd, MinPtsRange,
    NeighborhoodTable,
};
use lof_index::{BallTree, KdTree};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Random dataset: n points, dims dimensions, coordinates drawn from a
/// small set of magnitudes including exact duplicates (duplicates stress
/// the tie-inclusive cuts, where any representational drift would show).
fn dataset_strategy(max_n: usize, max_dims: usize) -> impl Strategy<Value = Dataset> {
    (2usize..=max_dims, 8usize..=max_n).prop_flat_map(|(dims, n)| {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(0.0), Just(1.0), Just(-3.5), -100.0..100.0f64, -1.0..1.0f64,],
                dims,
            ),
            n,
        )
        .prop_map(move |rows| Dataset::from_rows(&rows).expect("finite rows"))
    })
}

/// Round-trips `data` through a `.lofd` file and returns the mmap-backed
/// view. Each call gets its own file: proptest cases run concurrently.
fn mapped_copy(data: &Dataset) -> (Dataset, PathBuf) {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "lof-ooc-identity-{}-{}.lofd",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    Lofd::write_dataset(&path, data).expect("write .lofd");
    let mapped = Lofd::open(&path).expect("reopen .lofd").dataset();
    assert!(mapped.is_mapped(), "reopened dataset must be file-backed");
    assert_eq!(&mapped, data, "coordinates round-trip exactly");
    (mapped, path)
}

/// Asserts provider `ooc` (built over the mapped dataset) answers byte-
/// for-byte like `ram` (built over the heap dataset): same neighbor ids,
/// same distance *bits*, same k-distances, same LOF scores over a range.
fn assert_bit_identical<P: KnnProvider, Q: KnnProvider>(name: &str, ram: &P, ooc: &Q, k: usize) {
    let k = k.min(ram.len() - 1).max(1);
    for id in 0..ram.len() {
        let want = ram.k_nearest(id, k).unwrap();
        let got = ooc.k_nearest(id, k).unwrap();
        assert_eq!(got.len(), want.len(), "{name}: |N_k({id})| diverges");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.id, w.id, "{name}: neighbor id diverges at object {id}");
            assert_eq!(
                g.dist.to_bits(),
                w.dist.to_bits(),
                "{name}: distance bits diverge at object {id} -> {}",
                w.id
            );
        }
    }
    let ram_table = NeighborhoodTable::build(ram, k).unwrap();
    let ooc_table = NeighborhoodTable::build(ooc, k).unwrap();
    let range = MinPtsRange::new((k / 2).max(1), k).unwrap();
    for min_pts in range.iter() {
        let want = ram_table.k_distances(min_pts).unwrap();
        let got = ooc_table.k_distances(min_pts).unwrap();
        let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&got), bits(&want), "{name}: k-distances diverge at k={min_pts}");
    }
    let want = lof_range_reference(&ram_table, range).unwrap();
    let got = lof_range_reference(&ooc_table, range).unwrap();
    for min_pts in range.iter() {
        let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
        assert_eq!(
            bits(got.at_min_pts(min_pts).unwrap()),
            bits(want.at_min_pts(min_pts).unwrap()),
            "{name}: LOF values diverge at MinPts={min_pts}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_provider_is_bit_identical_on_mapped_data(
        data in dataset_strategy(48, 4),
        k in 1usize..10,
    ) {
        let (mapped, path) = mapped_copy(&data);
        // Native dispatch (whatever this machine runs) and the pinned
        // scalar reference — `LOF_FORCE_SCALAR`'s target — must both be
        // storage-blind.
        for isa in [lof_core::simd::active(), Isa::Scalar] {
            let ram = LinearScan::with_isa(&data, Euclidean, isa);
            let ooc = LinearScan::with_isa(&mapped, Euclidean, isa);
            assert_bit_identical(&format!("kernel/{isa:?}"), &ram, &ooc, k);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn kdtree_is_bit_identical_on_mapped_data(
        data in dataset_strategy(48, 4),
        k in 1usize..10,
    ) {
        let (mapped, path) = mapped_copy(&data);
        let ram = KdTree::new(&data, Euclidean);
        let ooc = KdTree::new(&mapped, Euclidean);
        assert_bit_identical("kdtree", &ram, &ooc, k);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn balltree_is_bit_identical_on_mapped_data(
        data in dataset_strategy(48, 4),
        k in 1usize..10,
    ) {
        let (mapped, path) = mapped_copy(&data);
        let ram = BallTree::new(&data, Euclidean);
        let ooc = BallTree::new(&mapped, Euclidean);
        assert_bit_identical("balltree", &ram, &ooc, k);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spilled_table_is_bit_identical_on_mapped_data(
        data in dataset_strategy(48, 4),
        k in 1usize..10,
    ) {
        // The full out-of-core stack at once: mapped coordinates feeding
        // a disk-spilled neighborhood table under a budget small enough
        // to force multiple segments.
        let (mapped, path) = mapped_copy(&data);
        let k = k.min(data.len() - 1).max(1);
        let range = MinPtsRange::new((k / 2).max(1), k).unwrap();
        let ram_table = NeighborhoodTable::build(&LinearScan::new(&data, Euclidean), k).unwrap();
        let want = lof_range_reference(&ram_table, range).unwrap();
        let spilled = lof_core::SpilledNeighborhoodTable::build(
            &LinearScan::new(&mapped, Euclidean),
            k,
            1 << 10,
            &std::env::temp_dir(),
        )
        .unwrap();
        for aggregate in [
            lof_core::Aggregate::Max,
            lof_core::Aggregate::Min,
            lof_core::Aggregate::Mean,
        ] {
            let got = spilled.lof_range(range, aggregate).unwrap();
            let bits = |v: &[f64]| v.iter().map(|d| d.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(got.scores()),
                bits(&want.scores(aggregate)),
                "spilled {aggregate:?} scores diverge"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }
}
