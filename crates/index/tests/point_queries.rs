//! Property tests for the query-by-point API (`k_nearest_point` /
//! `within_point`): every index must agree with a hand-rolled scan over
//! arbitrary query points, including points far outside the data's
//! bounding box (where grid clamping and tree pruning are easiest to get
//! wrong).

use lof_core::neighbors::{select_k_tie_inclusive, sort_neighbors};
use lof_core::{Dataset, Euclidean, Metric, Neighbor};
use lof_index::{BallTree, GridIndex, KdTree, VaFile, XTree};
use proptest::prelude::*;

fn oracle_knn(data: &Dataset, q: &[f64], k: usize) -> Vec<Neighbor> {
    let all: Vec<Neighbor> =
        data.iter().map(|(id, p)| Neighbor::new(id, Euclidean.distance(q, p))).collect();
    select_k_tie_inclusive(all, k)
}

fn oracle_within(data: &Dataset, q: &[f64], radius: f64) -> Vec<Neighbor> {
    let mut hits: Vec<Neighbor> = data
        .iter()
        .map(|(id, p)| Neighbor::new(id, Euclidean.distance(q, p)))
        .filter(|n| n.dist <= radius)
        .collect();
    sort_neighbors(&mut hits);
    hits
}

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=3).prop_flat_map(|dims| {
        proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(0.0), Just(7.5), -60.0..60.0f64], dims),
            6usize..40,
        )
        .prop_map(|rows| Dataset::from_rows(&rows).expect("finite rows"))
    })
}

fn query_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(
        prop_oneof![-60.0..60.0f64, Just(0.0), 500.0..1000.0f64, -1000.0..-500.0f64],
        2..=3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn point_queries_match_oracle(
        data in dataset_strategy(),
        query in query_strategy(),
        k in 1usize..8,
        radius in 0.0f64..300.0,
    ) {
        let query: Vec<f64> = query.into_iter().take(data.dims()).collect();
        if query.len() != data.dims() {
            return Ok(()); // dims mismatch between strategies: skip
        }
        let k = k.min(data.len());
        let want_knn = oracle_knn(&data, &query, k);
        let want_within = oracle_within(&data, &query, radius);

        macro_rules! check {
            ($name:literal, $index:expr) => {{
                let index = $index;
                prop_assert_eq!(
                    index.k_nearest_point(&query, k).unwrap(),
                    want_knn.clone(),
                    "{}: k_nearest_point(k={})", $name, k
                );
                prop_assert_eq!(
                    index.within_point(&query, radius).unwrap(),
                    want_within.clone(),
                    "{}: within_point(r={})", $name, radius
                );
            }};
        }
        check!("grid", GridIndex::new(&data, Euclidean));
        check!("kdtree", KdTree::new(&data, Euclidean));
        check!("xtree", XTree::new(&data, Euclidean));
        check!("xtree-bulk", XTree::bulk_load(&data, Euclidean));
        check!("vafile", VaFile::new(&data, Euclidean));
        check!("balltree", BallTree::new(&data, Euclidean));
    }

    #[test]
    fn point_query_validation(
        data in dataset_strategy(),
    ) {
        let index = KdTree::new(&data, Euclidean);
        let wrong_dims = vec![0.0; data.dims() + 1];
        prop_assert!(index.k_nearest_point(&wrong_dims, 1).is_err());
        prop_assert!(index.within_point(&wrong_dims, 1.0).is_err());
        let q = vec![0.0; data.dims()];
        prop_assert!(index.k_nearest_point(&q, 0).is_err());
        prop_assert!(index.k_nearest_point(&q, data.len() + 1).is_err());
    }
}
