//! Property tests: every spatial index answers exactly like the
//! brute-force [`LinearScan`] oracle — same tie-inclusive k-NN sets, same
//! range results — over random datasets, metrics, `k` and radii.

use lof_core::{Chebyshev, Dataset, Euclidean, KnnProvider, LinearScan, Manhattan, Metric};
use lof_index::{BallTree, GridIndex, KdTree, VaFile, XTree};
use proptest::prelude::*;

/// Random dataset: n points, dims dimensions, coordinates drawn from a
/// small set of magnitudes including exact duplicates.
fn dataset_strategy(max_n: usize, max_dims: usize) -> impl Strategy<Value = Dataset> {
    (2usize..=max_dims, 5usize..=max_n).prop_flat_map(|(dims, n)| {
        proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(0.0), Just(1.0), Just(-3.5), -100.0..100.0f64, -1.0..1.0f64,],
                dims,
            ),
            n,
        )
        .prop_map(move |rows| Dataset::from_rows(&rows).expect("finite rows"))
    })
}

fn assert_index_matches_oracle<P: KnnProvider>(
    name: &str,
    index: &P,
    oracle: &LinearScan<'_, impl Metric>,
    data: &Dataset,
    k: usize,
    radius: f64,
) {
    let k = k.min(data.len() - 1).max(1);
    for id in 0..data.len() {
        let got = index.k_nearest(id, k).unwrap();
        let want = oracle.k_nearest(id, k).unwrap();
        assert_eq!(got, want, "{name}: k_nearest(id={id}, k={k}) diverges");
        let got = index.within(id, radius).unwrap();
        let want = oracle.within(id, radius).unwrap();
        assert_eq!(got, want, "{name}: within(id={id}, r={radius}) diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kdtree_matches_oracle_euclidean(
        data in dataset_strategy(60, 4),
        k in 1usize..12,
        radius in 0.0f64..150.0,
    ) {
        let index = KdTree::new(&data, Euclidean);
        let oracle = LinearScan::new(&data, Euclidean);
        assert_index_matches_oracle("kdtree", &index, &oracle, &data, k, radius);
    }

    #[test]
    fn grid_matches_oracle_euclidean(
        data in dataset_strategy(60, 3),
        k in 1usize..12,
        radius in 0.0f64..150.0,
    ) {
        let index = GridIndex::new(&data, Euclidean);
        let oracle = LinearScan::new(&data, Euclidean);
        assert_index_matches_oracle("grid", &index, &oracle, &data, k, radius);
    }

    #[test]
    fn xtree_matches_oracle_euclidean(
        data in dataset_strategy(60, 5),
        k in 1usize..12,
        radius in 0.0f64..150.0,
    ) {
        let index = XTree::new(&data, Euclidean);
        let oracle = LinearScan::new(&data, Euclidean);
        assert_index_matches_oracle("xtree", &index, &oracle, &data, k, radius);
    }

    #[test]
    fn vafile_matches_oracle_euclidean(
        data in dataset_strategy(50, 6),
        k in 1usize..10,
        radius in 0.0f64..150.0,
    ) {
        let index = VaFile::new(&data, Euclidean);
        let oracle = LinearScan::new(&data, Euclidean);
        assert_index_matches_oracle("vafile", &index, &oracle, &data, k, radius);
    }

    #[test]
    fn balltree_matches_oracle_euclidean(
        data in dataset_strategy(60, 4),
        k in 1usize..12,
        radius in 0.0f64..150.0,
    ) {
        let index = BallTree::new(&data, Euclidean);
        let oracle = LinearScan::new(&data, Euclidean);
        assert_index_matches_oracle("balltree", &index, &oracle, &data, k, radius);
    }

    #[test]
    fn indexes_match_oracle_manhattan(
        data in dataset_strategy(40, 3),
        k in 1usize..8,
        radius in 0.0f64..150.0,
    ) {
        let oracle = LinearScan::new(&data, Manhattan);
        let kd = KdTree::new(&data, Manhattan);
        assert_index_matches_oracle("kdtree/L1", &kd, &oracle, &data, k, radius);
        let grid = GridIndex::new(&data, Manhattan);
        assert_index_matches_oracle("grid/L1", &grid, &oracle, &data, k, radius);
        let x = XTree::new(&data, Manhattan);
        assert_index_matches_oracle("xtree/L1", &x, &oracle, &data, k, radius);
        let va = VaFile::new(&data, Manhattan);
        assert_index_matches_oracle("vafile/L1", &va, &oracle, &data, k, radius);
        let ball = BallTree::new(&data, Manhattan);
        assert_index_matches_oracle("balltree/L1", &ball, &oracle, &data, k, radius);
    }

    #[test]
    fn indexes_match_oracle_chebyshev(
        data in dataset_strategy(40, 3),
        k in 1usize..8,
        radius in 0.0f64..150.0,
    ) {
        let oracle = LinearScan::new(&data, Chebyshev);
        let kd = KdTree::new(&data, Chebyshev);
        assert_index_matches_oracle("kdtree/Linf", &kd, &oracle, &data, k, radius);
        let x = XTree::new(&data, Chebyshev);
        assert_index_matches_oracle("xtree/Linf", &x, &oracle, &data, k, radius);
        let ball = BallTree::new(&data, Chebyshev);
        assert_index_matches_oracle("balltree/Linf", &ball, &oracle, &data, k, radius);
    }

    #[test]
    fn neighborhood_cardinality_at_least_k(
        data in dataset_strategy(50, 3),
        k in 1usize..10,
    ) {
        // Definition 4: |N_k(p)| >= k whenever enough objects exist.
        let k = k.min(data.len() - 1).max(1);
        let index = KdTree::new(&data, Euclidean);
        for id in 0..data.len() {
            let nn = index.k_nearest(id, k).unwrap();
            prop_assert!(nn.len() >= k);
            // And everything in the neighborhood is within the k-distance.
            let kdist = nn.last().unwrap().dist;
            prop_assert!(nn.iter().all(|n| n.dist <= kdist));
            // Sorted canonically.
            for w in nn.windows(2) {
                prop_assert!(
                    (w[0].dist, w[0].id) < (w[1].dist, w[1].id)
                        || (w[0].dist < w[1].dist)
                );
            }
        }
    }

    #[test]
    fn k_distance_is_monotone_in_k(
        data in dataset_strategy(40, 3),
    ) {
        let index = KdTree::new(&data, Euclidean);
        let max_k = (data.len() - 1).min(8);
        for id in 0..data.len() {
            let mut prev = 0.0;
            for k in 1..=max_k {
                let kdist = index.k_nearest(id, k).unwrap().last().unwrap().dist;
                prop_assert!(kdist >= prev, "k-distance must grow with k");
                prev = kdist;
            }
        }
    }

    #[test]
    fn point_queries_agree_with_id_queries(
        data in dataset_strategy(40, 3),
        k in 1usize..8,
    ) {
        // k_nearest_point(q, k+1) with q being a dataset point must equal
        // k_nearest(id, k) plus the point itself at distance 0 — when no
        // duplicates are closer than the k-th neighbor's tie group, the
        // relationship is exact on the leading entries.
        let k = k.min(data.len() - 1).max(1);
        let index = KdTree::new(&data, Euclidean);
        for id in 0..data.len().min(10) {
            let by_point = index.k_nearest_point(data.point(id), k + 1).unwrap();
            prop_assert!(by_point.iter().any(|n| n.id == id && n.dist == 0.0));
            prop_assert!(by_point.len() > k);
        }
    }
}
