//! The `lof` command-line tool. See [`lof_cli::usage`] or run `lof --help`.

use lof_cli::{
    load_input, parse_command, render_json_report, render_report, run, run_topn,
    stream_window_config, usage, Command, Config, IngestArgs, MetricChoice, OutputFormat,
    StreamArgs, TopNArgs,
};
use lof_core::{Angular, Chebyshev, Euclidean, Manhattan, Metric};
use lof_serve::{Quotas, ServeConfig, TenantSpec};
use lof_stream::{serve, SlidingWindowLof, StreamStats};
use std::io::{BufRead, BufReader};
use std::process::ExitCode;

/// Which streaming front end to run after the window is built.
#[derive(Clone, Copy)]
enum StreamMode {
    Stdin,
    Tcp,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let command = match parse_command(&args) {
        Ok(command) => command,
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    match command {
        Command::Batch(config) => run_batch(&config),
        Command::TopN(topn) => run_topn_mode(&topn),
        Command::Ingest(ingest) => run_ingest_mode(&ingest),
        Command::Stream(stream) => dispatch_streaming(&stream, StreamMode::Stdin),
        Command::Serve(stream) => dispatch_streaming(&stream, StreamMode::Tcp),
    }
}

/// Streams a named-column CSV into the out-of-core `.lofd` format.
fn run_ingest_mode(args: &IngestArgs) -> ExitCode {
    let input = std::path::Path::new(&args.input);
    let output = std::path::Path::new(&args.output);
    match lof_data::ingest::ingest_csv(input, output, args.columns.as_deref(), args.resume) {
        Ok(report) => {
            let resumed = if report.resumed_rows > 0 {
                format!(" ({} recovered from checkpoint)", report.resumed_rows)
            } else {
                String::new()
            };
            eprintln!(
                "ingested {} rows x {} columns [{}] into {}{resumed}",
                report.rows,
                report.columns.len(),
                report.columns.join(","),
                args.output,
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            if !args.resume {
                eprintln!("(a partial output, if any, can be continued with --resume)");
            }
            ExitCode::FAILURE
        }
    }
}

fn run_topn_mode(args: &TopNArgs) -> ExitCode {
    let data = match load_input(&args.input) {
        Ok(data) => data,
        Err(e) => {
            eprintln!("error: cannot read '{}': {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("loaded {} rows x {} columns from {}", data.len(), data.dims(), args.input);

    let output = match run_topn(args, &data) {
        Ok(output) => output,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", render_report(&output.report));
    if let Some(stats) = &output.stats {
        eprintln!(
            "pruned {} of {} partitions ({} of {} objects) below threshold {:.4}",
            stats.partitions_pruned,
            stats.partitions,
            stats.objects_pruned,
            data.len(),
            output.threshold.unwrap_or(f64::NAN),
        );
    }
    if args.metrics {
        eprintln!("{}", lof_obs::global().render_prometheus());
    }
    ExitCode::SUCCESS
}

fn run_batch(config: &Config) -> ExitCode {
    let data = match load_input(&config.input) {
        Ok(data) => data,
        Err(e) => {
            eprintln!("error: cannot read '{}': {e}", config.input);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("loaded {} rows x {} columns from {}", data.len(), data.dims(), config.input);

    let output = match run(config, &data) {
        Ok(output) => output,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    match config.format {
        OutputFormat::Text => {
            print!("{}", render_report(&output.report));
            for explanation in &output.explanations {
                println!("\n{explanation}");
            }
        }
        OutputFormat::Json => {
            print!("{}", render_json_report(&output.scores, config.threshold));
        }
    }

    if let Some(path) = &config.output {
        let rows: Vec<Vec<f64>> =
            output.scores.iter().enumerate().map(|(id, &s)| vec![id as f64, s]).collect();
        if let Err(e) = lof_data::csv::write_table(path, &["id", "lof"], &rows) {
            eprintln!("error: cannot write '{path}': {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} scores to {path}", rows.len());
    }
    if config.metrics {
        eprintln!("{}", lof_obs::global().render_prometheus());
    }
    ExitCode::SUCCESS
}

/// Monomorphizes the streaming modes over the chosen metric (the window
/// fixes its metric type at construction).
fn dispatch_streaming(args: &StreamArgs, mode: StreamMode) -> ExitCode {
    match args.metric {
        MetricChoice::Euclidean => run_streaming(args, Euclidean, mode),
        MetricChoice::Manhattan => run_streaming(args, Manhattan, mode),
        MetricChoice::Chebyshev => run_streaming(args, Chebyshev, mode),
        MetricChoice::Angular => run_streaming(args, Angular, mode),
    }
}

fn run_streaming<M: Metric + Clone + 'static>(
    args: &StreamArgs,
    metric: M,
    mode: StreamMode,
) -> ExitCode {
    match mode {
        StreamMode::Tcp => return run_serve_mode(args, metric),
        StreamMode::Stdin => {}
    }
    let window = match SlidingWindowLof::new(stream_window_config(args), metric) {
        Ok(window) => window,
        Err(e) => {
            eprintln!("error: invalid window configuration: {e}");
            return ExitCode::FAILURE;
        }
    };
    run_stream_mode(args, window)
}

fn run_stream_mode<M: Metric>(args: &StreamArgs, window: SlidingWindowLof<M>) -> ExitCode {
    let input: Box<dyn BufRead> = match &args.input {
        Some(path) => match std::fs::File::open(path) {
            Ok(file) => Box::new(BufReader::new(file)),
            Err(e) => {
                eprintln!("error: cannot read '{path}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Box::new(std::io::stdin().lock()),
    };
    let stdout = std::io::stdout();
    let mut output = std::io::BufWriter::new(stdout.lock());
    match serve::run_stream(window, input, &mut output) {
        Ok((window, summary)) => {
            drop(output);
            report_stats(window.stats());
            if summary.errors > 0 {
                eprintln!("{} lines were rejected (see in-band error records)", summary.errors);
            }
            if args.metrics {
                report_registry(window.registry());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: stream I/O failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Runs the multi-tenant event-loop server (`lof-serve`) until a wire
/// `DRAIN`, then reports every tenant's final statistics.
fn run_serve_mode<M: Metric + Clone + 'static>(args: &StreamArgs, metric: M) -> ExitCode {
    let spec = TenantSpec {
        config: stream_window_config(args),
        quotas: Quotas { max_events_per_sec: args.max_events_per_sec, ..Quotas::default() },
    };
    let mut config = ServeConfig::new(spec, args.metric.tag());
    if args.workers > 0 {
        config.workers = args.workers;
    }
    if args.queue > 0 {
        config.queue = args.queue;
    }
    if args.tenants > 0 {
        config.max_tenants = args.tenants;
    }
    config.snapshot_dir = args.snapshot_dir.as_ref().map(std::path::PathBuf::from);

    let listener = match std::net::TcpListener::bind(&args.listen) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: cannot bind '{}': {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    match lof_serve::spawn(listener, metric, config) {
        Ok(handle) => {
            eprintln!("listening on {} (NDJSON in, NDJSON out; ctrl-c to stop)", handle.addr());
            let registry = std::sync::Arc::clone(handle.registry());
            let report = match handle.wait() {
                Ok(report) => report,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            for (name, stats) in &report.tenants {
                eprintln!("tenant '{name}':");
                report_stats(stats);
            }
            if args.metrics {
                report_registry(&registry);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot start serve loop: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Final registry snapshot on stderr (`--metrics`), in the same
/// Prometheus text format the serve loop answers to `GET /metrics`.
fn report_registry(registry: &lof_obs::MetricsRegistry) {
    eprintln!("{}", registry.render_prometheus());
}

/// End-of-stream summary on stderr (stdout carries only NDJSON records).
fn report_stats(stats: &StreamStats) {
    let (p50, p95, p99) = stats.latency.percentiles_ns();
    let us = |ns: u64| ns as f64 / 1_000.0;
    eprintln!(
        "{} events ({} scored, {} alerts, {} evictions, {} cascade LOF updates)",
        stats.events, stats.scored, stats.alerts, stats.evictions, stats.cascade_lofs
    );
    eprintln!(
        "latency: p50 {:.1}us  p95 {:.1}us  p99 {:.1}us  max {:.1}us",
        us(p50),
        us(p95),
        us(p99),
        us(stats.latency.max_ns())
    );
}
