//! The `lof` command-line tool. See [`lof_cli::usage`] or run `lof --help`.

use lof_cli::{parse_args, render_report, run, usage};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{}", usage());
        return ExitCode::SUCCESS;
    }

    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("error: {message}\n");
            eprint!("{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let data = match lof_data::csv::load_dataset(&config.input) {
        Ok(data) => data,
        Err(e) => {
            eprintln!("error: cannot read '{}': {e}", config.input);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("loaded {} rows x {} columns from {}", data.len(), data.dims(), config.input);

    let output = match run(&config, &data) {
        Ok(output) => output,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    print!("{}", render_report(&output.report));
    for explanation in &output.explanations {
        println!("\n{explanation}");
    }

    if let Some(path) = &config.output {
        let rows: Vec<Vec<f64>> =
            output.scores.iter().enumerate().map(|(id, &s)| vec![id as f64, s]).collect();
        if let Err(e) = lof_data::csv::write_table(path, &["id", "lof"], &rows) {
            eprintln!("error: cannot write '{path}': {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {} scores to {path}", rows.len());
    }
    ExitCode::SUCCESS
}
