//! Library backing the `lof` command-line tool: argument parsing and the
//! end-to-end run, separated from `main` so both are unit-testable.
//!
//! ```text
//! lof [OPTIONS] <INPUT.csv>
//!
//! Scores every row of a numeric CSV with the Local Outlier Factor
//! (Breunig et al., SIGMOD 2000) and prints a ranked report.
//!
//! OPTIONS:
//!   --minpts LB[..UB]    MinPts value or range          [default: 10..20]
//!   --aggregate AGG      max | min | mean               [default: max]
//!   --metric METRIC      euclidean | manhattan | chebyshev | angular
//!   --index INDEX        auto | scan | grid | kdtree | xtree | vafile | balltree
//!   --columns C1,C2,..   project onto these columns (subspace analysis)
//!   --standardize        z-score the columns first
//!   --threshold T        only report objects with score > T
//!   --top N              only report the N highest scores
//!   --explain N          print full explanations for the top N objects
//!   --threads N          worker threads                 [default: all cores]
//!   --output FILE        also write id,score CSV to FILE
//!   --table FILE         cache the materialization database in FILE
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use lof_core::explain::explain;
use lof_core::{
    build_table_parallel, Aggregate, Angular, Chebyshev, Dataset, Euclidean, KnnProvider,
    LinearScan, LofDetector, Manhattan, Metric, NeighborhoodTable, OutlierResult,
};
use lof_data::normalize::standardize;
use lof_index::{BallTree, GridIndex, KdTree, VaFile, XTree};
use std::fmt::Write as _;

/// Parsed command-line configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Input CSV path.
    pub input: String,
    /// MinPts range (lb, ub).
    pub min_pts: (usize, usize),
    /// Score aggregate over the range.
    pub aggregate: Aggregate,
    /// Distance metric name.
    pub metric: MetricChoice,
    /// Index substrate.
    pub index: IndexChoice,
    /// Project onto these columns (in order) before scoring.
    pub columns: Option<Vec<usize>>,
    /// Standardize columns before scoring.
    pub standardize: bool,
    /// Only report scores above this threshold.
    pub threshold: Option<f64>,
    /// Only report the top N.
    pub top: Option<usize>,
    /// Print explanations for the top N objects.
    pub explain: usize,
    /// Worker threads for materialization and scoring (defaults to every
    /// available core; results are identical at any thread count).
    pub threads: usize,
    /// Optional output CSV path.
    pub output: Option<String>,
    /// Materialization cache: load the table from this file if it exists,
    /// otherwise build it and save it there.
    pub table: Option<String>,
}

/// Supported metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum MetricChoice {
    Euclidean,
    Manhattan,
    Chebyshev,
    Angular,
}

/// Supported index substrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IndexChoice {
    /// Pick by dimensionality: grid for d <= 3, kd-tree for d <= 12,
    /// VA-file beyond.
    Auto,
    Scan,
    Grid,
    KdTree,
    XTree,
    VaFile,
    BallTree,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            input: String::new(),
            min_pts: (10, 20),
            aggregate: Aggregate::Max,
            metric: MetricChoice::Euclidean,
            index: IndexChoice::Auto,
            columns: None,
            standardize: false,
            threshold: None,
            top: None,
            explain: 0,
            threads: default_threads(),
            output: None,
            table: None,
        }
    }
}

/// Parses CLI arguments (excluding the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values, or
/// unparsable numbers.
pub fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut config = Config::default();
    let mut iter = args.iter().peekable();
    let mut positional: Vec<&String> = Vec::new();

    fn value<'a>(
        flag: &str,
        iter: &mut std::iter::Peekable<std::slice::Iter<'a, String>>,
    ) -> Result<&'a String, String> {
        iter.next().ok_or_else(|| format!("{flag} requires a value"))
    }

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--minpts" => {
                let v = value("--minpts", &mut iter)?;
                config.min_pts = parse_min_pts(v)?;
            }
            "--aggregate" => {
                config.aggregate = match value("--aggregate", &mut iter)?.as_str() {
                    "max" => Aggregate::Max,
                    "min" => Aggregate::Min,
                    "mean" => Aggregate::Mean,
                    other => return Err(format!("unknown aggregate '{other}'")),
                };
            }
            "--metric" => {
                config.metric = match value("--metric", &mut iter)?.as_str() {
                    "euclidean" => MetricChoice::Euclidean,
                    "manhattan" => MetricChoice::Manhattan,
                    "chebyshev" => MetricChoice::Chebyshev,
                    "angular" => MetricChoice::Angular,
                    other => return Err(format!("unknown metric '{other}'")),
                };
            }
            "--index" => {
                config.index = match value("--index", &mut iter)?.as_str() {
                    "auto" => IndexChoice::Auto,
                    "scan" => IndexChoice::Scan,
                    "grid" => IndexChoice::Grid,
                    "kdtree" => IndexChoice::KdTree,
                    "xtree" => IndexChoice::XTree,
                    "vafile" => IndexChoice::VaFile,
                    "balltree" => IndexChoice::BallTree,
                    other => return Err(format!("unknown index '{other}'")),
                };
            }
            "--columns" => {
                let list = value("--columns", &mut iter)?;
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(str::trim).map(str::parse).collect();
                config.columns = Some(parsed.map_err(|e| format!("bad --columns '{list}': {e}"))?);
            }
            "--standardize" => config.standardize = true,
            "--threshold" => {
                config.threshold = Some(
                    value("--threshold", &mut iter)?
                        .parse()
                        .map_err(|e| format!("bad --threshold: {e}"))?,
                );
            }
            "--top" => {
                config.top = Some(
                    value("--top", &mut iter)?.parse().map_err(|e| format!("bad --top: {e}"))?,
                );
            }
            "--explain" => {
                config.explain = value("--explain", &mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --explain: {e}"))?;
            }
            "--threads" => {
                config.threads = value("--threads", &mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--output" => config.output = Some(value("--output", &mut iter)?.clone()),
            "--table" => config.table = Some(value("--table", &mut iter)?.clone()),
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            _ => positional.push(arg),
        }
    }

    match positional.as_slice() {
        [input] => config.input = (*input).clone(),
        [] => return Err("missing input CSV path".to_owned()),
        more => return Err(format!("expected one input path, got {}", more.len())),
    }
    Ok(config)
}

/// Default worker-thread count: every available core (1 when the
/// parallelism query fails, e.g. under restrictive sandboxes).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn parse_min_pts(text: &str) -> Result<(usize, usize), String> {
    if let Some((lb, ub)) = text.split_once("..") {
        let lb: usize = lb.parse().map_err(|e| format!("bad MinPts lower bound: {e}"))?;
        let ub: usize = ub.parse().map_err(|e| format!("bad MinPts upper bound: {e}"))?;
        if lb == 0 || lb > ub {
            return Err(format!("invalid MinPts range {lb}..{ub}"));
        }
        Ok((lb, ub))
    } else {
        let k: usize = text.parse().map_err(|e| format!("bad MinPts: {e}"))?;
        if k == 0 {
            return Err("MinPts must be >= 1".to_owned());
        }
        Ok((k, k))
    }
}

/// The scored output of a run, ready for rendering.
#[derive(Debug)]
pub struct RunOutput {
    /// `(id, score)` ranked most-outlying first, after threshold/top cuts.
    pub report: Vec<(usize, f64)>,
    /// Full per-object scores in id order (for `--output`).
    pub scores: Vec<f64>,
    /// Rendered explanations for the requested top objects.
    pub explanations: Vec<String>,
}

/// Runs the pipeline per `config` over an already-loaded dataset.
///
/// # Errors
///
/// Returns a human-readable message on invalid parameters or degenerate
/// data.
pub fn run(config: &Config, raw: &Dataset) -> Result<RunOutput, String> {
    if raw.len() <= config.min_pts.1 {
        return Err(format!(
            "dataset has {} rows but MinPts upper bound is {}; need more rows than MinPts",
            raw.len(),
            config.min_pts.1
        ));
    }
    let projected = match &config.columns {
        Some(columns) => raw.project(columns).map_err(|e| e.to_string())?,
        None => raw.clone(),
    };
    let data = if config.standardize { standardize(&projected) } else { projected };

    let detector = LofDetector::with_range(config.min_pts.0, config.min_pts.1)
        .map_err(|e| e.to_string())?
        .aggregate(config.aggregate)
        .threads(config.threads);

    let index = resolve_index(config, &data);
    let cache = config.table.as_deref();
    let threads = config.threads.max(1);
    let (result, table) = match config.metric {
        MetricChoice::Euclidean => score(&detector, &index, &data, Euclidean, cache, threads)?,
        MetricChoice::Manhattan => score(&detector, &index, &data, Manhattan, cache, threads)?,
        MetricChoice::Chebyshev => score(&detector, &index, &data, Chebyshev, cache, threads)?,
        MetricChoice::Angular => score(&detector, &index, &data, Angular, cache, threads)?,
    };

    let scores = result.scores();
    let mut report = result.ranking();
    if let Some(t) = config.threshold {
        report.retain(|&(_, s)| s > t);
    }
    if let Some(top) = config.top {
        report.truncate(top);
    }

    let mut explanations = Vec::new();
    for &(id, _) in result.ranking().iter().take(config.explain) {
        let ex = explain(&data, &table, config.min_pts.1, id).map_err(|e| e.to_string())?;
        explanations.push(ex.render(&data));
    }
    Ok(RunOutput { report, scores, explanations })
}

/// Resolves `auto` to a concrete index for the data's dimensionality.
fn resolve_index(config: &Config, data: &Dataset) -> IndexChoice {
    match config.index {
        IndexChoice::Auto => {
            // Angular has no rectangle bound: only the ball tree prunes.
            if config.metric == MetricChoice::Angular {
                IndexChoice::BallTree
            } else if data.dims() <= 3 {
                IndexChoice::Grid
            } else if data.dims() <= 12 {
                IndexChoice::KdTree
            } else {
                IndexChoice::VaFile
            }
        }
        concrete => concrete,
    }
}

fn score<M: Metric + Clone>(
    detector: &LofDetector<Euclidean>,
    index: &IndexChoice,
    data: &Dataset,
    metric: M,
    cache: Option<&str>,
    threads: usize,
) -> Result<(OutlierResult, NeighborhoodTable), String> {
    fn go<P: KnnProvider + Sync>(
        detector: &LofDetector<Euclidean>,
        provider: &P,
        cache: Option<&str>,
        threads: usize,
    ) -> Result<(OutlierResult, NeighborhoodTable), String> {
        let table = match cache {
            Some(path) if std::path::Path::new(path).exists() => {
                let table = NeighborhoodTable::load(path).map_err(|e| e.to_string())?;
                if table.len() != provider.len() || table.max_k() < detector.range().ub() {
                    return Err(format!(
                        "cached table '{path}' does not match this run \
                         ({} objects @ max_k {}, need {} @ {})",
                        table.len(),
                        table.max_k(),
                        provider.len(),
                        detector.range().ub()
                    ));
                }
                table
            }
            _ => {
                // `build_table_parallel` falls back to the serial build at
                // `threads == 1` and is byte-identical to it otherwise.
                let table = build_table_parallel(provider, detector.range().ub(), threads)
                    .map_err(|e| e.to_string())?;
                if let Some(path) = cache {
                    table.save(path).map_err(|e| format!("cannot save table: {e}"))?;
                }
                table
            }
        };
        let result = detector.detect_from_table(&table).map_err(|e| e.to_string())?;
        Ok((result, table))
    }
    match index {
        IndexChoice::Scan => go(detector, &LinearScan::new(data, metric), cache, threads),
        IndexChoice::Grid => go(detector, &GridIndex::new(data, metric), cache, threads),
        IndexChoice::KdTree => go(detector, &KdTree::new(data, metric), cache, threads),
        IndexChoice::XTree => go(detector, &XTree::new(data, metric), cache, threads),
        IndexChoice::VaFile => go(detector, &VaFile::new(data, metric), cache, threads),
        IndexChoice::BallTree => go(detector, &BallTree::new(data, metric), cache, threads),
        IndexChoice::Auto => unreachable!("resolved before dispatch"),
    }
}

/// Renders the ranked report as an aligned text table.
pub fn render_report(report: &[(usize, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>8}  {:>10}", "row", "LOF");
    for (id, score) in report {
        let _ = writeln!(out, "{id:>8}  {score:>10.4}");
    }
    out
}

/// Usage text.
pub fn usage() -> &'static str {
    "usage: lof [OPTIONS] <INPUT.csv>

Scores every row of a numeric CSV with the Local Outlier Factor
(Breunig, Kriegel, Ng, Sander; SIGMOD 2000) and prints a ranked report.

options:
  --minpts LB[..UB]   MinPts value or range             [default: 10..20]
  --aggregate AGG     max | min | mean                  [default: max]
  --metric METRIC     euclidean | manhattan | chebyshev | angular
  --index INDEX       auto | scan | grid | kdtree | xtree | vafile | balltree
  --columns C1,C2,..  project onto these columns (subspace analysis)
  --standardize       z-score the columns before computing distances
  --threshold T       only report objects with score > T
  --top N             only report the N highest scores
  --explain N         print full explanations for the top N objects
  --threads N         worker threads (materialization and scoring both
                      parallelize; results are identical at any N)
                                                        [default: all cores]
  --output FILE       also write an id,score CSV to FILE
  --table FILE        cache the materialization: load FILE if present,
                      else build and save it there
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_defaults_and_input() {
        let config = parse_args(&args(&["data.csv"])).unwrap();
        assert_eq!(config.input, "data.csv");
        assert_eq!(config.min_pts, (10, 20));
        assert_eq!(config.aggregate, Aggregate::Max);
        assert_eq!(config.index, IndexChoice::Auto);
        assert!(!config.standardize);
    }

    #[test]
    fn parses_every_flag() {
        let config = parse_args(&args(&[
            "--minpts",
            "5..15",
            "--aggregate",
            "mean",
            "--metric",
            "manhattan",
            "--index",
            "xtree",
            "--standardize",
            "--threshold",
            "1.5",
            "--top",
            "7",
            "--explain",
            "3",
            "--threads",
            "4",
            "--output",
            "scores.csv",
            "in.csv",
        ]))
        .unwrap();
        assert_eq!(config.min_pts, (5, 15));
        assert_eq!(config.aggregate, Aggregate::Mean);
        assert_eq!(config.metric, MetricChoice::Manhattan);
        assert_eq!(config.index, IndexChoice::XTree);
        assert!(config.standardize);
        assert_eq!(config.threshold, Some(1.5));
        assert_eq!(config.top, Some(7));
        assert_eq!(config.explain, 3);
        assert_eq!(config.threads, 4);
        assert_eq!(config.output.as_deref(), Some("scores.csv"));
        assert_eq!(config.input, "in.csv");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["a.csv", "b.csv"])).is_err());
        assert!(parse_args(&args(&["--bogus", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--minpts", "0", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--minpts", "9..3", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--minpts", "abc", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--aggregate", "median", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--threshold"])).is_err());
    }

    #[test]
    fn parses_columns() {
        let config = parse_args(&args(&["--columns", "0, 2,3", "a.csv"])).unwrap();
        assert_eq!(config.columns, Some(vec![0, 2, 3]));
        assert!(parse_args(&args(&["--columns", "0,x", "a.csv"])).is_err());
    }

    #[test]
    fn columns_projection_runs_subspace_analysis() {
        // 3-d data whose outlier only shows in columns (0, 1): projecting
        // away the noisy third column is the paper's subspace workflow.
        let mut rows: Vec<[f64; 3]> = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                rows.push([i as f64, j as f64, (i * j % 7) as f64 * 100.0]);
            }
        }
        rows.push([30.0, 30.0, 300.0]);
        let data = Dataset::from_rows(&rows).unwrap();
        let config = Config {
            input: "unused".into(),
            min_pts: (5, 10),
            columns: Some(vec![0, 1]),
            top: Some(1),
            ..Config::default()
        };
        let output = run(&config, &data).unwrap();
        assert_eq!(output.report[0].0, 36);
    }

    #[test]
    fn default_thread_count_uses_available_cores() {
        let config = parse_args(&args(&["data.csv"])).unwrap();
        assert_eq!(config.threads, default_threads());
        assert!(config.threads >= 1);
    }

    #[test]
    fn thread_counts_agree_on_scores() {
        let data = toy_dataset();
        let base = Config { input: "unused".into(), min_pts: (5, 10), ..Config::default() };
        let serial = run(&Config { threads: 1, ..base.clone() }, &data).unwrap();
        for threads in [2, 3, 8] {
            let parallel = run(&Config { threads, ..base.clone() }, &data).unwrap();
            assert_eq!(serial.scores, parallel.scores, "threads={threads}");
        }
    }

    #[test]
    fn single_min_pts_becomes_degenerate_range() {
        let config = parse_args(&args(&["--minpts", "12", "a.csv"])).unwrap();
        assert_eq!(config.min_pts, (12, 12));
    }

    fn toy_dataset() -> Dataset {
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                rows.push([i as f64, j as f64]);
            }
        }
        rows.push([30.0, 30.0]);
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn run_finds_the_outlier_with_every_index() {
        for index in [
            IndexChoice::Scan,
            IndexChoice::Grid,
            IndexChoice::KdTree,
            IndexChoice::XTree,
            IndexChoice::VaFile,
            IndexChoice::BallTree,
            IndexChoice::Auto,
        ] {
            let config = Config {
                input: "unused".into(),
                min_pts: (5, 10),
                index,
                top: Some(1),
                ..Config::default()
            };
            let output = run(&config, &toy_dataset()).unwrap();
            assert_eq!(output.report[0].0, 36, "{index:?}");
            assert!(output.report[0].1 > 3.0);
        }
    }

    #[test]
    fn threshold_and_top_filter() {
        let config = Config {
            input: "unused".into(),
            min_pts: (5, 10),
            threshold: Some(2.0),
            ..Config::default()
        };
        let output = run(&config, &toy_dataset()).unwrap();
        assert_eq!(output.report.len(), 1);
        assert_eq!(output.scores.len(), 37);
    }

    #[test]
    fn explanations_are_rendered() {
        let config =
            Config { input: "unused".into(), min_pts: (5, 10), explain: 2, ..Config::default() };
        let output = run(&config, &toy_dataset()).unwrap();
        assert_eq!(output.explanations.len(), 2);
        assert!(output.explanations[0].contains("object 36"));
    }

    #[test]
    fn run_validates_dataset_size() {
        let config = Config { input: "unused".into(), min_pts: (10, 50), ..Config::default() };
        let tiny = Dataset::from_rows(&[[0.0], [1.0]]).unwrap();
        assert!(run(&config, &tiny).is_err());
    }

    #[test]
    fn table_cache_roundtrips() {
        let path = std::env::temp_dir().join("lof_cli_table_cache.lofm");
        let _ = std::fs::remove_file(&path);
        let config = Config {
            input: "unused".into(),
            min_pts: (5, 10),
            table: Some(path.to_string_lossy().into_owned()),
            ..Config::default()
        };
        let data = toy_dataset();
        // First run builds and saves...
        let first = run(&config, &data).unwrap();
        assert!(path.exists(), "cache file must be written");
        // ...second run loads and must agree exactly.
        let second = run(&config, &data).unwrap();
        assert_eq!(first.scores, second.scores);
        // A mismatched dataset is rejected, not silently mis-scored.
        let other = Dataset::from_rows(&[[0.0, 0.0]; 30]).unwrap();
        assert!(run(&config, &other).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_renders_alignment() {
        let text = render_report(&[(3, 2.5), (11, 1.25)]);
        assert!(text.contains("row"));
        assert!(text.contains("2.5000"));
        assert_eq!(text.lines().count(), 3);
    }
}
