//! Library backing the `lof` command-line tool: argument parsing and the
//! end-to-end run, separated from `main` so both are unit-testable.
//!
//! ```text
//! lof [OPTIONS] <INPUT>         batch: score a CSV or .lofd, print a ranked report
//! lof topn --n N <INPUT>        top-n: the N most outlying rows, no full sweep
//! lof ingest <CSV> <LOFD>       ingest: stream a named-column CSV into .lofd
//! lof stream [OPTIONS] [INPUT]  stream: score NDJSON/CSV events line by line
//! lof serve --listen ADDR       serve: score events over TCP (NDJSON)
//!
//! Batch scores every row of a numeric CSV with the Local Outlier Factor
//! (Breunig et al., SIGMOD 2000) and prints a ranked report; `--format
//! json` switches to the NDJSON record schema shared with the streaming
//! modes (see `lof_stream::wire`).
//!
//! BATCH OPTIONS:
//!   --minpts LB[..UB]    MinPts value or range          [default: 10..20]
//!   --aggregate AGG      max | min | mean               [default: max]
//!   --metric METRIC      euclidean | manhattan | chebyshev | angular
//!   --index INDEX        auto | scan | grid | kdtree | xtree | vafile | balltree
//!   --columns C1,C2,..   project onto these columns (subspace analysis)
//!   --standardize        z-score the columns first
//!   --threshold T        only report objects with score > T
//!   --top N              only report the N highest scores
//!   --explain N          print full explanations for the top N objects
//!   --threads N          worker threads; 0 = auto       [default: all cores]
//!   --format FMT         text | json                    [default: text]
//!   --output FILE        also write id,score CSV to FILE
//!   --table FILE         cache the materialization database in FILE
//!   --memory-budget B    out-of-core: spill the neighborhood table to disk,
//!                        keeping at most B bytes resident (suffixes k/m/g)
//!   --metrics            print a final registry snapshot to stderr
//!
//! INGEST OPTIONS:
//!   --columns N1,N2,..   select header columns by name, in this order
//!   --resume             continue an interrupted load from its checkpoint
//!
//! TOPN OPTIONS:
//!   --n N                result size                    [default: 10]
//!   --minpts K           the MinPts the scores are exact for [default: 10]
//!   --metric METRIC      euclidean | manhattan | chebyshev | angular
//!   --index INDEX        auto | scan | kdtree | balltree
//!   --columns C1,C2,..   project onto these columns first
//!   --standardize        z-score the columns first
//!   --threads N          refinement workers; 0 = auto   [default: all cores]
//!   --metrics            print a final registry snapshot to stderr
//!
//! STREAM / SERVE OPTIONS:
//!   --minpts K           MinPts of the window model     [default: 10]
//!   --capacity N         sliding-window capacity        [default: 512]
//!   --warmup N           events buffered before scoring [default: minpts+1]
//!   --landmark           never evict (landmark window)
//!   --threshold T        alert when LOF > T
//!   --topk K             alert when the event ranks in the window's top K
//!   --metric METRIC      euclidean | manhattan | chebyshev | angular
//!   --metrics            print a final registry snapshot to stderr
//!   --listen ADDR        serve only: bind address       [default: 127.0.0.1:7878]
//!   --queue N            serve only: job-queue bound    [default: 1024]
//!   --workers N          serve only: scoring threads    [default: auto]
//!   --tenants N          serve only: tenant ceiling     [default: 64]
//!   --snapshot-dir DIR   serve only: restore tenants from DIR, persist on SNAPSHOT/DRAIN
//!   --max-events-per-sec R  serve only: default tenant admission rate
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

use lof_core::explain::explain;
use lof_core::{
    build_table_parallel, topn_reference, Aggregate, Angular, Chebyshev, Dataset, Euclidean,
    KnnProvider, LinearScan, LofDetector, Lofd, Manhattan, Metric, MinPtsRange, NeighborhoodTable,
    OutlierResult, PartitionMetric, PartitionSource, SpilledNeighborhoodTable, TopNEngine,
    TopNStats,
};
use lof_data::normalize::standardize;
use lof_index::{BallTree, GridIndex, KdTree, VaFile, XTree};
use std::fmt::Write as _;

/// Parsed command-line configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Input CSV path.
    pub input: String,
    /// MinPts range (lb, ub).
    pub min_pts: (usize, usize),
    /// Score aggregate over the range.
    pub aggregate: Aggregate,
    /// Distance metric name.
    pub metric: MetricChoice,
    /// Index substrate.
    pub index: IndexChoice,
    /// Project onto these columns (in order) before scoring.
    pub columns: Option<Vec<usize>>,
    /// Standardize columns before scoring.
    pub standardize: bool,
    /// Only report scores above this threshold.
    pub threshold: Option<f64>,
    /// Only report the top N.
    pub top: Option<usize>,
    /// Print explanations for the top N objects.
    pub explain: usize,
    /// Worker threads for materialization and scoring (defaults to every
    /// available core; results are identical at any thread count).
    /// `--threads 0` on the command line is normalized to
    /// [`default_threads`] at parse time, so this field is always >= 1.
    pub threads: usize,
    /// Optional output CSV path.
    pub output: Option<String>,
    /// Materialization cache: load the table from this file if it exists,
    /// otherwise build it and save it there.
    pub table: Option<String>,
    /// Report format on stdout.
    pub format: OutputFormat,
    /// Out-of-core mode: cap the resident neighborhood table at this many
    /// bytes and spill CSR segments to disk ([`SpilledNeighborhoodTable`]).
    /// Scores stay bit-identical to the in-RAM path.
    pub memory_budget: Option<u64>,
    /// Print a final metrics-registry snapshot to stderr (the
    /// `core.ooc.*` spill counters live there).
    pub metrics: bool,
}

/// Batch report format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Aligned text table (the default).
    #[default]
    Text,
    /// One NDJSON record per row — the same schema the streaming modes
    /// emit (`lof_stream::wire::batch_record`).
    Json,
}

/// Supported metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum MetricChoice {
    Euclidean,
    Manhattan,
    Chebyshev,
    Angular,
}

impl MetricChoice {
    /// The canonical name, as accepted by `--metric` and recorded as the
    /// `metric_tag` of window snapshots.
    pub fn tag(self) -> &'static str {
        match self {
            MetricChoice::Euclidean => "euclidean",
            MetricChoice::Manhattan => "manhattan",
            MetricChoice::Chebyshev => "chebyshev",
            MetricChoice::Angular => "angular",
        }
    }
}

/// Supported index substrates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum IndexChoice {
    /// Pick by dimensionality: grid for d <= 3, kd-tree for d <= 12,
    /// VA-file beyond.
    Auto,
    Scan,
    Grid,
    KdTree,
    XTree,
    VaFile,
    BallTree,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            input: String::new(),
            min_pts: (10, 20),
            aggregate: Aggregate::Max,
            metric: MetricChoice::Euclidean,
            index: IndexChoice::Auto,
            columns: None,
            standardize: false,
            threshold: None,
            top: None,
            explain: 0,
            threads: default_threads(),
            output: None,
            table: None,
            format: OutputFormat::Text,
            memory_budget: None,
            metrics: false,
        }
    }
}

/// Parses CLI arguments (excluding the program name).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values, or
/// unparsable numbers.
pub fn parse_args(args: &[String]) -> Result<Config, String> {
    let mut config = Config::default();
    let mut iter = args.iter().peekable();
    let mut positional: Vec<&String> = Vec::new();

    fn value<'a>(
        flag: &str,
        iter: &mut std::iter::Peekable<std::slice::Iter<'a, String>>,
    ) -> Result<&'a String, String> {
        iter.next().ok_or_else(|| format!("{flag} requires a value"))
    }

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--minpts" => {
                let v = value("--minpts", &mut iter)?;
                config.min_pts = parse_min_pts(v)?;
            }
            "--aggregate" => {
                config.aggregate = match value("--aggregate", &mut iter)?.as_str() {
                    "max" => Aggregate::Max,
                    "min" => Aggregate::Min,
                    "mean" => Aggregate::Mean,
                    other => return Err(format!("unknown aggregate '{other}'")),
                };
            }
            "--metric" => config.metric = parse_metric(value("--metric", &mut iter)?)?,
            "--index" => {
                config.index = match value("--index", &mut iter)?.as_str() {
                    "auto" => IndexChoice::Auto,
                    "scan" => IndexChoice::Scan,
                    "grid" => IndexChoice::Grid,
                    "kdtree" => IndexChoice::KdTree,
                    "xtree" => IndexChoice::XTree,
                    "vafile" => IndexChoice::VaFile,
                    "balltree" => IndexChoice::BallTree,
                    other => return Err(format!("unknown index '{other}'")),
                };
            }
            "--columns" => {
                let list = value("--columns", &mut iter)?;
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(str::trim).map(str::parse).collect();
                config.columns = Some(parsed.map_err(|e| format!("bad --columns '{list}': {e}"))?);
            }
            "--standardize" => config.standardize = true,
            "--threshold" => {
                config.threshold = Some(
                    value("--threshold", &mut iter)?
                        .parse()
                        .map_err(|e| format!("bad --threshold: {e}"))?,
                );
            }
            "--top" => {
                config.top = Some(
                    value("--top", &mut iter)?.parse().map_err(|e| format!("bad --top: {e}"))?,
                );
            }
            "--explain" => {
                config.explain = value("--explain", &mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --explain: {e}"))?;
            }
            "--threads" => {
                let parsed: usize = value("--threads", &mut iter)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
                // `0` means auto-detect. Normalize it here: the core's
                // `effective_threads` clamps 0 to 1 (serial), which is not
                // what "use every core" callers intend.
                config.threads = if parsed == 0 { default_threads() } else { parsed };
            }
            "--output" => config.output = Some(value("--output", &mut iter)?.clone()),
            "--table" => config.table = Some(value("--table", &mut iter)?.clone()),
            "--memory-budget" => {
                config.memory_budget = Some(parse_budget(value("--memory-budget", &mut iter)?)?);
            }
            "--metrics" => config.metrics = true,
            "--format" => {
                config.format = match value("--format", &mut iter)?.as_str() {
                    "text" => OutputFormat::Text,
                    "json" => OutputFormat::Json,
                    other => return Err(format!("unknown format '{other}'")),
                };
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            _ => positional.push(arg),
        }
    }

    match positional.as_slice() {
        [input] => config.input = (*input).clone(),
        [] => return Err("missing input CSV path".to_owned()),
        more => return Err(format!("expected one input path, got {}", more.len())),
    }
    Ok(config)
}

/// Default worker-thread count: every available core (1 when the
/// parallelism query fails, e.g. under restrictive sandboxes).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses a byte budget with an optional `k`/`m`/`g` suffix (binary
/// units), e.g. `64m` = 64 MiB.
fn parse_budget(text: &str) -> Result<u64, String> {
    let lower = text.trim().to_ascii_lowercase();
    let (digits, shift) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(rest) => match lower.as_bytes()[lower.len() - 1] {
            b'k' => (rest, 10),
            b'm' => (rest, 20),
            _ => (rest, 30),
        },
        None => (lower.as_str(), 0),
    };
    let base: u64 = digits.parse().map_err(|e| format!("bad --memory-budget '{text}': {e}"))?;
    let bytes = base
        .checked_shl(shift)
        .filter(|b| *b >> shift == base)
        .ok_or_else(|| format!("bad --memory-budget '{text}': overflows u64"))?;
    if bytes == 0 {
        return Err("--memory-budget must be positive".to_owned());
    }
    Ok(bytes)
}

fn parse_min_pts(text: &str) -> Result<(usize, usize), String> {
    if let Some((lb, ub)) = text.split_once("..") {
        let lb: usize = lb.parse().map_err(|e| format!("bad MinPts lower bound: {e}"))?;
        let ub: usize = ub.parse().map_err(|e| format!("bad MinPts upper bound: {e}"))?;
        if lb == 0 || lb > ub {
            return Err(format!("invalid MinPts range {lb}..{ub}"));
        }
        Ok((lb, ub))
    } else {
        let k: usize = text.parse().map_err(|e| format!("bad MinPts: {e}"))?;
        if k == 0 {
            return Err("MinPts must be >= 1".to_owned());
        }
        Ok((k, k))
    }
}

/// One parsed invocation: classic batch scoring, the bound-driven top-n
/// engine, out-of-core ingestion, or one of the streaming modes.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `lof [OPTIONS] <INPUT.csv>` — batch scoring.
    Batch(Config),
    /// `lof topn [OPTIONS] <INPUT.csv>` — the n most outlying objects via
    /// partition-bound pruning (exact, no full sweep).
    TopN(TopNArgs),
    /// `lof ingest [OPTIONS] <INPUT.csv> <OUTPUT.lofd>` — schema-mapped
    /// streaming conversion to the out-of-core columnar format.
    Ingest(IngestArgs),
    /// `lof stream [OPTIONS] [INPUT]` — line-by-line scoring from a file
    /// or stdin.
    Stream(StreamArgs),
    /// `lof serve [OPTIONS]` — NDJSON scoring over TCP.
    Serve(StreamArgs),
}

/// Options of `lof ingest`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IngestArgs {
    /// Input CSV path (must have a named-column header).
    pub input: String,
    /// Output `.lofd` path.
    pub output: String,
    /// Select these header columns, in this order (`None` = all).
    pub columns: Option<Vec<String>>,
    /// Continue an interrupted load from its last checkpoint.
    pub resume: bool,
}

/// Parses the flags of `lof ingest`.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values, or
/// missing input/output paths.
pub fn parse_ingest_args(args: &[String]) -> Result<IngestArgs, String> {
    let mut parsed = IngestArgs::default();
    let mut iter = args.iter();
    let mut positional: Vec<&String> = Vec::new();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--columns" => {
                let list = iter.next().ok_or_else(|| "--columns requires a value".to_owned())?;
                let names: Vec<String> = list.split(',').map(|c| c.trim().to_owned()).collect();
                if names.iter().any(String::is_empty) {
                    return Err(format!("bad --columns '{list}': empty column name"));
                }
                parsed.columns = Some(names);
            }
            "--resume" => parsed.resume = true,
            flag if flag.starts_with("--") => return Err(format!("unknown ingest flag '{flag}'")),
            _ => positional.push(arg),
        }
    }
    match positional.as_slice() {
        [input, output] => {
            parsed.input = (*input).clone();
            parsed.output = (*output).clone();
        }
        other => {
            return Err(format!(
                "ingest takes <INPUT.csv> <OUTPUT.lofd>, got {} paths",
                other.len()
            ))
        }
    }
    Ok(parsed)
}

/// Options of `lof topn`.
#[derive(Debug, Clone, PartialEq)]
pub struct TopNArgs {
    /// Input CSV path.
    pub input: String,
    /// Result size: how many top outliers to report.
    pub n: usize,
    /// The `MinPts` the scores are exact for (a single value — the top-n
    /// bounds are per-`MinPts`, not per-range).
    pub min_pts: usize,
    /// Distance metric.
    pub metric: MetricChoice,
    /// Index substrate; `topn` supports `auto | scan | kdtree | balltree`
    /// (the tree leaves are the engine's partitions; `scan` falls back to
    /// the full-sweep reference).
    pub index: IndexChoice,
    /// Project onto these columns (in order) before scoring.
    pub columns: Option<Vec<usize>>,
    /// Standardize columns before scoring.
    pub standardize: bool,
    /// Refinement worker threads (>= 1 after parsing; `--threads 0` means
    /// auto-detect, as in batch mode).
    pub threads: usize,
    /// Print a final metrics-registry snapshot to stderr.
    pub metrics: bool,
}

impl Default for TopNArgs {
    fn default() -> Self {
        TopNArgs {
            input: String::new(),
            n: 10,
            min_pts: 10,
            metric: MetricChoice::Euclidean,
            index: IndexChoice::Auto,
            columns: None,
            standardize: false,
            threads: default_threads(),
            metrics: false,
        }
    }
}

/// Parses the flags of `lof topn`.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// unparsable numbers, or an index substrate without partition support.
pub fn parse_topn_args(args: &[String]) -> Result<TopNArgs, String> {
    let mut parsed = TopNArgs::default();
    let mut iter = args.iter();
    let mut positional: Vec<&String> = Vec::new();

    fn value<'a>(
        flag: &str,
        iter: &mut std::slice::Iter<'a, String>,
    ) -> Result<&'a String, String> {
        iter.next().ok_or_else(|| format!("{flag} requires a value"))
    }
    fn number(flag: &str, iter: &mut std::slice::Iter<'_, String>) -> Result<usize, String> {
        value(flag, iter)?.parse().map_err(|e| format!("bad {flag}: {e}"))
    }

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--n" => parsed.n = number("--n", &mut iter)?,
            "--minpts" => {
                parsed.min_pts = number("--minpts", &mut iter)?;
                if parsed.min_pts == 0 {
                    return Err("MinPts must be >= 1".to_owned());
                }
            }
            "--metric" => parsed.metric = parse_metric(value("--metric", &mut iter)?)?,
            "--index" => {
                parsed.index = match value("--index", &mut iter)?.as_str() {
                    "auto" => IndexChoice::Auto,
                    "scan" => IndexChoice::Scan,
                    "kdtree" => IndexChoice::KdTree,
                    "balltree" => IndexChoice::BallTree,
                    other => {
                        return Err(format!(
                            "topn needs a partition-capable index \
                             (auto | scan | kdtree | balltree), not '{other}'"
                        ))
                    }
                };
            }
            "--columns" => {
                let list = value("--columns", &mut iter)?;
                let cols: Result<Vec<usize>, _> =
                    list.split(',').map(str::trim).map(str::parse).collect();
                parsed.columns = Some(cols.map_err(|e| format!("bad --columns '{list}': {e}"))?);
            }
            "--standardize" => parsed.standardize = true,
            "--threads" => {
                let count = number("--threads", &mut iter)?;
                parsed.threads = if count == 0 { default_threads() } else { count };
            }
            "--metrics" => parsed.metrics = true,
            flag if flag.starts_with("--") => return Err(format!("unknown topn flag '{flag}'")),
            _ => positional.push(arg),
        }
    }

    match positional.as_slice() {
        [input] => parsed.input = (*input).clone(),
        [] => return Err("missing input CSV path".to_owned()),
        more => return Err(format!("expected one input path, got {}", more.len())),
    }
    Ok(parsed)
}

/// Options shared by `lof stream` and `lof serve`.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamArgs {
    /// Event source for stream mode (`None` = stdin); always `None` in
    /// serve mode.
    pub input: Option<String>,
    /// Bind address for serve mode.
    pub listen: String,
    /// `MinPts` of the window model.
    pub min_pts: usize,
    /// Sliding-window capacity.
    pub capacity: usize,
    /// Warm-up length (`None` = the [`StreamConfig`] default, MinPts + 1).
    ///
    /// [`StreamConfig`]: lof_stream::StreamConfig
    pub warmup: Option<usize>,
    /// Use a landmark (never-evict) window.
    pub landmark: bool,
    /// Absolute LOF alert threshold.
    pub threshold: Option<f64>,
    /// Rolling top-k alert rule.
    pub top_k: Option<usize>,
    /// Spatial shards of the window model (1 = flat engine).
    pub shards: usize,
    /// Defer lrd/LOF maintenance to the read side (bit-identical scores,
    /// much higher throughput when only the arriving score is read).
    pub deferred: bool,
    /// Job-queue bound in serve mode (0 = `lof_stream::DEFAULT_QUEUE`).
    pub queue: usize,
    /// Scoring worker threads in serve mode (0 = auto).
    pub workers: usize,
    /// Tenant-count ceiling in serve mode (0 = `lof_serve::DEFAULT_MAX_TENANTS`).
    pub tenants: usize,
    /// Snapshot directory in serve mode: tenants are restored from it at
    /// startup and persisted to it on `SNAPSHOT` / `DRAIN`.
    pub snapshot_dir: Option<String>,
    /// Default per-tenant event-admission rate (token bucket), serve mode.
    pub max_events_per_sec: Option<u64>,
    /// Distance metric.
    pub metric: MetricChoice,
    /// Print a final metrics-registry snapshot (Prometheus text) to
    /// stderr when the run ends.
    pub metrics: bool,
}

impl Default for StreamArgs {
    fn default() -> Self {
        StreamArgs {
            input: None,
            listen: "127.0.0.1:7878".to_owned(),
            min_pts: 10,
            capacity: 512,
            warmup: None,
            landmark: false,
            threshold: None,
            top_k: None,
            shards: 1,
            deferred: false,
            queue: 0,
            workers: 0,
            tenants: 0,
            snapshot_dir: None,
            max_events_per_sec: None,
            metric: MetricChoice::Euclidean,
            metrics: false,
        }
    }
}

/// Parses a full command line: a leading `stream` / `serve` word selects a
/// streaming mode, anything else is the classic batch invocation.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values, or
/// unparsable numbers.
pub fn parse_command(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("topn") => Ok(Command::TopN(parse_topn_args(&args[1..])?)),
        Some("ingest") => Ok(Command::Ingest(parse_ingest_args(&args[1..])?)),
        Some("stream") => Ok(Command::Stream(parse_stream_args(false, &args[1..])?)),
        Some("serve") => Ok(Command::Serve(parse_stream_args(true, &args[1..])?)),
        _ => Ok(Command::Batch(parse_args(args)?)),
    }
}

/// Loads a scoring input by format sniffing: a `.lofd` magic opens the
/// file as an mmap-backed out-of-core dataset (zero-copy coordinates),
/// anything else parses as streaming CSV. Both return the same
/// [`Dataset`]; every downstream path scores them bit-identically.
///
/// # Errors
///
/// Returns a human-readable message on I/O failures or malformed files
/// (for `.lofd`, the typed [`lof_core::LofdError`] taxonomy rendered).
pub fn load_input(path: &str) -> Result<Dataset, String> {
    if lof_core::lofd::sniff(std::path::Path::new(path)) {
        let lofd = Lofd::open(std::path::Path::new(path)).map_err(|e| e.to_string())?;
        Ok(lofd.dataset())
    } else {
        lof_data::csv::load_dataset(path).map_err(|e| e.to_string())
    }
}

fn parse_metric(name: &str) -> Result<MetricChoice, String> {
    match name {
        "euclidean" => Ok(MetricChoice::Euclidean),
        "manhattan" => Ok(MetricChoice::Manhattan),
        "chebyshev" => Ok(MetricChoice::Chebyshev),
        "angular" => Ok(MetricChoice::Angular),
        other => Err(format!("unknown metric '{other}'")),
    }
}

/// Parses the flags of `lof stream` (`serve = false`) or `lof serve`
/// (`serve = true`).
///
/// # Errors
///
/// Returns a human-readable message for unknown flags, missing values,
/// unparsable numbers, or a positional input in serve mode.
pub fn parse_stream_args(serve: bool, args: &[String]) -> Result<StreamArgs, String> {
    let mut parsed = StreamArgs::default();
    let mut iter = args.iter();
    let mut positional: Vec<&String> = Vec::new();

    fn value<'a>(
        flag: &str,
        iter: &mut std::slice::Iter<'a, String>,
    ) -> Result<&'a String, String> {
        iter.next().ok_or_else(|| format!("{flag} requires a value"))
    }
    fn number<T: std::str::FromStr<Err = std::num::ParseIntError>>(
        flag: &str,
        iter: &mut std::slice::Iter<'_, String>,
    ) -> Result<T, String> {
        value(flag, iter)?.parse().map_err(|e| format!("bad {flag}: {e}"))
    }

    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--minpts" => parsed.min_pts = number("--minpts", &mut iter)?,
            "--capacity" => parsed.capacity = number("--capacity", &mut iter)?,
            "--warmup" => parsed.warmup = Some(number("--warmup", &mut iter)?),
            "--landmark" => parsed.landmark = true,
            "--threshold" => {
                parsed.threshold = Some(
                    value("--threshold", &mut iter)?
                        .parse()
                        .map_err(|e| format!("bad --threshold: {e}"))?,
                );
            }
            "--topk" => parsed.top_k = Some(number("--topk", &mut iter)?),
            "--shards" => parsed.shards = number("--shards", &mut iter)?,
            "--deferred" => parsed.deferred = true,
            "--metric" => parsed.metric = parse_metric(value("--metric", &mut iter)?)?,
            "--metrics" => parsed.metrics = true,
            "--listen" if serve => parsed.listen = value("--listen", &mut iter)?.clone(),
            "--queue" if serve => parsed.queue = number("--queue", &mut iter)?,
            "--workers" if serve => parsed.workers = number("--workers", &mut iter)?,
            "--tenants" if serve => parsed.tenants = number("--tenants", &mut iter)?,
            "--snapshot-dir" if serve => {
                parsed.snapshot_dir = Some(value("--snapshot-dir", &mut iter)?.clone());
            }
            "--max-events-per-sec" if serve => {
                parsed.max_events_per_sec = Some(number("--max-events-per-sec", &mut iter)?);
            }
            flag if flag.starts_with("--") => {
                let mode = if serve { "serve" } else { "stream" };
                return Err(format!("unknown {mode} flag '{flag}'"));
            }
            _ => positional.push(arg),
        }
    }

    match (serve, positional.as_slice()) {
        (_, []) => {}
        (false, [input]) if *input != "-" => parsed.input = Some((*input).clone()),
        (false, [_dash]) => {} // explicit stdin
        (false, more) => {
            return Err(format!("expected at most one input path, got {}", more.len()))
        }
        (true, _) => return Err("serve mode reads from TCP, not a file".to_owned()),
    }
    Ok(parsed)
}

/// Builds the window configuration a [`StreamArgs`] describes. Validation
/// happens when the window is constructed.
pub fn stream_window_config(args: &StreamArgs) -> lof_stream::StreamConfig {
    let mut config = lof_stream::StreamConfig::new(args.min_pts, args.capacity);
    if let Some(warmup) = args.warmup {
        config = config.warmup(warmup);
    }
    if args.landmark {
        config = config.policy(lof_stream::EvictionPolicy::Landmark);
    }
    if let Some(threshold) = args.threshold {
        config = config.threshold(threshold);
    }
    if let Some(k) = args.top_k {
        config = config.top_k(k);
    }
    config = config.shards(args.shards).deferred(args.deferred);
    config
}

/// Renders the full score vector as NDJSON, one record per row in id
/// order, using the record schema shared with the streaming modes.
pub fn render_json_report(scores: &[f64], threshold: Option<f64>) -> String {
    let mut out = String::with_capacity(scores.len() * 64);
    for (id, &score) in scores.iter().enumerate() {
        let alert = threshold.is_some_and(|t| score > t);
        let _ = writeln!(out, "{}", lof_stream::wire::batch_record(id, score, alert));
    }
    out
}

/// The scored output of a run, ready for rendering.
#[derive(Debug)]
pub struct RunOutput {
    /// `(id, score)` ranked most-outlying first, after threshold/top cuts.
    pub report: Vec<(usize, f64)>,
    /// Full per-object scores in id order (for `--output`).
    pub scores: Vec<f64>,
    /// Rendered explanations for the requested top objects.
    pub explanations: Vec<String>,
}

/// Runs the pipeline per `config` over an already-loaded dataset.
///
/// # Errors
///
/// Returns a human-readable message on invalid parameters or degenerate
/// data.
pub fn run(config: &Config, raw: &Dataset) -> Result<RunOutput, String> {
    if raw.len() <= config.min_pts.1 {
        return Err(format!(
            "dataset has {} rows but MinPts upper bound is {}; need more rows than MinPts",
            raw.len(),
            config.min_pts.1
        ));
    }
    let projected = match &config.columns {
        Some(columns) => raw.project(columns).map_err(|e| e.to_string())?,
        None => raw.clone(),
    };
    let data = if config.standardize { standardize(&projected) } else { projected };

    if config.memory_budget.is_some() {
        return run_spilled(config, &data);
    }

    let detector = LofDetector::with_range(config.min_pts.0, config.min_pts.1)
        .map_err(|e| e.to_string())?
        .aggregate(config.aggregate)
        .threads(config.threads);

    let index = resolve_index(config, &data);
    let cache = config.table.as_deref();
    let threads = config.threads.max(1);
    let (result, table) = match config.metric {
        MetricChoice::Euclidean => score(&detector, &index, &data, Euclidean, cache, threads)?,
        MetricChoice::Manhattan => score(&detector, &index, &data, Manhattan, cache, threads)?,
        MetricChoice::Chebyshev => score(&detector, &index, &data, Chebyshev, cache, threads)?,
        MetricChoice::Angular => score(&detector, &index, &data, Angular, cache, threads)?,
    };

    let scores = result.scores();
    let mut report = result.ranking();
    if let Some(t) = config.threshold {
        report.retain(|&(_, s)| s > t);
    }
    if let Some(top) = config.top {
        report.truncate(top);
    }

    let mut explanations = Vec::new();
    for &(id, _) in result.ranking().iter().take(config.explain) {
        let ex = explain(&data, &table, config.min_pts.1, id).map_err(|e| e.to_string())?;
        explanations.push(ex.render(&data));
    }
    Ok(RunOutput { report, scores, explanations })
}

/// The out-of-core batch path (`--memory-budget`): materializes the
/// neighborhood table as disk-spilled CSR segments under the byte budget
/// and folds the `MinPts`-range scores incrementally. Bit-identical to
/// the in-RAM pipeline at any budget.
fn run_spilled(config: &Config, data: &Dataset) -> Result<RunOutput, String> {
    let budget = config.memory_budget.expect("caller checked") as usize;
    if config.explain > 0 {
        return Err(
            "--explain needs the in-RAM materialization; drop --memory-budget to use it".to_owned()
        );
    }
    if config.table.is_some() {
        return Err("--table caches an in-RAM materialization and cannot be combined with \
             --memory-budget"
            .to_owned());
    }
    let range = MinPtsRange::new(config.min_pts.0, config.min_pts.1).map_err(|e| e.to_string())?;

    fn go<P: KnnProvider>(
        provider: &P,
        config: &Config,
        range: MinPtsRange,
        budget: usize,
    ) -> Result<RunOutput, String> {
        let table =
            SpilledNeighborhoodTable::build(provider, range.ub(), budget, &std::env::temp_dir())
                .map_err(|e| e.to_string())?;
        let ooc = table.lof_range(range, config.aggregate).map_err(|e| e.to_string())?;
        let mut report = ooc.ranking();
        if let Some(t) = config.threshold {
            report.retain(|&(_, s)| s > t);
        }
        if let Some(top) = config.top {
            report.truncate(top);
        }
        Ok(RunOutput { report, scores: ooc.scores().to_vec(), explanations: Vec::new() })
    }
    fn on_index<M: Metric + Clone>(
        config: &Config,
        data: &Dataset,
        metric: M,
        range: MinPtsRange,
        budget: usize,
    ) -> Result<RunOutput, String> {
        match resolve_index(config, data) {
            IndexChoice::Scan => go(&LinearScan::new(data, metric), config, range, budget),
            IndexChoice::Grid => go(&GridIndex::new(data, metric), config, range, budget),
            IndexChoice::KdTree => go(&KdTree::new(data, metric), config, range, budget),
            IndexChoice::XTree => go(&XTree::new(data, metric), config, range, budget),
            IndexChoice::VaFile => go(&VaFile::new(data, metric), config, range, budget),
            IndexChoice::BallTree => go(&BallTree::new(data, metric), config, range, budget),
            IndexChoice::Auto => unreachable!("resolved before dispatch"),
        }
    }
    match config.metric {
        MetricChoice::Euclidean => on_index(config, data, Euclidean, range, budget),
        MetricChoice::Manhattan => on_index(config, data, Manhattan, range, budget),
        MetricChoice::Chebyshev => on_index(config, data, Chebyshev, range, budget),
        MetricChoice::Angular => on_index(config, data, Angular, range, budget),
    }
}

/// Resolves `auto` to a concrete index for the data's dimensionality.
fn resolve_index(config: &Config, data: &Dataset) -> IndexChoice {
    match config.index {
        IndexChoice::Auto => {
            // Angular has no rectangle bound: only the ball tree prunes.
            if config.metric == MetricChoice::Angular {
                IndexChoice::BallTree
            } else if data.dims() <= 3 {
                IndexChoice::Grid
            } else if data.dims() <= 12 {
                IndexChoice::KdTree
            } else {
                IndexChoice::VaFile
            }
        }
        concrete => concrete,
    }
}

fn score<M: Metric + Clone>(
    detector: &LofDetector<Euclidean>,
    index: &IndexChoice,
    data: &Dataset,
    metric: M,
    cache: Option<&str>,
    threads: usize,
) -> Result<(OutlierResult, NeighborhoodTable), String> {
    fn go<P: KnnProvider + Sync>(
        detector: &LofDetector<Euclidean>,
        provider: &P,
        cache: Option<&str>,
        threads: usize,
    ) -> Result<(OutlierResult, NeighborhoodTable), String> {
        let table = match cache {
            Some(path) if std::path::Path::new(path).exists() => {
                let table = NeighborhoodTable::load(path).map_err(|e| e.to_string())?;
                if table.len() != provider.len() || table.max_k() < detector.range().ub() {
                    return Err(format!(
                        "cached table '{path}' does not match this run \
                         ({} objects @ max_k {}, need {} @ {})",
                        table.len(),
                        table.max_k(),
                        provider.len(),
                        detector.range().ub()
                    ));
                }
                table
            }
            _ => {
                // `build_table_parallel` falls back to the serial build at
                // `threads == 1` and is byte-identical to it otherwise.
                let table = build_table_parallel(provider, detector.range().ub(), threads)
                    .map_err(|e| e.to_string())?;
                if let Some(path) = cache {
                    table.save(path).map_err(|e| format!("cannot save table: {e}"))?;
                }
                table
            }
        };
        let result = detector.detect_from_table(&table).map_err(|e| e.to_string())?;
        Ok((result, table))
    }
    match index {
        IndexChoice::Scan => go(detector, &LinearScan::new(data, metric), cache, threads),
        IndexChoice::Grid => go(detector, &GridIndex::new(data, metric), cache, threads),
        IndexChoice::KdTree => go(detector, &KdTree::new(data, metric), cache, threads),
        IndexChoice::XTree => go(detector, &XTree::new(data, metric), cache, threads),
        IndexChoice::VaFile => go(detector, &VaFile::new(data, metric), cache, threads),
        IndexChoice::BallTree => go(detector, &BallTree::new(data, metric), cache, threads),
        IndexChoice::Auto => unreachable!("resolved before dispatch"),
    }
}

/// The output of a `lof topn` run.
#[derive(Debug)]
pub struct TopNOutput {
    /// `(id, score)` ranked most-outlying first — bit-identical to the
    /// head of a sorted full sweep at the same `MinPts`.
    pub report: Vec<(usize, f64)>,
    /// The engine's final pruning threshold (the exact n-th best score
    /// when the result is full); `None` on the `scan` reference path.
    pub threshold: Option<f64>,
    /// The engine's pruning counters; `None` on the `scan` reference
    /// path.
    pub stats: Option<TopNStats>,
}

/// Runs the bound-driven top-n pipeline per `args` over an
/// already-loaded dataset: tree leaves become micro-partitions, partition
/// envelopes bound every member's LOF, and only partitions whose upper
/// bound survives the running n-th-best threshold are refined.
///
/// # Errors
///
/// Returns a human-readable message on invalid parameters or degenerate
/// data.
pub fn run_topn(args: &TopNArgs, raw: &Dataset) -> Result<TopNOutput, String> {
    if raw.len() <= args.min_pts {
        return Err(format!(
            "dataset has {} rows but MinPts is {}; need more rows than MinPts",
            raw.len(),
            args.min_pts
        ));
    }
    let projected = match &args.columns {
        Some(columns) => raw.project(columns).map_err(|e| e.to_string())?,
        None => raw.clone(),
    };
    let data = if args.standardize { standardize(&projected) } else { projected };

    let engine = TopNEngine::new(args.min_pts, args.n).with_threads(args.threads);
    let index = match args.index {
        // Angular has no rectangle bound, so its envelopes are vacuous on
        // a kd-tree; the ball tree at least prunes the k-NN refinement.
        IndexChoice::Auto if args.metric == MetricChoice::Angular => IndexChoice::BallTree,
        IndexChoice::Auto => IndexChoice::KdTree,
        concrete => concrete,
    };
    match args.metric {
        MetricChoice::Euclidean => topn_on_index(&engine, index, &data, Euclidean),
        MetricChoice::Manhattan => topn_on_index(&engine, index, &data, Manhattan),
        MetricChoice::Chebyshev => topn_on_index(&engine, index, &data, Chebyshev),
        MetricChoice::Angular => topn_on_index(&engine, index, &data, Angular),
    }
}

fn topn_on_index<M: Metric + Clone>(
    engine: &TopNEngine,
    index: IndexChoice,
    data: &Dataset,
    metric: M,
) -> Result<TopNOutput, String> {
    fn go<P>(engine: &TopNEngine, provider: &P) -> Result<TopNOutput, String>
    where
        P: KnnProvider + PartitionSource + PartitionMetric + Sync,
    {
        let partitions = provider.partitions();
        let result = engine.run(provider, &partitions).map_err(|e| e.to_string())?;
        Ok(TopNOutput {
            report: result.ranking,
            threshold: Some(result.threshold),
            stats: Some(result.stats),
        })
    }
    match index {
        IndexChoice::Scan => {
            let scan = LinearScan::new(data, metric);
            let report =
                topn_reference(&scan, engine.min_pts(), engine.n()).map_err(|e| e.to_string())?;
            Ok(TopNOutput { report, threshold: None, stats: None })
        }
        IndexChoice::KdTree => go(engine, &KdTree::new(data, metric)),
        IndexChoice::BallTree => go(engine, &BallTree::new(data, metric)),
        other => Err(format!("index '{other:?}' has no partition support for topn")),
    }
}

/// Renders the ranked report as an aligned text table.
pub fn render_report(report: &[(usize, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>8}  {:>10}", "row", "LOF");
    for (id, score) in report {
        let _ = writeln!(out, "{id:>8}  {score:>10.4}");
    }
    out
}

/// Usage text.
pub fn usage() -> &'static str {
    "usage: lof [OPTIONS] <INPUT.csv|INPUT.lofd>
       lof topn [OPTIONS] <INPUT.csv|INPUT.lofd>
       lof ingest [OPTIONS] <INPUT.csv> <OUTPUT.lofd>
       lof stream [OPTIONS] [INPUT]
       lof serve [OPTIONS]

Batch mode scores every row of a numeric CSV with the Local Outlier
Factor (Breunig, Kriegel, Ng, Sander; SIGMOD 2000) and prints a ranked
report. Topn mode answers only \"the N most outlying rows\" — exactly
the batch ranking's head, but computed by pruning whole index partitions
whose LOF upper bound cannot reach the running N-th best score instead
of sweeping every row. Both accept a `.lofd` out-of-core columnar file
(detected by magic) in place of a CSV and mmap it zero-copy; ingest mode
converts a named-column CSV into that format, streaming in O(row)
memory. Stream mode scores line-delimited events (CSV row, JSON array,
or {\"point\": [...]}) from a file or stdin through a sliding window;
serve mode does the same over TCP. Both emit one NDJSON record per
event.

batch options:
  --minpts LB[..UB]   MinPts value or range             [default: 10..20]
  --aggregate AGG     max | min | mean                  [default: max]
  --metric METRIC     euclidean | manhattan | chebyshev | angular
  --index INDEX       auto | scan | grid | kdtree | xtree | vafile | balltree
  --columns C1,C2,..  project onto these columns (subspace analysis)
  --standardize       z-score the columns before computing distances
  --threshold T       only report objects with score > T
  --top N             only report the N highest scores
  --explain N         print full explanations for the top N objects
  --threads N         worker threads (materialization and scoring both
                      parallelize; results are identical at any N);
                      0 = auto-detect every available core
                                                        [default: all cores]
  --format FMT        text | json (NDJSON, one record per row)
                                                        [default: text]
  --output FILE       also write an id,score CSV to FILE
  --table FILE        cache the materialization: load FILE if present,
                      else build and save it there
  --memory-budget B   out-of-core scoring: build the neighborhood table
                      as disk-spilled segments, keeping at most B bytes
                      resident (suffixes k/m/g = KiB/MiB/GiB); scores
                      are bit-identical to the in-RAM path (not
                      combinable with --explain or --table)
  --metrics           print a final metrics snapshot (Prometheus text,
                      including the core.ooc.* out-of-core counters) to
                      stderr

topn options:
  --n N               result size                       [default: 10]
  --minpts K          the MinPts the scores are exact for
                                                        [default: 10]
  --metric METRIC     euclidean | manhattan | chebyshev | angular
  --index INDEX       auto | scan | kdtree | balltree (tree leaves are
                      the pruning partitions; scan = full-sweep
                      reference)                        [default: auto]
  --columns C1,C2,..  project onto these columns (subspace analysis)
  --standardize       z-score the columns before computing distances
  --threads N         refinement workers; 0 = auto      [default: all cores]
  --metrics           print a final metrics snapshot (Prometheus text,
                      including the core.topn.* pruning counters) to
                      stderr

ingest options:
  --columns N1,N2,..  select header columns by NAME, in this order (the
                      schema mapping; default: every column in header
                      order); every selected field is validated as a
                      finite number with a row/column-located error
  --resume            continue an interrupted load from its last
                      checkpoint instead of starting over

stream / serve options:
  --minpts K          MinPts of the window model        [default: 10]
  --capacity N        sliding-window capacity (events)  [default: 512]
  --warmup N          events buffered before scoring    [default: minpts+1]
  --landmark          never evict (landmark window)
  --threshold T       alert when LOF > T
  --topk K            alert when an event ranks in the window's top K
  --shards N          partition the window model across N spatial
                      shards (scores stay bit-identical)  [default: 1]
  --deferred          defer lrd/LOF maintenance to the reads — scores
                      stay bit-identical, per-event cost drops sharply
                      when only the arriving score is read
  --metric METRIC     euclidean | manhattan | chebyshev | angular
  --metrics           print a final metrics snapshot (Prometheus text)
                      to stderr; serve mode also answers in-band
                      `GET /metrics[.json]` requests on any connection
  --listen ADDR       serve only: bind address          [default: 127.0.0.1:7878]
  --queue N           serve only: in-flight event bound per worker
                                                        [default: 1024]
  --workers N         serve only: scoring worker threads; 0 = auto
                                                        [default: auto]
  --tenants N         serve only: maximum number of named windows
                                                        [default: 64]
  --snapshot-dir DIR  serve only: restore every *.lofw tenant snapshot
                      in DIR at startup, and persist tenants there on
                      `SNAPSHOT` / `DRAIN` (restart resumes scoring
                      bit-identically)
  --max-events-per-sec R
                      serve only: default per-tenant admission rate
                      (token bucket, burst = 1s of R); tenants may
                      override with `TENANT CREATE ... max_eps=R`

Stream and serve connections also answer in-band `GET /topn N` (or bare
`/topn N`) requests with a `{\"type\":\"topn\",...}` record ranking the
window's current members by LOF, most outlying first.

Serve mode multiplexes every connection onto one event-loop thread and
scores on a worker pool. Connections start attached to the `default`
tenant; `TENANT CREATE/ATTACH/LIST/DROP`, `SNAPSHOT [name]`, and `DRAIN`
manage named windows over the wire. `DRAIN` stops accepting, flushes
in-flight work, snapshots every tenant (with --snapshot-dir), acks, and
shuts the server down cleanly.
"
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parses_defaults_and_input() {
        let config = parse_args(&args(&["data.csv"])).unwrap();
        assert_eq!(config.input, "data.csv");
        assert_eq!(config.min_pts, (10, 20));
        assert_eq!(config.aggregate, Aggregate::Max);
        assert_eq!(config.index, IndexChoice::Auto);
        assert!(!config.standardize);
    }

    #[test]
    fn parses_every_flag() {
        let config = parse_args(&args(&[
            "--minpts",
            "5..15",
            "--aggregate",
            "mean",
            "--metric",
            "manhattan",
            "--index",
            "xtree",
            "--standardize",
            "--threshold",
            "1.5",
            "--top",
            "7",
            "--explain",
            "3",
            "--threads",
            "4",
            "--output",
            "scores.csv",
            "in.csv",
        ]))
        .unwrap();
        assert_eq!(config.min_pts, (5, 15));
        assert_eq!(config.aggregate, Aggregate::Mean);
        assert_eq!(config.metric, MetricChoice::Manhattan);
        assert_eq!(config.index, IndexChoice::XTree);
        assert!(config.standardize);
        assert_eq!(config.threshold, Some(1.5));
        assert_eq!(config.top, Some(7));
        assert_eq!(config.explain, 3);
        assert_eq!(config.threads, 4);
        assert_eq!(config.output.as_deref(), Some("scores.csv"));
        assert_eq!(config.input, "in.csv");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["a.csv", "b.csv"])).is_err());
        assert!(parse_args(&args(&["--bogus", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--minpts", "0", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--minpts", "9..3", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--minpts", "abc", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--aggregate", "median", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--threshold"])).is_err());
    }

    #[test]
    fn parses_columns() {
        let config = parse_args(&args(&["--columns", "0, 2,3", "a.csv"])).unwrap();
        assert_eq!(config.columns, Some(vec![0, 2, 3]));
        assert!(parse_args(&args(&["--columns", "0,x", "a.csv"])).is_err());
    }

    #[test]
    fn columns_projection_runs_subspace_analysis() {
        // 3-d data whose outlier only shows in columns (0, 1): projecting
        // away the noisy third column is the paper's subspace workflow.
        let mut rows: Vec<[f64; 3]> = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                rows.push([i as f64, j as f64, (i * j % 7) as f64 * 100.0]);
            }
        }
        rows.push([30.0, 30.0, 300.0]);
        let data = Dataset::from_rows(&rows).unwrap();
        let config = Config {
            input: "unused".into(),
            min_pts: (5, 10),
            columns: Some(vec![0, 1]),
            top: Some(1),
            ..Config::default()
        };
        let output = run(&config, &data).unwrap();
        assert_eq!(output.report[0].0, 36);
    }

    #[test]
    fn default_thread_count_uses_available_cores() {
        let config = parse_args(&args(&["data.csv"])).unwrap();
        assert_eq!(config.threads, default_threads());
        assert!(config.threads >= 1);
    }

    #[test]
    fn explicit_zero_threads_means_auto_detect() {
        // `--threads 0` must normalize to the detected core count, not
        // fall through to `effective_threads`'s serial clamp.
        let config = parse_args(&args(&["--threads", "0", "data.csv"])).unwrap();
        assert_eq!(config.threads, default_threads());
        assert!(config.threads >= 1);
        // An explicit positive count is taken verbatim.
        let config = parse_args(&args(&["--threads", "3", "data.csv"])).unwrap();
        assert_eq!(config.threads, 3);
    }

    #[test]
    fn thread_counts_agree_on_scores() {
        let data = toy_dataset();
        let base = Config { input: "unused".into(), min_pts: (5, 10), ..Config::default() };
        let serial = run(&Config { threads: 1, ..base.clone() }, &data).unwrap();
        for threads in [2, 3, 8] {
            let parallel = run(&Config { threads, ..base.clone() }, &data).unwrap();
            assert_eq!(serial.scores, parallel.scores, "threads={threads}");
        }
    }

    #[test]
    fn single_min_pts_becomes_degenerate_range() {
        let config = parse_args(&args(&["--minpts", "12", "a.csv"])).unwrap();
        assert_eq!(config.min_pts, (12, 12));
    }

    fn toy_dataset() -> Dataset {
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                rows.push([i as f64, j as f64]);
            }
        }
        rows.push([30.0, 30.0]);
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn run_finds_the_outlier_with_every_index() {
        for index in [
            IndexChoice::Scan,
            IndexChoice::Grid,
            IndexChoice::KdTree,
            IndexChoice::XTree,
            IndexChoice::VaFile,
            IndexChoice::BallTree,
            IndexChoice::Auto,
        ] {
            let config = Config {
                input: "unused".into(),
                min_pts: (5, 10),
                index,
                top: Some(1),
                ..Config::default()
            };
            let output = run(&config, &toy_dataset()).unwrap();
            assert_eq!(output.report[0].0, 36, "{index:?}");
            assert!(output.report[0].1 > 3.0);
        }
    }

    #[test]
    fn threshold_and_top_filter() {
        let config = Config {
            input: "unused".into(),
            min_pts: (5, 10),
            threshold: Some(2.0),
            ..Config::default()
        };
        let output = run(&config, &toy_dataset()).unwrap();
        assert_eq!(output.report.len(), 1);
        assert_eq!(output.scores.len(), 37);
    }

    #[test]
    fn explanations_are_rendered() {
        let config =
            Config { input: "unused".into(), min_pts: (5, 10), explain: 2, ..Config::default() };
        let output = run(&config, &toy_dataset()).unwrap();
        assert_eq!(output.explanations.len(), 2);
        assert!(output.explanations[0].contains("object 36"));
    }

    #[test]
    fn run_validates_dataset_size() {
        let config = Config { input: "unused".into(), min_pts: (10, 50), ..Config::default() };
        let tiny = Dataset::from_rows(&[[0.0], [1.0]]).unwrap();
        assert!(run(&config, &tiny).is_err());
    }

    #[test]
    fn table_cache_roundtrips() {
        let path = std::env::temp_dir().join("lof_cli_table_cache.lofm");
        let _ = std::fs::remove_file(&path);
        let config = Config {
            input: "unused".into(),
            min_pts: (5, 10),
            table: Some(path.to_string_lossy().into_owned()),
            ..Config::default()
        };
        let data = toy_dataset();
        // First run builds and saves...
        let first = run(&config, &data).unwrap();
        assert!(path.exists(), "cache file must be written");
        // ...second run loads and must agree exactly.
        let second = run(&config, &data).unwrap();
        assert_eq!(first.scores, second.scores);
        // A mismatched dataset is rejected, not silently mis-scored.
        let other = Dataset::from_rows(&[[0.0, 0.0]; 30]).unwrap();
        assert!(run(&config, &other).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_renders_alignment() {
        let text = render_report(&[(3, 2.5), (11, 1.25)]);
        assert!(text.contains("row"));
        assert!(text.contains("2.5000"));
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn parses_format_flag() {
        let config = parse_args(&args(&["--format", "json", "a.csv"])).unwrap();
        assert_eq!(config.format, OutputFormat::Json);
        assert_eq!(parse_args(&args(&["a.csv"])).unwrap().format, OutputFormat::Text);
        assert!(parse_args(&args(&["--format", "yaml", "a.csv"])).is_err());
    }

    #[test]
    fn command_parser_routes_subcommands() {
        assert!(matches!(parse_command(&args(&["a.csv"])).unwrap(), Command::Batch(_)));
        let Command::Stream(stream) =
            parse_command(&args(&["stream", "--minpts", "5", "events.ndjson"])).unwrap()
        else {
            panic!("expected stream mode");
        };
        assert_eq!(stream.min_pts, 5);
        assert_eq!(stream.input.as_deref(), Some("events.ndjson"));
        let Command::Serve(serve) = parse_command(&args(&[
            "serve",
            "--listen",
            "0.0.0.0:9000",
            "--queue",
            "64",
            "--workers",
            "2",
            "--tenants",
            "8",
            "--snapshot-dir",
            "/tmp/lofw",
            "--max-events-per-sec",
            "500",
        ]))
        .unwrap() else {
            panic!("expected serve mode");
        };
        assert_eq!(serve.listen, "0.0.0.0:9000");
        assert_eq!(serve.queue, 64);
        assert_eq!(serve.workers, 2);
        assert_eq!(serve.tenants, 8);
        assert_eq!(serve.snapshot_dir.as_deref(), Some("/tmp/lofw"));
        assert_eq!(serve.max_events_per_sec, Some(500));
    }

    #[test]
    fn stream_args_parse_every_flag() {
        let parsed = parse_stream_args(
            false,
            &args(&[
                "--minpts",
                "4",
                "--capacity",
                "128",
                "--warmup",
                "16",
                "--landmark",
                "--threshold",
                "2.5",
                "--topk",
                "3",
                "--shards",
                "4",
                "--deferred",
                "--metric",
                "manhattan",
                "-",
            ]),
        )
        .unwrap();
        assert_eq!(parsed.min_pts, 4);
        assert_eq!(parsed.capacity, 128);
        assert_eq!(parsed.warmup, Some(16));
        assert!(parsed.landmark);
        assert_eq!(parsed.threshold, Some(2.5));
        assert_eq!(parsed.top_k, Some(3));
        assert_eq!(parsed.shards, 4);
        assert!(parsed.deferred);
        assert_eq!(parsed.metric, MetricChoice::Manhattan);
        assert_eq!(parsed.input, None, "'-' means stdin");
        assert!(!parsed.metrics, "--metrics is opt-in");

        let config = stream_window_config(&parsed);
        assert_eq!(config.min_pts, 4);
        assert_eq!(config.capacity, 128);
        assert_eq!(config.warmup, 16);
        assert_eq!(config.policy, lof_stream::EvictionPolicy::Landmark);
        assert_eq!(config.threshold, Some(2.5));
        assert_eq!(config.top_k, Some(3));
        assert_eq!(config.shards, 4);
        assert!(config.deferred);
    }

    #[test]
    fn metrics_flag_parses_in_every_mode() {
        assert!(parse_stream_args(false, &args(&["--metrics"])).unwrap().metrics);
        assert!(parse_stream_args(true, &args(&["--metrics"])).unwrap().metrics);
        let batch = parse_args(&args(&["--metrics", "a.csv"])).unwrap();
        assert!(batch.metrics);
        assert!(!parse_args(&args(&["a.csv"])).unwrap().metrics, "--metrics is opt-in");
    }

    #[test]
    fn stream_args_reject_mode_mismatches() {
        // Serve flags are invalid in stream mode and vice versa.
        assert!(parse_stream_args(false, &args(&["--listen", "x"])).is_err());
        assert!(parse_stream_args(false, &args(&["--queue", "9"])).is_err());
        assert!(parse_stream_args(false, &args(&["--workers", "2"])).is_err());
        assert!(parse_stream_args(false, &args(&["--tenants", "4"])).is_err());
        assert!(parse_stream_args(false, &args(&["--snapshot-dir", "d"])).is_err());
        assert!(parse_stream_args(false, &args(&["--max-events-per-sec", "5"])).is_err());
        assert!(parse_stream_args(true, &args(&["events.ndjson"])).is_err());
        assert!(parse_stream_args(false, &args(&["a", "b"])).is_err());
        assert!(parse_stream_args(false, &args(&["--minpts"])).is_err());
        assert!(parse_stream_args(false, &args(&["--minpts", "x"])).is_err());
    }

    #[test]
    fn topn_args_parse_every_flag() {
        let Command::TopN(parsed) = parse_command(&args(&[
            "topn",
            "--n",
            "7",
            "--minpts",
            "5",
            "--metric",
            "manhattan",
            "--index",
            "balltree",
            "--columns",
            "0,1",
            "--standardize",
            "--threads",
            "2",
            "--metrics",
            "in.csv",
        ]))
        .unwrap() else {
            panic!("expected topn mode");
        };
        assert_eq!(parsed.n, 7);
        assert_eq!(parsed.min_pts, 5);
        assert_eq!(parsed.metric, MetricChoice::Manhattan);
        assert_eq!(parsed.index, IndexChoice::BallTree);
        assert_eq!(parsed.columns, Some(vec![0, 1]));
        assert!(parsed.standardize);
        assert_eq!(parsed.threads, 2);
        assert!(parsed.metrics);
        assert_eq!(parsed.input, "in.csv");
        // Defaults.
        let defaults = parse_topn_args(&args(&["in.csv"])).unwrap();
        assert_eq!(defaults.n, 10);
        assert_eq!(defaults.min_pts, 10);
        assert_eq!(defaults.index, IndexChoice::Auto);
        assert_eq!(defaults.threads, default_threads());
    }

    #[test]
    fn topn_args_reject_invalid_input() {
        assert!(parse_topn_args(&args(&[])).is_err(), "input path is required");
        assert!(parse_topn_args(&args(&["--minpts", "0", "a.csv"])).is_err());
        assert!(parse_topn_args(&args(&["--index", "grid", "a.csv"])).is_err());
        assert!(parse_topn_args(&args(&["--index", "vafile", "a.csv"])).is_err());
        assert!(parse_topn_args(&args(&["--bogus", "a.csv"])).is_err());
        assert!(parse_topn_args(&args(&["--n"])).is_err());
        assert!(parse_topn_args(&args(&["a.csv", "b.csv"])).is_err());
    }

    #[test]
    fn run_topn_matches_the_full_sweep_on_every_supported_index() {
        let data = toy_dataset();
        let reference = run_topn(
            &TopNArgs {
                input: "unused".into(),
                n: 5,
                min_pts: 5,
                index: IndexChoice::Scan,
                threads: 1,
                ..TopNArgs::default()
            },
            &data,
        )
        .unwrap();
        assert_eq!(reference.report[0].0, 36, "the planted outlier leads");
        assert!(reference.stats.is_none(), "scan is the reference fallback");
        for index in [IndexChoice::Auto, IndexChoice::KdTree, IndexChoice::BallTree] {
            for threads in [1, 4] {
                let engine = run_topn(
                    &TopNArgs {
                        input: "unused".into(),
                        n: 5,
                        min_pts: 5,
                        index,
                        threads,
                        ..TopNArgs::default()
                    },
                    &data,
                )
                .unwrap();
                assert_eq!(engine.report, reference.report, "{index:?} x {threads} threads");
                let stats = engine.stats.expect("engine path reports stats");
                assert_eq!(
                    stats.objects_pruned + stats.objects_refined,
                    data.len() as u64,
                    "every object is either pruned or refined"
                );
            }
        }
    }

    #[test]
    fn run_topn_validates_dataset_size() {
        let tiny = Dataset::from_rows(&[[0.0], [1.0]]).unwrap();
        let args = TopNArgs { input: "unused".into(), min_pts: 10, ..TopNArgs::default() };
        assert!(run_topn(&args, &tiny).is_err());
    }

    #[test]
    fn parses_memory_budget_with_suffixes() {
        let config = parse_args(&args(&["--memory-budget", "64m", "a.csv"])).unwrap();
        assert_eq!(config.memory_budget, Some(64 << 20));
        assert_eq!(
            parse_args(&args(&["--memory-budget", "4096", "a.csv"])).unwrap().memory_budget,
            Some(4096)
        );
        assert_eq!(
            parse_args(&args(&["--memory-budget", "2K", "a.csv"])).unwrap().memory_budget,
            Some(2048)
        );
        assert_eq!(
            parse_args(&args(&["--memory-budget", "1g", "a.csv"])).unwrap().memory_budget,
            Some(1 << 30)
        );
        assert!(parse_args(&args(&["--memory-budget", "0", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--memory-budget", "x", "a.csv"])).is_err());
        assert!(parse_args(&args(&["--memory-budget", "99999999999g", "a.csv"])).is_err());
    }

    #[test]
    fn ingest_args_parse() {
        let Command::Ingest(parsed) = parse_command(&args(&[
            "ingest",
            "--columns",
            "x, y,z",
            "--resume",
            "in.csv",
            "out.lofd",
        ]))
        .unwrap() else {
            panic!("expected ingest mode");
        };
        assert_eq!(parsed.input, "in.csv");
        assert_eq!(parsed.output, "out.lofd");
        assert_eq!(parsed.columns, Some(vec!["x".into(), "y".into(), "z".into()]));
        assert!(parsed.resume);
        let defaults = parse_ingest_args(&args(&["a.csv", "b.lofd"])).unwrap();
        assert_eq!(defaults.columns, None);
        assert!(!defaults.resume);
    }

    #[test]
    fn ingest_args_reject_invalid_input() {
        assert!(parse_ingest_args(&args(&["only-one.csv"])).is_err());
        assert!(parse_ingest_args(&args(&["a", "b", "c"])).is_err());
        assert!(parse_ingest_args(&args(&["--bogus", "a", "b"])).is_err());
        assert!(parse_ingest_args(&args(&["--columns", "x,,y", "a", "b"])).is_err());
        assert!(parse_ingest_args(&args(&["--columns"])).is_err());
    }

    #[test]
    fn memory_budget_scores_bit_identical_to_in_ram() {
        let data = toy_dataset();
        let base = Config { input: "unused".into(), min_pts: (5, 10), ..Config::default() };
        let in_ram = run(&base, &data).unwrap();
        // A budget far below the table size forces real spilling; scores
        // and the ranked report must still match byte for byte.
        for budget in [1u64 << 10, 1 << 30] {
            let spilled =
                run(&Config { memory_budget: Some(budget), ..base.clone() }, &data).unwrap();
            assert_eq!(spilled.scores, in_ram.scores, "budget={budget}");
            assert_eq!(spilled.report, in_ram.report, "budget={budget}");
        }
    }

    #[test]
    fn memory_budget_rejects_in_ram_only_features() {
        let data = toy_dataset();
        let base = Config {
            input: "unused".into(),
            min_pts: (5, 10),
            memory_budget: Some(1 << 20),
            ..Config::default()
        };
        assert!(run(&Config { explain: 1, ..base.clone() }, &data).is_err());
        assert!(run(&Config { table: Some("t.lofm".into()), ..base.clone() }, &data).is_err());
    }

    #[test]
    fn load_input_sniffs_lofd_and_falls_back_to_csv() {
        let dir = std::env::temp_dir().join(format!("lof-cli-sniff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = toy_dataset();
        let csv_path = dir.join("in.csv");
        let lofd_path = dir.join("in.lofd");
        lof_data::csv::save_dataset(&csv_path, &data).unwrap();
        Lofd::write_dataset(&lofd_path, &data).unwrap();
        let via_csv = load_input(csv_path.to_str().unwrap()).unwrap();
        let via_lofd = load_input(lofd_path.to_str().unwrap()).unwrap();
        assert_eq!(via_csv, data);
        assert_eq!(via_lofd, data);
        assert!(via_lofd.is_mapped(), ".lofd inputs are mmap-backed");
        assert!(load_input(dir.join("missing.csv").to_str().unwrap()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn json_report_shares_the_stream_schema() {
        let text = render_json_report(&[1.0, 3.5], Some(2.0));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"type\":\"score\",\"seq\":0,\"lof\":1.0,\"alert\":false,\"alerts\":[]}"
        );
        assert_eq!(
            lines[1],
            "{\"type\":\"score\",\"seq\":1,\"lof\":3.5,\"alert\":true,\"alerts\":[\"threshold\"]}"
        );
        // No threshold: nothing alerts.
        assert!(render_json_report(&[9.0], None).contains("\"alert\":false"));
    }
}
