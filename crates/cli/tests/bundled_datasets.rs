//! End-to-end: the CLI pipeline over the bundled demo datasets reproduces
//! the documented outcomes.

use lof_cli::{run, Config, IndexChoice};
use std::path::PathBuf;

fn dataset_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../datasets").join(name)
}

#[test]
fn ds1_outliers_top_the_report() {
    let data = lof_data::csv::load_dataset(dataset_path("ds1.csv")).expect("bundled csv");
    assert_eq!(data.len(), 502);
    let config = Config {
        input: "unused".into(),
        min_pts: (10, 30),
        top: Some(2),
        threads: 4,
        ..Config::default()
    };
    let output = run(&config, &data).expect("valid run");
    let ids: Vec<usize> = output.report.iter().map(|&(id, _)| id).collect();
    assert_eq!(ids, vec![500, 501], "o1 and o2 must lead the ranking");
    assert!(output.report[0].1 > 3.0);
}

#[test]
fn fig9_planted_rows_dominate_threshold_report() {
    let data = lof_data::csv::load_dataset(dataset_path("fig9.csv")).expect("bundled csv");
    assert_eq!(data.len(), 1707);
    let config = Config {
        input: "unused".into(),
        min_pts: (40, 40),
        threshold: Some(1.5),
        index: IndexChoice::KdTree,
        threads: 4,
        ..Config::default()
    };
    let output = run(&config, &data).expect("valid run");
    let flagged: Vec<usize> = output.report.iter().map(|&(id, _)| id).collect();
    for planted in 1700..1707 {
        assert!(flagged.contains(&planted), "planted row {planted} missing");
    }
    // The planted rows occupy the very top of the report.
    let top7: Vec<usize> = flagged.iter().copied().take(7).collect();
    let planted_in_top = top7.iter().filter(|id| (1700..1707).contains(*id)).count();
    assert!(planted_in_top >= 6, "top-7: {top7:?}");
}
