//! Property tests for the baseline detectors: the monotonicity and
//! consistency laws each definition implies.

use lof_baselines::{
    db_outliers, db_outliers_with, dbscan, kth_distance_scores, mahalanobis_scores, max_abs_zscore,
    optics, peeling_depths, top_n_outliers, DbOutlierParams,
};
use lof_core::{Dataset, Euclidean, KnnProvider, LinearScan};
use proptest::prelude::*;

fn dataset_strategy(max_n: usize, dims: usize) -> impl Strategy<Value = Dataset> {
    (5usize..=max_n).prop_flat_map(move |n| {
        proptest::collection::vec(
            proptest::collection::vec(prop_oneof![Just(0.0), Just(5.0), -40.0..40.0f64], dims),
            n,
        )
        .prop_map(|rows| Dataset::from_rows(&rows).expect("finite rows"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn db_outliers_are_monotone_in_dmin(
        data in dataset_strategy(40, 2),
        pct in 50.0f64..100.0,
        dmin in 0.1f64..20.0,
    ) {
        // Growing dmin can only shrink the outlier set: more objects fall
        // within range of each p.
        let small = db_outliers(&data, &Euclidean, DbOutlierParams::new(pct, dmin).unwrap()).unwrap();
        let large =
            db_outliers(&data, &Euclidean, DbOutlierParams::new(pct, dmin * 2.0).unwrap()).unwrap();
        for (s, l) in small.iter().zip(&large) {
            prop_assert!(*s || !*l, "outlier at larger dmin must be outlier at smaller");
        }
    }

    #[test]
    fn db_outliers_are_monotone_in_pct(
        data in dataset_strategy(40, 2),
        dmin in 0.1f64..20.0,
    ) {
        // Raising pct tightens the allowed inside-count, shrinking the set.
        let loose = db_outliers(&data, &Euclidean, DbOutlierParams::new(60.0, dmin).unwrap()).unwrap();
        let strict = db_outliers(&data, &Euclidean, DbOutlierParams::new(95.0, dmin).unwrap()).unwrap();
        for (l, s) in loose.iter().zip(&strict) {
            prop_assert!(*l || !*s, "strict-pct outlier must also be loose-pct outlier");
        }
    }

    #[test]
    fn db_outlier_variants_agree(
        data in dataset_strategy(35, 2),
        pct in 0.0f64..=100.0,
        dmin in 0.0f64..30.0,
    ) {
        let params = DbOutlierParams::new(pct, dmin).unwrap();
        let nested = db_outliers(&data, &Euclidean, params).unwrap();
        let scan = LinearScan::new(&data, Euclidean);
        let indexed = db_outliers_with(&scan, params).unwrap();
        prop_assert_eq!(nested, indexed);
    }

    #[test]
    fn cell_based_equals_nested_loop(
        data in dataset_strategy(40, 2),
        pct in 0.0f64..=100.0,
        dmin in 0.0f64..30.0,
    ) {
        let params = DbOutlierParams::new(pct, dmin).unwrap();
        let nested = db_outliers(&data, &Euclidean, params).unwrap();
        let cell = lof_baselines::db_outliers_cell_based(&data, params).unwrap();
        prop_assert_eq!(nested, cell.flags);
    }

    #[test]
    fn cell_based_equals_nested_loop_3d(
        data in dataset_strategy(35, 3),
        pct in 50.0f64..=100.0,
        dmin in 0.5f64..20.0,
    ) {
        let params = DbOutlierParams::new(pct, dmin).unwrap();
        let nested = db_outliers(&data, &Euclidean, params).unwrap();
        let cell = lof_baselines::db_outliers_cell_based(&data, params).unwrap();
        prop_assert_eq!(nested, cell.flags);
    }

    #[test]
    fn knn_outlier_ranking_is_sorted_and_consistent(
        data in dataset_strategy(30, 2),
        k in 1usize..6,
        top in 1usize..10,
    ) {
        let k = k.min(data.len() - 1).max(1);
        let scan = LinearScan::new(&data, Euclidean);
        let scores = kth_distance_scores(&scan, k).unwrap();
        let ranked = top_n_outliers(&scan, k, top).unwrap();
        prop_assert_eq!(ranked.len(), top.min(data.len()));
        for w in ranked.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        for &(id, score) in &ranked {
            prop_assert_eq!(score, scores[id]);
        }
        // Nothing outside the top-n beats anything inside it.
        if let Some(&(_, cutoff)) = ranked.last() {
            let inside: Vec<usize> = ranked.iter().map(|&(id, _)| id).collect();
            for (id, &s) in scores.iter().enumerate() {
                if !inside.contains(&id) {
                    prop_assert!(s <= cutoff);
                }
            }
        }
    }

    #[test]
    fn dbscan_clusters_partition_and_respect_min_pts(
        data in dataset_strategy(40, 2),
        eps in 0.5f64..20.0,
        min_pts in 1usize..8,
    ) {
        let scan = LinearScan::new(&data, Euclidean);
        let result = dbscan(&scan, eps, min_pts).unwrap();
        prop_assert_eq!(result.assignments.len(), data.len());
        // Every non-noise cluster contains at least one core point, hence
        // at least min_pts objects (core point + its eps-neighbors, all of
        // which join the cluster).
        for c in 0..result.clusters {
            let members = result.cluster_ids(c);
            prop_assert!(!members.is_empty());
            prop_assert!(
                members.len() >= min_pts.min(data.len()),
                "cluster {c} of size {} under min_pts {min_pts}",
                members.len()
            );
        }
    }

    #[test]
    fn dbscan_noise_points_are_not_core(
        data in dataset_strategy(40, 2),
        eps in 0.5f64..20.0,
        min_pts in 2usize..8,
    ) {
        let scan = LinearScan::new(&data, Euclidean);
        let result = dbscan(&scan, eps, min_pts).unwrap();
        for id in result.noise_ids() {
            let within = scan.within(id, eps).unwrap().len() + 1;
            prop_assert!(within < min_pts, "noise point {id} is core ({within} >= {min_pts})");
        }
    }

    #[test]
    fn optics_order_is_a_permutation_and_core_distances_valid(
        data in dataset_strategy(35, 2),
        min_pts in 1usize..6,
    ) {
        let min_pts = min_pts.min(data.len()).max(1);
        let scan = LinearScan::new(&data, Euclidean);
        let result = optics(&scan, f64::INFINITY, min_pts).unwrap();
        let mut order = result.order.clone();
        order.sort_unstable();
        prop_assert_eq!(order, (0..data.len()).collect::<Vec<_>>());
        // Core distance == (min_pts - 1)-th neighbor distance under eps = inf.
        for id in 0..data.len() {
            if min_pts == 1 {
                prop_assert_eq!(result.core_distance[id], 0.0);
            } else {
                let nn = scan.k_nearest(id, min_pts - 1).unwrap();
                prop_assert_eq!(result.core_distance[id], nn[min_pts - 2].dist);
            }
        }
    }

    #[test]
    fn optics_reachability_never_below_core_distance_of_source(
        data in dataset_strategy(30, 2),
        min_pts in 2usize..5,
    ) {
        let min_pts = min_pts.min(data.len()).max(2);
        let scan = LinearScan::new(&data, Euclidean);
        let result = optics(&scan, f64::INFINITY, min_pts).unwrap();
        // Reachability is max(core-dist(source), d(source, target)), so the
        // global minimum finite reachability >= global minimum core dist.
        let min_reach = result
            .reachability
            .iter()
            .cloned()
            .filter(|r| r.is_finite())
            .fold(f64::INFINITY, f64::min);
        let min_core = result
            .core_distance
            .iter()
            .cloned()
            .filter(|c| c.is_finite())
            .fold(f64::INFINITY, f64::min);
        if min_reach.is_finite() && min_core.is_finite() {
            prop_assert!(min_reach >= min_core - 1e-12);
        }
    }

    #[test]
    fn zscore_is_translation_invariant(
        data in dataset_strategy(30, 2),
        shift in -100.0f64..100.0,
    ) {
        let base = max_abs_zscore(&data).unwrap();
        let shifted_rows: Vec<Vec<f64>> =
            data.iter().map(|(_, p)| p.iter().map(|&v| v + shift).collect()).collect();
        let shifted = max_abs_zscore(&Dataset::from_rows(&shifted_rows).unwrap()).unwrap();
        for (a, b) in base.iter().zip(&shifted) {
            prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
        }
    }

    #[test]
    fn mahalanobis_is_affine_translation_invariant_and_nonnegative(
        data in dataset_strategy(30, 2),
        shift in -100.0f64..100.0,
    ) {
        let base = mahalanobis_scores(&data).unwrap();
        for s in &base {
            prop_assert!(*s >= 0.0);
        }
        let shifted_rows: Vec<Vec<f64>> =
            data.iter().map(|(_, p)| p.iter().map(|&v| v + shift).collect()).collect();
        let shifted = mahalanobis_scores(&Dataset::from_rows(&shifted_rows).unwrap()).unwrap();
        for (a, b) in base.iter().zip(&shifted) {
            prop_assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn peeling_depths_start_at_one_and_hull_is_layer_one(
        data in dataset_strategy(30, 2),
    ) {
        let depths = peeling_depths(&data).unwrap();
        prop_assert!(depths.iter().all(|&d| d >= 1));
        prop_assert!(depths.contains(&1));
        // Some point at each extremal coordinate is on the outer hull
        // (duplicates share a location but only one representative per
        // layer, so we assert existence, not a specific id).
        for dim in 0..2 {
            let min_v = (0..data.len())
                .map(|i| data.point(i)[dim])
                .fold(f64::INFINITY, f64::min);
            let max_v = (0..data.len())
                .map(|i| data.point(i)[dim])
                .fold(f64::NEG_INFINITY, f64::max);
            for v in [min_v, max_v] {
                prop_assert!(
                    (0..data.len()).any(|i| data.point(i)[dim] == v && depths[i] == 1),
                    "no depth-1 point at extremal coordinate {v} of dim {dim}"
                );
            }
        }
    }
}
