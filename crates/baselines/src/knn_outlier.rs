//! Ramaswamy–Rastogi–Shim outlier ranking (reference \[17\] of the paper):
//! rank objects by the distance to their `k`-th nearest neighbor and report
//! the top `n`.
//!
//! This refines `DB(pct, dmin)` from binary to ranked, but the score is
//! still a raw distance, so — unlike LOF — it cannot equate "outlying by 3
//! units from a dense cluster" with "outlying by 30 from a sparse one".

use lof_core::{KnnProvider, Result};

/// `k`-distance of every object (the `D^k` score of \[17\]).
///
/// # Errors
///
/// Propagates provider validation errors.
pub fn kth_distance_scores<P: KnnProvider + ?Sized>(provider: &P, k: usize) -> Result<Vec<f64>> {
    let mut scores = Vec::with_capacity(provider.len());
    for id in 0..provider.len() {
        let nn = provider.k_nearest(id, k)?;
        scores.push(nn.last().expect("non-empty neighborhood").dist);
    }
    Ok(scores)
}

/// Mean distance to the `k` nearest neighbors (tie-inclusive) — the
/// "weight" variant of distance-based outlier ranking (Angiulli & Pizzuti's
/// refinement of \[17\]). Less sensitive to a single lucky close neighbor
/// than the plain `k`-distance, but still distance-scaled and global.
///
/// # Errors
///
/// Propagates provider validation errors.
pub fn mean_knn_distance_scores<P: KnnProvider + ?Sized>(
    provider: &P,
    k: usize,
) -> Result<Vec<f64>> {
    let mut scores = Vec::with_capacity(provider.len());
    for id in 0..provider.len() {
        let nn = provider.k_nearest(id, k)?;
        scores.push(nn.iter().map(|n| n.dist).sum::<f64>() / nn.len() as f64);
    }
    Ok(scores)
}

/// The top `n` objects by `k`-distance, descending (the `D^k_n` outliers of
/// \[17\]). Ties break by id.
///
/// # Errors
///
/// Propagates provider validation errors.
pub fn top_n_outliers<P: KnnProvider + ?Sized>(
    provider: &P,
    k: usize,
    n: usize,
) -> Result<Vec<(usize, f64)>> {
    let scores = kth_distance_scores(provider, k)?;
    let mut ranked: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
    ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(n);
    Ok(ranked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Dataset, Euclidean, LinearScan};

    #[test]
    fn far_point_ranks_first() {
        let mut rows: Vec<[f64; 1]> = (0..30).map(|i| [i as f64 * 0.1]).collect();
        rows.push([50.0]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let scan = LinearScan::new(&ds, Euclidean);
        let top = top_n_outliers(&scan, 3, 2).unwrap();
        assert_eq!(top[0].0, 30);
        assert!(top[0].1 > 40.0);
        assert!(top[0].1 > top[1].1);
    }

    #[test]
    fn misses_local_outliers_next_to_dense_clusters() {
        // The motivating failure: a point 1.0 away from a dense cluster
        // scores *lower* than regular members of a sparse cluster.
        let mut rows: Vec<[f64; 1]> = (0..50).map(|i| [i as f64 * 0.01]).collect(); // dense
        rows.push([1.5]); // local outlier next to the dense cluster (id 50)
        rows.extend((0..20).map(|i| [100.0 + i as f64 * 3.0])); // sparse cluster
        let ds = Dataset::from_rows(&rows).unwrap();
        let scan = LinearScan::new(&ds, Euclidean);
        let scores = kth_distance_scores(&scan, 3).unwrap();
        let local_outlier_score = scores[50];
        let sparse_member_score = scores[60];
        assert!(
            sparse_member_score > local_outlier_score,
            "k-distance ranking prefers sparse-cluster members \
             ({sparse_member_score}) over the local outlier ({local_outlier_score})"
        );
    }

    #[test]
    fn top_n_truncates_and_sorts() {
        let rows: Vec<[f64; 1]> = (0..10).map(|i| [(i * i) as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let scan = LinearScan::new(&ds, Euclidean);
        let top = top_n_outliers(&scan, 2, 3).unwrap();
        assert_eq!(top.len(), 3);
        assert!(top[0].1 >= top[1].1 && top[1].1 >= top[2].1);
    }

    #[test]
    fn mean_variant_is_bounded_by_kth_distance() {
        let rows: Vec<[f64; 1]> = (0..25).map(|i| [(i * i % 37) as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let scan = LinearScan::new(&ds, Euclidean);
        let kth = kth_distance_scores(&scan, 4).unwrap();
        let mean = mean_knn_distance_scores(&scan, 4).unwrap();
        for (m, k) in mean.iter().zip(&kth) {
            assert!(m <= k, "mean of neighbor distances cannot exceed the k-distance");
            assert!(*m >= 0.0);
        }
    }

    #[test]
    fn mean_variant_smooths_single_close_neighbor() {
        // A pair of near-duplicates far from a cluster: the k-distance of
        // each pair member already reaches the cluster, but even at k = 1
        // the *mean* variant with k = 3 flags them while plain 1-distance
        // would not.
        let mut rows: Vec<[f64; 1]> = (0..20).map(|i| [i as f64 * 0.1]).collect();
        rows.push([50.0]);
        rows.push([50.01]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let scan = LinearScan::new(&ds, Euclidean);
        let one_dist = kth_distance_scores(&scan, 1).unwrap();
        let mean3 = mean_knn_distance_scores(&scan, 3).unwrap();
        // Plain 1-distance: the pair looks as cozy as cluster members.
        assert!(one_dist[20] < one_dist[..20].iter().cloned().fold(f64::MIN, f64::max) * 2.0);
        // Mean-of-3 exposes them.
        let max_cluster = mean3[..20].iter().cloned().fold(f64::MIN, f64::max);
        assert!(mean3[20] > 10.0 * max_cluster);
    }

    #[test]
    fn propagates_validation_errors() {
        let ds = Dataset::from_rows(&[[0.0], [1.0]]).unwrap();
        let scan = LinearScan::new(&ds, Euclidean);
        assert!(kth_distance_scores(&scan, 5).is_err());
    }
}
