//! OPTICS (Ankerst, Breunig, Kriegel, Sander, SIGMOD 1999) — the
//! hierarchical density ordering the LOF paper names as its "handshake"
//! partner in the conclusions: both algorithms are built from the same
//! `k-nn` queries and reachability distances, so computation can be shared.
//!
//! We expose the cluster ordering plus per-object reachability and core
//! distances, a DBSCAN-equivalent flat-cluster extraction, and a
//! reachability-based outlier report that can be cross-read against LOF
//! scores (see the `optics_handshake` example).

use lof_core::{KnnProvider, LofError, Result};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Output of an OPTICS run.
#[derive(Debug, Clone)]
pub struct OpticsResult {
    /// Objects in cluster order (the x-axis of a reachability plot).
    pub order: Vec<usize>,
    /// Reachability distance per *object id* (`f64::INFINITY` =
    /// undefined, i.e. the object starts a new component in the plot).
    pub reachability: Vec<f64>,
    /// Core distance per object id (`f64::INFINITY` when the object is
    /// never a core object for the given `eps`/`min_pts`).
    pub core_distance: Vec<f64>,
}

impl OpticsResult {
    /// Reachability values in cluster order — the reachability plot itself.
    pub fn reachability_plot(&self) -> Vec<f64> {
        self.order.iter().map(|&id| self.reachability[id]).collect()
    }

    /// Extracts DBSCAN-equivalent flat clusters at threshold `eps_prime`
    /// (<= the eps OPTICS ran with). Returns per-object cluster index, with
    /// `None` for noise.
    pub fn extract_clusters(&self, eps_prime: f64) -> Vec<Option<usize>> {
        let mut labels = vec![None; self.order.len()];
        let mut cluster: Option<usize> = None;
        let mut next = 0usize;
        for &id in &self.order {
            if self.reachability[id] > eps_prime {
                if self.core_distance[id] <= eps_prime {
                    cluster = Some(next);
                    next += 1;
                    labels[id] = cluster;
                } else {
                    labels[id] = None; // noise
                    cluster = None;
                }
            } else {
                labels[id] = cluster;
            }
        }
        labels
    }

    /// Objects whose reachability exceeds `threshold`, ranked by
    /// reachability descending — a crude outlier report from the plot. Note
    /// it is *distance*-scaled: unlike LOF it cannot compare isolation
    /// across clusters of different density.
    pub fn outliers_by_reachability(&self, threshold: f64) -> Vec<(usize, f64)> {
        let mut out: Vec<(usize, f64)> = self
            .reachability
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, r)| r > threshold && r.is_finite())
            .collect();
        out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[derive(Debug, PartialEq)]
struct Seed {
    reachability: f64,
    id: usize,
}

impl Eq for Seed {}

impl Ord for Seed {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by (reachability, id).
        other.reachability.total_cmp(&self.reachability).then(other.id.cmp(&self.id))
    }
}

impl PartialOrd for Seed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Runs OPTICS with generating distance `eps` and density threshold
/// `min_pts` (counting the object itself, as in the original paper).
///
/// Complexity is `O(n · cost(range query))`; pass `f64::INFINITY` as `eps`
/// for a complete ordering.
///
/// ```
/// use lof_baselines::optics;
/// use lof_core::{Dataset, Euclidean, LinearScan};
///
/// let rows: Vec<[f64; 1]> = (0..10).map(|i| [i as f64 * 0.1]).chain([[9.0]]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let scan = LinearScan::new(&data, Euclidean);
/// let ordering = optics(&scan, f64::INFINITY, 3).unwrap();
/// assert_eq!(ordering.order.len(), 11);
/// // The isolated point is reached over a visible reachability jump.
/// assert!(ordering.reachability[10] > 5.0);
/// ```
///
/// # Errors
///
/// Returns [`LofError::EmptyDataset`] / [`LofError::InvalidMinPts`] on
/// invalid input and propagates provider errors.
pub fn optics<P: KnnProvider + ?Sized>(
    provider: &P,
    eps: f64,
    min_pts: usize,
) -> Result<OpticsResult> {
    let n = provider.len();
    if n == 0 {
        return Err(LofError::EmptyDataset);
    }
    if min_pts == 0 || min_pts > n {
        return Err(LofError::InvalidMinPts { min_pts, dataset_size: n });
    }

    let mut processed = vec![false; n];
    let mut reachability = vec![f64::INFINITY; n];
    let mut core_distance = vec![f64::INFINITY; n];
    let mut order = Vec::with_capacity(n);

    for start in 0..n {
        if processed[start] {
            continue;
        }
        // Seed list for the current density-connected component, with lazy
        // decrease-key: stale entries are skipped on pop.
        let mut seeds: BinaryHeap<Seed> = BinaryHeap::new();
        seeds.push(Seed { reachability: f64::INFINITY, id: start });
        while let Some(Seed { id: p, reachability: r }) = seeds.pop() {
            if processed[p] || r > reachability[p] {
                continue; // stale entry
            }
            processed[p] = true;
            order.push(p);

            let neighbors = provider.within(p, eps)?;
            // Core distance: min_pts-distance counting p itself, i.e. the
            // (min_pts - 1)-th neighbor distance.
            if neighbors.len() + 1 >= min_pts {
                core_distance[p] = if min_pts == 1 { 0.0 } else { neighbors[min_pts - 2].dist };
                for nb in &neighbors {
                    if processed[nb.id] {
                        continue;
                    }
                    let new_reach = core_distance[p].max(nb.dist);
                    if new_reach < reachability[nb.id] {
                        reachability[nb.id] = new_reach;
                        seeds.push(Seed { reachability: new_reach, id: nb.id });
                    }
                }
            }
        }
    }
    Ok(OpticsResult { order, reachability, core_distance })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Dataset, Euclidean, LinearScan};

    fn two_blobs() -> Dataset {
        let mut rows: Vec<[f64; 1]> = (0..20).map(|i| [i as f64 * 0.1]).collect();
        rows.extend((0..20).map(|i| [50.0 + i as f64 * 0.1]));
        rows.push([25.0]); // isolated point, id 40
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn visits_every_object_once() {
        let ds = two_blobs();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = optics(&scan, f64::INFINITY, 4).unwrap();
        let mut order = result.order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..ds.len()).collect::<Vec<_>>());
    }

    #[test]
    fn blob_members_have_small_reachability() {
        let ds = two_blobs();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = optics(&scan, f64::INFINITY, 4).unwrap();
        // Interior members of either blob: reachability ≈ grid spacing.
        for id in 5..15 {
            assert!(result.reachability[id] <= 0.5, "id={id}: {}", result.reachability[id]);
        }
        // The isolated point is reached over a long jump.
        assert!(result.reachability[40] > 10.0 || result.reachability[40].is_infinite());
    }

    #[test]
    fn extract_clusters_matches_blob_structure() {
        let ds = two_blobs();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = optics(&scan, f64::INFINITY, 4).unwrap();
        let labels = result.extract_clusters(1.0);
        let c0 = labels[0].expect("blob member clustered");
        for label in &labels[..20] {
            assert_eq!(*label, Some(c0));
        }
        let c1 = labels[20].expect("blob member clustered");
        assert_ne!(c0, c1);
        for label in &labels[20..40] {
            assert_eq!(*label, Some(c1));
        }
        assert_eq!(labels[40], None, "isolated point is noise");
    }

    #[test]
    fn outliers_by_reachability_reports_the_isolate() {
        let ds = two_blobs();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = optics(&scan, f64::INFINITY, 4).unwrap();
        let outliers = result.outliers_by_reachability(5.0);
        assert!(outliers.iter().any(|&(id, _)| id == 40) || result.reachability[40].is_infinite());
    }

    #[test]
    fn finite_eps_limits_connectivity() {
        let ds = two_blobs();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = optics(&scan, 1.0, 4).unwrap();
        // With eps = 1 the isolated point can never be a core object nor a
        // neighbor, so its reachability stays undefined.
        assert!(result.reachability[40].is_infinite());
        assert!(result.core_distance[40].is_infinite());
    }

    #[test]
    fn reachability_plot_follows_order() {
        let ds = two_blobs();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = optics(&scan, f64::INFINITY, 4).unwrap();
        let plot = result.reachability_plot();
        assert_eq!(plot.len(), ds.len());
        assert_eq!(plot[0], result.reachability[result.order[0]]);
    }

    #[test]
    fn validation() {
        let empty = Dataset::new(1);
        let scan = LinearScan::new(&empty, Euclidean);
        assert!(optics(&scan, 1.0, 3).is_err());
        let ds = two_blobs();
        let scan = LinearScan::new(&ds, Euclidean);
        assert!(optics(&scan, 1.0, 0).is_err());
        assert!(optics(&scan, 1.0, ds.len() + 1).is_err());
    }
}
