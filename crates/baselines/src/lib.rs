//! # lof-baselines — the comparison algorithms of the LOF paper
//!
//! Every notion of "outlier" the paper positions LOF against, implemented
//! from scratch so the evaluation harness can reproduce the comparisons:
//!
//! | module | algorithm | paper role |
//! |---|---|---|
//! | [`db_outlier`] | Knorr–Ng `DB(pct, dmin)` outliers \[13\] (nested loop + index) | main comparator (definition 2, §3, §7.2) |
//! | [`cell_based`] | Knorr–Ng cell-based algorithm (VLDB 1998) | the comparator's own linear-time algorithm |
//! | [`knn_outlier`] | top-n by k-NN distance \[17\] | ranked distance-based outliers |
//! | [`dbscan`] | DBSCAN \[7\] noise | "clustering treats outliers as binary noise" (§2) |
//! | [`optics`] | OPTICS \[2\] | the conclusions' "handshake" partner |
//! | [`statistical`] | z-score, Mahalanobis | distribution-based category (§2) |
//! | [`depth`] | 2-d convex-hull peeling | depth-based category (§2) |
//! | [`intensional`] | Knorr–Ng minimal outlying subspaces \[14\] | the future-work pointer for explaining high-dimensional outliers |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cell_based;
pub mod db_outlier;
pub mod dbscan;
pub mod depth;
pub mod intensional;
pub mod knn_outlier;
pub mod optics;
pub mod statistical;

pub use cell_based::{db_outliers_cell_based, CellBasedResult, CellStats};
pub use db_outlier::{best_params_isolating, db_outliers, db_outliers_with, DbOutlierParams};
pub use dbscan::{dbscan, Assignment, DbscanResult};
pub use depth::{peeling_depths, shallowest};
pub use intensional::{strongest_outlying_subspaces, IntensionalReport, SubspaceScore};
pub use knn_outlier::{kth_distance_scores, mean_knn_distance_scores, top_n_outliers};
pub use optics::{optics, OpticsResult};
pub use statistical::{mahalanobis_scores, max_abs_zscore};
