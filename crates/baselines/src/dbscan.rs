//! DBSCAN (Ester, Kriegel, Sander, Xu, KDD 1996) — the density-based
//! clustering algorithm LOF borrows its `MinPts` intuition from.
//!
//! Included as the "clustering algorithms handle outliers as binary noise"
//! baseline of the paper's section 2: DBSCAN's noise set depends strongly
//! on its global `(eps, min_pts)` density threshold, and noise membership is
//! a yes/no property with no degree.

use lof_core::{KnnProvider, LofError, Result};

/// Cluster assignment produced by [`dbscan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Member of the cluster with the given index (0-based).
    Cluster(usize),
    /// Noise: the binary "outlier" verdict of a clustering algorithm.
    Noise,
}

impl Assignment {
    /// True for noise points.
    pub fn is_noise(self) -> bool {
        matches!(self, Assignment::Noise)
    }
}

/// The result of a DBSCAN run.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Per-object assignment.
    pub assignments: Vec<Assignment>,
    /// Number of clusters found.
    pub clusters: usize,
}

impl DbscanResult {
    /// Ids of all noise points.
    pub fn noise_ids(&self) -> Vec<usize> {
        self.assignments.iter().enumerate().filter(|(_, a)| a.is_noise()).map(|(i, _)| i).collect()
    }

    /// Ids of the members of one cluster.
    pub fn cluster_ids(&self, cluster: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Assignment::Cluster(cluster))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Runs DBSCAN over an indexed dataset.
///
/// A point is a *core point* if at least `min_pts` objects (counting
/// itself, as in the original paper) lie within `eps`. Clusters grow from
/// core points through density-reachability; non-core points adjacent to a
/// cluster join it as border points; everything else is noise.
///
/// ```
/// use lof_baselines::dbscan;
/// use lof_core::{Dataset, Euclidean, LinearScan};
///
/// let rows: Vec<[f64; 1]> = (0..10).map(|i| [i as f64 * 0.1]).chain([[9.0]]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let scan = LinearScan::new(&data, Euclidean);
/// let result = dbscan(&scan, 0.2, 3).unwrap();
/// assert_eq!(result.clusters, 1);
/// assert_eq!(result.noise_ids(), vec![10]);
/// ```
///
/// # Errors
///
/// Returns [`LofError::EmptyDataset`] on empty input,
/// [`LofError::InvalidMinPts`] for `min_pts == 0`, and propagates provider
/// errors.
pub fn dbscan<P: KnnProvider + ?Sized>(
    provider: &P,
    eps: f64,
    min_pts: usize,
) -> Result<DbscanResult> {
    let n = provider.len();
    if n == 0 {
        return Err(LofError::EmptyDataset);
    }
    if min_pts == 0 {
        return Err(LofError::InvalidMinPts { min_pts, dataset_size: n });
    }

    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut label = vec![UNVISITED; n];
    let mut clusters = 0usize;

    for start in 0..n {
        if label[start] != UNVISITED {
            continue;
        }
        let neighbors = provider.within(start, eps)?;
        if neighbors.len() + 1 < min_pts {
            label[start] = NOISE;
            continue;
        }
        // New cluster seeded at a core point; expand via BFS.
        let cluster = clusters;
        clusters += 1;
        label[start] = cluster;
        let mut frontier: Vec<usize> = neighbors.iter().map(|nb| nb.id).collect();
        let mut cursor = 0;
        while cursor < frontier.len() {
            let q = frontier[cursor];
            cursor += 1;
            if label[q] == NOISE {
                label[q] = cluster; // border point adopted by the cluster
                continue;
            }
            if label[q] != UNVISITED {
                continue;
            }
            label[q] = cluster;
            let q_neighbors = provider.within(q, eps)?;
            if q_neighbors.len() + 1 >= min_pts {
                frontier.extend(q_neighbors.iter().map(|nb| nb.id));
            }
        }
    }

    let assignments = label
        .into_iter()
        .map(|l| if l == NOISE { Assignment::Noise } else { Assignment::Cluster(l) })
        .collect();
    Ok(DbscanResult { assignments, clusters })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Dataset, Euclidean, LinearScan};

    fn two_blobs_and_noise() -> Dataset {
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push([i as f64 * 0.5, j as f64 * 0.5]); // blob A
                rows.push([20.0 + i as f64 * 0.5, j as f64 * 0.5]); // blob B
            }
        }
        rows.push([10.0, 10.0]); // isolated noise (id 50)
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let ds = two_blobs_and_noise();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = dbscan(&scan, 1.0, 4).unwrap();
        assert_eq!(result.clusters, 2);
        assert_eq!(result.noise_ids(), vec![50]);
        // Each blob ends up in a single cluster.
        let a0 = result.assignments[0];
        for id in (0..50).step_by(2) {
            assert_eq!(result.assignments[id], a0);
        }
    }

    #[test]
    fn eps_too_small_makes_everything_noise() {
        let ds = two_blobs_and_noise();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = dbscan(&scan, 0.01, 4).unwrap();
        assert_eq!(result.clusters, 0);
        assert_eq!(result.noise_ids().len(), ds.len());
    }

    #[test]
    fn eps_too_large_merges_everything() {
        let ds = two_blobs_and_noise();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = dbscan(&scan, 100.0, 4).unwrap();
        assert_eq!(result.clusters, 1);
        assert!(result.noise_ids().is_empty());
        // The global density threshold erases the outlier — the drawback
        // section 2 points out.
        assert!(!result.assignments[50].is_noise());
    }

    #[test]
    fn noise_verdict_is_binary_not_graded() {
        let ds = two_blobs_and_noise();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = dbscan(&scan, 1.0, 4).unwrap();
        // The API simply cannot express "how outlying": this is the
        // structural limitation LOF addresses.
        for a in &result.assignments {
            match a {
                Assignment::Cluster(_) | Assignment::Noise => {}
            }
        }
    }

    #[test]
    fn cluster_ids_partition_non_noise() {
        let ds = two_blobs_and_noise();
        let scan = LinearScan::new(&ds, Euclidean);
        let result = dbscan(&scan, 1.0, 4).unwrap();
        let total: usize = (0..result.clusters).map(|c| result.cluster_ids(c).len()).sum::<usize>()
            + result.noise_ids().len();
        assert_eq!(total, ds.len());
    }

    #[test]
    fn validation() {
        let ds = Dataset::new(2);
        let scan = LinearScan::new(&ds, Euclidean);
        assert!(matches!(dbscan(&scan, 1.0, 3), Err(LofError::EmptyDataset)));
        let ds = two_blobs_and_noise();
        let scan = LinearScan::new(&ds, Euclidean);
        assert!(matches!(dbscan(&scan, 1.0, 0), Err(LofError::InvalidMinPts { .. })));
    }
}
