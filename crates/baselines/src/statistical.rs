//! Distribution-based discordancy scores — the first category of related
//! work in the paper's section 2: fit a standard distribution, call the
//! improbable points outliers.
//!
//! We provide the two canonical instances: per-dimension z-scores (the
//! univariate tests the section criticizes as mostly univariate) and the
//! Mahalanobis distance under a fitted multivariate normal.

use lof_core::{Dataset, LofError, Result};

/// Per-object score: the maximum absolute z-score over all dimensions.
/// High values mean "extreme in at least one coordinate" — a global,
/// axis-aligned notion that misses local outliers entirely.
///
/// # Errors
///
/// Returns [`LofError::EmptyDataset`] for empty input.
pub fn max_abs_zscore(data: &Dataset) -> Result<Vec<f64>> {
    if data.is_empty() {
        return Err(LofError::EmptyDataset);
    }
    let dims = data.dims();
    let n = data.len() as f64;
    let mut mean = vec![0.0; dims];
    for (_, p) in data.iter() {
        for d in 0..dims {
            mean[d] += p[d];
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut std_dev = vec![0.0; dims];
    for (_, p) in data.iter() {
        for d in 0..dims {
            let delta = p[d] - mean[d];
            std_dev[d] += delta * delta;
        }
    }
    for s in &mut std_dev {
        *s = (*s / n).sqrt();
        if *s == 0.0 {
            *s = 1.0; // constant column contributes z = 0
        }
    }
    Ok(data
        .iter()
        .map(|(_, p)| (0..dims).map(|d| ((p[d] - mean[d]) / std_dev[d]).abs()).fold(0.0, f64::max))
        .collect())
}

/// Mahalanobis distances under a multivariate normal fitted by sample mean
/// and covariance. A small ridge (`1e-9` times the mean diagonal) keeps
/// near-singular covariances invertible.
///
/// # Errors
///
/// Returns [`LofError::EmptyDataset`] for empty input and
/// [`LofError::InvalidPartition`] when the (ridged) covariance is still
/// singular.
pub fn mahalanobis_scores(data: &Dataset) -> Result<Vec<f64>> {
    if data.is_empty() {
        return Err(LofError::EmptyDataset);
    }
    let dims = data.dims();
    let n = data.len() as f64;

    let mut mean = vec![0.0; dims];
    for (_, p) in data.iter() {
        for d in 0..dims {
            mean[d] += p[d];
        }
    }
    for m in &mut mean {
        *m /= n;
    }

    // Sample covariance (row-major dims x dims).
    let mut cov = vec![0.0; dims * dims];
    for (_, p) in data.iter() {
        for i in 0..dims {
            let di = p[i] - mean[i];
            for j in i..dims {
                cov[i * dims + j] += di * (p[j] - mean[j]);
            }
        }
    }
    for i in 0..dims {
        for j in i..dims {
            let v = cov[i * dims + j] / n;
            cov[i * dims + j] = v;
            cov[j * dims + i] = v;
        }
    }
    // Ridge regularization against degenerate directions.
    let trace_mean = (0..dims).map(|i| cov[i * dims + i]).sum::<f64>() / dims as f64;
    let ridge = (trace_mean * 1e-9).max(f64::MIN_POSITIVE);
    for i in 0..dims {
        cov[i * dims + i] += ridge;
    }

    let inv = invert(&cov, dims)
        .ok_or_else(|| LofError::InvalidPartition("covariance matrix is singular".to_owned()))?;

    let mut scores = Vec::with_capacity(data.len());
    let mut centered = vec![0.0; dims];
    for (_, p) in data.iter() {
        for d in 0..dims {
            centered[d] = p[d] - mean[d];
        }
        let mut quad = 0.0;
        for i in 0..dims {
            let mut row = 0.0;
            for j in 0..dims {
                row += inv[i * dims + j] * centered[j];
            }
            quad += centered[i] * row;
        }
        scores.push(quad.max(0.0).sqrt());
    }
    Ok(scores)
}

/// Gauss–Jordan inversion with partial pivoting; `None` when singular.
fn invert(matrix: &[f64], n: usize) -> Option<Vec<f64>> {
    let mut a = matrix.to_vec();
    let mut inv = vec![0.0; n * n];
    for i in 0..n {
        inv[i * n + i] = 1.0;
    }
    for col in 0..n {
        // Partial pivot.
        let pivot_row =
            (col..n).max_by(|&r1, &r2| a[r1 * n + col].abs().total_cmp(&a[r2 * n + col].abs()))?;
        if a[pivot_row * n + col].abs() < 1e-300 {
            return None;
        }
        if pivot_row != col {
            for j in 0..n {
                a.swap(col * n + j, pivot_row * n + j);
                inv.swap(col * n + j, pivot_row * n + j);
            }
        }
        let pivot = a[col * n + col];
        for j in 0..n {
            a[col * n + j] /= pivot;
            inv[col * n + j] /= pivot;
        }
        for row in 0..n {
            if row == col {
                continue;
            }
            let factor = a[row * n + col];
            if factor == 0.0 {
                continue;
            }
            for j in 0..n {
                a[row * n + j] -= factor * a[col * n + j];
                inv[row * n + j] -= factor * inv[col * n + j];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zscore_flags_coordinate_extremes() {
        let mut rows: Vec<[f64; 2]> = (0..50).map(|i| [(i % 10) as f64, (i / 10) as f64]).collect();
        rows.push([100.0, 2.0]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let scores = max_abs_zscore(&ds).unwrap();
        let max_id = scores.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        assert_eq!(max_id, 50);
    }

    #[test]
    fn zscore_handles_constant_columns() {
        let ds = Dataset::from_rows(&[[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]]).unwrap();
        let scores = max_abs_zscore(&ds).unwrap();
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn mahalanobis_respects_correlation() {
        // Points along the diagonal y = x; an off-diagonal point is more
        // anomalous than an on-diagonal point equally far from the mean.
        let mut rows: Vec<[f64; 2]> = (0..100)
            .map(|i| {
                let t = i as f64 / 10.0;
                let jitter = if i % 2 == 0 { 0.1 } else { -0.1 };
                [t, t + jitter]
            })
            .collect();
        rows.push([9.0, 1.0]); // off the correlation ridge, id 100
        let ds = Dataset::from_rows(&rows).unwrap();
        let scores = mahalanobis_scores(&ds).unwrap();
        let on_diag_extreme = scores[99];
        assert!(
            scores[100] > 2.0 * on_diag_extreme,
            "off-diagonal {} vs on-diagonal {}",
            scores[100],
            on_diag_extreme
        );
    }

    #[test]
    fn mahalanobis_of_center_is_small() {
        let rows: Vec<[f64; 2]> =
            (0..100).map(|i| [((i % 10) as f64) - 4.5, ((i / 10) as f64) - 4.5]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let scores = mahalanobis_scores(&ds).unwrap();
        let min_id = scores.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)).unwrap().0;
        let p = ds.point(min_id);
        assert!(p[0].abs() <= 1.0 && p[1].abs() <= 1.0, "most central point wins");
    }

    #[test]
    fn invert_recovers_identity() {
        let m = vec![2.0, 0.0, 0.0, 4.0];
        let inv = invert(&m, 2).unwrap();
        assert!((inv[0] - 0.5).abs() < 1e-12);
        assert!((inv[3] - 0.25).abs() < 1e-12);
        assert_eq!(invert(&[0.0, 0.0, 0.0, 0.0], 2), None);
    }

    #[test]
    fn empty_inputs_are_rejected() {
        let ds = Dataset::new(2);
        assert!(max_abs_zscore(&ds).is_err());
        assert!(mahalanobis_scores(&ds).is_err());
    }

    #[test]
    fn statistical_baselines_miss_local_outliers() {
        // The paper's core criticism, executable: a point next to a dense
        // cluster but inside the global spread gets an unremarkable score.
        let mut rows: Vec<[f64; 1]> = (0..100).map(|i| [i as f64 * 0.01]).collect(); // dense near 0
        rows.extend((0..10).map(|i| [50.0 + i as f64 * 5.0])); // sparse far out
        rows.push([3.0]); // strong local outlier, id 110, well inside the range
        let ds = Dataset::from_rows(&rows).unwrap();
        let z = max_abs_zscore(&ds).unwrap();
        let sparse_member_max = z[100..110].iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            z[110] < sparse_member_max,
            "z-score ranks the local outlier below ordinary sparse-cluster members"
        );
    }
}
