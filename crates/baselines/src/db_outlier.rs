//! Knorr–Ng distance-based outliers — the paper's definition 2 and its main
//! comparator.
//!
//! An object `p` is a `DB(pct, dmin)`-outlier if at most `(100 − pct)%` of
//! the database lies within distance `dmin` of `p` (the within-`dmin` count
//! includes `p` itself, since definition 2 quantifies over all `q ∈ D`).
//! Being an outlier here is *binary* and *global* — section 3 of the LOF
//! paper constructs DS1 to show no `(pct, dmin)` can isolate its local
//! outlier `o2`, which the harness reproduces.

use lof_core::{Dataset, KnnProvider, LofError, Metric, Result};

/// Parameters of the definition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbOutlierParams {
    /// Percentage `pct` in `[0, 100]`.
    pub pct: f64,
    /// Distance threshold `dmin`.
    pub dmin: f64,
}

impl DbOutlierParams {
    /// Creates parameters, validating ranges.
    ///
    /// # Errors
    ///
    /// Returns [`LofError::InvalidPartition`] for `pct` outside `[0, 100]`
    /// or negative/non-finite `dmin` (reusing the generic parameter-error
    /// variant).
    pub fn new(pct: f64, dmin: f64) -> Result<Self> {
        if !(0.0..=100.0).contains(&pct) {
            return Err(LofError::InvalidPartition(format!("pct {pct} outside [0, 100]")));
        }
        if !dmin.is_finite() || dmin < 0.0 {
            return Err(LofError::InvalidPartition(format!("dmin {dmin} must be finite and >= 0")));
        }
        Ok(DbOutlierParams { pct, dmin })
    }

    /// The maximum number of within-`dmin` objects (including `p` itself) an
    /// outlier may have in a dataset of `n` objects:
    /// `floor((100 − pct)/100 · n)`.
    pub fn max_inside(&self, n: usize) -> usize {
        ((100.0 - self.pct) / 100.0 * n as f64).floor() as usize
    }
}

/// Flags every `DB(pct, dmin)`-outlier by nested-loop counting with early
/// exit (the object stops being a candidate as soon as its within-`dmin`
/// count exceeds the threshold — the optimization Knorr–Ng's NL algorithm
/// relies on).
///
/// ```
/// use lof_baselines::{db_outliers, DbOutlierParams};
/// use lof_core::{Dataset, Euclidean};
///
/// let rows: Vec<[f64; 1]> = (0..20).map(|i| [i as f64 * 0.1]).chain([[50.0]]).collect();
/// let data = Dataset::from_rows(&rows).unwrap();
/// let flags = db_outliers(&data, &Euclidean, DbOutlierParams::new(95.0, 5.0).unwrap()).unwrap();
/// assert!(flags[20]);
/// assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
/// ```
///
/// # Errors
///
/// Returns [`LofError::EmptyDataset`] for empty input.
pub fn db_outliers<M: Metric>(
    data: &Dataset,
    metric: &M,
    params: DbOutlierParams,
) -> Result<Vec<bool>> {
    if data.is_empty() {
        return Err(LofError::EmptyDataset);
    }
    let n = data.len();
    let max_inside = params.max_inside(n);
    let mut flags = Vec::with_capacity(n);
    for p in 0..n {
        let pp = data.point(p);
        let mut inside = 0usize; // counts p itself via the q == p iteration
        let mut outlier = true;
        for q in 0..n {
            if metric.distance(pp, data.point(q)) <= params.dmin {
                inside += 1;
                if inside > max_inside {
                    outlier = false;
                    break;
                }
            }
        }
        flags.push(outlier);
    }
    Ok(flags)
}

/// Index-accelerated variant: one range query per object. `provider` must
/// index the same dataset.
///
/// # Errors
///
/// Propagates provider errors.
pub fn db_outliers_with<P: KnnProvider + ?Sized>(
    provider: &P,
    params: DbOutlierParams,
) -> Result<Vec<bool>> {
    let n = provider.len();
    if n == 0 {
        return Err(LofError::EmptyDataset);
    }
    let max_inside = params.max_inside(n);
    let mut flags = Vec::with_capacity(n);
    for p in 0..n {
        // +1: the provider excludes p itself, definition 2 does not.
        let inside = provider.within(p, params.dmin)?.len() + 1;
        flags.push(inside <= max_inside);
    }
    Ok(flags)
}

/// Searches a grid of `dmin` values for parameters that flag `target` as a
/// `DB(pct, dmin)`-outlier while flagging as few other objects as possible.
/// Returns `(params, flagged_others)` for the best grid point, or `None` if
/// no grid point flags the target at all.
///
/// This is the tool the DS1 experiment uses to demonstrate section 3's
/// impossibility argument empirically: for `o2`, every parameterization
/// that flags it also flags a large chunk of `C1`.
pub fn best_params_isolating<M: Metric>(
    data: &Dataset,
    metric: &M,
    target: usize,
    pct: f64,
    dmin_grid: &[f64],
) -> Option<(DbOutlierParams, usize)> {
    let mut best: Option<(DbOutlierParams, usize)> = None;
    for &dmin in dmin_grid {
        let params = DbOutlierParams::new(pct, dmin).ok()?;
        let flags = db_outliers(data, metric, params).ok()?;
        if !flags[target] {
            continue;
        }
        let others = flags.iter().enumerate().filter(|&(i, &f)| f && i != target).count();
        if best.is_none_or(|(_, b)| others < b) {
            best = Some((params, others));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::{Euclidean, LinearScan};

    fn cluster_plus_outlier() -> Dataset {
        let mut rows: Vec<[f64; 1]> = (0..20).map(|i| [i as f64 * 0.1]).collect();
        rows.push([100.0]);
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn flags_the_global_outlier() {
        let ds = cluster_plus_outlier();
        // pct such that an outlier may have at most floor(0.02*21) = 0
        // objects within dmin — impossible (p counts itself)? Use a looser
        // setting: at most 1 (only itself inside).
        let params = DbOutlierParams::new(95.0, 5.0).unwrap();
        assert_eq!(params.max_inside(21), 1);
        let flags = db_outliers(&ds, &Euclidean, params).unwrap();
        assert!(flags[20]);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
    }

    #[test]
    fn nested_loop_and_index_variant_agree() {
        let ds = cluster_plus_outlier();
        let scan = LinearScan::new(&ds, Euclidean);
        for (pct, dmin) in [(95.0, 5.0), (50.0, 1.0), (99.0, 0.05), (0.0, 1000.0)] {
            let params = DbOutlierParams::new(pct, dmin).unwrap();
            assert_eq!(
                db_outliers(&ds, &Euclidean, params).unwrap(),
                db_outliers_with(&scan, params).unwrap(),
                "pct={pct} dmin={dmin}"
            );
        }
    }

    #[test]
    fn pct_zero_flags_everything_pct_hundred_nothing() {
        let ds = cluster_plus_outlier();
        // pct = 0: threshold is n, everyone qualifies.
        let all = db_outliers(&ds, &Euclidean, DbOutlierParams::new(0.0, 1.0).unwrap()).unwrap();
        assert!(all.iter().all(|&f| f));
        // pct = 100: threshold 0, nobody qualifies (each p counts itself).
        let none = db_outliers(&ds, &Euclidean, DbOutlierParams::new(100.0, 1.0).unwrap()).unwrap();
        assert!(none.iter().all(|&f| !f));
    }

    #[test]
    fn parameter_validation() {
        assert!(DbOutlierParams::new(-1.0, 1.0).is_err());
        assert!(DbOutlierParams::new(101.0, 1.0).is_err());
        assert!(DbOutlierParams::new(50.0, -2.0).is_err());
        assert!(DbOutlierParams::new(50.0, f64::NAN).is_err());
    }

    #[test]
    fn best_params_finds_isolating_setting_for_global_outlier() {
        let ds = cluster_plus_outlier();
        let grid: Vec<f64> = (1..=20).map(|i| i as f64 * 0.5).collect();
        let (params, others) = best_params_isolating(&ds, &Euclidean, 20, 95.0, &grid).unwrap();
        assert_eq!(others, 0, "global outlier is isolatable, found dmin={}", params.dmin);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let ds = Dataset::new(1);
        let params = DbOutlierParams::new(50.0, 1.0).unwrap();
        assert!(matches!(db_outliers(&ds, &Euclidean, params), Err(LofError::EmptyDataset)));
    }
}
