//! The cell-based `DB(pct, dmin)` algorithm of Knorr & Ng (VLDB 1998) —
//! the *algorithmic* contribution behind the paper's main comparator, which
//! achieves time linear in `n` (though exponential in dimensionality) by
//! classifying whole grid cells instead of objects.
//!
//! The space is partitioned into cells of edge `l = dmin / (2√d)`. Then:
//!
//! * any two objects in the same cell are within `dmin/2` of each other;
//! * any object in a cell and any object in its **L1** neighborhood (the
//!   immediately adjacent layer) are within `dmin`;
//! * any object outside the **L2** neighborhood (layers `2..=⌈2√d⌉`) is
//!   farther than `dmin` away.
//!
//! With `M` the maximum number of within-`dmin` objects an outlier may have
//! (counting itself, per definition 2):
//!
//! 1. `count(cell) + count(L1) > M` → every object of the cell is a
//!    **non-outlier** (red cell);
//! 2. otherwise `count(cell) + count(L1) + count(L2) <= M` → every object
//!    of the cell is an **outlier**;
//! 3. otherwise only objects in L2 cells need be checked individually.
//!
//! The enumeration of the L2 block is `O((4√d + 1)^d)` cells, so like the
//! original we restrict the algorithm to low dimensionality (`d <= 4`) and
//! leave higher dimensions to the nested-loop / index variants in
//! [`crate::db_outlier`]. Results are *identical* to the nested loop —
//! property-tested.

use crate::db_outlier::DbOutlierParams;
use lof_core::{Dataset, Euclidean, LofError, Metric, Result};
use std::collections::HashMap;

/// Statistics reported alongside the flags, showing how much work the cell
/// pruning saved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellStats {
    /// Total non-empty cells.
    pub cells: usize,
    /// Cells whose objects were all cleared by rule 1 (red).
    pub pruned_non_outlier_cells: usize,
    /// Cells whose objects were all flagged by rule 2.
    pub pruned_outlier_cells: usize,
    /// Objects that needed individual distance checks (rule 3).
    pub objects_checked_individually: usize,
}

/// Result of the cell-based algorithm.
#[derive(Debug, Clone)]
pub struct CellBasedResult {
    /// Per-object outlier flags, identical to
    /// [`crate::db_outlier::db_outliers`].
    pub flags: Vec<bool>,
    /// Work statistics.
    pub stats: CellStats,
}

/// Runs the cell-based algorithm under the Euclidean metric.
///
/// # Errors
///
/// Returns [`LofError::EmptyDataset`] on empty input and
/// [`LofError::DimensionMismatch`] for dimensionality above 4 (use the
/// nested-loop variant there, as Knorr–Ng themselves do).
pub fn db_outliers_cell_based(data: &Dataset, params: DbOutlierParams) -> Result<CellBasedResult> {
    if data.is_empty() {
        return Err(LofError::EmptyDataset);
    }
    let d = data.dims();
    if d == 0 || d > 4 {
        return Err(LofError::DimensionMismatch { expected: 4, found: d });
    }
    let n = data.len();
    let max_inside = params.max_inside(n);
    if params.dmin == 0.0 {
        // Degenerate threshold: only exact duplicates are "within"; fall
        // back to per-object counting (the grid would need zero-width
        // cells).
        let flags = crate::db_outlier::db_outliers(data, &Euclidean, params)?;
        let checked = flags.len();
        return Ok(CellBasedResult {
            flags,
            stats: CellStats {
                cells: 0,
                pruned_non_outlier_cells: 0,
                pruned_outlier_cells: 0,
                objects_checked_individually: checked,
            },
        });
    }

    let sqrt_d = (d as f64).sqrt();
    let edge = params.dmin / (2.0 * sqrt_d);
    // L2 extends to layer ceil(2*sqrt(d)): beyond it, the minimum possible
    // distance (layer - 1) * edge exceeds dmin.
    let l2_radius = (2.0 * sqrt_d).ceil() as i64;

    // Sparse cell map.
    let (lo, _) = data.bounding_box().expect("non-empty dataset");
    let cell_of = |p: &[f64]| -> Vec<i64> {
        (0..d).map(|dim| ((p[dim] - lo[dim]) / edge).floor() as i64).collect()
    };
    let mut cells: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
    for (id, p) in data.iter() {
        cells.entry(cell_of(p)).or_default().push(id);
    }

    let mut flags = vec![false; n];
    let mut stats = CellStats {
        cells: cells.len(),
        pruned_non_outlier_cells: 0,
        pruned_outlier_cells: 0,
        objects_checked_individually: 0,
    };

    // Enumerates all offsets with Chebyshev norm in [min_layer, max_layer].
    fn for_each_offset(d: usize, min_layer: i64, max_layer: i64, f: &mut impl FnMut(&[i64])) {
        let mut offset = vec![0i64; d];
        fn rec(
            offset: &mut Vec<i64>,
            dim: usize,
            d: usize,
            min_layer: i64,
            max_layer: i64,
            f: &mut impl FnMut(&[i64]),
        ) {
            if dim == d {
                let cheb = offset.iter().map(|o| o.abs()).max().unwrap_or(0);
                if cheb >= min_layer && cheb <= max_layer {
                    f(offset);
                }
                return;
            }
            for v in -max_layer..=max_layer {
                offset[dim] = v;
                rec(offset, dim + 1, d, min_layer, max_layer, f);
            }
        }
        rec(&mut offset, 0, d, min_layer, max_layer, f);
    }

    let count_in = |cell: &[i64], offsets_min: i64, offsets_max: i64| -> usize {
        let mut total = 0;
        for_each_offset(d, offsets_min, offsets_max, &mut |offset| {
            let neighbor: Vec<i64> = cell.iter().zip(offset).map(|(c, o)| c + o).collect();
            if let Some(ids) = cells.get(&neighbor) {
                total += ids.len();
            }
        });
        total
    };

    for (cell, ids) in &cells {
        let own = ids.len();
        let with_l1 = own + count_in(cell, 1, 1);
        if with_l1 > max_inside {
            stats.pruned_non_outlier_cells += 1;
            continue; // rule 1: all non-outliers (flags already false)
        }
        let with_l2 = with_l1 + count_in(cell, 2, l2_radius);
        if with_l2 <= max_inside {
            stats.pruned_outlier_cells += 1;
            for &id in ids {
                flags[id] = true; // rule 2: all outliers
            }
            continue;
        }
        // Rule 3: per-object check against L2 candidates only (own cell and
        // L1 are already known to be within dmin).
        let mut l2_candidates: Vec<usize> = Vec::new();
        for_each_offset(d, 2, l2_radius, &mut |offset| {
            let neighbor: Vec<i64> = cell.iter().zip(offset).map(|(c, o)| c + o).collect();
            if let Some(ids) = cells.get(&neighbor) {
                l2_candidates.extend_from_slice(ids);
            }
        });
        for &id in ids {
            stats.objects_checked_individually += 1;
            let p = data.point(id);
            let mut inside = with_l1;
            for &q in &l2_candidates {
                if Euclidean.distance(p, data.point(q)) <= params.dmin {
                    inside += 1;
                    if inside > max_inside {
                        break;
                    }
                }
            }
            flags[id] = inside <= max_inside;
        }
    }

    Ok(CellBasedResult { flags, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db_outlier::db_outliers;

    fn clusters_with_outliers() -> Dataset {
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push([i as f64 * 0.5, j as f64 * 0.5]);
            }
        }
        rows.push([50.0, 50.0]);
        rows.push([-30.0, 10.0]);
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn agrees_with_nested_loop() {
        let ds = clusters_with_outliers();
        for (pct, dmin) in [(98.0, 3.0), (95.0, 10.0), (90.0, 1.0), (99.9, 5.0)] {
            let params = DbOutlierParams::new(pct, dmin).unwrap();
            let cell = db_outliers_cell_based(&ds, params).unwrap();
            let nested = db_outliers(&ds, &Euclidean, params).unwrap();
            assert_eq!(cell.flags, nested, "pct={pct} dmin={dmin}");
        }
    }

    #[test]
    fn pruning_actually_happens() {
        let ds = clusters_with_outliers();
        let params = DbOutlierParams::new(98.0, 3.0).unwrap();
        let result = db_outliers_cell_based(&ds, params).unwrap();
        assert!(
            result.stats.pruned_non_outlier_cells > 0,
            "dense cells must be cleared wholesale: {:?}",
            result.stats
        );
        assert!(
            result.stats.objects_checked_individually < ds.len(),
            "most objects must avoid individual checks: {:?}",
            result.stats
        );
    }

    #[test]
    fn isolated_cells_are_flagged_by_rule_2() {
        let ds = clusters_with_outliers();
        let params = DbOutlierParams::new(98.0, 3.0).unwrap();
        let result = db_outliers_cell_based(&ds, params).unwrap();
        assert!(result.flags[100]);
        assert!(result.flags[101]);
        assert!(result.stats.pruned_outlier_cells >= 2);
    }

    #[test]
    fn one_dimensional_data_works() {
        let rows: Vec<[f64; 1]> = (0..30).map(|i| [i as f64 * 0.1]).collect();
        let mut rows = rows;
        rows.push([100.0]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let params = DbOutlierParams::new(95.0, 2.0).unwrap();
        let cell = db_outliers_cell_based(&ds, params).unwrap();
        let nested = db_outliers(&ds, &Euclidean, params).unwrap();
        assert_eq!(cell.flags, nested);
    }

    #[test]
    fn three_and_four_dimensional_data_work() {
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for i in 0..120 {
            rows.push(vec![(i % 5) as f64, ((i / 5) % 5) as f64, ((i / 25) % 5) as f64]);
        }
        rows.push(vec![30.0, 30.0, 30.0]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let params = DbOutlierParams::new(97.0, 2.5).unwrap();
        let cell = db_outliers_cell_based(&ds, params).unwrap();
        let nested = db_outliers(&ds, &Euclidean, params).unwrap();
        assert_eq!(cell.flags, nested);
    }

    #[test]
    fn high_dimensions_are_rejected() {
        let ds = Dataset::from_rows(&[vec![0.0; 5], vec![1.0; 5]]).unwrap();
        let params = DbOutlierParams::new(95.0, 1.0).unwrap();
        assert!(matches!(
            db_outliers_cell_based(&ds, params),
            Err(LofError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn zero_dmin_falls_back_to_counting() {
        let ds = Dataset::from_rows(&[[0.0], [0.0], [0.0], [5.0]]).unwrap();
        let params = DbOutlierParams::new(60.0, 0.0).unwrap();
        let cell = db_outliers_cell_based(&ds, params).unwrap();
        let nested = db_outliers(&ds, &Euclidean, params).unwrap();
        assert_eq!(cell.flags, nested);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let ds = Dataset::new(2);
        let params = DbOutlierParams::new(95.0, 1.0).unwrap();
        assert!(matches!(db_outliers_cell_based(&ds, params), Err(LofError::EmptyDataset)));
    }
}
