//! Depth-based outliers for 2-d data — the second related-work category of
//! section 2: assign each point a *depth* via convex-hull peeling
//! (Tukey-style onion layers); shallow points are outliers.
//!
//! The paper notes depth approaches are practical only for `k <= 3` because
//! they rest on k-d convex hulls (`Ω(n^{k/2})` lower bound); we implement
//! the tractable 2-d case with Andrew's monotone chain, which is what
//! \[16\]/\[18\]-style algorithms compute.

use lof_core::{Dataset, LofError, Result};

/// Peeling depth of every point: points on the outermost convex hull get
/// depth 1, the hull of the remainder depth 2, and so on. Outliers are the
/// *small*-depth points.
///
/// # Errors
///
/// Returns [`LofError::EmptyDataset`] for empty input and
/// [`LofError::DimensionMismatch`] for non-2-d data.
pub fn peeling_depths(data: &Dataset) -> Result<Vec<usize>> {
    if data.is_empty() {
        return Err(LofError::EmptyDataset);
    }
    if data.dims() != 2 {
        return Err(LofError::DimensionMismatch { expected: 2, found: data.dims() });
    }
    let mut depth = vec![0usize; data.len()];
    let mut remaining: Vec<usize> = (0..data.len()).collect();
    let mut layer = 1usize;
    while !remaining.is_empty() {
        let hull = convex_hull_ids(data, &remaining);
        for &id in &hull {
            depth[id] = layer;
        }
        remaining.retain(|id| !hull.contains(id));
        layer += 1;
    }
    Ok(depth)
}

/// The `n` shallowest points, ordered by (depth ascending, id).
///
/// # Errors
///
/// Same as [`peeling_depths`].
pub fn shallowest(data: &Dataset, n: usize) -> Result<Vec<(usize, usize)>> {
    let depths = peeling_depths(data)?;
    let mut ranked: Vec<(usize, usize)> = depths.into_iter().enumerate().collect();
    ranked.sort_unstable_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    ranked.truncate(n);
    Ok(ranked)
}

/// Convex hull (ids) of a subset of points via Andrew's monotone chain.
/// Collinear boundary points are *included* (peeling must remove them,
/// otherwise degenerate layers never shrink). Handles subsets of size <= 2
/// by returning them whole.
fn convex_hull_ids(data: &Dataset, subset: &[usize]) -> Vec<usize> {
    if subset.len() <= 2 {
        return subset.to_vec();
    }
    let mut pts: Vec<usize> = subset.to_vec();
    pts.sort_unstable_by(|&a, &b| {
        let pa = data.point(a);
        let pb = data.point(b);
        pa[0].total_cmp(&pb[0]).then(pa[1].total_cmp(&pb[1])).then(a.cmp(&b))
    });
    pts.dedup_by(|&mut a, &mut b| {
        data.point(a) == data.point(b) && {
            // Exact duplicates: keep one representative per location on the
            // hull; the duplicate is peeled in a later layer. (dedup_by removes
            // `a` when returning true.)
            true
        }
    });
    if pts.len() <= 2 {
        // One or two distinct locations: the "hull" is those
        // representatives. Without this guard the monotone chain would
        // produce an empty hull for a single location and peeling would
        // never shrink the remaining set.
        return pts;
    }

    let cross = |o: usize, a: usize, b: usize| -> f64 {
        let po = data.point(o);
        let pa = data.point(a);
        let pb = data.point(b);
        (pa[0] - po[0]) * (pb[1] - po[1]) - (pa[1] - po[1]) * (pb[0] - po[0])
    };

    let mut hull: Vec<usize> = Vec::with_capacity(pts.len() * 2);
    // Lower hull (keeping collinear points: pop only on strict clockwise
    // turns).
    for &p in &pts {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) < 0.0 {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], p) < 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point repeats the first
    hull.sort_unstable();
    hull.dedup();
    hull
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_with_center_peels_in_two_layers() {
        let ds = Dataset::from_rows(&[
            [0.0, 0.0],
            [2.0, 0.0],
            [2.0, 2.0],
            [0.0, 2.0],
            [1.0, 1.0], // center
        ])
        .unwrap();
        let depths = peeling_depths(&ds).unwrap();
        assert_eq!(depths[..4], [1, 1, 1, 1]);
        assert_eq!(depths[4], 2);
    }

    #[test]
    fn nested_squares_produce_increasing_depth() {
        let mut rows = Vec::new();
        for layer in 0..3 {
            let r = 10.0 - layer as f64 * 3.0;
            rows.push([-r, -r]);
            rows.push([r, -r]);
            rows.push([r, r]);
            rows.push([-r, r]);
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let depths = peeling_depths(&ds).unwrap();
        for layer in 0..3 {
            for corner in 0..4 {
                assert_eq!(depths[layer * 4 + corner], layer + 1);
            }
        }
    }

    #[test]
    fn shallowest_reports_boundary_points_first() {
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..6 {
            for j in 0..6 {
                rows.push([i as f64, j as f64]);
            }
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let top = shallowest(&ds, 4).unwrap();
        for (id, depth) in top {
            assert_eq!(depth, 1);
            let p = ds.point(id);
            assert!(
                p[0] == 0.0 || p[0] == 5.0 || p[1] == 0.0 || p[1] == 5.0,
                "depth-1 points are boundary points"
            );
        }
    }

    #[test]
    fn collinear_points_terminate() {
        let rows: Vec<[f64; 2]> = (0..10).map(|i| [i as f64, 0.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let depths = peeling_depths(&ds).unwrap();
        assert!(depths.iter().all(|&d| d == 1), "one degenerate layer: {depths:?}");
    }

    #[test]
    fn duplicates_terminate() {
        let rows: Vec<[f64; 2]> = (0..8).map(|i| [(i % 2) as f64, 0.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let depths = peeling_depths(&ds).unwrap();
        assert!(depths.iter().all(|&d| d >= 1));
    }

    #[test]
    fn all_points_identical_terminates() {
        // The single-distinct-location case that once hung: every layer
        // peels exactly one representative.
        let rows: Vec<[f64; 2]> = (0..5).map(|_| [3.0, 3.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let depths = peeling_depths(&ds).unwrap();
        let mut sorted = depths.clone();
        sorted.sort_unstable();
        // One representative per layer until two remain, which share the
        // final degenerate layer.
        assert_eq!(sorted, vec![1, 2, 3, 4, 4]);
    }

    #[test]
    fn two_distinct_locations_with_duplicates_terminate() {
        let rows: Vec<[f64; 2]> = (0..6).map(|i| [(i % 2) as f64 * 2.0, 1.0]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let depths = peeling_depths(&ds).unwrap();
        assert_eq!(depths.iter().filter(|&&d| d == 1).count(), 2);
        assert!(depths.iter().all(|&d| (1..=3).contains(&d)));
    }

    #[test]
    fn depth_misses_local_outliers() {
        // The section-2 criticism, executable: a local outlier *inside* the
        // global point cloud gets a deep (inlier-ish) depth.
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push([i as f64 * 3.0, j as f64 * 3.0]); // sparse shell structure
            }
        }
        rows.push([13.0, 14.0]); // interior point, locally fine
        let ds = Dataset::from_rows(&rows).unwrap();
        let depths = peeling_depths(&ds).unwrap();
        let interior = depths[100];
        assert!(interior >= 3, "interior points are deep: {interior}");
    }

    #[test]
    fn validation() {
        assert!(peeling_depths(&Dataset::new(2)).is_err());
        let ds3 = Dataset::from_rows(&[[1.0, 2.0, 3.0]]).unwrap();
        assert!(matches!(
            peeling_depths(&ds3),
            Err(LofError::DimensionMismatch { expected: 2, found: 3 })
        ));
    }
}
