//! Intensional knowledge of outliers — Knorr & Ng's follow-up (VLDB 1999,
//! the LOF paper's reference \[14\]): instead of merely *flagging* an
//! outlier, report the minimal attribute subspaces in which it is
//! outlying. The LOF paper's own future-work section points here: "a local
//! outlier may be outlying only on some, but not on all, dimensions
//! (cf. \[14\])".
//!
//! [`strongest_outlying_subspaces`] enumerates attribute subsets up to a
//! size cap and scores the object in each projection with the caller's
//! chosen detector, returning:
//!
//! * **minimal outlying subspaces** — subspaces where the object's score
//!   crosses the threshold while no proper subset's does (Knorr–Ng's
//!   "non-trivial" outliers);
//! * the score per evaluated subspace, for ranking.
//!
//! Enumeration is exponential in the dimension cap, exactly as in \[14\];
//! the cap defaults to the full dimensionality for small `d` and should be
//! lowered for wide tables.

use lof_core::{Dataset, LofError, Result};

/// One evaluated subspace.
#[derive(Debug, Clone, PartialEq)]
pub struct SubspaceScore {
    /// The attribute indices (ascending).
    pub columns: Vec<usize>,
    /// The detector's score for the target object in this projection.
    pub score: f64,
    /// Whether the score crossed the outlier threshold.
    pub outlying: bool,
}

/// Result of a subspace scan for one object.
#[derive(Debug, Clone)]
pub struct IntensionalReport {
    /// Every evaluated subspace with its score.
    pub scores: Vec<SubspaceScore>,
    /// The minimal outlying subspaces: outlying, with no outlying proper
    /// subset among the evaluated ones.
    pub minimal: Vec<Vec<usize>>,
}

impl IntensionalReport {
    /// The strongest subspace by score (ties: smallest, then lexicographic).
    pub fn strongest(&self) -> Option<&SubspaceScore> {
        self.scores.iter().max_by(|a, b| {
            a.score
                .total_cmp(&b.score)
                .then(b.columns.len().cmp(&a.columns.len()))
                .then(b.columns.cmp(&a.columns))
        })
    }
}

/// Scans all attribute subsets of size `1..=max_dims` and reports where
/// `target` is outlying.
///
/// `score_fn(projected_data, target)` computes the target's outlier score
/// in a projection (e.g. max-LOF over a range); scores above `threshold`
/// count as outlying. The scan evaluates `score_fn` once per subspace —
/// `sum_{s=1..=max_dims} C(d, s)` calls.
///
/// # Errors
///
/// Returns [`LofError::UnknownObject`] for an out-of-range target,
/// [`LofError::DimensionMismatch`] for `max_dims == 0`, and propagates the
/// first `score_fn` error.
pub fn strongest_outlying_subspaces<F>(
    data: &Dataset,
    target: usize,
    max_dims: usize,
    threshold: f64,
    mut score_fn: F,
) -> Result<IntensionalReport>
where
    F: FnMut(&Dataset, usize) -> Result<f64>,
{
    data.check_id(target)?;
    let d = data.dims();
    if max_dims == 0 {
        return Err(LofError::DimensionMismatch { expected: d, found: 0 });
    }
    let max_dims = max_dims.min(d);

    let mut scores: Vec<SubspaceScore> = Vec::new();
    let mut subset: Vec<usize> = Vec::new();
    enumerate_subsets(d, max_dims, 0, &mut subset, &mut |columns| {
        let projected = data.project(columns)?;
        let score = score_fn(&projected, target)?;
        scores.push(SubspaceScore {
            columns: columns.to_vec(),
            score,
            outlying: score > threshold,
        });
        Ok(())
    })?;

    // Minimality: an outlying subspace none of whose evaluated proper
    // subsets is outlying.
    let outlying: Vec<&SubspaceScore> = scores.iter().filter(|s| s.outlying).collect();
    let mut minimal = Vec::new();
    'candidates: for candidate in &outlying {
        for other in &outlying {
            if other.columns.len() < candidate.columns.len()
                && other.columns.iter().all(|c| candidate.columns.contains(c))
            {
                continue 'candidates;
            }
        }
        minimal.push(candidate.columns.clone());
    }

    Ok(IntensionalReport { scores, minimal })
}

fn enumerate_subsets(
    d: usize,
    max_size: usize,
    start: usize,
    subset: &mut Vec<usize>,
    f: &mut impl FnMut(&[usize]) -> Result<()>,
) -> Result<()> {
    if !subset.is_empty() {
        f(subset)?;
    }
    if subset.len() == max_size {
        return Ok(());
    }
    for next in start..d {
        subset.push(next);
        enumerate_subsets(d, max_size, next + 1, subset, f)?;
        subset.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lof_core::LofDetector;

    /// 3-d data where the last object is outlying on column 1 only.
    fn fixture() -> Dataset {
        let mut rows: Vec<[f64; 3]> = Vec::new();
        for i in 0..40 {
            rows.push([(i % 8) as f64, (i / 8) as f64 * 0.5, ((i * 3) % 5) as f64]);
        }
        rows.push([4.0, 30.0, 2.0]); // id 40: only column 1 is anomalous
        Dataset::from_rows(&rows).unwrap()
    }

    fn lof_score(projected: &Dataset, target: usize) -> Result<f64> {
        let result = LofDetector::with_range(5, 10)?.detect(projected)?;
        result.score(target)
    }

    #[test]
    fn finds_the_single_anomalous_column() {
        let data = fixture();
        let report = strongest_outlying_subspaces(&data, 40, 3, 2.0, lof_score).unwrap();
        // 1-, 2- and 3-subsets of 3 columns: 7 subspaces evaluated.
        assert_eq!(report.scores.len(), 7);
        assert_eq!(report.minimal, vec![vec![1]], "column 1 alone explains the outlier");
        let strongest = report.strongest().unwrap();
        assert!(strongest.columns.contains(&1));
    }

    #[test]
    fn non_outlier_yields_no_minimal_subspace() {
        let data = fixture();
        let report = strongest_outlying_subspaces(&data, 20, 3, 2.0, lof_score).unwrap();
        assert!(report.minimal.is_empty());
        assert!(report.scores.iter().all(|s| !s.outlying));
    }

    #[test]
    fn dimension_cap_limits_enumeration() {
        let data = fixture();
        let report = strongest_outlying_subspaces(&data, 40, 1, 2.0, lof_score).unwrap();
        assert_eq!(report.scores.len(), 3, "only singletons evaluated");
        assert!(report.scores.iter().all(|s| s.columns.len() == 1));
    }

    #[test]
    fn minimality_excludes_supersets() {
        let data = fixture();
        let report = strongest_outlying_subspaces(&data, 40, 3, 2.0, lof_score).unwrap();
        // {1} is outlying, so {0,1}, {1,2}, {0,1,2} must not be minimal
        // even though the object is outlying there too.
        for minimal in &report.minimal {
            assert_eq!(minimal, &vec![1]);
        }
        let superset = report.scores.iter().find(|s| s.columns == vec![0, 1]).unwrap();
        assert!(superset.outlying, "superset is outlying but not reported as minimal");
    }

    #[test]
    fn validation() {
        let data = fixture();
        assert!(strongest_outlying_subspaces(&data, 999, 3, 2.0, lof_score).is_err());
        assert!(strongest_outlying_subspaces(&data, 0, 0, 2.0, lof_score).is_err());
    }

    #[test]
    fn score_errors_propagate() {
        let data = fixture();
        let result =
            strongest_outlying_subspaces(&data, 40, 2, 2.0, |_, _| Err(LofError::EmptyDataset));
        assert!(matches!(result, Err(LofError::EmptyDataset)));
    }
}
