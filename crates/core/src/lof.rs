//! The local outlier factor itself (definition 7) and the single-`MinPts`
//! pipeline.

use crate::distance::Metric;
use crate::error::Result;
use crate::lrd::local_reachability_densities_with;
use crate::materialize::NeighborhoodTable;
use crate::point::Dataset;
use crate::scan::LinearScan;

/// Ratio `lrd(o) / lrd(p)` with the conventions needed once infinite
/// densities (duplicate clusters) enter the picture:
///
/// * both infinite → `1` (`p` and `o` sit in the same duplicate cluster and
///   are equally dense, so neither is outlying relative to the other);
/// * only `lrd(o)` infinite → `+∞` (`p` is infinitely less dense than its
///   neighbor);
/// * only `lrd(p)` infinite → `0`.
///
/// The paper sidesteps this by assuming no duplicates; these conventions are
/// the standard ones (shared with ELKI/scikit-learn) and are only exercised
/// in the degenerate cases.
#[inline]
pub fn lrd_ratio(lrd_o: f64, lrd_p: f64) -> f64 {
    if lrd_o.is_infinite() && lrd_p.is_infinite() {
        1.0
    } else {
        lrd_o / lrd_p
    }
}

/// `LOF_MinPts(p)` for every object, computed from the materialization table
/// — the paper's step 2 (two scans of `M`: one producing lrds, one averaging
/// lrd ratios).
///
/// # Errors
///
/// Propagates table validation errors.
pub fn lof_values(table: &NeighborhoodTable, min_pts: usize) -> Result<Vec<f64>> {
    let k_distances = table.k_distances(min_pts)?;
    lof_values_with(table, min_pts, &k_distances)
}

/// As [`lof_values`], reusing precomputed `k`-distances.
pub fn lof_values_with(
    table: &NeighborhoodTable,
    min_pts: usize,
    k_distances: &[f64],
) -> Result<Vec<f64>> {
    let lrd = local_reachability_densities_with(table, min_pts, k_distances)?;
    let n = table.len();
    let mut lof = Vec::with_capacity(n);
    for p in 0..n {
        let neighborhood = table.neighborhood(p, min_pts)?;
        let mut sum = 0.0;
        for nb in neighborhood {
            sum += lrd_ratio(lrd[nb.id], lrd[p]);
        }
        lof.push(sum / neighborhood.len() as f64);
    }
    Ok(lof)
}

/// LOF of an arbitrary query point (not part of the dataset), given its
/// tie-inclusive `MinPts`-distance neighborhood among the dataset's
/// objects — the "score a new observation" (novelty) workflow.
///
/// The query contributes nothing to its neighbors' densities — it is
/// scored against the materialized model exactly as definition 7 scores a
/// dataset member, minus the self-exclusion.
///
/// # Errors
///
/// Returns [`crate::LofError::InvalidMinPts`] for an empty neighborhood and
/// propagates table validation errors.
pub fn lof_of_point_with(
    table: &NeighborhoodTable,
    min_pts: usize,
    neighborhood: &[crate::neighbors::Neighbor],
) -> Result<f64> {
    if neighborhood.is_empty() {
        return Err(crate::error::LofError::InvalidMinPts { min_pts, dataset_size: table.len() });
    }
    let k_distances = table.k_distances(min_pts)?;
    let lrds = crate::lrd::local_reachability_densities_with(table, min_pts, &k_distances)?;

    let mut reach_sum = 0.0;
    for nb in neighborhood {
        reach_sum += crate::lrd::reach_dist(k_distances[nb.id], nb.dist);
    }
    let card = neighborhood.len() as f64;
    let mean_reach = reach_sum / card;
    let query_lrd = if mean_reach > 0.0 { 1.0 / mean_reach } else { f64::INFINITY };
    let mut ratio_sum = 0.0;
    for nb in neighborhood {
        ratio_sum += lrd_ratio(lrds[nb.id], query_lrd);
    }
    Ok(ratio_sum / card)
}

/// As [`lof_of_point_with`], computing the query's neighborhood by a
/// brute-force scan of `data` (which must be the dataset `table` was built
/// over). For repeated queries use a `lof-index` structure's
/// `k_nearest_point` and call [`lof_of_point_with`] directly.
///
/// # Errors
///
/// Returns [`crate::LofError::DimensionMismatch`] for a query of the wrong
/// dimensionality and propagates table validation errors.
pub fn lof_of_point<M: Metric>(
    data: &Dataset,
    metric: &M,
    table: &NeighborhoodTable,
    min_pts: usize,
    query: &[f64],
) -> Result<f64> {
    if query.len() != data.dims() {
        return Err(crate::error::LofError::DimensionMismatch {
            expected: data.dims(),
            found: query.len(),
        });
    }
    let mut all = Vec::with_capacity(data.len());
    for (id, p) in data.iter() {
        all.push(crate::neighbors::Neighbor::new(id, metric.distance(query, p)));
    }
    let neighborhood = crate::neighbors::select_k_tie_inclusive(all, min_pts);
    lof_of_point_with(table, min_pts, &neighborhood)
}

/// One-shot convenience: LOF of every object of `data` for a single
/// `MinPts`, using a brute-force scan. For repeated queries or large data,
/// build a [`NeighborhoodTable`] over an index from `lof-index` instead.
///
/// # Errors
///
/// Returns [`crate::LofError::EmptyDataset`] /
/// [`crate::LofError::InvalidMinPts`] on invalid inputs.
pub fn lof<M: Metric>(data: &Dataset, metric: M, min_pts: usize) -> Result<Vec<f64>> {
    let scan = LinearScan::new(data, metric);
    let table = NeighborhoodTable::build(&scan, min_pts)?;
    lof_values(&table, min_pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;

    #[test]
    fn interior_of_uniform_line_has_lof_one() {
        let rows: Vec<[f64; 1]> = (0..40).map(|i| [i as f64]).collect();
        let ds = Dataset::from_rows(&rows).unwrap();
        let lof = lof(&ds, Euclidean, 3).unwrap();
        for (p, &value) in lof.iter().enumerate().take(30).skip(10) {
            assert!((value - 1.0).abs() < 1e-9, "p={p} lof={value}");
        }
    }

    #[test]
    fn isolated_point_has_high_lof() {
        // A tight cluster plus one far-away object.
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                rows.push([i as f64, j as f64]);
            }
        }
        rows.push([50.0, 50.0]);
        let ds = Dataset::from_rows(&rows).unwrap();
        let lof = lof(&ds, Euclidean, 5).unwrap();
        let outlier = lof[100];
        let max_inlier = lof[..100].iter().cloned().fold(f64::MIN, f64::max);
        assert!(outlier > 5.0, "outlier lof = {outlier}");
        assert!(outlier > 3.0 * max_inlier, "outlier {outlier} vs inliers {max_inlier}");
    }

    #[test]
    fn lof_is_scale_invariant() {
        // LOF is a ratio of densities, so uniformly scaling all coordinates
        // leaves it unchanged — the "local" spirit of §5.3.
        let rows: Vec<[f64; 2]> =
            (0..30).map(|i| [(i % 6) as f64, (i / 6) as f64]).chain([[30.0, 30.0]]).collect();
        let ds1 = Dataset::from_rows(&rows).unwrap();
        let scaled: Vec<[f64; 2]> = rows.iter().map(|r| [r[0] * 1000.0, r[1] * 1000.0]).collect();
        let ds2 = Dataset::from_rows(&scaled).unwrap();
        let a = lof(&ds1, Euclidean, 4).unwrap();
        let b = lof(&ds2, Euclidean, 4).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn duplicate_cluster_ratio_conventions() {
        assert_eq!(lrd_ratio(f64::INFINITY, f64::INFINITY), 1.0);
        assert_eq!(lrd_ratio(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(lrd_ratio(1.0, f64::INFINITY), 0.0);
        assert_eq!(lrd_ratio(2.0, 4.0), 0.5);
    }

    #[test]
    fn all_duplicates_have_lof_one() {
        let ds = Dataset::from_rows(&[[1.0], [1.0], [1.0], [1.0]]).unwrap();
        let lof = lof(&ds, Euclidean, 2).unwrap();
        for v in lof {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn point_scoring_matches_member_scoring_in_symmetric_spots() {
        use crate::materialize::NeighborhoodTable;
        use crate::scan::LinearScan;
        // Score a query placed exactly where a (removed) grid point was: it
        // must look like an ordinary inlier.
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..9 {
            for j in 0..9 {
                if (i, j) != (4, 4) {
                    rows.push([i as f64, j as f64]);
                }
            }
        }
        let ds = Dataset::from_rows(&rows).unwrap();
        let scan = LinearScan::new(&ds, Euclidean);
        let table = NeighborhoodTable::build(&scan, 8).unwrap();
        let inlier = lof_of_point(&ds, &Euclidean, &table, 8, &[4.0, 4.0]).unwrap();
        assert!((inlier - 1.0).abs() < 0.2, "hole-filling query scored {inlier}");
        let outlier = lof_of_point(&ds, &Euclidean, &table, 8, &[40.0, 40.0]).unwrap();
        assert!(outlier > 5.0, "far query scored {outlier}");
        assert!(lof_of_point(&ds, &Euclidean, &table, 8, &[1.0]).is_err());
    }

    #[test]
    fn point_scoring_of_duplicate_heavy_query() {
        use crate::materialize::NeighborhoodTable;
        use crate::scan::LinearScan;
        let ds = Dataset::from_rows(&[[0.0], [0.0], [0.0], [9.0]]).unwrap();
        let scan = LinearScan::new(&ds, Euclidean);
        let table = NeighborhoodTable::build(&scan, 2).unwrap();
        // Query coincides with the duplicate pile: infinite density, LOF 1.
        let v = lof_of_point(&ds, &Euclidean, &table, 2, &[0.0]).unwrap();
        assert_eq!(v, 1.0);
    }

    #[test]
    fn min_pts_two_uses_raw_distances() {
        // §6.1: "when the MinPts value is set to 2, this reduces to using the
        // actual inter-object distance d(p, o) in definition 5" — for objects
        // whose neighbors' 2-distances don't exceed those raw distances.
        let ds = Dataset::from_rows(&[[0.0], [1.0], [2.0], [3.5], [10.0]]).unwrap();
        let values = lof(&ds, Euclidean, 2).unwrap();
        assert!(values[4] > values[1], "far point must be more outlying");
    }
}
