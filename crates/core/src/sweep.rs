//! Single-pass `MinPts`-range sweep engine behind [`crate::range::lof_range`].
//!
//! The per-`MinPts` reference ([`crate::range::lof_range_reference`]) walks
//! the materialization table `M` from scratch for every `MinPts` value:
//! `UB - LB + 1` iterations, each streaming the whole CSR arena three times
//! (k-distances, lrds, LOF ratios). The sweep engine streams the arena
//! **once per stage** instead: each object's tie-inclusive `N_k` is a
//! prefix of its materialized list and that prefix only grows with `k`, so
//! one walk of a neighbor list feeds the accumulators of *every* `MinPts`
//! in the range at the same time.
//!
//! The intermediate k-distance and lrd matrices are stored column-major
//! (`[n × rl]`, object outer): walking object `p`'s list touches, per
//! neighbor `o`, the `rl` contiguous per-`MinPts` values of `o` — one or
//! two cache lines instead of `rl` scattered row gathers, and an inner
//! loop the compiler can vectorize. Accumulation order per `(MinPts,
//! object)` cell is unchanged (neighbor rank ascending), so every value is
//! produced by the exact same floating-point operations in the exact same
//! order as the reference and results are **bit-identical** — the
//! `sweep_regression` integration test and the property suite compare the
//! two word for word.
//!
//! Each stage is parallelized over contiguous object chunks with
//! `std::thread::scope` (the same machinery [`crate::parallel`] uses for
//! step 1); `threads == 1` runs the identical code inline. Workers only
//! read the table and write disjoint output columns, so no coordination is
//! needed beyond the final joins.

use crate::error::{LofError, Result};
use crate::lof::lrd_ratio;
use crate::lrd::reach_dist;
use crate::materialize::NeighborhoodTable;
use crate::neighbors::tie_inclusive_len;
use crate::range::{LofRangeResult, MinPtsRange};

/// Computes LOF for every `MinPts` of `range` in one pass over the table's
/// CSR arena per stage, chunk-parallel over objects when `threads > 1`.
/// Bit-identical to the per-`MinPts` reference.
pub(crate) fn sweep_lof_range(
    table: &NeighborhoodTable,
    range: MinPtsRange,
    threads: usize,
) -> Result<LofRangeResult> {
    if range.ub() > table.max_k() {
        return Err(LofError::TableTooShallow {
            materialized: table.max_k(),
            requested: range.ub(),
        });
    }
    if table.is_distinct() && range.lb() != table.max_k() {
        // Distinct tables answer only k == max_k; mirror the error the
        // reference hits on its first k_distances(lb) call.
        return Err(LofError::TableTooShallow {
            materialized: table.max_k(),
            requested: range.lb(),
        });
    }
    let n = table.len();
    let rl = range.len();
    let threads = threads.max(1).min(n.max(1));

    // One registry event per sweep: three column passes over the CSR
    // arena (one per stage) covering `n x rl` (object, MinPts) cells each.
    let _span = lof_obs::span!("core.sweep");
    crate::obs::publish_event(crate::obs::CoreEvent::SweepRange);
    crate::obs::publish_event(crate::obs::CoreEvent::SweepColumnPasses(3 * n as u64));
    crate::obs::publish_event(crate::obs::CoreEvent::SweepCells(3 * (n * rl) as u64));

    // Stage 1: tie-inclusive prefix lengths and k-distances for all (p, k)
    // in one list walk per object. Column-major `[n x rl]`: chunk outputs
    // are contiguous spans of the global arrays.
    let mut kd = vec![0.0f64; n * rl];
    let mut lens = vec![0u32; n * rl];
    for (start, (kd_c, len_c)) in map_chunks(n, threads, |s, e| stage1_chunk(table, range, s, e)) {
        kd[start * rl..start * rl + kd_c.len()].copy_from_slice(&kd_c);
        lens[start * rl..start * rl + len_c.len()].copy_from_slice(&len_c);
    }

    // Stage 2: local reachability densities for all (p, k), one list walk
    // per object gathering each neighbor's contiguous k-distance column.
    let mut lrd = vec![0.0f64; n * rl];
    for (start, lrd_c) in map_chunks(n, threads, |s, e| stage2_chunk(table, &kd, &lens, s, e, rl)) {
        lrd[start * rl..start * rl + lrd_c.len()].copy_from_slice(&lrd_c);
    }

    // Stage 3: LOF ratios for all (p, k). The result rows are per-MinPts
    // score vectors, so the column-major chunks transpose on join.
    let mut values = vec![0.0f64; rl * n];
    for (start, lof_c) in map_chunks(n, threads, |s, e| stage3_chunk(table, &lrd, &lens, s, e, rl))
    {
        let cl = lof_c.len() / rl;
        for local in 0..cl {
            for ri in 0..rl {
                values[ri * n + start + local] = lof_c[local * rl + ri];
            }
        }
    }

    Ok(LofRangeResult::from_values(range, n, values))
}

/// Splits `0..n` into up to `threads` contiguous chunks and maps `work`
/// over them, spawning scoped threads only when more than one chunk exists.
/// Returns `(chunk_start, output)` pairs in chunk order.
fn map_chunks<T, F>(n: usize, threads: usize, work: F) -> Vec<(usize, T)>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let chunk = n.div_ceil(threads.max(1)).max(1);
    if threads <= 1 || chunk >= n {
        return (0..n).step_by(chunk).map(|s| (s, work(s, (s + chunk).min(n)))).collect();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|s| {
                let work = &work;
                scope.spawn(move || (s, work(s, (s + chunk).min(n))))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    })
}

/// Stage 1 for objects `s..e`: walk each materialized list once and read
/// off, for every `k` in the range, the tie-inclusive prefix length and the
/// k-distance (the prefix's last entry). `tie_inclusive_len` starts its
/// scan at rank `k`, so the whole per-object loop is `O(range + ties)` on
/// a list that stays in cache. Output is column-major `[chunk x rl]`.
fn stage1_chunk(
    table: &NeighborhoodTable,
    range: MinPtsRange,
    s: usize,
    e: usize,
) -> (Vec<f64>, Vec<u32>) {
    let (offsets, arena) = table.raw_parts();
    let rl = range.len();
    let mut kd_c = vec![0.0f64; (e - s) * rl];
    let mut len_c = vec![0u32; (e - s) * rl];
    for p in s..e {
        let full = &arena[offsets[p]..offsets[p + 1]];
        let base = (p - s) * rl;
        if table.is_distinct() {
            // Validated: a distinct table only ever sweeps [max_k, max_k],
            // and its full stored list is the neighborhood.
            kd_c[base] = full[full.len() - 1].dist;
            len_c[base] = full.len() as u32;
            continue;
        }
        for (ri, k) in range.iter().enumerate() {
            let end = tie_inclusive_len(full, k);
            kd_c[base + ri] = full[end - 1].dist;
            len_c[base + ri] = end as u32;
        }
    }
    (kd_c, len_c)
}

/// Stage 2 for objects `s..e`: reachability-distance sums and lrds for
/// every `k` in **one** walk of each object's list. Neighbor `j` of object
/// `p` belongs to `N_k(p)` exactly for the tail of `MinPts` rows whose
/// prefix length exceeds `j` (prefix lengths are non-decreasing in `k`),
/// so a monotone cursor picks the contributing rows and the inner loop
/// adds `reach-dist` into each row's accumulator — neighbor rank stays the
/// outer loop, so each accumulator sees its terms in exactly the reference
/// order. Identical operation order to
/// [`crate::lrd::local_reachability_densities_with`].
fn stage2_chunk(
    table: &NeighborhoodTable,
    kd: &[f64],
    lens: &[u32],
    s: usize,
    e: usize,
    rl: usize,
) -> Vec<f64> {
    let (offsets, arena) = table.raw_parts();
    let mut lrd_c = vec![0.0f64; (e - s) * rl];
    let mut sums = vec![0.0f64; rl];
    for p in s..e {
        let base = (p - s) * rl;
        let len_col = &lens[p * rl..(p + 1) * rl];
        let widest = len_col[rl - 1] as usize;
        let prefix = &arena[offsets[p]..offsets[p] + widest];
        sums.iter_mut().for_each(|v| *v = 0.0);
        let mut first = 0usize; // first row whose prefix includes rank j
        for (j, nb) in prefix.iter().enumerate() {
            while first < rl && (len_col[first] as usize) <= j {
                first += 1;
            }
            let kd_col = &kd[nb.id * rl..(nb.id + 1) * rl];
            for (sum, &kd_o) in sums[first..].iter_mut().zip(&kd_col[first..]) {
                *sum += reach_dist(kd_o, nb.dist);
            }
        }
        for ri in 0..rl {
            let mean = sums[ri] / len_col[ri] as f64;
            lrd_c[base + ri] = if mean > 0.0 { 1.0 / mean } else { f64::INFINITY };
        }
    }
    lrd_c
}

/// Stage 3 for objects `s..e`: mean lrd ratios (definition 7) for every
/// `k`, again in one list walk per object with the stage 2 row-tail
/// cursor. Identical operation order to [`crate::lof::lof_values_with`].
fn stage3_chunk(
    table: &NeighborhoodTable,
    lrd: &[f64],
    lens: &[u32],
    s: usize,
    e: usize,
    rl: usize,
) -> Vec<f64> {
    let (offsets, arena) = table.raw_parts();
    let mut lof_c = vec![0.0f64; (e - s) * rl];
    let mut sums = vec![0.0f64; rl];
    for p in s..e {
        let base = (p - s) * rl;
        let len_col = &lens[p * rl..(p + 1) * rl];
        let widest = len_col[rl - 1] as usize;
        let prefix = &arena[offsets[p]..offsets[p] + widest];
        let lrd_p = &lrd[p * rl..(p + 1) * rl];
        sums.iter_mut().for_each(|v| *v = 0.0);
        let mut first = 0usize;
        for (j, nb) in prefix.iter().enumerate() {
            while first < rl && (len_col[first] as usize) <= j {
                first += 1;
            }
            let lrd_o = &lrd[nb.id * rl..(nb.id + 1) * rl];
            for ((sum, &o), &q) in
                sums[first..].iter_mut().zip(&lrd_o[first..]).zip(&lrd_p[first..])
            {
                *sum += lrd_ratio(o, q);
            }
        }
        for ri in 0..rl {
            lof_c[base + ri] = sums[ri] / len_col[ri] as f64;
        }
    }
    lof_c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::point::Dataset;
    use crate::range::lof_range_reference;
    use crate::scan::LinearScan;

    fn mixed_dataset() -> Dataset {
        // Clusters of different density, duplicate piles (infinite lrds),
        // and isolates — every code path of the sweep.
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..40 {
            rows.push([(i % 8) as f64, (i / 8) as f64]);
        }
        for _ in 0..6 {
            rows.push([20.0, 20.0]);
        }
        for i in 0..20 {
            rows.push([(i as f64) * 0.01 + 50.0, 0.0]);
        }
        rows.push([-30.0, -30.0]);
        Dataset::from_rows(&rows).unwrap()
    }

    fn assert_bit_identical(a: &LofRangeResult, b: &LofRangeResult, label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: object counts");
        for k in a.range().iter() {
            for (id, (x, y)) in
                a.at_min_pts(k).unwrap().iter().zip(b.at_min_pts(k).unwrap()).enumerate()
            {
                assert_eq!(x.to_bits(), y.to_bits(), "{label}: k={k} id={id} ({x} vs {y})");
            }
        }
    }

    #[test]
    fn sweep_is_bit_identical_to_reference() {
        let ds = mixed_dataset();
        let scan = LinearScan::new(&ds, Euclidean);
        let table = NeighborhoodTable::build(&scan, 12).unwrap();
        let range = MinPtsRange::new(2, 12).unwrap();
        let want = lof_range_reference(&table, range).unwrap();
        for threads in [1, 2, 3, 8] {
            let got = sweep_lof_range(&table, range, threads).unwrap();
            assert_bit_identical(&got, &want, &format!("threads={threads}"));
        }
    }

    #[test]
    fn sweep_handles_single_value_ranges() {
        let ds = mixed_dataset();
        let scan = LinearScan::new(&ds, Euclidean);
        let table = NeighborhoodTable::build(&scan, 7).unwrap();
        let range = MinPtsRange::single(7).unwrap();
        let want = lof_range_reference(&table, range).unwrap();
        let got = sweep_lof_range(&table, range, 4).unwrap();
        assert_bit_identical(&got, &want, "single");
    }

    #[test]
    fn sweep_matches_reference_on_distinct_tables() {
        let ds = mixed_dataset();
        let table = NeighborhoodTable::build_distinct(&ds, &Euclidean, 5).unwrap();
        // Only [max_k, max_k] is answerable from a distinct table.
        let ok = MinPtsRange::single(5).unwrap();
        let want = lof_range_reference(&table, ok).unwrap();
        let got = sweep_lof_range(&table, ok, 3).unwrap();
        assert_bit_identical(&got, &want, "distinct");
        // Any other range fails identically to the reference.
        for bad in [MinPtsRange::new(4, 5).unwrap(), MinPtsRange::new(3, 4).unwrap()] {
            let want_err = lof_range_reference(&table, bad).unwrap_err();
            let got_err = sweep_lof_range(&table, bad, 3).unwrap_err();
            assert_eq!(format!("{got_err:?}"), format!("{want_err:?}"), "range {bad:?}");
        }
    }

    #[test]
    fn sweep_rejects_too_shallow_tables() {
        let ds = mixed_dataset();
        let scan = LinearScan::new(&ds, Euclidean);
        let table = NeighborhoodTable::build(&scan, 5).unwrap();
        let err = sweep_lof_range(&table, MinPtsRange::new(3, 9).unwrap(), 2).unwrap_err();
        assert!(matches!(err, LofError::TableTooShallow { materialized: 5, requested: 9 }));
    }
}
