//! A disk-spillable materialization database `M`.
//!
//! [`NeighborhoodTable`](crate::NeighborhoodTable) keeps the whole CSR
//! arena resident — `n · MinPtsUB` entries, which at the 10M-point tier is
//! gigabytes. [`SpilledNeighborhoodTable`] materializes the same
//! tie-inclusive neighborhoods but writes them to disk in fixed row-range
//! **segments**, appended in completion order as the batch self-join
//! produces them, so peak build memory is one segment regardless of `n`.
//!
//! Reads go through a byte-budgeted segment cache: step 2's scans walk the
//! table in id order, faulting each segment in once per pass and evicting
//! the least-recently-used one when the budget is exceeded. The segment
//! currently being scanned is always retained (handed out as an `Arc`, so
//! eviction never invalidates a reader) — the "pinned-segment LRU".
//!
//! ## Exactness
//!
//! The scoring passes ([`SpilledNeighborhoodTable::k_distances`] /
//! [`SpilledNeighborhoodTable::lof_range`]) are transcriptions of
//! [`crate::lrd::local_reachability_densities_with`],
//! [`crate::lof::lof_values_with`], and
//! [`crate::range::lof_range_reference`]: same per-object loops, same
//! summation order, same [`Aggregate`] folds in ascending-`MinPts` order.
//! Segmentation only changes *where* a neighbor list is read from, never
//! the arithmetic on it, so scores are bit-identical to the in-RAM path —
//! which `tests` and the CI ingest gate assert with `to_bits` equality.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{LofError, Result};
use crate::lof::lrd_ratio;
use crate::lrd::reach_dist;
use crate::neighbors::{tie_inclusive_len, KnnProvider, Neighbor};
use crate::range::{Aggregate, MinPtsRange};

/// Accounting for one spillable table: segments written at build, cache
/// misses and evictions during scoring, and current cache residency.
/// Mirrored onto the `core.ooc.*` registry counters at publish points.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpillStats {
    /// CSR segments written to the spill file during the build.
    pub segment_spills: u64,
    /// Segments read back from disk (cache misses).
    pub segment_reloads: u64,
    /// Segments dropped from the cache to stay under the budget.
    pub segment_evictions: u64,
    /// Bytes currently held by the segment cache.
    pub resident_bytes: u64,
}

/// Location of one serialized segment inside the spill file.
#[derive(Debug, Clone, Copy)]
struct SegmentMeta {
    start_row: usize,
    rows: usize,
    entries: usize,
    file_off: u64,
}

impl SegmentMeta {
    fn byte_len(&self) -> u64 {
        ((self.rows + 1) * 4 + self.entries * 16) as u64
    }
}

/// One segment deserialized into RAM: local CSR offsets plus the
/// concatenated sorted neighbor lists of rows
/// `start_row..start_row + rows`.
#[derive(Debug)]
struct LoadedSegment {
    start_row: usize,
    offsets: Vec<u32>,
    neighbors: Vec<Neighbor>,
}

impl LoadedSegment {
    fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    fn list(&self, local: usize) -> &[Neighbor] {
        &self.neighbors[self.offsets[local] as usize..self.offsets[local + 1] as usize]
    }

    fn heap_bytes(&self) -> usize {
        self.offsets.len() * 4 + self.neighbors.len() * std::mem::size_of::<Neighbor>()
    }
}

#[derive(Debug)]
struct SegmentCache {
    resident: Vec<Option<(Arc<LoadedSegment>, u64)>>,
    tick: u64,
    resident_bytes: usize,
    stats: SpillStats,
}

/// The materialization database `M`, spilled to disk and read back through
/// a budgeted segment cache. See the module docs.
#[derive(Debug)]
pub struct SpilledNeighborhoodTable {
    max_k: usize,
    n: usize,
    budget_bytes: usize,
    stored_entries: u64,
    segments: Vec<SegmentMeta>,
    file: File,
    path: PathBuf,
    cache: Mutex<SegmentCache>,
}

fn io_err(what: &str, e: std::io::Error) -> LofError {
    LofError::InvalidPartition(format!("{what}: {e}"))
}

/// Rows per segment: sized so one segment is roughly an eighth of the
/// cache budget (several segments stay resident at once) but at least 256
/// rows, so tiny budgets degrade to more reloads instead of pathological
/// per-row I/O.
fn segment_rows(n: usize, max_k: usize, budget_bytes: usize) -> usize {
    let bytes_per_row = 16 * (max_k + 1) + 4;
    let target = (budget_bytes / 8).max(256 * bytes_per_row);
    (target / bytes_per_row).min(n.max(1))
}

impl SpilledNeighborhoodTable {
    /// Materializes every object's tie-inclusive `max_k`-neighborhood into
    /// a spill file under `spill_dir`, holding at most one segment of
    /// neighbor lists in memory at a time. `budget_bytes` caps the segment
    /// cache used by the scoring passes (the build itself honors it by
    /// segment sizing).
    ///
    /// The spill file is exclusive to this table and is deleted on drop.
    ///
    /// # Errors
    ///
    /// Returns [`LofError::EmptyDataset`] on an empty provider, propagates
    /// provider errors ([`LofError::InvalidMinPts`], ...), and maps spill
    /// I/O failures onto [`LofError::InvalidPartition`].
    pub fn build<P: KnnProvider + ?Sized>(
        provider: &P,
        max_k: usize,
        budget_bytes: usize,
        spill_dir: &Path,
    ) -> Result<Self> {
        let n = provider.len();
        if n == 0 {
            return Err(LofError::EmptyDataset);
        }
        let _span = lof_obs::span!("core.spill.build");
        static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);
        let path = spill_dir.join(format!(
            "lof-spill-{}-{}.bin",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| io_err("create spill file", e))?;
        let mut writer = BufWriter::with_capacity(1 << 20, &file);

        let seg_rows = segment_rows(n, max_k, budget_bytes);
        let mut scratch = crate::knn::KnnScratch::new();
        let mut neighbors: Vec<Neighbor> = Vec::new();
        let mut lens: Vec<usize> = Vec::new();
        let mut segments = Vec::with_capacity(n.div_ceil(seg_rows));
        let mut stored_entries = 0u64;
        let mut file_off = 0u64;
        let mut spills = 0u64;
        let mut start = 0usize;
        while start < n {
            let end = (start + seg_rows).min(n);
            neighbors.clear();
            lens.clear();
            provider.batch_k_nearest(start..end, max_k, &mut scratch, &mut neighbors, &mut lens)?;
            let mut acc = 0u32;
            writer.write_all(&acc.to_le_bytes()).map_err(|e| io_err("write spill", e))?;
            for &len in &lens {
                acc += len as u32;
                writer.write_all(&acc.to_le_bytes()).map_err(|e| io_err("write spill", e))?;
            }
            for nb in &neighbors {
                writer
                    .write_all(&(nb.id as u64).to_le_bytes())
                    .and_then(|()| writer.write_all(&nb.dist.to_le_bytes()))
                    .map_err(|e| io_err("write spill", e))?;
            }
            let meta = SegmentMeta {
                start_row: start,
                rows: end - start,
                entries: neighbors.len(),
                file_off,
            };
            file_off += meta.byte_len();
            stored_entries += neighbors.len() as u64;
            segments.push(meta);
            spills += 1;
            start = end;
        }
        writer.flush().map_err(|e| io_err("flush spill", e))?;
        drop(writer);
        scratch.stats.publish_and_reset();

        let cache = SegmentCache {
            resident: segments.iter().map(|_| None).collect(),
            tick: 0,
            resident_bytes: 0,
            stats: SpillStats { segment_spills: spills, ..SpillStats::default() },
        };
        let table = SpilledNeighborhoodTable {
            max_k,
            n,
            budget_bytes,
            stored_entries,
            segments,
            file,
            path,
            cache: Mutex::new(cache),
        };
        table.publish_stats();
        Ok(table)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the table covers no objects (never: empty providers are
    /// rejected at build).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The `MinPtsUB` the table was materialized with.
    pub fn max_k(&self) -> usize {
        self.max_k
    }

    /// Total stored `(neighbor, distance)` entries — the paper's
    /// "size of M" — all of them on disk.
    pub fn stored_entries(&self) -> u64 {
        self.stored_entries
    }

    /// Number of on-disk segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The resident-memory budget of the segment cache, in bytes.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// A snapshot of the spill/reload/eviction accounting.
    pub fn stats(&self) -> SpillStats {
        let cache = self.cache.lock().expect("segment cache poisoned");
        SpillStats { resident_bytes: cache.resident_bytes as u64, ..cache.stats }
    }

    fn publish_stats(&self) {
        let snapshot = self.stats();
        crate::obs::publish_ooc_spill(&snapshot);
    }

    fn validate_depth(&self, k: usize) -> Result<()> {
        if k == 0 {
            return Err(LofError::InvalidMinPts { min_pts: k, dataset_size: self.n });
        }
        if k > self.max_k {
            return Err(LofError::TableTooShallow { materialized: self.max_k, requested: k });
        }
        Ok(())
    }

    /// The cached-or-reloaded segment `idx`, touching its LRU stamp and
    /// evicting the coldest segments once the cache exceeds its budget
    /// (the segment just returned is never the one evicted).
    fn segment(&self, idx: usize) -> Result<Arc<LoadedSegment>> {
        let mut cache = self.cache.lock().expect("segment cache poisoned");
        cache.tick += 1;
        let tick = cache.tick;
        if let Some((seg, stamp)) = &mut cache.resident[idx] {
            *stamp = tick;
            return Ok(Arc::clone(seg));
        }

        let meta = self.segments[idx];
        let seg = Arc::new(self.read_segment(&meta)?);
        cache.stats.segment_reloads += 1;
        cache.resident_bytes += seg.heap_bytes();
        cache.resident[idx] = Some((Arc::clone(&seg), tick));
        while cache.resident_bytes > self.budget_bytes {
            let coldest = cache
                .resident
                .iter()
                .enumerate()
                .filter(|(i, slot)| *i != idx && slot.is_some())
                .min_by_key(|(_, slot)| slot.as_ref().expect("filtered Some").1)
                .map(|(i, _)| i);
            match coldest {
                Some(i) => {
                    let (evicted, _) = cache.resident[i].take().expect("filtered Some");
                    cache.resident_bytes -= evicted.heap_bytes();
                    cache.stats.segment_evictions += 1;
                }
                // Only the pinned segment is left; it may alone exceed a
                // tiny budget, which is fine — correctness over ceremony.
                None => break,
            }
        }
        Ok(seg)
    }

    fn read_segment(&self, meta: &SegmentMeta) -> Result<LoadedSegment> {
        // `&File` implements Read/Seek; the call sites hold the cache
        // lock, so seek+read pairs never interleave.
        let mut file = &self.file;
        file.seek(SeekFrom::Start(meta.file_off)).map_err(|e| io_err("seek spill", e))?;
        let mut buf = vec![0u8; meta.byte_len() as usize];
        file.read_exact(&mut buf).map_err(|e| io_err("read spill", e))?;
        let mut offsets = Vec::with_capacity(meta.rows + 1);
        for chunk in buf[..(meta.rows + 1) * 4].chunks_exact(4) {
            offsets.push(u32::from_le_bytes(chunk.try_into().expect("4 bytes")));
        }
        if offsets.last().copied() != Some(meta.entries as u32) {
            return Err(LofError::InvalidPartition(format!(
                "spill segment at {} is corrupt: {} entries indexed, {} stored",
                meta.file_off,
                offsets.last().copied().unwrap_or(0),
                meta.entries
            )));
        }
        let mut neighbors = Vec::with_capacity(meta.entries);
        for entry in buf[(meta.rows + 1) * 4..].chunks_exact(16) {
            let id = u64::from_le_bytes(entry[..8].try_into().expect("8 bytes")) as usize;
            let dist = f64::from_le_bytes(entry[8..].try_into().expect("8 bytes"));
            neighbors.push(Neighbor { id, dist });
        }
        Ok(LoadedSegment { start_row: meta.start_row, offsets, neighbors })
    }

    /// Runs `f` over every object's full materialized list, in id order,
    /// faulting segments through the cache.
    fn for_each_list(&self, mut f: impl FnMut(usize, &[Neighbor])) -> Result<()> {
        for idx in 0..self.segments.len() {
            let seg = self.segment(idx)?;
            for local in 0..seg.rows() {
                f(seg.start_row + local, seg.list(local));
            }
        }
        Ok(())
    }

    /// `k-distance(id)` for every object — the same tie-inclusive prefix
    /// read as [`crate::NeighborhoodTable::k_distances`], segment by
    /// segment.
    ///
    /// # Errors
    ///
    /// Returns [`LofError::InvalidMinPts`] for `k == 0` and
    /// [`LofError::TableTooShallow`] for `k > max_k`.
    pub fn k_distances(&self, k: usize) -> Result<Vec<f64>> {
        self.validate_depth(k)?;
        let mut out = Vec::with_capacity(self.n);
        self.for_each_list(|_, full| {
            let end = tie_inclusive_len(full, k);
            out.push(full[end - 1].dist);
        })?;
        Ok(out)
    }

    /// Local reachability densities for one `MinPts` — the arithmetic of
    /// [`crate::lrd::local_reachability_densities_with`] verbatim.
    fn lrds(&self, k: usize, k_distances: &[f64]) -> Result<Vec<f64>> {
        let mut lrd = Vec::with_capacity(self.n);
        self.for_each_list(|_, full| {
            let neighborhood = &full[..tie_inclusive_len(full, k)];
            let mut sum = 0.0;
            for nb in neighborhood {
                sum += reach_dist(k_distances[nb.id], nb.dist);
            }
            let mean = sum / neighborhood.len() as f64;
            lrd.push(if mean > 0.0 { 1.0 / mean } else { f64::INFINITY });
        })?;
        Ok(lrd)
    }

    /// LOF values for one `MinPts` — the arithmetic of
    /// [`crate::lof::lof_values_with`] verbatim.
    ///
    /// # Errors
    ///
    /// Same as [`SpilledNeighborhoodTable::k_distances`].
    pub fn lof_values(&self, k: usize) -> Result<Vec<f64>> {
        self.validate_depth(k)?;
        let k_distances = self.k_distances(k)?;
        let lrd = self.lrds(k, &k_distances)?;
        let mut lof = Vec::with_capacity(self.n);
        self.for_each_list(|p, full| {
            let neighborhood = &full[..tie_inclusive_len(full, k)];
            let mut sum = 0.0;
            for nb in neighborhood {
                sum += lrd_ratio(lrd[nb.id], lrd[p]);
            }
            lof.push(sum / neighborhood.len() as f64);
        })?;
        self.publish_stats();
        Ok(lof)
    }

    /// Aggregated LOF scores over a `MinPts` range, without ever holding
    /// the `range.len() x n` value matrix: each `MinPts` is scored in
    /// ascending order and folded into the running aggregate with exactly
    /// the fold [`Aggregate`] applies to a full trace, so the result is
    /// bit-identical to
    /// `lof_range(..).scores(aggregate)` on the in-RAM path. Peak memory
    /// is four `n`-vectors plus the segment cache budget.
    ///
    /// # Errors
    ///
    /// Returns [`LofError::TableTooShallow`] when `range.ub() > max_k`
    /// plus the usual validation errors.
    pub fn lof_range(&self, range: MinPtsRange, aggregate: Aggregate) -> Result<OocScores> {
        if range.ub() > self.max_k {
            return Err(LofError::TableTooShallow {
                materialized: self.max_k,
                requested: range.ub(),
            });
        }
        let _span = lof_obs::span!("core.spill.lof_range");
        let init = match aggregate {
            Aggregate::Max => f64::NEG_INFINITY,
            Aggregate::Min => f64::INFINITY,
            Aggregate::Mean => 0.0,
        };
        let mut scores = vec![init; self.n];
        for min_pts in range.iter() {
            let values = self.lof_values(min_pts)?;
            match aggregate {
                Aggregate::Max => {
                    for (s, v) in scores.iter_mut().zip(&values) {
                        *s = f64::max(*s, *v);
                    }
                }
                Aggregate::Min => {
                    for (s, v) in scores.iter_mut().zip(&values) {
                        *s = f64::min(*s, *v);
                    }
                }
                Aggregate::Mean => {
                    for (s, v) in scores.iter_mut().zip(&values) {
                        *s += *v;
                    }
                }
            }
        }
        if let Aggregate::Mean = aggregate {
            let count = range.len() as f64;
            for s in &mut scores {
                *s /= count;
            }
        }
        self.publish_stats();
        Ok(OocScores { range, aggregate, scores })
    }
}

impl Drop for SpilledNeighborhoodTable {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Aggregated out-of-core scores: what
/// [`SpilledNeighborhoodTable::lof_range`] returns instead of a
/// [`crate::LofRangeResult`] (whose full per-`MinPts` matrix is exactly
/// what a memory budget cannot afford).
#[derive(Debug, Clone)]
pub struct OocScores {
    range: MinPtsRange,
    aggregate: Aggregate,
    scores: Vec<f64>,
}

impl OocScores {
    /// The `MinPts` range scored.
    pub fn range(&self) -> MinPtsRange {
        self.range
    }

    /// The aggregate the scores were folded with.
    pub fn aggregate(&self) -> Aggregate {
        self.aggregate
    }

    /// Aggregated score per object, in id order.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The aggregated score of one object.
    ///
    /// # Errors
    ///
    /// Returns [`LofError::UnknownObject`] for out-of-range ids.
    pub fn score(&self, id: usize) -> Result<f64> {
        self.scores
            .get(id)
            .copied()
            .ok_or(LofError::UnknownObject { id, dataset_size: self.scores.len() })
    }

    /// Objects ranked most-outlying first, ties broken by id — the same
    /// order as [`crate::LofRangeResult::ranking`].
    pub fn ranking(&self) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self.scores.iter().copied().enumerate().collect();
        ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;
    use crate::materialize::NeighborhoodTable;
    use crate::point::Dataset;
    use crate::range::lof_range_reference;
    use crate::scan::LinearScan;

    fn mixture(n: usize) -> Dataset {
        // Deterministic two-cluster-plus-outliers scene, no RNG needed.
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let f = i as f64;
            if i % 97 == 96 {
                rows.push([50.0 + (f * 0.37).sin() * 40.0, -60.0 + (f * 0.71).cos() * 40.0]);
            } else if i % 2 == 0 {
                rows.push([(f * 0.13).sin() * 3.0, (f * 0.29).cos() * 3.0]);
            } else {
                rows.push([10.0 + (f * 0.17).sin(), 10.0 + (f * 0.23).cos()]);
            }
        }
        Dataset::from_rows(&rows).unwrap()
    }

    fn spill_dir() -> PathBuf {
        std::env::temp_dir()
    }

    #[test]
    fn spilled_scores_are_bit_identical_to_reference() {
        let data = mixture(600);
        let scan = LinearScan::new(&data, Euclidean);
        let range = MinPtsRange::new(5, 12).unwrap();

        let table = NeighborhoodTable::build(&scan, 12).unwrap();
        let reference = lof_range_reference(&table, range).unwrap();

        // A budget far below the table size forces constant eviction.
        let spilled = SpilledNeighborhoodTable::build(&scan, 12, 16 << 10, &spill_dir()).unwrap();
        assert!(spilled.segment_count() > 1, "test must actually segment");

        for aggregate in [Aggregate::Max, Aggregate::Min, Aggregate::Mean] {
            let ooc = spilled.lof_range(range, aggregate).unwrap();
            let expected = reference.scores(aggregate);
            assert_eq!(ooc.scores().len(), expected.len());
            for (id, (a, b)) in ooc.scores().iter().zip(&expected).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "id={id} aggregate={aggregate:?}");
            }
            assert_eq!(ooc.ranking(), reference.ranking(aggregate));
        }
    }

    #[test]
    fn per_k_passes_match_in_ram_table() {
        let data = mixture(300);
        let scan = LinearScan::new(&data, Euclidean);
        let table = NeighborhoodTable::build(&scan, 8).unwrap();
        let spilled = SpilledNeighborhoodTable::build(&scan, 8, 8 << 10, &spill_dir()).unwrap();
        assert_eq!(spilled.stored_entries() as usize, table.stored_entries());
        for k in 1..=8 {
            let kd = spilled.k_distances(k).unwrap();
            let expected = table.k_distances(k).unwrap();
            for id in 0..data.len() {
                assert_eq!(kd[id].to_bits(), expected[id].to_bits(), "k={k} id={id}");
            }
            let lof = spilled.lof_values(k).unwrap();
            let expected = crate::lof::lof_values(&table, k).unwrap();
            for id in 0..data.len() {
                assert_eq!(lof[id].to_bits(), expected[id].to_bits(), "k={k} id={id}");
            }
        }
    }

    #[test]
    fn tiny_budget_spills_and_evicts() {
        let data = mixture(500);
        let scan = LinearScan::new(&data, Euclidean);
        let spilled = SpilledNeighborhoodTable::build(&scan, 10, 4 << 10, &spill_dir()).unwrap();
        let _ = spilled.lof_range(MinPtsRange::new(3, 10).unwrap(), Aggregate::Max).unwrap();
        let stats = spilled.stats();
        assert!(stats.segment_spills > 1, "spills: {stats:?}");
        assert!(stats.segment_reloads > stats.segment_spills, "multi-pass reloads: {stats:?}");
        assert!(stats.segment_evictions > 0, "evictions: {stats:?}");
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let data = mixture(120);
        let scan = LinearScan::new(&data, Euclidean);
        let spilled = SpilledNeighborhoodTable::build(&scan, 5, 1 << 20, &spill_dir()).unwrap();
        let path = spilled.path.clone();
        assert!(path.exists());
        drop(spilled);
        assert!(!path.exists());
    }

    #[test]
    fn depth_validation_matches_in_ram_errors() {
        let data = mixture(50);
        let scan = LinearScan::new(&data, Euclidean);
        let spilled = SpilledNeighborhoodTable::build(&scan, 5, 1 << 20, &spill_dir()).unwrap();
        assert!(matches!(spilled.k_distances(0), Err(LofError::InvalidMinPts { .. })));
        assert!(matches!(
            spilled.k_distances(6),
            Err(LofError::TableTooShallow { materialized: 5, requested: 6 })
        ));
        assert!(matches!(
            spilled.lof_range(MinPtsRange::new(2, 6).unwrap(), Aggregate::Max),
            Err(LofError::TableTooShallow { .. })
        ));
        assert!(matches!(
            SpilledNeighborhoodTable::build(
                &LinearScan::new(&Dataset::new(2), Euclidean),
                3,
                1,
                &spill_dir()
            ),
            Err(LofError::EmptyDataset)
        ));
    }

    #[test]
    fn ooc_scores_accessors() {
        let data = mixture(150);
        let scan = LinearScan::new(&data, Euclidean);
        let spilled = SpilledNeighborhoodTable::build(&scan, 6, 1 << 20, &spill_dir()).unwrap();
        let range = MinPtsRange::new(4, 6).unwrap();
        let ooc = spilled.lof_range(range, Aggregate::Max).unwrap();
        assert_eq!(ooc.range(), range);
        assert_eq!(ooc.aggregate(), Aggregate::Max);
        assert_eq!(ooc.score(0).unwrap(), ooc.scores()[0]);
        assert!(ooc.score(150).is_err());
        let ranking = ooc.ranking();
        assert_eq!(ranking.len(), 150);
        assert!(ranking.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}
