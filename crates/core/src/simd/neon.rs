//! aarch64 NEON microkernel: 2 × f64 lanes with fused multiply-add
//! (`vfmaq_f64`). Same register-tiling shape as the SSE2 kernel —
//! 2 queries × 2 data points per iteration, a scalar chain for the
//! `d mod 2` tail — so each dot product carries 2 lanes plus one tail
//! chain, well inside [`super::MAX_LANES`].
//!
//! NEON is part of the aarch64 baseline, so detection always selects it
//! there; this file is compiled only on aarch64 and is exercised by the
//! same differential suite (`crates/core/tests/simd_identity.rs`) as the
//! x86 kernels.
//!
//! # Safety
//!
//! `unsafe fn` + `#[target_feature(enable = "neon")]`: callers must
//! verify the feature (the dispatch layer does via [`super::available`]).

#![allow(unsafe_op_in_unsafe_fn)]
// Micropanel loops index per-query register accumulators and raw row
// pointers by `qi` in lockstep; an iterator form would obscure the
// register tiling.
#![allow(clippy::needless_range_loop)]

use std::arch::aarch64::*;

/// One (query, point) dot product: 2-lane FMA accumulator plus a scalar
/// chain for the `d mod 2` tail.
#[target_feature(enable = "neon")]
unsafe fn dot1_neon(q: *const f64, x: *const f64, dfull: usize, d: usize) -> f64 {
    let mut acc = vdupq_n_f64(0.0);
    let mut c = 0;
    while c < dfull {
        acc = vfmaq_f64(acc, vld1q_f64(q.add(c)), vld1q_f64(x.add(c)));
        c += 2;
    }
    let mut dot = vaddvq_f64(acc);
    if c < d {
        dot += *q.add(c) * *x.add(c);
    }
    dot
}

/// `NQ` query rows (1 or 2) against all `nt` data rows, 2 points per
/// iteration.
#[target_feature(enable = "neon")]
unsafe fn rows_neon<const NQ: usize>(
    q: *const f64,
    qn: *const f64,
    t: &[f64],
    tn: &[f64],
    d: usize,
    out: *mut f64,
) {
    let nt = tn.len();
    let rem = d % 2;
    let dfull = d - rem;
    let mut ti = 0;
    while ti + 2 <= nt {
        let x0 = t.as_ptr().add(ti * d);
        let x1 = x0.add(d);
        let mut acc = [[vdupq_n_f64(0.0); 2]; NQ];
        let mut c = 0;
        while c < dfull {
            let vx0 = vld1q_f64(x0.add(c));
            let vx1 = vld1q_f64(x1.add(c));
            for qi in 0..NQ {
                let vq = vld1q_f64(q.add(qi * d + c));
                acc[qi][0] = vfmaq_f64(acc[qi][0], vq, vx0);
                acc[qi][1] = vfmaq_f64(acc[qi][1], vq, vx1);
            }
            c += 2;
        }
        for qi in 0..NQ {
            let mut dots = [vaddvq_f64(acc[qi][0]), vaddvq_f64(acc[qi][1])];
            if rem != 0 {
                let qv = *q.add(qi * d + c);
                dots[0] += qv * *x0.add(c);
                dots[1] += qv * *x1.add(c);
            }
            let qnorm = *qn.add(qi);
            *out.add(qi * nt + ti) = qnorm + tn[ti] - 2.0 * dots[0];
            *out.add(qi * nt + ti + 1) = qnorm + tn[ti + 1] - 2.0 * dots[1];
        }
        ti += 2;
    }
    if ti < nt {
        let x = t.as_ptr().add(ti * d);
        for qi in 0..NQ {
            let dot = dot1_neon(q.add(qi * d), x, dfull, d);
            *out.add(qi * nt + ti) = *qn.add(qi) + tn[ti] - 2.0 * dot;
        }
    }
}

/// NEON surrogate panel; see [`super::surrogate_panel`].
#[target_feature(enable = "neon")]
pub(super) unsafe fn surrogate_panel_neon(
    q: &[f64],
    qn: &[f64],
    t: &[f64],
    tn: &[f64],
    d: usize,
    out: &mut [f64],
) {
    let nq = qn.len();
    let nt = tn.len();
    if nq == 0 || nt == 0 {
        return;
    }
    let mut qi = 0;
    while qi + 2 <= nq {
        rows_neon::<2>(
            q.as_ptr().add(qi * d),
            qn.as_ptr().add(qi),
            t,
            tn,
            d,
            out.as_mut_ptr().add(qi * nt),
        );
        qi += 2;
    }
    if qi < nq {
        rows_neon::<1>(
            q.as_ptr().add(qi * d),
            qn.as_ptr().add(qi),
            t,
            tn,
            d,
            out.as_mut_ptr().add(qi * nt),
        );
    }
}

/// NEON surrogate gather; see [`super::surrogate_gather`]. One query ×
/// 2 scattered candidates per iteration.
#[target_feature(enable = "neon")]
pub(super) unsafe fn surrogate_gather_neon(
    q: &[f64],
    qn: f64,
    coords: &[f64],
    norms: &[f64],
    d: usize,
    cands: &[usize],
    out: &mut [f64],
) {
    let nc = cands.len();
    let rem = d % 2;
    let dfull = d - rem;
    let qp = q.as_ptr();
    let mut ci = 0;
    while ci + 2 <= nc {
        let (j0, j1) = (cands[ci], cands[ci + 1]);
        let x0 = coords.as_ptr().add(j0 * d);
        let x1 = coords.as_ptr().add(j1 * d);
        let mut acc = [vdupq_n_f64(0.0); 2];
        let mut c = 0;
        while c < dfull {
            let vq = vld1q_f64(qp.add(c));
            acc[0] = vfmaq_f64(acc[0], vq, vld1q_f64(x0.add(c)));
            acc[1] = vfmaq_f64(acc[1], vq, vld1q_f64(x1.add(c)));
            c += 2;
        }
        let mut dots = [vaddvq_f64(acc[0]), vaddvq_f64(acc[1])];
        if rem != 0 {
            let qv = *qp.add(c);
            dots[0] += qv * *x0.add(c);
            dots[1] += qv * *x1.add(c);
        }
        out[ci] = qn + norms[j0] - 2.0 * dots[0];
        out[ci + 1] = qn + norms[j1] - 2.0 * dots[1];
        ci += 2;
    }
    if ci < nc {
        let j = cands[ci];
        let dot = dot1_neon(qp, coords.as_ptr().add(j * d), dfull, d);
        out[ci] = qn + norms[j] - 2.0 * dot;
    }
}

/// Capture-skip scan (see [`super::next_hit_block`]): NEON variant —
/// four 2-lane `<= accept` compares OR-ed per window; a zero reduction
/// proves every element of the window is `> accept` (the comparison is
/// exact).
#[target_feature(enable = "neon")]
pub(super) unsafe fn next_hit_block_neon(buf: &[f64], from: usize, accept: f64) -> usize {
    let n = buf.len();
    let p = buf.as_ptr();
    let acc = vdupq_n_f64(accept);
    let mut i = from;
    while i + super::SKIP_BLOCK <= n {
        let m01 =
            vorrq_u64(vcleq_f64(vld1q_f64(p.add(i)), acc), vcleq_f64(vld1q_f64(p.add(i + 2)), acc));
        let m23 = vorrq_u64(
            vcleq_f64(vld1q_f64(p.add(i + 4)), acc),
            vcleq_f64(vld1q_f64(p.add(i + 6)), acc),
        );
        if vmaxvq_u64(vorrq_u64(m01, m23)) != 0 {
            return i;
        }
        i += super::SKIP_BLOCK;
    }
    i
}
