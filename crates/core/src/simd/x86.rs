//! x86-64 microkernels: AVX2+FMA (4 × f64 lanes, fused multiply-add)
//! and SSE2 (2 × f64 lanes, the x86-64 baseline).
//!
//! The AVX2 micropanel computes 2 queries × 4 data points per iteration:
//! eight vector accumulators — one per (query, point) dot product — plus
//! two query vectors and a point vector in flight stay within the 16
//! architectural registers, and sharing each point load across both
//! queries lifts the FMA:load ratio above 1 so the loop runs
//! FMA-bound instead of load-bound. The `d mod 4` tail is handled with
//! `maskload` into the *same* accumulator, so each dot product carries
//! exactly 4 partial-sum chains (`lanes() ≤ MAX_LANES`) combined by one
//! 4-way horizontal reduction — the reassociation the widened
//! [`super::surrogate_slack`] accounts for.
//!
//! SSE2 tiles 2 queries × 2 points with an unvectorized `d mod 2` peel;
//! each dot carries 2 lanes plus one scalar tail chain.
//!
//! # Safety
//!
//! Every function here is `unsafe fn` with a `#[target_feature]`
//! attribute: callers (the dispatch layer in `mod.rs`) must verify the
//! feature is present — [`super::available`] does — before calling.

#![allow(unsafe_op_in_unsafe_fn)]
// Micropanel loops index per-query register accumulators and raw row
// pointers by `qi` in lockstep; an iterator form would obscure the
// register tiling.
#![allow(clippy::needless_range_loop)]

use std::arch::x86_64::*;

/// Lane-enable mask for the `d mod 4` remainder: lane `i` loads iff
/// `i < rem` (maskload semantics key off each lane's sign bit).
#[target_feature(enable = "avx2")]
unsafe fn tail_mask(rem: usize) -> __m256i {
    let lane = |i: usize| if i < rem { -1i64 } else { 0 };
    _mm256_setr_epi64x(lane(0), lane(1), lane(2), lane(3))
}

/// Transposing 4-way horizontal sum: lane `i` of the result is the full
/// sum of `acc_i`'s four lanes.
#[target_feature(enable = "avx2")]
unsafe fn hsum4(a0: __m256d, a1: __m256d, a2: __m256d, a3: __m256d) -> __m256d {
    let t01 = _mm256_hadd_pd(a0, a1); // [a0₀+a0₁, a1₀+a1₁, a0₂+a0₃, a1₂+a1₃]
    let t23 = _mm256_hadd_pd(a2, a3);
    let swap = _mm256_permute2f128_pd::<0x21>(t01, t23);
    let blend = _mm256_blend_pd::<0b1100>(t01, t23);
    _mm256_add_pd(swap, blend)
}

/// Full horizontal sum of one accumulator.
#[target_feature(enable = "avx2")]
unsafe fn hsum1(a: __m256d) -> f64 {
    let s = _mm_add_pd(_mm256_castpd256_pd128(a), _mm256_extractf128_pd::<1>(a));
    _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
}

/// `NQ` query rows (1 or 2) against all `nt` data rows; `out` is `NQ`
/// rows of stride `nt`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn rows_avx2<const NQ: usize>(
    q: *const f64,
    qn: *const f64,
    t: &[f64],
    tn: &[f64],
    d: usize,
    mask: __m256i,
    out: *mut f64,
) {
    let nt = tn.len();
    let rem = d % 4;
    let dfull = d - rem;
    let two = _mm256_set1_pd(2.0);
    let mut ti = 0;
    while ti + 4 <= nt {
        let x0 = t.as_ptr().add(ti * d);
        let x1 = x0.add(d);
        let x2 = x1.add(d);
        let x3 = x2.add(d);
        let mut acc = [[_mm256_setzero_pd(); 4]; NQ];
        let mut c = 0;
        while c < dfull {
            let vx0 = _mm256_loadu_pd(x0.add(c));
            let vx1 = _mm256_loadu_pd(x1.add(c));
            let vx2 = _mm256_loadu_pd(x2.add(c));
            let vx3 = _mm256_loadu_pd(x3.add(c));
            for qi in 0..NQ {
                let vq = _mm256_loadu_pd(q.add(qi * d + c));
                acc[qi][0] = _mm256_fmadd_pd(vq, vx0, acc[qi][0]);
                acc[qi][1] = _mm256_fmadd_pd(vq, vx1, acc[qi][1]);
                acc[qi][2] = _mm256_fmadd_pd(vq, vx2, acc[qi][2]);
                acc[qi][3] = _mm256_fmadd_pd(vq, vx3, acc[qi][3]);
            }
            c += 4;
        }
        if rem != 0 {
            let vx0 = _mm256_maskload_pd(x0.add(c), mask);
            let vx1 = _mm256_maskload_pd(x1.add(c), mask);
            let vx2 = _mm256_maskload_pd(x2.add(c), mask);
            let vx3 = _mm256_maskload_pd(x3.add(c), mask);
            for qi in 0..NQ {
                let vq = _mm256_maskload_pd(q.add(qi * d + c), mask);
                acc[qi][0] = _mm256_fmadd_pd(vq, vx0, acc[qi][0]);
                acc[qi][1] = _mm256_fmadd_pd(vq, vx1, acc[qi][1]);
                acc[qi][2] = _mm256_fmadd_pd(vq, vx2, acc[qi][2]);
                acc[qi][3] = _mm256_fmadd_pd(vq, vx3, acc[qi][3]);
            }
        }
        let vtn = _mm256_loadu_pd(tn.as_ptr().add(ti));
        for qi in 0..NQ {
            let dots = hsum4(acc[qi][0], acc[qi][1], acc[qi][2], acc[qi][3]);
            let base = _mm256_add_pd(_mm256_set1_pd(*qn.add(qi)), vtn);
            // base − 2·dot, the norm-form surrogate.
            _mm256_storeu_pd(out.add(qi * nt + ti), _mm256_fnmadd_pd(two, dots, base));
        }
        ti += 4;
    }
    // Point remainder: one data row at a time, same masked d-tail.
    while ti < nt {
        let x = t.as_ptr().add(ti * d);
        for qi in 0..NQ {
            let mut acc = _mm256_setzero_pd();
            let mut c = 0;
            while c < dfull {
                acc = _mm256_fmadd_pd(
                    _mm256_loadu_pd(q.add(qi * d + c)),
                    _mm256_loadu_pd(x.add(c)),
                    acc,
                );
                c += 4;
            }
            if rem != 0 {
                acc = _mm256_fmadd_pd(
                    _mm256_maskload_pd(q.add(qi * d + c), mask),
                    _mm256_maskload_pd(x.add(c), mask),
                    acc,
                );
            }
            *out.add(qi * nt + ti) = *qn.add(qi) + tn[ti] - 2.0 * hsum1(acc);
        }
        ti += 1;
    }
}

/// AVX2+FMA surrogate panel; see [`super::surrogate_panel`].
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn surrogate_panel_avx2(
    q: &[f64],
    qn: &[f64],
    t: &[f64],
    tn: &[f64],
    d: usize,
    out: &mut [f64],
) {
    let nq = qn.len();
    let nt = tn.len();
    if nq == 0 || nt == 0 {
        return;
    }
    let mask = tail_mask(d % 4);
    let mut qi = 0;
    while qi + 2 <= nq {
        rows_avx2::<2>(
            q.as_ptr().add(qi * d),
            qn.as_ptr().add(qi),
            t,
            tn,
            d,
            mask,
            out.as_mut_ptr().add(qi * nt),
        );
        qi += 2;
    }
    if qi < nq {
        rows_avx2::<1>(
            q.as_ptr().add(qi * d),
            qn.as_ptr().add(qi),
            t,
            tn,
            d,
            mask,
            out.as_mut_ptr().add(qi * nt),
        );
    }
}

/// AVX2+FMA surrogate gather; see [`super::surrogate_gather`]. One query
/// × 4 scattered candidates per iteration.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn surrogate_gather_avx2(
    q: &[f64],
    qn: f64,
    coords: &[f64],
    norms: &[f64],
    d: usize,
    cands: &[usize],
    out: &mut [f64],
) {
    let nc = cands.len();
    let rem = d % 4;
    let dfull = d - rem;
    let mask = tail_mask(rem);
    let two = _mm256_set1_pd(2.0);
    let qp = q.as_ptr();
    let mut ci = 0;
    while ci + 4 <= nc {
        let j = [cands[ci], cands[ci + 1], cands[ci + 2], cands[ci + 3]];
        let x0 = coords.as_ptr().add(j[0] * d);
        let x1 = coords.as_ptr().add(j[1] * d);
        let x2 = coords.as_ptr().add(j[2] * d);
        let x3 = coords.as_ptr().add(j[3] * d);
        let mut acc = [_mm256_setzero_pd(); 4];
        let mut c = 0;
        while c < dfull {
            let vq = _mm256_loadu_pd(qp.add(c));
            acc[0] = _mm256_fmadd_pd(vq, _mm256_loadu_pd(x0.add(c)), acc[0]);
            acc[1] = _mm256_fmadd_pd(vq, _mm256_loadu_pd(x1.add(c)), acc[1]);
            acc[2] = _mm256_fmadd_pd(vq, _mm256_loadu_pd(x2.add(c)), acc[2]);
            acc[3] = _mm256_fmadd_pd(vq, _mm256_loadu_pd(x3.add(c)), acc[3]);
            c += 4;
        }
        if rem != 0 {
            let vq = _mm256_maskload_pd(qp.add(c), mask);
            acc[0] = _mm256_fmadd_pd(vq, _mm256_maskload_pd(x0.add(c), mask), acc[0]);
            acc[1] = _mm256_fmadd_pd(vq, _mm256_maskload_pd(x1.add(c), mask), acc[1]);
            acc[2] = _mm256_fmadd_pd(vq, _mm256_maskload_pd(x2.add(c), mask), acc[2]);
            acc[3] = _mm256_fmadd_pd(vq, _mm256_maskload_pd(x3.add(c), mask), acc[3]);
        }
        let dots = hsum4(acc[0], acc[1], acc[2], acc[3]);
        let vtn = _mm256_setr_pd(norms[j[0]], norms[j[1]], norms[j[2]], norms[j[3]]);
        let base = _mm256_add_pd(_mm256_set1_pd(qn), vtn);
        _mm256_storeu_pd(out.as_mut_ptr().add(ci), _mm256_fnmadd_pd(two, dots, base));
        ci += 4;
    }
    while ci < nc {
        let j = cands[ci];
        let x = coords.as_ptr().add(j * d);
        let mut acc = _mm256_setzero_pd();
        let mut c = 0;
        while c < dfull {
            acc = _mm256_fmadd_pd(_mm256_loadu_pd(qp.add(c)), _mm256_loadu_pd(x.add(c)), acc);
            c += 4;
        }
        if rem != 0 {
            acc = _mm256_fmadd_pd(
                _mm256_maskload_pd(qp.add(c), mask),
                _mm256_maskload_pd(x.add(c), mask),
                acc,
            );
        }
        out[ci] = qn + norms[j] - 2.0 * hsum1(acc);
        ci += 1;
    }
}

/// Both-lane horizontal sums of a pair of accumulators:
/// `[Σ a0, Σ a1]`.
#[target_feature(enable = "sse2")]
unsafe fn hsum2(a0: __m128d, a1: __m128d) -> __m128d {
    _mm_add_pd(_mm_unpacklo_pd(a0, a1), _mm_unpackhi_pd(a0, a1))
}

/// One (query, point) dot product: 2-lane accumulator plus a scalar
/// chain for the `d mod 2` tail.
#[target_feature(enable = "sse2")]
unsafe fn dot1_sse2(q: *const f64, x: *const f64, dfull: usize, d: usize) -> f64 {
    let mut acc = _mm_setzero_pd();
    let mut c = 0;
    while c < dfull {
        acc = _mm_add_pd(acc, _mm_mul_pd(_mm_loadu_pd(q.add(c)), _mm_loadu_pd(x.add(c))));
        c += 2;
    }
    let mut dot = _mm_cvtsd_f64(_mm_add_sd(acc, _mm_unpackhi_pd(acc, acc)));
    if c < d {
        dot += *q.add(c) * *x.add(c);
    }
    dot
}

/// `NQ` query rows (1 or 2) against all `nt` data rows, 2 points per
/// iteration.
#[target_feature(enable = "sse2")]
unsafe fn rows_sse2<const NQ: usize>(
    q: *const f64,
    qn: *const f64,
    t: &[f64],
    tn: &[f64],
    d: usize,
    out: *mut f64,
) {
    let nt = tn.len();
    let rem = d % 2;
    let dfull = d - rem;
    let mut ti = 0;
    while ti + 2 <= nt {
        let x0 = t.as_ptr().add(ti * d);
        let x1 = x0.add(d);
        let mut acc = [[_mm_setzero_pd(); 2]; NQ];
        let mut c = 0;
        while c < dfull {
            let vx0 = _mm_loadu_pd(x0.add(c));
            let vx1 = _mm_loadu_pd(x1.add(c));
            for qi in 0..NQ {
                let vq = _mm_loadu_pd(q.add(qi * d + c));
                acc[qi][0] = _mm_add_pd(acc[qi][0], _mm_mul_pd(vq, vx0));
                acc[qi][1] = _mm_add_pd(acc[qi][1], _mm_mul_pd(vq, vx1));
            }
            c += 2;
        }
        for qi in 0..NQ {
            let mut dots = [0.0f64; 2];
            _mm_storeu_pd(dots.as_mut_ptr(), hsum2(acc[qi][0], acc[qi][1]));
            if rem != 0 {
                let qv = *q.add(qi * d + c);
                dots[0] += qv * *x0.add(c);
                dots[1] += qv * *x1.add(c);
            }
            let qnorm = *qn.add(qi);
            *out.add(qi * nt + ti) = qnorm + tn[ti] - 2.0 * dots[0];
            *out.add(qi * nt + ti + 1) = qnorm + tn[ti + 1] - 2.0 * dots[1];
        }
        ti += 2;
    }
    if ti < nt {
        let x = t.as_ptr().add(ti * d);
        for qi in 0..NQ {
            let dot = dot1_sse2(q.add(qi * d), x, dfull, d);
            *out.add(qi * nt + ti) = *qn.add(qi) + tn[ti] - 2.0 * dot;
        }
    }
}

/// SSE2 surrogate panel; see [`super::surrogate_panel`].
#[target_feature(enable = "sse2")]
pub(super) unsafe fn surrogate_panel_sse2(
    q: &[f64],
    qn: &[f64],
    t: &[f64],
    tn: &[f64],
    d: usize,
    out: &mut [f64],
) {
    let nq = qn.len();
    let nt = tn.len();
    if nq == 0 || nt == 0 {
        return;
    }
    let mut qi = 0;
    while qi + 2 <= nq {
        rows_sse2::<2>(
            q.as_ptr().add(qi * d),
            qn.as_ptr().add(qi),
            t,
            tn,
            d,
            out.as_mut_ptr().add(qi * nt),
        );
        qi += 2;
    }
    if qi < nq {
        rows_sse2::<1>(
            q.as_ptr().add(qi * d),
            qn.as_ptr().add(qi),
            t,
            tn,
            d,
            out.as_mut_ptr().add(qi * nt),
        );
    }
}

/// SSE2 surrogate gather; see [`super::surrogate_gather`]. One query ×
/// 2 scattered candidates per iteration.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn surrogate_gather_sse2(
    q: &[f64],
    qn: f64,
    coords: &[f64],
    norms: &[f64],
    d: usize,
    cands: &[usize],
    out: &mut [f64],
) {
    let nc = cands.len();
    let rem = d % 2;
    let dfull = d - rem;
    let qp = q.as_ptr();
    let mut ci = 0;
    while ci + 2 <= nc {
        let (j0, j1) = (cands[ci], cands[ci + 1]);
        let x0 = coords.as_ptr().add(j0 * d);
        let x1 = coords.as_ptr().add(j1 * d);
        let mut acc = [_mm_setzero_pd(); 2];
        let mut c = 0;
        while c < dfull {
            let vq = _mm_loadu_pd(qp.add(c));
            acc[0] = _mm_add_pd(acc[0], _mm_mul_pd(vq, _mm_loadu_pd(x0.add(c))));
            acc[1] = _mm_add_pd(acc[1], _mm_mul_pd(vq, _mm_loadu_pd(x1.add(c))));
            c += 2;
        }
        let mut dots = [0.0f64; 2];
        _mm_storeu_pd(dots.as_mut_ptr(), hsum2(acc[0], acc[1]));
        if rem != 0 {
            let qv = *qp.add(c);
            dots[0] += qv * *x0.add(c);
            dots[1] += qv * *x1.add(c);
        }
        out[ci] = qn + norms[j0] - 2.0 * dots[0];
        out[ci + 1] = qn + norms[j1] - 2.0 * dots[1];
        ci += 2;
    }
    if ci < nc {
        let j = cands[ci];
        let dot = dot1_sse2(qp, coords.as_ptr().add(j * d), dfull, d);
        out[ci] = qn + norms[j] - 2.0 * dot;
    }
}

/// Capture-skip scan (see [`super::next_hit_block`]): advances over
/// [`super::SKIP_BLOCK`]-sized windows of `buf` starting at `from` and
/// returns the start of the first window whose `<= accept` compare mask
/// is non-zero, or the index of the trailing partial window. The
/// comparison is exact, so a zero mask proves every element of the
/// window is `> accept`.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn next_hit_block_avx2(buf: &[f64], from: usize, accept: f64) -> usize {
    let n = buf.len();
    let p = buf.as_ptr();
    let acc = _mm256_set1_pd(accept);
    let mut i = from;
    while i + super::SKIP_BLOCK <= n {
        let lo = _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(p.add(i)), acc);
        let hi = _mm256_cmp_pd::<_CMP_LE_OQ>(_mm256_loadu_pd(p.add(i + 4)), acc);
        if _mm256_movemask_pd(_mm256_or_pd(lo, hi)) != 0 {
            return i;
        }
        i += super::SKIP_BLOCK;
    }
    i
}

/// SSE2 variant of [`next_hit_block_avx2`]: four 2-lane compares per
/// window.
#[target_feature(enable = "sse2")]
pub(super) unsafe fn next_hit_block_sse2(buf: &[f64], from: usize, accept: f64) -> usize {
    let n = buf.len();
    let p = buf.as_ptr();
    let acc = _mm_set1_pd(accept);
    let mut i = from;
    while i + super::SKIP_BLOCK <= n {
        let m01 = _mm_or_pd(
            _mm_cmple_pd(_mm_loadu_pd(p.add(i)), acc),
            _mm_cmple_pd(_mm_loadu_pd(p.add(i + 2)), acc),
        );
        let m23 = _mm_or_pd(
            _mm_cmple_pd(_mm_loadu_pd(p.add(i + 4)), acc),
            _mm_cmple_pd(_mm_loadu_pd(p.add(i + 6)), acc),
        );
        if _mm_movemask_pd(_mm_or_pd(m01, m23)) != 0 {
            return i;
        }
        i += super::SKIP_BLOCK;
    }
    i
}
