//! Runtime-dispatched SIMD microkernels for the norm-form surrogate
//! distance `‖q‖² + ‖x‖² − 2·q·x`.
//!
//! Step 1 of the paper's two-step algorithm (section 7.4) reduces, in the
//! blocked kernel, to a stream of dot products. This module evaluates
//! them at the hardware's FMA width: hand-written `std::arch`
//! microkernels for x86-64 AVX2+FMA and SSE2 and aarch64 NEON, selected
//! **once per process** by runtime CPU-feature detection ([`active`]),
//! with a portable scalar fallback that reproduces the pre-SIMD blocked
//! kernel bit for bit.
//!
//! ## Exactness contract
//!
//! SIMD summation reassociates the dot product (lane partial sums are
//! combined in a tree instead of the scalar path's fixed order), so a
//! SIMD surrogate generally differs from the scalar surrogate in its last
//! ulps. That is *allowed*: every consumer treats surrogates as
//! conservative keys only — candidate selection widens its cutoff by
//! [`surrogate_slack`] (which bounds the error of **any** summation
//! order, any lane count up to [`MAX_LANES`]) and re-derives the exact
//! scalar distance of every survivor. Final neighborhoods, ties, and LOF
//! values are therefore bit-identical across all dispatch targets —
//! enforced by `crates/core/tests/simd_identity.rs`.
//!
//! ## Forcing a target
//!
//! `LOF_FORCE_SCALAR=1` pins the process to the scalar path (the
//! differential-testing escape hatch used by `scripts/ci.sh`);
//! `LOF_SIMD=scalar|sse2|avx2|neon|auto` selects a specific target.
//! Either variable is read once, at the first [`active`] call; a
//! requested target the CPU cannot run falls back to detection.

mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

/// Instruction-set targets the dispatcher can select.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// x86-64 AVX2 + FMA: 4 × f64 lanes, fused multiply-add.
    Avx2Fma,
    /// x86-64 SSE2 (baseline on every x86-64 CPU): 2 × f64 lanes.
    Sse2,
    /// aarch64 NEON (baseline on every aarch64 CPU): 2 × f64 lanes.
    Neon,
    /// Portable scalar fallback: the pre-SIMD blocked-kernel loop,
    /// monomorphized over common dimensionalities.
    Scalar,
}

/// Upper bound on the independent partial sums any microkernel carries
/// per dot product (lanes × register-tiled accumulators). The
/// [`surrogate_slack`] reassociation term uses this, so every current and
/// future kernel must stay within it.
pub const MAX_LANES: usize = 8;

impl Isa {
    /// Stable lower-case key (env values, metric names, JSON fields).
    pub fn key(self) -> &'static str {
        match self {
            Isa::Avx2Fma => "avx2_fma",
            Isa::Sse2 => "sse2",
            Isa::Neon => "neon",
            Isa::Scalar => "scalar",
        }
    }

    /// f64 lanes per vector register (1 for the scalar path).
    pub fn lanes(self) -> usize {
        match self {
            Isa::Avx2Fma => 4,
            Isa::Sse2 | Isa::Neon => 2,
            Isa::Scalar => 1,
        }
    }

    /// Data points per register-tiled micropanel iteration.
    pub fn panel_points(self) -> usize {
        match self {
            Isa::Avx2Fma => 4,
            Isa::Sse2 | Isa::Neon => 2,
            Isa::Scalar => 1,
        }
    }

    /// Queries per register-tiled micropanel iteration.
    pub fn panel_queries(self) -> usize {
        match self {
            Isa::Avx2Fma | Isa::Sse2 | Isa::Neon => 2,
            Isa::Scalar => 1,
        }
    }
}

/// Conservative bound on `|surrogate − exact scalar squared distance|`
/// for any point pair of a dataset whose largest squared norm is
/// `max_norm`, valid for **every** dispatch target.
///
/// Error budget: each norm and the dot product carry ≈ `d·eps·max‖x‖²`
/// of absolute rounding error; a SIMD dot splits the sum into at most
/// [`MAX_LANES`] partial chains of `⌈d/L⌉` fused multiply-adds each,
/// combined by a reduction tree of depth ≤ `log₂ MAX_LANES` — so the
/// worst chain length over any reassociation is ≤ `d + MAX_LANES` terms.
/// The final `qn + xn − 2·dot` combination contributes a few ulps of
/// magnitude ≤ `4·max‖x‖²`, and the exact scalar reference path
/// contributes a term of the same order. `16·(d + 4 + MAX_LANES)·eps·
/// max‖x‖²` over-covers the total by ~4x.
pub fn surrogate_slack(d: usize, max_norm: f64) -> f64 {
    16.0 * (d as f64 + 4.0 + MAX_LANES as f64) * f64::EPSILON * max_norm
}

/// The target pure hardware detection selects (no env override).
pub fn detect() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            Isa::Avx2Fma
        } else {
            Isa::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        Isa::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Isa::Scalar
    }
}

/// Every target this machine can execute, scalar first. Differential
/// tests iterate this to compare all runnable kernels in one process.
pub fn available() -> &'static [Isa] {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<Vec<Isa>> = OnceLock::new();
    AVAILABLE.get_or_init(|| {
        let mut isas = vec![Isa::Scalar];
        #[cfg(target_arch = "x86_64")]
        {
            isas.push(Isa::Sse2);
            if detect() == Isa::Avx2Fma {
                isas.push(Isa::Avx2Fma);
            }
        }
        #[cfg(target_arch = "aarch64")]
        isas.push(Isa::Neon);
        isas
    })
}

/// Env-var override: `LOF_FORCE_SCALAR` (anything but empty/`0`) pins
/// scalar; otherwise `LOF_SIMD` names a target (`auto` = detect).
fn from_env() -> Option<Isa> {
    if let Ok(v) = std::env::var("LOF_FORCE_SCALAR") {
        if !v.is_empty() && v != "0" {
            return Some(Isa::Scalar);
        }
    }
    match std::env::var("LOF_SIMD").ok()?.to_ascii_lowercase().as_str() {
        "scalar" => Some(Isa::Scalar),
        "sse2" => Some(Isa::Sse2),
        "avx2" | "avx2_fma" | "avx2fma" => Some(Isa::Avx2Fma),
        "neon" => Some(Isa::Neon),
        _ => None,
    }
}

/// The process-wide dispatch target: env override if runnable, hardware
/// detection otherwise. Resolved once (first call) and cached; the
/// selection is published to the `core.simd.dispatch_*` metric.
pub fn active() -> Isa {
    use std::sync::OnceLock;
    static ACTIVE: OnceLock<Isa> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        let requested = from_env();
        let isa = match requested {
            Some(isa) if available().contains(&isa) => isa,
            _ => detect(),
        };
        crate::obs::publish_simd_dispatch(isa);
        isa
    })
}

/// Deterministic instrumentation for one [`surrogate_panel`] call:
/// `(micropanels executed, remainder lanes)`. Micropanels are full
/// register-tiled iterations (`panel_queries × panel_points` outputs
/// each); remainder lanes count the trailing `d mod lanes` dimension
/// elements of every dot that take the masked/peeled path.
pub fn panel_counts(isa: Isa, nq: usize, nt: usize, d: usize) -> (u64, u64) {
    let micropanels = (nq / isa.panel_queries()) as u64 * (nt / isa.panel_points()) as u64;
    let remainder = ((d % isa.lanes()) * nq * nt) as u64;
    (micropanels, remainder)
}

/// Checks `isa` can run here, falling back to scalar otherwise — this is
/// what keeps the dispatch functions safe to call with any `Isa` value.
#[inline]
fn runnable(isa: Isa) -> Isa {
    if available().contains(&isa) {
        isa
    } else {
        Isa::Scalar
    }
}

/// Surrogate panel: `out[qi·nt + ti] = qn[qi] + tn[ti] − 2·(q_qi · x_ti)`
/// for `nq` contiguous query rows against `nt` contiguous data rows.
///
/// `q` is `nq × d` row-major, `t` is `nt × d` row-major, `qn`/`tn` are
/// the rows' precomputed squared norms, and `out` must hold exactly
/// `nq·nt` slots. Each output differs from the exact scalar squared
/// distance by at most [`surrogate_slack`].
///
/// # Panics
///
/// Panics (debug) on inconsistent slice lengths.
pub fn surrogate_panel(
    isa: Isa,
    q: &[f64],
    qn: &[f64],
    t: &[f64],
    tn: &[f64],
    d: usize,
    out: &mut [f64],
) {
    debug_assert!(d > 0, "points have at least one dimension");
    debug_assert_eq!(q.len(), qn.len() * d, "query rows / norms mismatch");
    debug_assert_eq!(t.len(), tn.len() * d, "data rows / norms mismatch");
    debug_assert_eq!(out.len(), qn.len() * tn.len(), "output panel size mismatch");
    match runnable(isa) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` verified the features via `available()`.
        Isa::Avx2Fma => unsafe { x86::surrogate_panel_avx2(q, qn, t, tn, d, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Isa::Sse2 => unsafe { x86::surrogate_panel_sse2(q, qn, t, tn, d, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline.
        Isa::Neon => unsafe { neon::surrogate_panel_neon(q, qn, t, tn, d, out) },
        _ => scalar::surrogate_panel(q, qn, t, tn, d, out),
    }
}

/// Elements per capture-skip window of [`next_hit_block`]: two AVX2
/// vectors, four SSE2/NEON vectors.
pub const SKIP_BLOCK: usize = 8;

/// Threshold-scan accelerator for the capture phase: returns the start
/// of the first [`SKIP_BLOCK`]-sized window at or after `from` that may
/// contain a value `<= accept`, or an index `>= buf.len()` when no later
/// full window can qualify.
///
/// Every element of `buf[from..returned]` is **provably** `> accept` —
/// the vector compare is exact, no rounding is involved — so callers may
/// skip that prefix wholesale. Elements from the returned index on must
/// still pass the caller's own scalar test: a hit window merely *may*
/// contain a qualifying value, and a trailing partial window is always
/// reported as a potential hit. The scalar target returns `from`
/// unchanged, degenerating to the caller's plain element loop (the
/// pre-SIMD capture scan, bit for bit).
pub fn next_hit_block(isa: Isa, buf: &[f64], from: usize, accept: f64) -> usize {
    match runnable(isa) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` verified the features via `available()`.
        Isa::Avx2Fma => unsafe { x86::next_hit_block_avx2(buf, from, accept) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Isa::Sse2 => unsafe { x86::next_hit_block_sse2(buf, from, accept) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline.
        Isa::Neon => unsafe { neon::next_hit_block_neon(buf, from, accept) },
        _ => from,
    }
}

/// Surrogate gather: `out[ci] = qn + norms[cands[ci]] − 2·(q · x_cands[ci])`
/// for one query against scattered candidate ids (a tree leaf's id
/// block). Same error bound as [`surrogate_panel`].
///
/// # Panics
///
/// Panics (debug) on inconsistent slice lengths or out-of-range ids.
// The argument list is the kernel ABI itself (query row, norms, data,
// candidate ids, output) plus the dispatch target; bundling them into a
// struct would only add a second call-site shape to maintain.
#[allow(clippy::too_many_arguments)]
pub fn surrogate_gather(
    isa: Isa,
    q: &[f64],
    qn: f64,
    coords: &[f64],
    norms: &[f64],
    d: usize,
    cands: &[usize],
    out: &mut [f64],
) {
    debug_assert!(d > 0, "points have at least one dimension");
    debug_assert_eq!(q.len(), d, "query dimensionality mismatch");
    debug_assert_eq!(coords.len(), norms.len() * d, "data rows / norms mismatch");
    debug_assert_eq!(out.len(), cands.len(), "output size mismatch");
    debug_assert!(cands.iter().all(|&j| j < norms.len()), "candidate id out of range");
    match runnable(isa) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `runnable` verified the features via `available()`.
        Isa::Avx2Fma => unsafe { x86::surrogate_gather_avx2(q, qn, coords, norms, d, cands, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is part of the x86-64 baseline.
        Isa::Sse2 => unsafe { x86::surrogate_gather_sse2(q, qn, coords, norms, d, cands, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is part of the aarch64 baseline.
        Isa::Neon => unsafe { neon::surrogate_gather_neon(q, qn, coords, norms, d, cands, out) },
        _ => scalar::surrogate_gather(q, qn, coords, norms, d, cands, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::squared_euclidean;

    /// A small adversarial fixture: duplicates, a far-origin cluster, a
    /// zero row.
    fn fixture(d: usize) -> Vec<f64> {
        let mut rows = Vec::new();
        for i in 0..13 {
            for c in 0..d {
                rows.push(((i * (c + 2) + c) % 7) as f64 * 0.5 - 1.0);
            }
        }
        // Duplicate pair.
        let dup: Vec<f64> = rows[..d].to_vec();
        rows.extend_from_slice(&dup);
        rows.extend_from_slice(&dup);
        // Far-origin cluster (cancellation stress).
        for i in 0..4 {
            for c in 0..d {
                rows.push(1.0e8 + (i * (c + 1)) as f64 * 1.0e-3);
            }
        }
        // Zero row.
        rows.extend(std::iter::repeat_n(0.0, d));
        rows
    }

    fn norms(rows: &[f64], d: usize) -> Vec<f64> {
        rows.chunks_exact(d)
            .map(|r| {
                let mut acc = 0.0;
                for &v in r {
                    acc += v * v;
                }
                acc
            })
            .collect()
    }

    #[test]
    fn every_available_isa_respects_the_slack_bound() {
        for &isa in available() {
            // d sweeps every remainder class of every lane width (1..=2·4+1).
            for d in 1..=(2 * 4 + 1) {
                let rows = fixture(d);
                let ns = norms(&rows, d);
                let n = ns.len();
                let max_norm = ns.iter().cloned().fold(0.0f64, f64::max);
                let slack = surrogate_slack(d, max_norm);
                let mut out = vec![0.0; n * n];
                surrogate_panel(isa, &rows, &ns, &rows, &ns, d, &mut out);
                for qi in 0..n {
                    for ti in 0..n {
                        let exact = squared_euclidean(&rows[qi * d..][..d], &rows[ti * d..][..d]);
                        let got = out[qi * n + ti];
                        assert!(
                            (got - exact).abs() <= slack,
                            "{}: d={d} pair ({qi},{ti}): |{got} - {exact}| > slack {slack}",
                            isa.key()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gather_matches_panel_on_scattered_ids() {
        for &isa in available() {
            for d in 1..=9 {
                let rows = fixture(d);
                let ns = norms(&rows, d);
                let n = ns.len();
                // A scattered, repeating candidate list.
                let cands: Vec<usize> = (0..n).rev().chain([0, 0, n / 2]).collect();
                let q = &rows[3 * d..][..d];
                let mut panel = vec![0.0; n];
                surrogate_panel(isa, q, &ns[3..4], &rows, &ns, d, &mut panel);
                let mut gathered = vec![0.0; cands.len()];
                surrogate_gather(isa, q, ns[3], &rows, &ns, d, &cands, &mut gathered);
                for (ci, &j) in cands.iter().enumerate() {
                    assert_eq!(
                        gathered[ci].to_bits(),
                        panel[j].to_bits(),
                        "{}: d={d} cand {ci} (id {j})",
                        isa.key()
                    );
                }
            }
        }
    }

    #[test]
    fn next_hit_block_skips_only_rejected_elements() {
        // Driving the capture-scan protocol over every target must visit
        // exactly the elements `<= accept`, in order, for any threshold.
        let buf: Vec<f64> = (0..37).map(|i| ((i * 17) % 29) as f64 - 3.0).collect();
        for &isa in available() {
            for accept in [-10.0, 0.0, 5.0, 24.9, 25.0, f64::INFINITY] {
                let mut seen = Vec::new();
                let mut ti = 0;
                while ti < buf.len() {
                    ti = next_hit_block(isa, &buf, ti, accept);
                    if ti >= buf.len() {
                        break;
                    }
                    let end = (ti + SKIP_BLOCK).min(buf.len());
                    for (off, &v) in buf[ti..end].iter().enumerate() {
                        if v <= accept {
                            seen.push(ti + off);
                        }
                    }
                    ti = end;
                }
                let want: Vec<usize> = (0..buf.len()).filter(|&i| buf[i] <= accept).collect();
                assert_eq!(seen, want, "{} accept={accept}", isa.key());
            }
        }
    }

    #[test]
    fn active_is_stable_and_available() {
        let isa = active();
        assert_eq!(isa, active(), "dispatch must be resolved once");
        assert!(available().contains(&isa));
        assert!(available().contains(&Isa::Scalar));
    }

    #[test]
    fn panel_counts_are_deterministic_arithmetic() {
        let (p, r) = panel_counts(Isa::Scalar, 3, 10, 7);
        assert_eq!((p, r), (30, 0), "scalar: one micropanel per pair, no remainder");
        let (p, r) = panel_counts(Isa::Avx2Fma, 4, 10, 10);
        // 2-query × 4-point micropanels: ⌊4/2⌋·⌊10/4⌋ = 4; 10 % 4 lanes = 2
        // remainder lanes per dot, 40 dots.
        assert_eq!((p, r), (4, 80));
    }

    #[test]
    fn slack_grows_with_dimensionality_and_norm() {
        assert!(surrogate_slack(8, 1.0) > surrogate_slack(2, 1.0));
        assert!(surrogate_slack(2, 1.0e8) > surrogate_slack(2, 1.0));
        assert_eq!(surrogate_slack(3, 0.0), 0.0);
    }
}
