//! Portable scalar backend: the pre-SIMD blocked-kernel dot loop,
//! verbatim. Four independent partial sums (enough ILP to keep a scalar
//! FPU's add/mul ports busy), scalar tail for `d mod 4`, monomorphized
//! over common dimensionalities so the loop fully unrolls. This path is
//! the semantic reference — `LOF_FORCE_SCALAR=1` pins the whole process
//! to it — and its surrogates are bit-identical to the PR 1 kernel.

/// One surrogate dot product in the canonical scalar order.
#[inline(always)]
fn dot<const D: usize>(q: &[f64], x: &[f64], d: usize) -> f64 {
    let d = if D == 0 { d } else { D };
    let mut acc = [0.0f64; 4];
    let mut t = 0;
    while t + 4 <= d {
        acc[0] += q[t] * x[t];
        acc[1] += q[t + 1] * x[t + 1];
        acc[2] += q[t + 2] * x[t + 2];
        acc[3] += q[t + 3] * x[t + 3];
        t += 4;
    }
    let mut dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    while t < d {
        dot += q[t] * x[t];
        t += 1;
    }
    dot
}

fn panel_impl<const D: usize>(
    q: &[f64],
    qn: &[f64],
    t: &[f64],
    tn: &[f64],
    d: usize,
    out: &mut [f64],
) {
    let d = if D == 0 { d } else { D };
    let nt = tn.len();
    for (qi, &qnorm) in qn.iter().enumerate() {
        let qrow = &q[qi * d..][..d];
        let orow = &mut out[qi * nt..][..nt];
        for (ti, slot) in orow.iter_mut().enumerate() {
            let xrow = &t[ti * d..][..d];
            *slot = qnorm + tn[ti] - 2.0 * dot::<D>(qrow, xrow, d);
        }
    }
}

fn gather_impl<const D: usize>(
    q: &[f64],
    qn: f64,
    coords: &[f64],
    norms: &[f64],
    d: usize,
    cands: &[usize],
    out: &mut [f64],
) {
    let d = if D == 0 { d } else { D };
    for (slot, &j) in out.iter_mut().zip(cands) {
        let xrow = &coords[j * d..][..d];
        *slot = qn + norms[j] - 2.0 * dot::<D>(q, xrow, d);
    }
}

/// Dispatches to a monomorphized body for common dimensionalities so the
/// dot product fully unrolls; the runtime-`d` fallback covers the rest.
macro_rules! mono_d {
    ($d:expr, $impl:ident, ($($args:expr),*)) => {
        match $d {
            1 => $impl::<1>($($args),*),
            2 => $impl::<2>($($args),*),
            3 => $impl::<3>($($args),*),
            4 => $impl::<4>($($args),*),
            5 => $impl::<5>($($args),*),
            6 => $impl::<6>($($args),*),
            7 => $impl::<7>($($args),*),
            8 => $impl::<8>($($args),*),
            9 => $impl::<9>($($args),*),
            10 => $impl::<10>($($args),*),
            12 => $impl::<12>($($args),*),
            16 => $impl::<16>($($args),*),
            20 => $impl::<20>($($args),*),
            32 => $impl::<32>($($args),*),
            64 => $impl::<64>($($args),*),
            _ => $impl::<0>($($args),*),
        }
    };
}

pub(super) fn surrogate_panel(
    q: &[f64],
    qn: &[f64],
    t: &[f64],
    tn: &[f64],
    d: usize,
    out: &mut [f64],
) {
    mono_d!(d, panel_impl, (q, qn, t, tn, d, out));
}

pub(super) fn surrogate_gather(
    q: &[f64],
    qn: f64,
    coords: &[f64],
    norms: &[f64],
    d: usize,
    cands: &[usize],
    out: &mut [f64],
) {
    mono_d!(d, gather_impl, (q, qn, coords, norms, d, cands, out));
}
