//! Spatial shard layout for the sharded incremental engine.
//!
//! The sharded streaming window partitions one logical dataset across N
//! worker shards by spatial structure — the same bounding-box pruning
//! idea the top-n engine's micro-partitions use
//! ([`crate::topn::Partition`]), rebuilt here around *mutable*
//! membership: points arrive into the nearest shard box, leave by
//! swap-remove, and the whole layout is re-split (kd-style, widest
//! dimension at the proportional rank) after enough churn.
//!
//! Two per-shard statistics drive all pruning, both conservative under
//! staleness:
//!
//! - the **bounding box** only grows between rebalances, so
//!   [`Metric::min_dist_to_rect`] stays a lower bound on the distance
//!   from a query to every member;
//! - the **k-distance envelope** ([`KdistEnvelope`]) only ratchets up,
//!   so `env.excludes(min_dist)` proves no member's maintained neighbor
//!   list can absorb a point at that distance — the shard is provably
//!   outside the event's reverse-k-NN repair set.
//!
//! Neither statistic affects *values*: pruning only ever skips shards
//! whose members are strictly beyond every decision threshold, so scores
//! are bit-identical at any shard count (property-tested in
//! `crates/stream/tests/shards.rs`).

use crate::bounds::KdistEnvelope;
use crate::distance::Metric;
use crate::point::Dataset;

/// Rebalance at least this many events apart, even for tiny windows.
const MIN_REBALANCE_OPS: usize = 64;

/// One shard's bounding box, grown on assignment and recomputed exactly
/// at rebalance.
#[derive(Debug, Clone)]
struct ShardBox {
    lo: Vec<f64>,
    hi: Vec<f64>,
    init: bool,
}

impl ShardBox {
    fn empty(dims: usize) -> Self {
        ShardBox { lo: vec![0.0; dims], hi: vec![0.0; dims], init: false }
    }

    fn grow(&mut self, p: &[f64]) {
        if !self.init {
            self.lo.copy_from_slice(p);
            self.hi.copy_from_slice(p);
            self.init = true;
            return;
        }
        for ((lo, hi), &v) in self.lo.iter_mut().zip(self.hi.iter_mut()).zip(p) {
            if v < *lo {
                *lo = v;
            }
            if v > *hi {
                *hi = v;
            }
        }
    }

    fn min_dist<M: Metric>(&self, metric: &M, q: &[f64]) -> f64 {
        if self.init {
            metric.min_dist_to_rect(q, &self.lo, &self.hi)
        } else {
            f64::INFINITY
        }
    }
}

/// The mutable shard assignment of a dataset: member lists, bounding
/// boxes and k-distance envelopes per shard, with swap-remove-aware
/// bookkeeping mirroring [`crate::incremental::IncrementalLof`]'s id
/// relocation.
#[derive(Debug, Clone)]
pub(crate) struct ShardLayout {
    threads: usize,
    /// Point id -> owning shard.
    assign: Vec<u32>,
    /// Point id -> index within its shard's member list.
    pos: Vec<u32>,
    /// Shard -> member ids (unordered; positions tracked via `pos`).
    members: Vec<Vec<u32>>,
    boxes: Vec<ShardBox>,
    envs: Vec<KdistEnvelope>,
    /// Inserts + removes since the last rebalance.
    ops: usize,
    rebalance_every: usize,
}

impl ShardLayout {
    /// Builds a layout over `data` with `cutoff(id)` yielding each
    /// point's maintained neighbor-list cutoff (for the envelopes).
    pub(crate) fn build(
        data: &Dataset,
        cutoff: impl Fn(usize) -> f64,
        shards: usize,
        threads: usize,
    ) -> ShardLayout {
        let shards = shards.max(1);
        let mut layout = ShardLayout {
            threads: threads.clamp(1, shards),
            assign: Vec::new(),
            pos: Vec::new(),
            members: vec![Vec::new(); shards],
            boxes: (0..shards).map(|_| ShardBox::empty(data.dims())).collect(),
            envs: vec![KdistEnvelope::EMPTY; shards],
            ops: 0,
            rebalance_every: MIN_REBALANCE_OPS,
        };
        layout.rebalance(data, &cutoff);
        layout
    }

    /// Re-splits every point kd-style and recomputes boxes and envelopes
    /// exactly. Deterministic in the current dataset state.
    pub(crate) fn rebalance(&mut self, data: &Dataset, cutoff: &impl Fn(usize) -> f64) {
        let n = data.len();
        let shards = self.members.len();
        self.assign.clear();
        self.assign.resize(n, 0);
        self.pos.clear();
        self.pos.resize(n, 0);
        for m in &mut self.members {
            m.clear();
        }
        for b in &mut self.boxes {
            b.init = false;
        }
        for e in &mut self.envs {
            *e = KdistEnvelope::EMPTY;
        }
        let mut ids: Vec<u32> = (0..n as u32).collect();
        kd_split(data, &mut ids, shards, 0, &mut self.assign);
        for id in 0..n {
            let s = self.assign[id] as usize;
            self.pos[id] = self.members[s].len() as u32;
            self.members[s].push(id as u32);
            self.boxes[s].grow(data.point(id));
            self.envs[s].ratchet(cutoff(id));
        }
        self.ops = 0;
        self.rebalance_every = n.max(MIN_REBALANCE_OPS);
    }

    /// True when enough churn has accumulated that boxes and envelopes
    /// should be recomputed exactly.
    pub(crate) fn needs_rebalance(&self) -> bool {
        self.ops >= self.rebalance_every
    }

    pub(crate) fn shards(&self) -> usize {
        self.members.len()
    }

    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    pub(crate) fn shard_of(&self, id: usize) -> usize {
        self.assign[id] as usize
    }

    pub(crate) fn members(&self, shard: usize) -> &[u32] {
        &self.members[shard]
    }

    pub(crate) fn env(&self, shard: usize) -> KdistEnvelope {
        self.envs[shard]
    }

    pub(crate) fn ratchet_env(&mut self, shard: usize, cutoff: f64) {
        self.envs[shard].ratchet(cutoff);
    }

    /// Lower bound on the distance from `q` to any member of `shard`
    /// (`+∞` for empty shards).
    pub(crate) fn min_dist<M: Metric>(&self, metric: &M, q: &[f64], shard: usize) -> f64 {
        self.boxes[shard].min_dist(metric, q)
    }

    /// Assigns the next point id (must equal the current point count) to
    /// the shard whose box is nearest to `q` (ties to the lower index),
    /// growing that box to cover it. Returns the home shard.
    pub(crate) fn assign_new<M: Metric>(&mut self, metric: &M, q: &[f64]) -> usize {
        let mut best = 0;
        let mut best_dist = f64::INFINITY;
        for s in 0..self.members.len() {
            let d = self.boxes[s].min_dist(metric, q);
            if d < best_dist {
                best = s;
                best_dist = d;
            }
        }
        let id = self.assign.len();
        self.assign.push(best as u32);
        self.pos.push(self.members[best].len() as u32);
        self.members[best].push(id as u32);
        self.boxes[best].grow(q);
        self.ops += 1;
        best
    }

    /// Mirrors the model's swap-remove: detaches `id` from its shard,
    /// relocates the previous last id into slot `id`, and returns the
    /// removed point's home shard. Boxes and envelopes are left
    /// stale-high (conservative) until the next rebalance.
    pub(crate) fn swap_remove(&mut self, id: usize) -> usize {
        let last = self.assign.len() - 1;
        let home = self.assign[id] as usize;
        let p = self.pos[id] as usize;
        let ms = &mut self.members[home];
        ms.swap_remove(p);
        if p < ms.len() {
            self.pos[ms[p] as usize] = p as u32;
        }
        self.assign.swap_remove(id);
        self.pos.swap_remove(id);
        if id != last {
            let s = self.assign[id] as usize;
            let q = self.pos[id] as usize;
            self.members[s][q] = id as u32;
        }
        self.ops += 1;
        home
    }
}

/// Recursive kd-style split: labels `ids` with `shards` consecutive
/// shard numbers starting at `first`, splitting the widest-spread
/// dimension at the proportional rank so leaf populations stay balanced
/// for any shard count. Deterministic: ranks tie-break on id.
fn kd_split(data: &Dataset, ids: &mut [u32], shards: usize, first: u32, assign: &mut [u32]) {
    if shards <= 1 || ids.len() <= 1 {
        for &id in ids.iter() {
            assign[id as usize] = first;
        }
        return;
    }
    let dims = data.dims();
    let mut lo = vec![f64::INFINITY; dims];
    let mut hi = vec![f64::NEG_INFINITY; dims];
    for &id in ids.iter() {
        let p = data.point(id as usize);
        for d in 0..dims {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    let mut split_dim = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for d in 0..dims {
        let spread = hi[d] - lo[d];
        if spread > best_spread {
            best_spread = spread;
            split_dim = d;
        }
    }
    let left_shards = shards / 2;
    let cut = (ids.len() * left_shards / shards).clamp(1, ids.len() - 1);
    ids.select_nth_unstable_by(cut, |a, b| {
        data.point(*a as usize)[split_dim]
            .total_cmp(&data.point(*b as usize)[split_dim])
            .then(a.cmp(b))
    });
    let (lhs, rhs) = ids.split_at_mut(cut);
    kd_split(data, lhs, left_shards, first, assign);
    kd_split(data, rhs, shards - left_shards, first + left_shards as u32, assign);
}

/// Maps `f` over shard indices, returning results in shard order. With
/// `threads > 1` the shards are strided across scoped worker threads —
/// each shard's result is computed independently, so any schedule yields
/// the same vector; with one thread the loop runs inline.
pub(crate) fn map_shards<R, F>(shards: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.clamp(1, shards.max(1));
    if workers <= 1 {
        return (0..shards).map(f).collect();
    }
    let f = &f;
    let parts: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut part = Vec::new();
                    let mut s = w;
                    while s < shards {
                        part.push((s, f(s)));
                        s += workers;
                    }
                    part
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    });
    let mut out: Vec<Option<R>> = (0..shards).map(|_| None).collect();
    for part in parts {
        for (s, r) in part {
            out[s] = Some(r);
        }
    }
    out.into_iter().map(|r| r.expect("every shard computed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Euclidean;

    fn grid(n: usize) -> Dataset {
        let rows: Vec<[f64; 2]> = (0..n).map(|i| [(i % 8) as f64, (i / 8) as f64]).collect();
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn build_covers_every_point_exactly_once() {
        for shards in [1, 2, 3, 4, 8] {
            let data = grid(40);
            let layout = ShardLayout::build(&data, |_| 1.0, shards, 1);
            let mut seen = vec![0usize; data.len()];
            for s in 0..layout.shards() {
                for &m in layout.members(s) {
                    assert_eq!(layout.shard_of(m as usize), s);
                    seen[m as usize] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "disjoint cover at {shards} shards");
            // Population stays balanced within a factor of ~2.
            let max = (0..shards).map(|s| layout.members(s).len()).max().unwrap();
            assert!(max <= 40usize.div_ceil(shards) * 2, "balance at {shards} shards: max {max}");
        }
    }

    #[test]
    fn min_dist_lower_bounds_every_member() {
        let data = grid(40);
        let layout = ShardLayout::build(&data, |_| 1.0, 4, 1);
        let q = [3.3, -2.0];
        for s in 0..layout.shards() {
            let bound = layout.min_dist(&Euclidean, &q, s);
            for &m in layout.members(s) {
                let d = Euclidean.distance(&q, data.point(m as usize));
                assert!(bound <= d, "shard {s}: bound {bound} vs member dist {d}");
            }
        }
    }

    #[test]
    fn swap_remove_keeps_positions_consistent() {
        let data = grid(20);
        let mut layout = ShardLayout::build(&data, |_| 1.0, 3, 1);
        let mut remaining = 20usize;
        // Remove ids in a scrambled order, mirroring the model's
        // swap-remove relocation each time.
        for id in [5usize, 0, 12, 7, 7, 3] {
            layout.swap_remove(id);
            remaining -= 1;
            let mut seen = vec![0usize; remaining];
            for s in 0..layout.shards() {
                for (i, &m) in layout.members(s).iter().enumerate() {
                    assert_eq!(layout.shard_of(m as usize), s);
                    assert_eq!(layout.pos[m as usize] as usize, i);
                    seen[m as usize] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "cover after removing {id}");
        }
    }

    #[test]
    fn assign_new_joins_the_nearest_box_and_grows_it() {
        let data = grid(16);
        let mut layout = ShardLayout::build(&data, |_| 1.0, 2, 1);
        let q = [0.0, 0.1];
        let home = layout.assign_new(&Euclidean, &q);
        assert_eq!(layout.shard_of(16), home);
        assert_eq!(layout.min_dist(&Euclidean, &q, home), 0.0, "box grew to cover the point");
    }

    #[test]
    fn map_shards_matches_inline_for_any_thread_count() {
        let inline = map_shards(7, 1, |s| s * s);
        for threads in [2, 3, 8] {
            assert_eq!(map_shards(7, threads, |s| s * s), inline);
        }
    }

    #[test]
    fn envelope_ratchets_and_rebalance_resets_exactly() {
        let data = grid(12);
        let mut layout = ShardLayout::build(&data, |_| 2.0, 2, 1);
        layout.ratchet_env(0, 9.0);
        assert!(!layout.env(0).excludes(8.5));
        layout.rebalance(&data, &|_| 2.0);
        assert!(layout.env(0).excludes(2.1), "rebalance recomputes the exact envelope");
        assert!(!layout.env(0).excludes(2.0));
    }
}
