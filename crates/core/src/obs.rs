//! Core-engine instrumentation: deterministic per-call kernel counters
//! plus the publication bridge into the process-wide metrics registry.
//!
//! Two layers, deliberately separate:
//!
//! 1. [`KernelStats`] — plain `u64` fields living inside each
//!    [`KnnScratch`](crate::KnnScratch). The hot loops bump these with
//!    ordinary additions (no atomics), so a single-threaded call's
//!    counts are exactly reproducible — which is what the ground-truth
//!    tests in `crates/core/tests/obs_kernel.rs` compare against naive
//!    arithmetic. With the `obs` feature off the bump methods compile to
//!    nothing and the kernels are uninstrumented.
//! 2. [`publish_kernel_stats`] / [`core_counter`] — chokepoints (table
//!    materialization, incremental updates, the sweep) flush those local
//!    counts into `lof_obs::global()`'s sharded counters, where the CLI
//!    and exposition formats read them. Publication happens once per
//!    batch, not per offer, so the sharded atomics stay off the hot path
//!    entirely.

use lof_obs::Counter;
use std::sync::Arc;
use std::sync::OnceLock;

/// Deterministic counters for one engine call (a batch build, a single
/// query, an incremental update). Lives in
/// [`KnnScratch::stats`](crate::KnnScratch); reset it before a call and
/// read it after for exact per-call counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct KernelStats {
    /// Blocked-kernel data tiles streamed (one per (tile, query-block)).
    pub tiles: u64,
    /// Candidate distances evaluated by the blocked kernel (tile length
    /// summed per query).
    pub tile_pairs: u64,
    /// Candidates captured under the running threshold.
    pub captures: u64,
    /// `select_nth`-based capture-list compactions.
    pub compactions: u64,
    /// Candidates exact-refined after the surrogate scan.
    pub refined: u64,
    /// Heap offers observed by the leaf-grouped batch self-joins.
    pub heap_offers: u64,
    /// Leaf groups traversed by the batch self-joins.
    pub join_groups: u64,
    /// Tie-shell recovery passes actually taken (lost-candidate gate
    /// fired).
    pub shell_passes: u64,
    /// Full register-tiled SIMD micropanels executed by the dispatched
    /// surrogate kernel (see [`crate::simd::panel_counts`]).
    pub simd_panels: u64,
    /// Remainder dimension lanes (`d mod lanes` per dot product) that
    /// took the masked/peeled path.
    pub simd_remainder_lanes: u64,
}

macro_rules! bump {
    ($($(#[$doc:meta])* $fn_name:ident => $field:ident),* $(,)?) => {
        impl KernelStats {
            $(
                $(#[$doc])*
                #[inline(always)]
                pub fn $fn_name(&mut self, n: u64) {
                    #[cfg(feature = "obs")]
                    {
                        self.$field += n;
                    }
                    #[cfg(not(feature = "obs"))]
                    let _ = n;
                }
            )*
        }
    };
}

bump! {
    /// Adds `n` streamed tiles.
    bump_tiles => tiles,
    /// Adds `n` evaluated candidate distances.
    bump_tile_pairs => tile_pairs,
    /// Adds `n` threshold captures.
    bump_captures => captures,
    /// Adds `n` capture-list compactions.
    bump_compactions => compactions,
    /// Adds `n` exact-refined candidates.
    bump_refined => refined,
    /// Adds `n` self-join heap offers.
    bump_heap_offers => heap_offers,
    /// Adds `n` traversed leaf groups.
    bump_join_groups => join_groups,
    /// Adds `n` tie-shell recovery passes.
    bump_shell_passes => shell_passes,
    /// Adds `n` executed SIMD micropanels.
    bump_simd_panels => simd_panels,
    /// Adds `n` masked/peeled remainder lanes.
    bump_simd_remainder_lanes => simd_remainder_lanes,
}

impl KernelStats {
    /// Zeroes every counter (start of an instrumented call).
    pub fn reset(&mut self) {
        *self = KernelStats::default();
    }

    /// Flushes the counts into the global registry's `core.*` counters
    /// and zeroes this instance. Call at batch chokepoints, never inside
    /// per-candidate loops.
    pub fn publish_and_reset(&mut self) {
        #[cfg(feature = "obs")]
        {
            let m = core_metrics();
            for (counter, value) in [
                (&m.tiles, self.tiles),
                (&m.tile_pairs, self.tile_pairs),
                (&m.captures, self.captures),
                (&m.compactions, self.compactions),
                (&m.refined, self.refined),
                (&m.heap_offers, self.heap_offers),
                (&m.join_groups, self.join_groups),
                (&m.shell_passes, self.shell_passes),
                (&m.simd_panels, self.simd_panels),
                (&m.simd_remainder_lanes, self.simd_remainder_lanes),
            ] {
                if value > 0 {
                    counter.add(value);
                }
            }
        }
        self.reset();
    }
}

/// The global `core.*` counters, resolved once and cached: the
/// publication chokepoints must not take the registry lock per batch.
#[cfg(feature = "obs")]
pub(crate) struct CoreMetrics {
    pub tiles: Arc<Counter>,
    pub tile_pairs: Arc<Counter>,
    pub captures: Arc<Counter>,
    pub compactions: Arc<Counter>,
    pub refined: Arc<Counter>,
    pub heap_offers: Arc<Counter>,
    pub join_groups: Arc<Counter>,
    pub shell_passes: Arc<Counter>,
    pub sweep_ranges: Arc<Counter>,
    pub sweep_column_passes: Arc<Counter>,
    pub sweep_cells: Arc<Counter>,
    pub inserts: Arc<Counter>,
    pub removes: Arc<Counter>,
    pub cascade_lofs: Arc<Counter>,
    pub cascade_depth: Arc<Counter>,
    pub simd_panels: Arc<Counter>,
    pub simd_remainder_lanes: Arc<Counter>,
    pub topn_runs: Arc<Counter>,
    pub topn_partitions: Arc<Counter>,
    pub topn_partitions_pruned: Arc<Counter>,
    pub topn_partitions_refined: Arc<Counter>,
    pub topn_objects_pruned: Arc<Counter>,
    pub topn_objects_refined: Arc<Counter>,
    pub topn_tightenings: Arc<Counter>,
    pub topn_heap_churn: Arc<Counter>,
    pub ooc_panel_faults: Arc<Counter>,
    pub ooc_map_bytes: Arc<lof_obs::Gauge>,
    pub ooc_segment_spills: Arc<Counter>,
    pub ooc_segment_reloads: Arc<Counter>,
    pub ooc_segment_evictions: Arc<Counter>,
    pub ooc_resident_bytes: Arc<lof_obs::Gauge>,
}

#[cfg(feature = "obs")]
pub(crate) fn core_metrics() -> &'static CoreMetrics {
    static METRICS: OnceLock<CoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = lof_obs::global();
        CoreMetrics {
            tiles: r.counter("core.kernel.tiles"),
            tile_pairs: r.counter("core.kernel.tile_pairs"),
            captures: r.counter("core.kernel.captures"),
            compactions: r.counter("core.kernel.compactions"),
            refined: r.counter("core.kernel.refined"),
            heap_offers: r.counter("core.join.heap_offers"),
            join_groups: r.counter("core.join.groups"),
            shell_passes: r.counter("core.join.shell_passes"),
            sweep_ranges: r.counter("core.sweep.ranges"),
            sweep_column_passes: r.counter("core.sweep.column_passes"),
            sweep_cells: r.counter("core.sweep.cells"),
            inserts: r.counter("core.incremental.inserts"),
            removes: r.counter("core.incremental.removes"),
            cascade_lofs: r.counter("core.incremental.cascade_lofs"),
            cascade_depth: r.counter("core.incremental.cascade_depth"),
            simd_panels: r.counter("core.simd.panels"),
            simd_remainder_lanes: r.counter("core.simd.remainder_lanes"),
            topn_runs: r.counter("core.topn.runs"),
            topn_partitions: r.counter("core.topn.partitions"),
            topn_partitions_pruned: r.counter("core.topn.partitions_pruned"),
            topn_partitions_refined: r.counter("core.topn.partitions_refined"),
            topn_objects_pruned: r.counter("core.topn.objects_pruned"),
            topn_objects_refined: r.counter("core.topn.objects_refined"),
            topn_tightenings: r.counter("core.topn.threshold_tightenings"),
            topn_heap_churn: r.counter("core.topn.heap_churn"),
            ooc_panel_faults: r.counter("core.ooc.panel_faults"),
            ooc_map_bytes: r.gauge("core.ooc.map_bytes"),
            ooc_segment_spills: r.counter("core.ooc.segment_spills"),
            ooc_segment_reloads: r.counter("core.ooc.segment_reloads"),
            ooc_segment_evictions: r.counter("core.ooc.segment_evictions"),
            ooc_resident_bytes: r.gauge("core.ooc.resident_bytes"),
        }
    })
}

/// Records one out-of-core dataset open: the minor page faults its
/// validation sweep took and the bytes now mapped. No-op with `obs` off.
pub(crate) fn publish_ooc_open(faults: u64, map_bytes: u64) {
    #[cfg(feature = "obs")]
    {
        let m = core_metrics();
        if faults > 0 {
            m.ooc_panel_faults.add(faults);
        }
        m.ooc_map_bytes.set(map_bytes as f64);
    }
    #[cfg(not(feature = "obs"))]
    let _ = (faults, map_bytes);
}

/// Mirrors one spillable-table build/scoring run's accounting onto the
/// `core.ooc.*` counters. No-op with `obs` off.
pub(crate) fn publish_ooc_spill(stats: &crate::spill::SpillStats) {
    #[cfg(feature = "obs")]
    {
        let m = core_metrics();
        for (counter, value) in [
            (&m.ooc_segment_spills, stats.segment_spills),
            (&m.ooc_segment_reloads, stats.segment_reloads),
            (&m.ooc_segment_evictions, stats.segment_evictions),
        ] {
            if value > 0 {
                counter.add(value);
            }
        }
        m.ooc_resident_bytes.set(stats.resident_bytes as f64);
    }
    #[cfg(not(feature = "obs"))]
    let _ = stats;
}

/// Mirrors one top-n engine run's accounting onto the `core.topn.*`
/// counters. No-op with `obs` off.
pub(crate) fn publish_topn(stats: &crate::topn::TopNStats) {
    #[cfg(feature = "obs")]
    {
        let m = core_metrics();
        m.topn_runs.inc();
        for (counter, value) in [
            (&m.topn_partitions, stats.partitions),
            (&m.topn_partitions_pruned, stats.partitions_pruned),
            (&m.topn_partitions_refined, stats.partitions_refined),
            (&m.topn_objects_pruned, stats.objects_pruned),
            (&m.topn_objects_refined, stats.objects_refined),
            (&m.topn_tightenings, stats.threshold_tightenings),
            (&m.topn_heap_churn, stats.heap_churn),
        ] {
            if value > 0 {
                counter.add(value);
            }
        }
    }
    #[cfg(not(feature = "obs"))]
    let _ = stats;
}

/// Kinds of whole-call events the engine publishes directly to the
/// global registry (no per-call accumulation needed).
#[derive(Debug, Clone, Copy)]
pub enum CoreEvent {
    /// One `sweep_lof_range` invocation.
    SweepRange,
    /// Column passes over the CSR arena during a sweep.
    SweepColumnPasses(u64),
    /// `(point, MinPts)` cells evaluated during a sweep.
    SweepCells(u64),
    /// One successful incremental insert.
    IncrementalInsert,
    /// One successful incremental remove.
    IncrementalRemove,
    /// LOF values recomputed by an update cascade.
    CascadeLofs(u64),
    /// Dependency depth one update cascade reached (0 = untouched
    /// beyond the event's own object, 3 = the LOF layer spread past the
    /// lrd layer). Summed on the counter; divide by
    /// `core.incremental.inserts + removes` for the mean depth.
    CascadeDepth(u64),
    /// SIMD micropanels executed outside a scratch-carrying path (the
    /// incremental insert/remove prefilter).
    SimdPanels(u64),
    /// Masked/peeled remainder lanes, same paths as [`CoreEvent::SimdPanels`].
    SimdRemainderLanes(u64),
}

/// Records the process-wide SIMD dispatch decision: bumps the
/// `core.simd.dispatch_<isa>` counter once, so `/metrics` shows which
/// kernel this process selected. Called exactly once, from
/// [`crate::simd::active`]. No-op with `obs` off.
pub(crate) fn publish_simd_dispatch(isa: crate::simd::Isa) {
    #[cfg(feature = "obs")]
    {
        lof_obs::global().counter(&format!("core.simd.dispatch_{}", isa.key())).inc();
    }
    #[cfg(not(feature = "obs"))]
    let _ = isa;
}

/// Publishes one whole-call event to the global registry. No-op with
/// `obs` off.
pub fn publish_event(event: CoreEvent) {
    #[cfg(feature = "obs")]
    {
        let m = core_metrics();
        match event {
            CoreEvent::SweepRange => m.sweep_ranges.inc(),
            CoreEvent::SweepColumnPasses(n) => m.sweep_column_passes.add(n),
            CoreEvent::SweepCells(n) => m.sweep_cells.add(n),
            CoreEvent::IncrementalInsert => m.inserts.inc(),
            CoreEvent::IncrementalRemove => m.removes.inc(),
            CoreEvent::CascadeLofs(n) => m.cascade_lofs.add(n),
            CoreEvent::CascadeDepth(n) => m.cascade_depth.add(n),
            CoreEvent::SimdPanels(n) => m.simd_panels.add(n),
            CoreEvent::SimdRemainderLanes(n) => m.simd_remainder_lanes.add(n),
        }
    }
    #[cfg(not(feature = "obs"))]
    let _ = event;
}

// Quiet the unused-import lints in the obs-off build: Counter/Arc/OnceLock
// only appear in gated items there.
#[cfg(not(feature = "obs"))]
#[allow(dead_code)]
fn _unused_imports(_: Option<(Arc<Counter>, &OnceLock<u8>)>) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bumps_respect_the_feature_gate() {
        let mut s = KernelStats::default();
        s.bump_tiles(3);
        s.bump_heap_offers(10);
        if lof_obs::enabled() {
            assert_eq!(s.tiles, 3);
            assert_eq!(s.heap_offers, 10);
        } else {
            assert_eq!(s, KernelStats::default());
        }
    }

    #[test]
    fn publish_flushes_into_the_global_registry() {
        let mut s = KernelStats::default();
        s.bump_captures(7);
        let before = lof_obs::global().counter("core.kernel.captures").value();
        s.publish_and_reset();
        assert_eq!(s, KernelStats::default());
        let after = lof_obs::global().counter("core.kernel.captures").value();
        if lof_obs::enabled() {
            assert_eq!(after - before, 7);
        } else {
            assert_eq!(after, 0);
        }
    }

    #[test]
    fn topn_stats_land_on_their_counters() {
        let stats = crate::topn::TopNStats {
            partitions: 8,
            partitions_pruned: 5,
            partitions_refined: 3,
            objects_pruned: 90,
            objects_refined: 10,
            threshold_tightenings: 4,
            heap_churn: 2,
        };
        let registry = lof_obs::global();
        let runs_before = registry.counter("core.topn.runs").value();
        let pruned_before = registry.counter("core.topn.objects_pruned").value();
        publish_topn(&stats);
        if lof_obs::enabled() {
            assert_eq!(registry.counter("core.topn.runs").value() - runs_before, 1);
            assert_eq!(registry.counter("core.topn.objects_pruned").value() - pruned_before, 90);
        } else {
            assert_eq!(registry.counter("core.topn.runs").value(), 0);
        }
    }

    #[test]
    fn events_land_on_their_counters() {
        let before = lof_obs::global().counter("core.incremental.cascade_lofs").value();
        publish_event(CoreEvent::CascadeLofs(5));
        let after = lof_obs::global().counter("core.incremental.cascade_lofs").value();
        if lof_obs::enabled() {
            assert_eq!(after - before, 5);
        } else {
            assert_eq!(after, 0);
        }
    }
}
