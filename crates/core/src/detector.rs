//! High-level detector API: configure once, run the full two-step pipeline.
//!
//! ```
//! use lof_core::{Dataset, LofDetector};
//!
//! let mut rows: Vec<[f64; 2]> = Vec::new();
//! for i in 0..12 {
//!     for j in 0..12 {
//!         rows.push([i as f64, j as f64]);
//!     }
//! }
//! rows.push([60.0, 60.0]); // an obvious outlier
//! let data = Dataset::from_rows(&rows).unwrap();
//!
//! let result = LofDetector::with_range(10, 20)
//!     .unwrap()
//!     .detect(&data)
//!     .unwrap();
//! assert_eq!(result.ranking()[0].0, 144);
//! assert!(result.score(144).unwrap() > 2.0);
//! ```

use crate::distance::{Euclidean, Metric};
use crate::error::Result;
use crate::materialize::NeighborhoodTable;
use crate::neighbors::KnnProvider;
use crate::parallel::{build_table_parallel, lof_range_parallel};
use crate::point::Dataset;
use crate::range::{lof_range, Aggregate, LofRangeResult, MinPtsRange};
use crate::scan::LinearScan;

/// A configured LOF pipeline: metric, `MinPts` range, aggregate, and an
/// optional thread count.
#[derive(Debug, Clone)]
pub struct LofDetector<M: Metric = Euclidean> {
    metric: M,
    range: MinPtsRange,
    aggregate: Aggregate,
    threads: usize,
}

impl LofDetector<Euclidean> {
    /// A detector for a single `MinPts`, Euclidean metric, max aggregate.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LofError::InvalidMinPts`] for `min_pts == 0`.
    pub fn with_min_pts(min_pts: usize) -> Result<Self> {
        Ok(LofDetector {
            metric: Euclidean,
            range: MinPtsRange::single(min_pts)?,
            aggregate: Aggregate::Max,
            threads: 1,
        })
    }

    /// A detector over the `MinPts` range `[lb, ub]` (the section 6.2
    /// heuristic), Euclidean metric, max aggregate.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LofError::InvalidRange`] when `lb > ub`.
    pub fn with_range(lb: usize, ub: usize) -> Result<Self> {
        Ok(LofDetector {
            metric: Euclidean,
            range: MinPtsRange::new(lb, ub)?,
            aggregate: Aggregate::Max,
            threads: 1,
        })
    }
}

impl<M: Metric> LofDetector<M> {
    /// Replaces the distance metric.
    pub fn metric<M2: Metric>(self, metric: M2) -> LofDetector<M2> {
        LofDetector { metric, range: self.range, aggregate: self.aggregate, threads: self.threads }
    }

    /// Replaces the score aggregate (default: [`Aggregate::Max`], the
    /// paper's ranking heuristic).
    pub fn aggregate(mut self, aggregate: Aggregate) -> Self {
        self.aggregate = aggregate;
        self
    }

    /// Uses `threads` worker threads for both pipeline steps (default 1 =
    /// serial; results are identical either way).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured `MinPts` range.
    pub fn range(&self) -> MinPtsRange {
        self.range
    }

    /// Runs the pipeline over any k-NN provider (typically an index from
    /// `lof-index`).
    ///
    /// # Errors
    ///
    /// Propagates provider validation errors.
    pub fn detect_with<P: KnnProvider + Sync + ?Sized>(
        &self,
        provider: &P,
    ) -> Result<OutlierResult> {
        let table = if self.threads > 1 {
            build_table_parallel(provider, self.range.ub(), self.threads)?
        } else {
            NeighborhoodTable::build(provider, self.range.ub())?
        };
        self.detect_from_table(&table)
    }

    /// Runs step 2 only, over an already-materialized table (must have
    /// `max_k >= range.ub()`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::LofError::TableTooShallow`] when the table is too
    /// shallow for the configured range.
    pub fn detect_from_table(&self, table: &NeighborhoodTable) -> Result<OutlierResult> {
        let range_result = if self.threads > 1 {
            lof_range_parallel(table, self.range, self.threads)?
        } else {
            lof_range(table, self.range)?
        };
        Ok(OutlierResult { range_result, aggregate: self.aggregate })
    }
}

impl<M: Metric + Clone> LofDetector<M> {
    /// Runs the pipeline over `data` with a brute-force scan. For large
    /// datasets, build a spatial index from `lof-index` and call
    /// [`LofDetector::detect_with`].
    ///
    /// # Errors
    ///
    /// Propagates dataset/parameter validation errors.
    pub fn detect(&self, data: &Dataset) -> Result<OutlierResult> {
        let scan = LinearScan::new(data, self.metric.clone());
        self.detect_with(&scan)
    }
}

/// The outcome of a detector run: per-object aggregated scores plus the full
/// per-`MinPts` traces.
#[derive(Debug, Clone)]
pub struct OutlierResult {
    range_result: LofRangeResult,
    aggregate: Aggregate,
}

impl OutlierResult {
    /// Aggregated outlier score of one object.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LofError::UnknownObject`] for out-of-range ids.
    pub fn score(&self, id: usize) -> Result<f64> {
        self.range_result.score(id, self.aggregate)
    }

    /// Aggregated scores of every object, in object order.
    pub fn scores(&self) -> Vec<f64> {
        self.range_result.scores(self.aggregate)
    }

    /// Objects ranked most-outlying-first.
    pub fn ranking(&self) -> Vec<(usize, f64)> {
        self.range_result.ranking(self.aggregate)
    }

    /// The `top` most outlying objects.
    pub fn top(&self, top: usize) -> Vec<(usize, f64)> {
        self.range_result.top_outliers(self.aggregate, top)
    }

    /// All objects whose aggregated score exceeds `threshold`, ranked. The
    /// paper's soccer analysis, for example, reports "all the local outliers
    /// with LOF > 1.5".
    pub fn outliers_above(&self, threshold: f64) -> Vec<(usize, f64)> {
        self.ranking().into_iter().take_while(|(_, s)| *s > threshold).collect()
    }

    /// The underlying per-`MinPts` result for fine-grained inspection.
    pub fn range_result(&self) -> &LofRangeResult {
        &self.range_result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Manhattan;

    fn two_density_dataset() -> Dataset {
        // Reproduces figure 1's structure in miniature: a sparse cluster, a
        // dense cluster, and two detached points o1 (far from everything)
        // and o2 (just outside the dense cluster).
        let mut rows: Vec<[f64; 2]> = Vec::new();
        for i in 0..7 {
            for j in 0..7 {
                rows.push([i as f64 * 4.0, j as f64 * 4.0]); // sparse C1
            }
        }
        for i in 0..5 {
            for j in 0..5 {
                rows.push([60.0 + i as f64 * 0.3, 60.0 + j as f64 * 0.3]); // dense C2
            }
        }
        rows.push([45.0, 45.0]); // o1-like, id 74
        rows.push([63.0, 63.0]); // o2-like (near C2), id 75
        Dataset::from_rows(&rows).unwrap()
    }

    #[test]
    fn detects_both_local_outliers() {
        let data = two_density_dataset();
        let result = LofDetector::with_range(5, 10).unwrap().detect(&data).unwrap();
        let ranking = result.ranking();
        let top2: Vec<usize> = ranking.iter().take(2).map(|(id, _)| *id).collect();
        assert!(top2.contains(&74), "o1 missing from top 2: {top2:?}");
        assert!(top2.contains(&75), "o2 missing from top 2: {top2:?}");
    }

    #[test]
    fn threads_do_not_change_results() {
        let data = two_density_dataset();
        let serial = LofDetector::with_range(4, 8).unwrap().detect(&data).unwrap();
        let parallel = LofDetector::with_range(4, 8).unwrap().threads(4).detect(&data).unwrap();
        assert_eq!(serial.scores(), parallel.scores());
    }

    #[test]
    fn metric_swap_works() {
        let data = two_density_dataset();
        let result =
            LofDetector::with_range(5, 8).unwrap().metric(Manhattan).detect(&data).unwrap();
        assert!(result.score(74).unwrap() > 1.0);
    }

    #[test]
    fn outliers_above_threshold() {
        let data = two_density_dataset();
        let result = LofDetector::with_range(5, 10).unwrap().detect(&data).unwrap();
        let flagged = result.outliers_above(1.5);
        assert!(!flagged.is_empty());
        for (_, s) in &flagged {
            assert!(*s > 1.5);
        }
        let all = result.outliers_above(f64::NEG_INFINITY);
        assert_eq!(all.len(), data.len());
    }

    #[test]
    fn detect_from_table_reuses_materialization() {
        let data = two_density_dataset();
        let scan = LinearScan::new(&data, Euclidean);
        let table = NeighborhoodTable::build(&scan, 10).unwrap();
        let a = LofDetector::with_range(5, 10).unwrap().detect_from_table(&table).unwrap();
        let b = LofDetector::with_range(5, 10).unwrap().detect(&data).unwrap();
        assert_eq!(a.scores(), b.scores());
    }
}
